#!/usr/bin/env python3
"""Validate a sealed SARIF artifact written by `dragon lint --sarif`.

Usage: check_sarif.py FILE [--schemas DIR] [--min-results N]

Checks, stdlib only (CI runners install nothing):
  1. the file ends in a valid `#checksum,<fnv1a hex>` trailer covering the
     body exactly (the writer's canonical form);
  2. the body is valid JSON and conforms to
     schemas/sarif_subset.schema.json;
  3. every result's ruleId is declared in the driver's rule table, its
     level matches its `confidence` property (error <=> definite), its
     startLine is >= 1, and its `precision` property is one of
     exact/affine-approx/interval/unbounded — with the soundness
     cross-check that a definite finding never rests on interval or
     unbounded evidence (over-approximations may refute, never prove);
  4. the run carries at least `--min-results` results (CI passes 1 for
     seeded-defect programs so an artifact that silently lost its findings
     fails the job).

Exit 0 on success; prints the first failure and exits 1 otherwise.
"""

import json
import sys
from pathlib import Path

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1
TRAILER_PREFIX = "#checksum,"


def fail(msg: str) -> None:
    print(f"check_sarif: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fnv1a(data: bytes) -> int:
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def strip_and_verify_trailer(path: Path) -> str:
    """Returns the document body after verifying its checksum trailer."""
    text = path.read_text(encoding="utf-8")
    t = text[:-1] if text.endswith("\n") else text
    nl = t.rfind("\n")
    body_end, last = (nl + 1, t[nl + 1 :]) if nl >= 0 else (0, t)
    if not last.startswith(TRAILER_PREFIX):
        fail(f"{path}: missing `{TRAILER_PREFIX}` trailer line")
    hexsum = last[len(TRAILER_PREFIX) :]
    if hexsum != format(int(hexsum, 16), "016x"):
        fail(f"{path}: non-canonical checksum trailer `{last}`")
    body = text[:body_end]
    actual = fnv1a(body.encode("utf-8"))
    if actual != int(hexsum, 16):
        fail(f"{path}: checksum mismatch (trailer {hexsum}, body {actual:016x})")
    return body


def validate(value, schema, where: str) -> None:
    """Validates the JSON-Schema subset the checked-in schemas use."""
    ty = schema.get("type")
    if ty == "object":
        if not isinstance(value, dict):
            fail(f"{where}: expected object, got {type(value).__name__}")
        for key in schema.get("required", []):
            if key not in value:
                fail(f"{where}: missing required key `{key}`")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{where}.{key}")
    elif ty == "array":
        if not isinstance(value, list):
            fail(f"{where}: expected array, got {type(value).__name__}")
        items = schema.get("items")
        if items:
            for i, item in enumerate(value):
                validate(item, items, f"{where}[{i}]")
    elif ty == "string":
        if not isinstance(value, str):
            fail(f"{where}: expected string, got {type(value).__name__}")
    elif ty == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{where}: expected integer, got {type(value).__name__}")
    elif ty == "boolean":
        if not isinstance(value, bool):
            fail(f"{where}: expected boolean, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        fail(f"{where}: value {value!r} not in {schema['enum']}")


def check_sarif(path: Path, schemas: Path, min_results: int) -> None:
    body = strip_and_verify_trailer(path)
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"{path}: body is not valid JSON: {e}")
    schema = json.loads((schemas / "sarif_subset.schema.json").read_text())
    validate(doc, schema, "sarif")

    total = 0
    for r, run in enumerate(doc["runs"]):
        declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        for i, result in enumerate(run["results"]):
            where = f"runs[{r}].results[{i}]"
            if result["ruleId"] not in declared:
                fail(f"{where}: ruleId {result['ruleId']!r} not declared in the driver")
            confidence = result["properties"]["confidence"]
            expected = "error" if confidence == "definite" else "warning"
            if result["level"] != expected:
                fail(
                    f"{where}: level {result['level']!r} contradicts "
                    f"confidence {confidence!r}"
                )
            precision = result["properties"]["precision"]
            if precision not in ("exact", "affine-approx", "interval", "unbounded"):
                fail(f"{where}: unknown precision {precision!r}")
            if confidence == "definite" and precision in ("interval", "unbounded"):
                fail(
                    f"{where}: definite finding rests on {precision!r} "
                    "evidence (over-approximations may refute, never prove)"
                )
            for loc in result["locations"]:
                line = loc["physicalLocation"]["region"]["startLine"]
                if line < 1:
                    fail(f"{where}: startLine {line} below 1")
            total += 1
    if total < min_results:
        fail(f"{path}: {total} result(s), expected at least {min_results}")
    print(f"{path.name}: {total} result(s), checksum ok")


def main() -> None:
    args = sys.argv[1:]
    if not args:
        print(__doc__)
        sys.exit(2)
    path = Path(args[0])
    schemas = Path("schemas")
    min_results = 0
    rest = args[1:]
    while rest:
        if rest[0] == "--schemas" and len(rest) >= 2:
            schemas = Path(rest[1])
            rest = rest[2:]
        elif rest[0] == "--min-results" and len(rest) >= 2:
            min_results = int(rest[1])
            rest = rest[2:]
        else:
            fail(f"unknown argument {rest[0]!r}")
    check_sarif(path, schemas, min_results)
    print("check_sarif: OK")


if __name__ == "__main__":
    main()
