#!/usr/bin/env python3
"""Validate a `dragon serve` metrics snapshot (and optionally its
Prometheus twin).

Usage: check_serve_metrics.py SNAPSHOT [--sealed] [--prom PROM_FILE]
                              [--schemas DIR]

SNAPSHOT is either the bare JSON result of the `metrics` RPC op, or
(with --sealed) a --metrics-snapshot file whose body carries a
`#checksum,<fnv1a hex>` trailer.

Checks, stdlib only (CI runners install nothing):
  1. (--sealed) the checksum trailer is present, canonical, and covers
     the body exactly;
  2. the snapshot is valid JSON conforming to
     schemas/serve_metrics.schema.json;
  3. accounting balances: requests_total equals the sum of per-op
     histogram counts, every op's outcome tallies sum to its count, and
     outcome names stay within the wire vocabulary;
  4. every per-op histogram is well-formed: bounds strictly increasing
     and index-aligned with counts, bucket counts conserve the op's
     total, and the percentile ladder is monotone
     (p50 <= p95 <= p99 <= p100, with p100 a real bucket bound);
  5. project rows are self-consistent (cache_hit_permille recomputes
     from hits/recomputes exactly);
  6. under the logical clock, every wall-clock- and memory-derived
     field is zero (the byte-determinism contract);
  7. (--prom) the Prometheus exposition agrees with the snapshot:
     requests_total series match the per-op outcome tallies (the
     `metrics` op itself may only grow between the two scrapes),
     cumulative buckets are monotone and end at the +Inf count, and the
     worker gauge matches.

Exit 0 on success; prints the first failure and exits 1 otherwise.
"""

import json
import re
import sys
from pathlib import Path

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1
TRAILER_PREFIX = "#checksum,"

OUTCOMES = {
    "ok", "degraded", "deadline-expired", "mem-exhausted", "shed",
    "circuit-open", "bad-request", "panic", "shutting-down", "internal",
}


def fail(msg: str) -> None:
    print(f"check_serve_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fnv1a(data: bytes) -> int:
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def strip_and_verify_trailer(path: Path) -> str:
    """Returns the document body after verifying its checksum trailer."""
    text = path.read_text(encoding="utf-8")
    t = text[:-1] if text.endswith("\n") else text
    nl = t.rfind("\n")
    body_end, last = (nl + 1, t[nl + 1 :]) if nl >= 0 else (0, t)
    if not last.startswith(TRAILER_PREFIX):
        fail(f"{path}: missing `{TRAILER_PREFIX}` trailer line")
    hexsum = last[len(TRAILER_PREFIX) :]
    if hexsum != format(int(hexsum, 16), "016x"):
        fail(f"{path}: non-canonical checksum trailer `{last}`")
    body = text[:body_end]
    actual = fnv1a(body.encode("utf-8"))
    if actual != int(hexsum, 16):
        fail(f"{path}: checksum mismatch (trailer {hexsum}, body {actual:016x})")
    return body


def validate(value, schema, where: str, root=None) -> None:
    """Validates the JSON-Schema subset the checked-in schemas use
    (objects, strings, integers, arrays, enum, and local #/definitions
    refs)."""
    if root is None:
        root = schema
    if "$ref" in schema:
        ref = schema["$ref"]
        prefix = "#/definitions/"
        if not ref.startswith(prefix):
            fail(f"{where}: unsupported $ref `{ref}`")
        schema = root.get("definitions", {}).get(ref[len(prefix):])
        if schema is None:
            fail(f"{where}: dangling $ref `{ref}`")
    ty = schema.get("type")
    if ty == "object":
        if not isinstance(value, dict):
            fail(f"{where}: expected object, got {type(value).__name__}")
        for key in schema.get("required", []):
            if key not in value:
                fail(f"{where}: missing required key `{key}`")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{where}.{key}", root)
    elif ty == "array":
        if not isinstance(value, list):
            fail(f"{where}: expected array, got {type(value).__name__}")
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                validate(item, items, f"{where}[{i}]", root)
    elif ty == "string":
        if not isinstance(value, str):
            fail(f"{where}: expected string, got {type(value).__name__}")
    elif ty == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{where}: expected integer, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        fail(f"{where}: value {value!r} not in {schema['enum']}")


def check_op(op: str, entry: dict) -> None:
    where = f"ops.{op}"
    count = entry["count"]
    outcomes = entry["outcomes"]
    for name, v in outcomes.items():
        if name not in OUTCOMES:
            fail(f"{where}: unknown outcome `{name}`")
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(f"{where}: outcome `{name}` count {v!r} is not a non-negative integer")
    if sum(outcomes.values()) != count:
        fail(
            f"{where}: outcome tallies sum to {sum(outcomes.values())} "
            f"!= histogram count {count}"
        )
    lat = entry["latency"]
    bounds, counts = lat["bounds"], lat["counts"]
    if len(bounds) != len(counts):
        fail(f"{where}: bounds ({len(bounds)}) and counts ({len(counts)}) misaligned")
    for i in range(1, len(bounds)):
        if bounds[i] <= bounds[i - 1]:
            fail(f"{where}: bounds not strictly increasing at [{i}]")
    if any(c < 0 for c in counts):
        fail(f"{where}: negative bucket count")
    if sum(counts) != count:
        fail(f"{where}: bucket counts sum to {sum(counts)} != count {count}")
    ladder = [lat["p50_units"], lat["p95_units"], lat["p99_units"], lat["p100_units"]]
    if ladder != sorted(ladder):
        fail(f"{where}: percentile ladder not monotone: {ladder}")
    if count > 0 and lat["p100_units"] not in bounds:
        fail(f"{where}: p100 {lat['p100_units']} is not a bucket bound")
    if count == 0 and lat["sum_units"] != 0:
        fail(f"{where}: sum_units {lat['sum_units']} with zero observations")


def check_projects(doc: dict) -> None:
    for row in doc["projects"]:
        where = f"projects[{row['project']!r}]"
        served = row["cache_hits"] + row["cache_recomputes"]
        expect = 0 if served == 0 else row["cache_hits"] * 1000 // served
        if row["cache_hit_permille"] != expect:
            fail(
                f"{where}: cache_hit_permille {row['cache_hit_permille']} "
                f"!= recomputed {expect}"
            )


def check_logical_zeroing(doc: dict) -> None:
    if doc["uptime_ms"] != 0:
        fail("logical clock: uptime_ms must render as 0")
    if doc["mem_high_water_bytes"] != 0:
        fail("logical clock: mem_high_water_bytes must render as 0")
    for row in doc["projects"]:
        if row["mem_high_water_bytes"] != 0:
            fail(
                f"logical clock: projects[{row['project']!r}].mem_high_water_bytes "
                "must render as 0"
            )


SERIES_RE = re.compile(r'^([a-z_]+)(?:\{([^}]*)\})? (\S+)$')
LABEL_RE = re.compile(r'([a-z_]+)="([^"]*)"')


def parse_prometheus(path: Path):
    """-> list of (metric, {label: value}, value) for every sample line."""
    samples = []
    for i, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if not line or line.startswith("#"):
            continue
        m = SERIES_RE.match(line)
        if not m:
            fail(f"{path}:{i}: unparseable sample line `{line}`")
        labels = dict(LABEL_RE.findall(m.group(2) or ""))
        samples.append((m.group(1), labels, m.group(3)))
    return samples


def check_prometheus(doc: dict, path: Path) -> None:
    samples = parse_prometheus(path)
    ops = doc["ops"]

    # requests_total series <-> snapshot outcome tallies. The `metrics` op
    # serves both scrapes, so its own counters may only grow in between;
    # every other op must agree exactly (CI drives no traffic in between).
    prom_outcomes = {}
    for metric, labels, value in samples:
        if metric == "araa_serve_requests_total":
            key = (labels.get("op"), labels.get("outcome"))
            if None in key:
                fail(f"{path}: requests_total sample missing op/outcome labels")
            prom_outcomes[key] = int(value)
    for op, entry in ops.items():
        for outcome, v in entry["outcomes"].items():
            got = prom_outcomes.pop((op, outcome), None)
            if got is None:
                fail(f"{path}: missing requests_total series op={op} outcome={outcome}")
            if op == "metrics":
                if got < v:
                    fail(f"{path}: metrics-op counter went backwards ({got} < {v})")
            elif got != v:
                fail(
                    f"{path}: requests_total op={op} outcome={outcome} = {got} "
                    f"!= snapshot {v}"
                )
    for (op, outcome), got in prom_outcomes.items():
        if op != "metrics":
            fail(
                f"{path}: exposition has requests_total op={op} outcome={outcome} "
                f"= {got} absent from the snapshot"
            )

    # Histogram structure: cumulative buckets monotone, +Inf == count line.
    buckets, counts, infs = {}, {}, {}
    for metric, labels, value in samples:
        op = labels.get("op")
        if metric == "araa_serve_latency_units_bucket":
            if labels.get("le") == "+Inf":
                infs[op] = int(value)
            else:
                buckets.setdefault(op, []).append((int(labels["le"]), int(value)))
        elif metric == "araa_serve_latency_units_count":
            counts[op] = int(value)
    for op, series in buckets.items():
        les = [le for le, _ in series]
        cums = [c for _, c in series]
        if les != sorted(les):
            fail(f"{path}: op={op} bucket le bounds not sorted")
        if cums != sorted(cums):
            fail(f"{path}: op={op} cumulative bucket counts decrease")
        if op not in infs:
            fail(f"{path}: op={op} histogram lacks a +Inf bucket")
        if cums and cums[-1] > infs[op]:
            fail(f"{path}: op={op} last bucket {cums[-1]} exceeds +Inf {infs[op]}")
        if counts.get(op) != infs[op]:
            fail(f"{path}: op={op} _count {counts.get(op)} != +Inf bucket {infs[op]}")
        if op != "metrics" and infs[op] != ops.get(op, {}).get("count"):
            fail(
                f"{path}: op={op} +Inf bucket {infs[op]} != snapshot count "
                f"{ops.get(op, {}).get('count')}"
            )

    gauges = {m: v for m, labels, v in samples if not labels}
    if int(gauges.get("araa_serve_workers", -1)) != doc["workers"]:
        fail(
            f"{path}: araa_serve_workers {gauges.get('araa_serve_workers')} "
            f"!= snapshot workers {doc['workers']}"
        )
    print(
        f"{path}: {len(samples)} samples agree with the snapshot "
        f"({len(prom_outcomes)} extra metrics-op series tolerated)"
    )


def main(argv: list) -> None:
    args = argv[1:]
    if not args:
        print(__doc__)
        sys.exit(2)
    snapshot_path = None
    prom_path = None
    sealed = False
    schemas = Path(__file__).resolve().parent.parent / "schemas"
    i = 0
    while i < len(args):
        if args[i] == "--sealed":
            sealed = True
        elif args[i] == "--prom":
            i += 1
            prom_path = Path(args[i])
        elif args[i] == "--schemas":
            i += 1
            schemas = Path(args[i])
        elif snapshot_path is None:
            snapshot_path = Path(args[i])
        else:
            fail(f"unexpected argument `{args[i]}`")
        i += 1
    if snapshot_path is None:
        fail("no SNAPSHOT argument")

    if sealed:
        body = strip_and_verify_trailer(snapshot_path)
    else:
        body = snapshot_path.read_text(encoding="utf-8")
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"{snapshot_path}: not valid JSON: {e}")
    schema = json.loads(
        (schemas / "serve_metrics.schema.json").read_text(encoding="utf-8")
    )
    validate(doc, schema, "snapshot")

    total = sum(entry["count"] for entry in doc["ops"].values())
    if total != doc["requests_total"]:
        fail(f"requests_total {doc['requests_total']} != sum of op counts {total}")
    for op, entry in doc["ops"].items():
        check_op(op, entry)
    check_projects(doc)
    if doc["clock"] == "logical":
        check_logical_zeroing(doc)
    if prom_path is not None:
        check_prometheus(doc, prom_path)

    exercised = sum(1 for e in doc["ops"].values() if e["count"] > 0)
    print(
        f"{snapshot_path}: schema ok; {doc['requests_total']} requests across "
        f"{exercised} exercised op(s), clock {doc['clock']}"
        + (", trailer ok" if sealed else "")
    )


if __name__ == "__main__":
    main(sys.argv)
