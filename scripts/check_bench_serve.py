#!/usr/bin/env python3
"""Validate BENCH_serve.json, the `dragon serve` load-harness report.

Usage: check_bench_serve.py [REPORT] [--baseline BENCH_session.json]
                            [--schemas DIR]

Checks, stdlib only (CI runners install nothing):
  1. the report is valid JSON conforming to schemas/bench_serve.schema.json;
  2. internal accounting balances: every load/overload request is
     classified exactly once (ok + shed + deadline_expired + errors ==
     requests) and the latency percentiles are monotone (p50 <= p95 <=
     p99 <= max);
  3. the load phase completed healthy — zero transport-level errors
     (overload is a structured response, never a dropped connection);
  4. admission control demonstrably engaged in the overload phase
     (shed >= 1 against the one-worker, depth-one daemon);
  5. the serving-overhead budget holds: warm reanalyze p50 over the
     socket is at most 2x the in-process session baseline
     (warm_noop + warm_one_proc_edit medians from BENCH_session.json,
     section session_warm/mini_lu);
  6. memory accounting is live and bounded: mem_high_water_bytes is
     positive (the counting allocator actually charged requests) and at
     most 1.25x the configured per-request budget (no request's
     allocation churn escaped its ceiling by more than checkpoint slack);
  7. the per-op latency histograms (load.ops) are well-formed: bounds
     strictly increasing and aligned with counts, bucket counts conserve
     the op's total, and the histogram-derived p50 lands within one
     bucket of the exact sampled p50.

Exit 0 on success; prints the first failure and exits 1 otherwise.
"""

import json
import sys
from pathlib import Path


def fail(msg: str) -> None:
    print(f"check_bench_serve: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(value, schema, where: str, root=None) -> None:
    """Validates the JSON-Schema subset the checked-in schemas use
    (objects, strings, integers, arrays, enum, and local #/definitions
    refs)."""
    if root is None:
        root = schema
    if "$ref" in schema:
        ref = schema["$ref"]
        prefix = "#/definitions/"
        if not ref.startswith(prefix):
            fail(f"{where}: unsupported $ref `{ref}`")
        schema = root.get("definitions", {}).get(ref[len(prefix):])
        if schema is None:
            fail(f"{where}: dangling $ref `{ref}`")
    ty = schema.get("type")
    if ty == "object":
        if not isinstance(value, dict):
            fail(f"{where}: expected object, got {type(value).__name__}")
        for key in schema.get("required", []):
            if key not in value:
                fail(f"{where}: missing required key `{key}`")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{where}.{key}", root)
    elif ty == "array":
        if not isinstance(value, list):
            fail(f"{where}: expected array, got {type(value).__name__}")
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                validate(item, items, f"{where}[{i}]", root)
    elif ty == "string":
        if not isinstance(value, str):
            fail(f"{where}: expected string, got {type(value).__name__}")
    elif ty == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{where}: expected integer, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        fail(f"{where}: value {value!r} not in {schema['enum']}")


def check_op_hist(op: str, h: dict) -> None:
    """Holds the per-op histogram invariants: aligned bucket vectors,
    strictly increasing bounds, count conservation, and the
    histogram-derived p50 landing within one bucket of the sampled p50."""
    where = f"load.ops.{op}"
    bounds, counts = h["bounds"], h["counts"]
    if len(bounds) != len(counts):
        fail(f"{where}: bounds ({len(bounds)}) and counts ({len(counts)}) misaligned")
    for i in range(1, len(bounds)):
        if bounds[i] <= bounds[i - 1]:
            fail(f"{where}: bounds not strictly increasing at [{i}]: {bounds[i-1]} -> {bounds[i]}")
    if any(c < 0 for c in counts):
        fail(f"{where}: negative bucket count")
    if sum(counts) != h["count"]:
        fail(f"{where}: bucket counts sum to {sum(counts)} != count {h['count']}")
    if h["count"] == 0:
        fail(f"{where}: empty histogram — the load phase never hit this op")
    # The histogram quantile is the upper bound of the p50 bucket; the
    # exact sampled p50 must fall in that bucket or an adjacent one.
    def bucket_of(v):
        for i, b in enumerate(bounds):
            if v <= b:
                return i
        return len(bounds) - 1
    hist_idx = bucket_of(h["hist_p50_ns"])
    sampled_idx = bucket_of(h["sampled_p50_ns"])
    if abs(hist_idx - sampled_idx) > 1:
        fail(
            f"{where}: histogram p50 ({h['hist_p50_ns']} ns, bucket {hist_idx}) "
            f"is more than one bucket from sampled p50 "
            f"({h['sampled_p50_ns']} ns, bucket {sampled_idx})"
        )


def check_balance(section: dict, keys: list, where: str) -> None:
    total = sum(section[k] for k in keys)
    if total != section["requests"]:
        fail(
            f"{where}: outcomes {'+'.join(keys)} = {total} "
            f"!= requests = {section['requests']}"
        )


def baseline_warm_ns(path: Path) -> int:
    """Sum of the in-process warm medians from BENCH_session.json."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot read baseline: {e}")
    entries = doc.get("sections", {}).get("session_warm/mini_lu")
    if not entries:
        fail(f"{path}: missing section `session_warm/mini_lu`")
    medians = {e["name"]: e["median_ns"] for e in entries}
    for name in ("warm_noop", "warm_one_proc_edit"):
        if name not in medians:
            fail(f"{path}: section session_warm/mini_lu lacks `{name}`")
    return medians["warm_noop"] + medians["warm_one_proc_edit"]


def main(argv: list) -> None:
    report_path = Path("BENCH_serve.json")
    baseline_path = Path("BENCH_session.json")
    schemas = Path(__file__).resolve().parent.parent / "schemas"
    args = argv[1:]
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--schemas":
            i += 1
            schemas = Path(args[i])
        elif args[i] == "--baseline":
            i += 1
            baseline_path = Path(args[i])
        else:
            positional.append(args[i])
        i += 1
    if positional:
        report_path = Path(positional[0])

    try:
        doc = json.loads(report_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{report_path}: cannot read report: {e}")
    schema = json.loads((schemas / "bench_serve.schema.json").read_text(encoding="utf-8"))
    validate(doc, schema, "report")

    load = doc["load"]
    check_balance(load, ["ok", "shed", "deadline_expired", "errors"], "load")
    lat = load["latency_ns"]
    if not lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]:
        fail(f"load.latency_ns: percentiles not monotone: {lat}")
    if load["ok"] == 0:
        fail("load: no successful requests at all")
    if load["errors"] != 0:
        fail(
            f"load: {load['errors']} transport-level error(s) — overload "
            "must be a structured response, never a dropped connection"
        )
    for op, h in load["ops"].items():
        check_op_hist(op, h)

    over = doc["overload"]
    check_balance(over, ["ok", "shed", "errors"], "overload")
    if over["errors"] != 0:
        fail(f"overload: {over['errors']} dropped request(s)")
    if over["shed"] < 1:
        fail("overload: burst against a depth-one queue shed nothing — admission control is not engaging")

    budget = 2 * baseline_warm_ns(baseline_path)
    warm = doc["warm"]["reanalyze_p50_ns"]
    if warm > budget:
        fail(
            f"warm.reanalyze_p50_ns = {warm} ns exceeds the serving budget "
            f"of 2x in-process warm baseline = {budget} ns"
        )

    high_water = doc["mem_high_water_bytes"]
    mem_budget_bytes = doc["mem_budget_mb"] * (1 << 20)
    mem_cap = int(mem_budget_bytes * 1.25)
    if high_water <= 0:
        fail(
            "mem_high_water_bytes = 0 — the counting allocator never "
            "charged a request; memory accounting is dead"
        )
    if high_water > mem_cap:
        fail(
            f"mem_high_water_bytes = {high_water} exceeds 1.25x the "
            f"{doc['mem_budget_mb']} MiB per-request budget ({mem_cap} bytes) "
            "— a request's allocation churn escaped its ceiling"
        )

    print(
        f"{report_path}: schema ok; load {load['requests']} req "
        f"(p50 {lat['p50']} ns, {load['shed']} shed); overload shed "
        f"{over['shed']}/{over['requests']}; warm reanalyze p50 {warm} ns "
        f"<= budget {budget} ns; mem high-water {high_water} bytes "
        f"<= {mem_cap} bytes"
    )


if __name__ == "__main__":
    main(sys.argv)
