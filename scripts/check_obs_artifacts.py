#!/usr/bin/env python3
"""Validate the observability artifacts `dragon --trace-out` writes.

Usage: check_obs_artifacts.py TRACE_DIR [--schemas DIR]

Checks, stdlib only (CI runners install nothing):
  1. trace.json and metrics.jsonl end in a valid `#checksum,<fnv1a hex>`
     trailer covering the body exactly (the writer's canonical form);
  2. the trace body is valid JSON and conforms to
     schemas/obs_trace.schema.json;
  3. every metrics line is valid JSON conforming to the variant of
     schemas/obs_metrics.schema.json selected by its `type`;
  4. the cache-accounting invariant holds:
     cache.hits + cache.recomputes == session.procedures;
  5. counter lines cover the full catalog exactly once (zeros included).

Exit 0 on success; prints the first failure and exits 1 otherwise.
"""

import json
import sys
from pathlib import Path

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1
TRAILER_PREFIX = "#checksum,"


def fail(msg: str) -> None:
    print(f"check_obs_artifacts: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fnv1a(data: bytes) -> int:
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def strip_and_verify_trailer(path: Path) -> str:
    """Returns the document body after verifying its checksum trailer."""
    text = path.read_text(encoding="utf-8")
    t = text[:-1] if text.endswith("\n") else text
    nl = t.rfind("\n")
    body_end, last = (nl + 1, t[nl + 1 :]) if nl >= 0 else (0, t)
    if not last.startswith(TRAILER_PREFIX):
        fail(f"{path}: missing `{TRAILER_PREFIX}` trailer line")
    hexsum = last[len(TRAILER_PREFIX) :]
    if hexsum != format(int(hexsum, 16), "016x"):
        fail(f"{path}: non-canonical checksum trailer `{last}`")
    body = text[:body_end]
    actual = fnv1a(body.encode("utf-8"))
    if actual != int(hexsum, 16):
        fail(f"{path}: checksum mismatch (trailer {hexsum}, body {actual:016x})")
    return body


def validate(value, schema, where: str) -> None:
    """Validates the JSON-Schema subset the checked-in schemas use."""
    ty = schema.get("type")
    if ty == "object":
        if not isinstance(value, dict):
            fail(f"{where}: expected object, got {type(value).__name__}")
        for key in schema.get("required", []):
            if key not in value:
                fail(f"{where}: missing required key `{key}`")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{where}.{key}")
    elif ty == "array":
        if not isinstance(value, list):
            fail(f"{where}: expected array, got {type(value).__name__}")
        items = schema.get("items")
        if items:
            for i, item in enumerate(value):
                validate(item, items, f"{where}[{i}]")
    elif ty == "string":
        if not isinstance(value, str):
            fail(f"{where}: expected string, got {type(value).__name__}")
    elif ty == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{where}: expected integer, got {type(value).__name__}")
    elif ty == "boolean":
        if not isinstance(value, bool):
            fail(f"{where}: expected boolean, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        fail(f"{where}: value {value!r} not in {schema['enum']}")


def check_trace(trace_dir: Path, schemas: Path) -> None:
    path = trace_dir / "trace.json"
    body = strip_and_verify_trailer(path)
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"{path}: body is not valid JSON: {e}")
    schema = json.loads((schemas / "obs_trace.schema.json").read_text())
    validate(doc, schema, "trace")
    events = doc["traceEvents"]
    if not any(e.get("ph") == "X" for e in events):
        fail(f"{path}: no complete (ph=X) span events recorded")
    print(f"trace.json: {len(events)} events, checksum ok")


def check_metrics(path: Path, schemas: Path) -> None:
    body = strip_and_verify_trailer(path)
    schema = json.loads((schemas / "obs_metrics.schema.json").read_text())
    variants = schema["variants"]
    counters = {}
    gauges = {}
    for i, line in enumerate(body.splitlines(), start=1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: not valid JSON: {e}")
        ty = rec.get("type")
        if ty not in variants:
            fail(f"{path}:{i}: unknown record type {ty!r}")
        validate(rec, variants[ty], f"{path.name}:{i}")
        if ty == "counter":
            if rec["name"] in counters:
                fail(f"{path}:{i}: duplicate counter `{rec['name']}`")
            counters[rec["name"]] = rec["value"]
        elif ty == "gauge":
            gauges[rec["name"]] = rec["value"]

    for needed in ("cache.hits", "cache.recomputes", "faultpoint.trips"):
        if needed not in counters:
            fail(f"{path}: counter `{needed}` missing from the catalog dump")
    procs = gauges.get("session.procedures")
    if procs is None:
        fail(f"{path}: gauge `session.procedures` missing")
    hits, recomputes = counters["cache.hits"], counters["cache.recomputes"]
    if hits + recomputes != procs:
        fail(
            f"{path}: cache accounting broken: "
            f"hits {hits} + recomputes {recomputes} != procedures {procs}"
        )
    if counters.get("cache.rejects", 0) > recomputes:
        fail(f"{path}: rejects exceed recomputes")
    print(
        f"{path.name}: {len(counters)} counters, invariant "
        f"{hits}+{recomputes}=={procs} ok"
    )


def main() -> None:
    args = sys.argv[1:]
    if not args:
        print(__doc__)
        sys.exit(2)
    trace_dir = Path(args[0])
    schemas = Path("schemas")
    if len(args) >= 3 and args[1] == "--schemas":
        schemas = Path(args[2])
    check_trace(trace_dir, schemas)
    check_metrics(trace_dir / "metrics.jsonl", schemas)
    print("check_obs_artifacts: OK")


if __name__ == "__main__":
    main()
