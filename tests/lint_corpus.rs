//! Golden test over the seeded-defect corpus in `workloads/lint_corpus/`.
//!
//! Each defective program seeds exactly one defect class; its `_clean`
//! twin differs only by the fix. The lint engine must report every seeded
//! defect — correct rule, correct source line, correct array — and nothing
//! on any twin or any pre-existing workload (the zero-false-positive
//! contract the definite/possible split exists to uphold).

use araa::{Analysis, AnalysisOptions};
use lint::{LintOptions, LintReport, Rule, Severity};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads/lint_corpus")
}

fn load(name: &str) -> Vec<workloads::GenSource> {
    let path = corpus_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    vec![workloads::GenSource { name: name.to_string(), text, fortran: !name.ends_with(".c") }]
}

fn lint_file(name: &str) -> LintReport {
    let a = Analysis::analyze(&load(name), AnalysisOptions::default())
        .unwrap_or_else(|e| panic!("{name} must analyze: {e}"));
    lint::run(&a, &LintOptions::default())
}

/// One seeded defect: the rule that must fire, the line(s) it must anchor
/// to, and the array it must name. `count` pins the exact finding count so
/// a rule regression can neither drop nor duplicate findings silently.
struct Seed {
    file: &'static str,
    rule: Rule,
    lines: &'static [u32],
    array: &'static str,
    count: usize,
}

const SEEDS: &[Seed] = &[
    // Intra-procedural overruns: the loop walks two elements past the
    // declaration, on both the read and the write side of the statement.
    Seed { file: "oob_basic.f", rule: Rule::Oob01, lines: &[5], array: "a", count: 2 },
    Seed { file: "oob_tail.c", rule: Rule::Oob01, lines: &[8], array: "a", count: 2 },
    // Interprocedural-only: `bump` takes an assumed-size `x(*)` (nothing
    // to check in the callee), the violation appears when its region is
    // rebased onto the caller's `a(10)` — anchored at the call site.
    Seed { file: "oob_chain.f", rule: Rule::Oob01, lines: &[7], array: "a", count: 2 },
    Seed { file: "ubd_local.f", rule: Rule::Ubd02, lines: &[7], array: "t", count: 1 },
    Seed { file: "ubd_gap.f", rule: Rule::Ubd02, lines: &[10], array: "t", count: 1 },
    Seed { file: "ubd_call.f", rule: Rule::Ubd02, lines: &[4], array: "v", count: 1 },
    Seed { file: "dst_local.f", rule: Rule::Dst03, lines: &[6], array: "buf", count: 1 },
    Seed { file: "dst_tail.c", rule: Rule::Dst03, lines: &[10], array: "w", count: 1 },
    Seed { file: "shp_small.f", rule: Rule::Shp04, lines: &[8], array: "small", count: 1 },
    Seed { file: "ali_dup.f", rule: Rule::Ali05, lines: &[9], array: "a", count: 1 },
    Seed { file: "ali_global.f", rule: Rule::Ali05, lines: &[8], array: "g", count: 1 },
];

#[test]
fn every_seeded_defect_is_reported() {
    for seed in SEEDS {
        let report = lint_file(seed.file);
        assert_eq!(
            report.findings.len(),
            seed.count,
            "{} must report exactly {} finding(s):\n{}",
            seed.file,
            seed.count,
            report.render()
        );
        for f in &report.findings {
            assert_eq!(f.rule, seed.rule, "{}: wrong rule:\n{}", seed.file, report.render());
            assert_eq!(f.severity, Severity::Definite, "{}: seeded defects are provable", seed.file);
            assert_eq!(f.array, seed.array, "{}: wrong array", seed.file);
            assert_eq!(f.file, seed.file, "finding must anchor to the defective file");
            assert!(
                seed.lines.contains(&f.line),
                "{}: finding at line {}, expected one of {:?}",
                seed.file,
                f.line,
                seed.lines
            );
        }
        assert!(report.degradations.is_empty(), "{} must not degrade", seed.file);
    }
}

#[test]
fn every_clean_twin_is_finding_free() {
    for seed in SEEDS {
        let (stem, ext) = seed.file.rsplit_once('.').expect("corpus files have extensions");
        let twin = format!("{stem}_clean.{ext}");
        let report = lint_file(&twin);
        assert!(
            report.findings.is_empty(),
            "{twin} must be finding-free:\n{}",
            report.render()
        );
    }
}

#[test]
fn corpus_directory_and_seed_table_agree() {
    // Every corpus file is either a seeded defect in the table or the
    // `_clean` twin of one — no orphans in either direction.
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir exists")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = SEEDS
        .iter()
        .flat_map(|s| {
            let (stem, ext) = s.file.rsplit_once('.').expect("extension");
            [s.file.to_string(), format!("{stem}_clean.{ext}")]
        })
        .collect();
    expected.sort();
    assert_eq!(on_disk, expected);
}

#[test]
fn pre_existing_workloads_stay_finding_free() {
    // The corpus must not cost precision elsewhere: the paper's own
    // workloads keep exactly the findings they had — fig10's genuine dead
    // store and nothing else anywhere.
    let clean: Vec<(&str, Vec<workloads::GenSource>)> = vec![
        ("fig1", vec![workloads::fig1::source()]),
        ("mini_lu", workloads::mini_lu::sources()),
        ("stencil", vec![workloads::stencil::source()]),
        ("caf", vec![workloads::caf::source()]),
        ("synthetic", vec![workloads::synthetic::generate(&Default::default())]),
    ];
    for (name, srcs) in clean {
        let a = Analysis::analyze(&srcs, AnalysisOptions::default()).expect("analysis");
        let report = lint::run(&a, &LintOptions::default());
        assert!(report.findings.is_empty(), "{name}:\n{}", report.render());
    }
    let a = Analysis::analyze(&[workloads::fig10::source()], AnalysisOptions::default())
        .expect("analysis");
    let report = lint::run(&a, &LintOptions::default());
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    assert_eq!(report.findings[0].rule, Rule::Dst03);
    assert_eq!(report.findings[0].array, "aarr");
}

#[test]
fn corpus_sarif_round_trips_with_checksum() {
    // The SARIF artifact for a defective program carries every finding,
    // and the sealed document verifies through the canonical trailer.
    let report = lint_file("oob_basic.f");
    let mut doc = lint::sarif::to_sarif(&report, "test");
    assert!(doc.contains("\"ruleId\": \"OOB-01\""));
    assert!(doc.contains("\"level\": \"error\""));
    support::persist::append_text_checksum(&mut doc);
    support::persist::verify_text_checksum(&doc).expect("sealed SARIF verifies");
}
