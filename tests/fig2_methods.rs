//! Integration test for Fig. 2: the efficiency-vs-accuracy taxonomy of
//! array-analysis methods (classic / reference-list / regular sections /
//! convex regions), exercised on realistic access-pattern families.

use regions::access::AccessMode;
use regions::methods::{
    enumerate_region, false_positive_rate, ClassicMethod, ConvexMethod, RefListMethod,
    RsdMethod, SummaryMethod,
};
use regions::{Triplet, TripletRegion};
use std::collections::BTreeSet;

struct Workload {
    name: &'static str,
    extent: Vec<(i64, i64)>,
    references: Vec<TripletRegion>,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "dense-1d",
            extent: vec![(0, 99)],
            references: vec![TripletRegion::new(vec![Triplet::constant(10, 59, 1)])],
        },
        Workload {
            name: "strided-1d",
            extent: vec![(0, 99)],
            references: vec![TripletRegion::new(vec![Triplet::constant(0, 98, 7)])],
        },
        Workload {
            name: "two-blocks",
            extent: vec![(0, 99)],
            references: vec![
                TripletRegion::new(vec![Triplet::constant(0, 9, 1)]),
                TripletRegion::new(vec![Triplet::constant(90, 99, 1)]),
            ],
        },
        Workload {
            name: "2d-subblock",
            extent: vec![(0, 19), (0, 19)],
            references: vec![TripletRegion::new(vec![
                Triplet::constant(2, 6, 1),
                Triplet::constant(3, 9, 2),
            ])],
        },
    ]
}

fn truth(refs: &[TripletRegion]) -> BTreeSet<Vec<i64>> {
    let mut t = BTreeSet::new();
    for r in refs {
        enumerate_region(r, &mut |p| {
            t.insert(p.to_vec());
        });
    }
    t
}

fn run_all(
    w: &Workload,
) -> Vec<(String, usize, f64)> {
    let mut classic = ClassicMethod::new(w.extent.clone());
    let mut reflist = RefListMethod::new();
    let mut rsd = RsdMethod::new();
    let mut convex = ConvexMethod::new();
    let methods: Vec<&mut dyn SummaryMethod> =
        vec![&mut classic, &mut reflist, &mut rsd, &mut convex];
    let mut out = Vec::new();
    for m in methods {
        for r in &w.references {
            m.add_reference(AccessMode::Use, r);
        }
        let t = truth(&w.references);
        let fp = false_positive_rate(&*m, AccessMode::Use, &t, &w.extent);
        out.push((m.name().to_string(), m.storage_bytes(), fp));
    }
    out
}

/// Soundness: no method may deny a truly-accessed element. (This is also
/// debug-asserted inside `false_positive_rate`; here it runs explicitly.)
#[test]
fn all_methods_are_sound_on_all_workloads() {
    for w in workloads() {
        let mut classic = ClassicMethod::new(w.extent.clone());
        let mut reflist = RefListMethod::new();
        let mut rsd = RsdMethod::new();
        let mut convex = ConvexMethod::new();
        let methods: Vec<&mut dyn SummaryMethod> =
            vec![&mut classic, &mut reflist, &mut rsd, &mut convex];
        for m in methods {
            for r in &w.references {
                m.add_reference(AccessMode::Use, r);
            }
            for point in truth(&w.references) {
                assert!(
                    m.may_access(AccessMode::Use, &point),
                    "{} unsound on {} at {:?}",
                    m.name(),
                    w.name,
                    point
                );
            }
        }
    }
}

/// Fig. 2's accuracy axis: reference-list is exact; classic is the least
/// precise on every workload where anything less than the whole array is
/// touched.
#[test]
fn accuracy_ordering() {
    for w in workloads() {
        let results = run_all(&w);
        let fp = |name: &str| results.iter().find(|(n, _, _)| n == name).unwrap().2;
        assert_eq!(fp("reference-list"), 0.0, "{}", w.name);
        assert!(fp("classic") >= fp("regular-sections"), "{}", w.name);
        assert!(fp("classic") >= fp("convex-regions"), "{}", w.name);
        assert!(fp("classic") > 0.0, "{}: partial access", w.name);
    }
}

/// Fig. 2's efficiency axis: classic is the smallest summary; the
/// reference list is the largest on dense workloads.
#[test]
fn storage_ordering() {
    for w in workloads() {
        let results = run_all(&w);
        let bytes = |name: &str| results.iter().find(|(n, _, _)| n == name).unwrap().1;
        assert_eq!(bytes("classic"), 1, "{}", w.name);
        assert!(bytes("classic") <= bytes("regular-sections"));
        assert!(bytes("regular-sections") <= bytes("reference-list"), "{}", w.name);
    }
}

/// Strided access is where regular sections beat convex regions (the convex
/// box must include the skipped elements).
#[test]
fn stride_precision_gap() {
    let w = &workloads()[1]; // strided-1d
    let results = run_all(w);
    let fp = |name: &str| results.iter().find(|(n, _, _)| n == name).unwrap().2;
    assert!(fp("regular-sections") < fp("convex-regions"), "{results:?}");
}

/// Two distant blocks are where convex pieces beat a single regular
/// section (the RSD hull spans the gap; two convex pieces do not).
#[test]
fn union_precision_gap() {
    let w = &workloads()[2]; // two-blocks
    let results = run_all(w);
    let fp = |name: &str| results.iter().find(|(n, _, _)| n == name).unwrap().2;
    assert!(fp("convex-regions") < fp("regular-sections"), "{results:?}");
}
