//! Integration test for Figs. 9/10: the `matrix.c` example, end-to-end
//! (source text → frontend → IPA → extraction → `.rgn` → Dragon view).

use araa::{Analysis, AnalysisOptions, RgnRow};
use dragon::view::{render_scope, ViewOptions};
use dragon::Project;
use regions::access::AccessMode;

fn rows() -> (Analysis, Vec<RgnRow>) {
    let srcs = vec![workloads::fig10::source()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let rows = analysis.rows.clone();
    (analysis, rows)
}

/// The five Fig. 9 rows, with every column the figure shows.
#[test]
fn fig9_rows_exact() {
    let (_a, rows) = rows();
    let aarr: Vec<&RgnRow> = rows.iter().filter(|r| r.array == "aarr").collect();
    assert_eq!(aarr.len(), 5);

    let check_common = |r: &RgnRow| {
        assert_eq!(r.file, "matrix.o");
        assert_eq!(r.dims, 1);
        assert_eq!(r.elem_size, 4);
        assert_eq!(r.data_type, "int");
        assert_eq!(r.dim_size, "20");
        assert_eq!(r.tot_size, 20);
        assert_eq!(r.size_bytes, 80);
        assert_eq!(r.mem_loc, "55599870");
    };

    let mut defs: Vec<(String, String, String)> = Vec::new();
    let mut uses: Vec<(String, String, String)> = Vec::new();
    for r in &aarr {
        check_common(r);
        let trip = (r.lb.clone(), r.ub.clone(), r.stride.clone());
        match r.mode {
            AccessMode::Def => {
                assert_eq!(r.refs, 2);
                assert_eq!(r.acc_density, 2);
                defs.push(trip);
            }
            AccessMode::Use => {
                assert_eq!(r.refs, 3);
                assert_eq!(r.acc_density, 3);
                uses.push(trip);
            }
            other => panic!("unexpected mode {other:?}"),
        }
    }
    defs.sort();
    uses.sort();
    let t = |a: &str, b: &str, c: &str| (a.to_string(), b.to_string(), c.to_string());
    assert_eq!(defs, vec![t("0", "7", "1"), t("1", "8", "1")]);
    assert_eq!(uses, vec![t("0", "7", "1"), t("0", "7", "1"), t("2", "6", "2")]);
}

#[test]
fn memory_location_matches_fig9_hex() {
    // Fig. 9 shows 55599870 — our layout base reproduces it.
    let (_a, rows) = rows();
    assert!(rows.iter().all(|r| r.mem_loc == "55599870"));
}

#[test]
fn rgn_file_round_trip_preserves_all_rows() {
    let (analysis, rows) = rows();
    let doc = analysis.rgn_document();
    let parsed = araa::rgn::read_rgn(&doc).unwrap();
    assert_eq!(parsed, rows);
}

#[test]
fn dragon_find_highlights_aarr_rows() {
    let srcs = vec![workloads::fig10::source()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let project = Project::from_generated(&analysis, &srcs);
    let opts = ViewOptions { find: Some("aarr".into()), color: true, ..Default::default() };
    let out = render_scope(&project, "@", &opts);
    // All five rows are highlighted in (ANSI) green.
    assert_eq!(out.matches("\x1b[32m").count(), 5, "{out}");
}

#[test]
fn source_browse_marks_access_statements() {
    let srcs = vec![workloads::fig10::source()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let project = Project::from_generated(&analysis, &srcs);
    let out =
        dragon::browse::render_source_with_highlights(&project, "matrix.c", "aarr", false)
            .unwrap();
    let marked = out.lines().filter(|l| l.starts_with('>')).count();
    // Declaration + the three statements mentioning aarr.
    assert_eq!(marked, 4, "{out}");
}

#[test]
fn whirl2c_emission_round_readable() {
    let srcs = vec![workloads::fig10::source()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let id = analysis.program.find_procedure("main").unwrap();
    let out = whirl::emit::emit_procedure(
        &analysis.program,
        analysis.program.procedure(id),
        whirl::emit::Dialect::C,
    );
    assert!(out.contains("void main()"), "{out}");
    assert!(out.contains("for (i = 0; i <= 7; i += 1) {"), "{out}");
    assert!(out.contains("aarr["), "{out}");
}
