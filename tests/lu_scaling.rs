//! Scale-invariance of the static analysis: the mini-LU generator can vary
//! the grid and time-step count (for interpreter runs), but the *declared*
//! attributes the paper's tables report — dims `64|65|65|5`, 10 816 000
//! bytes, the `xcr` rows, access densities — must not move, and the
//! region *bounds* must track the grid parameter exactly.

use araa::{Analysis, AnalysisOptions};
use regions::access::AccessMode;
use workloads::mini_lu::{sources_scaled, LuConfig};

fn analyze(cfg: LuConfig) -> Analysis {
    Analysis::analyze(&sources_scaled(cfg), AnalysisOptions::default()).unwrap()
}

#[test]
fn declared_attributes_are_scale_invariant() {
    for cfg in [LuConfig::tiny(), LuConfig { grid: 16, steps: 5 }, LuConfig::default()] {
        let a = analyze(cfg);
        let u_row = a
            .rows
            .iter()
            .find(|r| r.array == "u" && r.mode == AccessMode::Use && r.proc == "rhs")
            .unwrap();
        assert_eq!(u_row.dim_size, "64|65|65|5", "{cfg:?}");
        assert_eq!(u_row.size_bytes, 10_816_000, "{cfg:?}");
        assert_eq!(u_row.refs, 110, "{cfg:?}");
        let xcr = a
            .rows
            .iter()
            .find(|r| {
                r.array == "xcr"
                    && r.mode == AccessMode::Use
                    && r.proc == "verify"
                    && r.via.is_none()
            })
            .unwrap();
        assert_eq!(xcr.acc_density, 10, "{cfg:?}");
    }
}

#[test]
fn interior_loop_bounds_track_the_grid() {
    let small = analyze(LuConfig { grid: 8, steps: 1 });
    let interior_row = small
        .rows_for_proc("setiv")
        .into_iter()
        .find(|r| r.array == "u" && r.mode == AccessMode::Def)
        .unwrap()
        .clone();
    // do i/j/k = 2, grid-1 over the first three source dims.
    assert!(interior_row.lb.starts_with("2|2|2"), "{interior_row:?}");
    assert!(interior_row.ub.starts_with("7|7|7"), "{interior_row:?}");

    let big = analyze(LuConfig { grid: 33, steps: 1 });
    let interior_big = big
        .rows_for_proc("setiv")
        .into_iter()
        .find(|r| r.array == "u" && r.mode == AccessMode::Def)
        .unwrap()
        .clone();
    assert!(interior_big.ub.starts_with("32|32|32"), "{interior_big:?}");
}

#[test]
fn step_count_never_changes_static_rows() {
    let one = analyze(LuConfig { grid: 12, steps: 1 });
    let many = analyze(LuConfig { grid: 12, steps: 40 });
    // Row-for-row identical except the ssor loop bound literal is not part
    // of any array region.
    assert_eq!(one.rows.len(), many.rows.len());
    for (a, b) in one.rows.iter().zip(&many.rows) {
        assert_eq!(a, b);
    }
}

#[test]
fn dynamic_access_counts_scale_with_steps() {
    let limits = whirl::interp::Limits::default();
    let a1 = analyze(LuConfig { grid: 6, steps: 1 });
    let d1 = araa::dynamic::run_dynamic(&a1.program, "applu", limits).unwrap();
    let a3 = analyze(LuConfig { grid: 6, steps: 3 });
    let d3 = araa::dynamic::run_dynamic(&a3.program, "applu", limits).unwrap();
    assert!(
        d3.total_accesses > 2 * d1.total_accesses / 1,
        "3 SSOR steps must execute well over the 1-step count: {} vs {}",
        d3.total_accesses,
        d1.total_accesses
    );
}
