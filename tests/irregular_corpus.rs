//! Golden test over the non-affine corpus in `workloads/irregular_corpus/`.
//!
//! Every program here defeats the affine summarizer on purpose —
//! subscripted subscripts (`a(idx(i))`), polynomial subscripts (`a(i*i)`),
//! and loop-carried accumulator pointers (`k = k + 2; b(k)`). The
//! interval fallback must bound most of them (the `interval` precision
//! level), the rest must surface as `NAF-06` analysis-gap findings, and —
//! because interval regions are over-approximations — **no** finding on
//! this corpus may ever be `Definite`.

use araa::{Analysis, AnalysisOptions};
use lint::{LintOptions, LintReport, Rule, Severity};
use regions::access::Precision;
use std::path::{Path, PathBuf};
use support::idx::Idx;
use whirl::ProcId;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads/irregular_corpus")
}

fn load(name: &str) -> Vec<workloads::GenSource> {
    let path = corpus_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    vec![workloads::GenSource { name: name.to_string(), text, fortran: true }]
}

fn analyze(name: &str) -> Analysis {
    Analysis::analyze(&load(name), AnalysisOptions::default())
        .unwrap_or_else(|e| panic!("{name} must analyze: {e}"))
}

fn lint_file(name: &str) -> LintReport {
    lint::run(&analyze(name), &LintOptions::default())
}

const ALL_FILES: &[&str] = &[
    "ss_inj_ok.f",
    "ss_inj_oob.f",
    "ss_gather.f",
    "naf_opaque.f",
    "poly_square.f",
    "poly_square_oob.f",
    "accum_stride.f",
    "accum_unbounded.f",
    "dst_interval.f",
];

/// One seeded outcome: the rule that must fire (always `Possible`), the
/// line it anchors to, and the array it names. Files absent from this
/// table must be finding-free — the interval pass bounded everything.
struct Seed {
    file: &'static str,
    rule: Rule,
    line: u32,
    array: &'static str,
}

const SEEDS: &[Seed] = &[
    // The index array holds values 101..150 but `a` declares 50 elements:
    // the interval region exceeds the extents, yet being an
    // over-approximation it can only *suspect* the overrun.
    Seed { file: "ss_inj_oob.f", rule: Rule::Oob01, line: 10, array: "a" },
    // `i*i` over i=1..10 against `a(60)`: the interval [0:99] spills past
    // the declaration.
    Seed { file: "poly_square_oob.f", rule: Rule::Oob01, line: 6, array: "a" },
    // `idx` escapes into `scramble` before the gather, so no index-array
    // fact survives and the subscript stays unbounded: the analysis must
    // say so instead of going silent.
    Seed { file: "naf_opaque.f", rule: Rule::Naf06, line: 8, array: "a" },
    // `k = k + m` with `m` unknown: widening cannot bound the pointer.
    Seed { file: "accum_unbounded.f", rule: Rule::Naf06, line: 9, array: "b" },
    // The gather writes all of `a(1:100)` (interval), reads only
    // `a(1:50)`: elements 51..100 *may* be dead — never definitely,
    // because the interval write is an over-approximation.
    Seed { file: "dst_interval.f", rule: Rule::Dst03, line: 11, array: "a" },
];

#[test]
fn seeded_outcomes_fire_at_possible_only() {
    for seed in SEEDS {
        let report = lint_file(seed.file);
        assert_eq!(
            report.findings.len(),
            1,
            "{} must report exactly one finding:\n{}",
            seed.file,
            report.render()
        );
        let f = &report.findings[0];
        assert_eq!(f.rule, seed.rule, "{}: wrong rule:\n{}", seed.file, report.render());
        assert_eq!(
            f.severity,
            Severity::Possible,
            "{}: interval evidence can never prove a violation",
            seed.file
        );
        assert_eq!(f.line, seed.line, "{}: wrong anchor line", seed.file);
        assert_eq!(f.array, seed.array, "{}: wrong array", seed.file);
        assert!(
            f.precision >= Precision::Interval,
            "{}: the finding must record its interval/unbounded evidence",
            seed.file
        );
    }
}

#[test]
fn recovered_files_are_finding_free() {
    for file in ALL_FILES {
        if SEEDS.iter().any(|s| s.file == *file) {
            continue;
        }
        let report = lint_file(file);
        assert!(
            report.findings.is_empty(),
            "{file} must be finding-free (the interval pass bounds it):\n{}",
            report.render()
        );
        assert!(
            report.suppressed > 0,
            "{file}: the interval bounds must have refuted at least one candidate"
        );
    }
}

#[test]
fn no_definite_findings_anywhere_in_the_corpus() {
    for file in ALL_FILES {
        let report = lint_file(file);
        assert_eq!(
            report.definite_count(),
            0,
            "{file}: interval regions over-approximate; a Definite finding \
             through one would be a soundness bug:\n{}",
            report.render()
        );
    }
}

/// The tentpole coverage bar: at least 80% of the accesses the affine
/// summarizer gave up on (everything at precision `interval` or worse)
/// must come back bounded from the interval pass.
#[test]
fn interval_pass_bounds_at_least_80_percent_of_nonaffine_accesses() {
    let (mut interval, mut unbounded) = (0usize, 0usize);
    for file in ALL_FILES {
        let a = analyze(file);
        for i in 0..a.program.procedure_count() {
            let id = ProcId::from_usize(i);
            for rec in &a.ipa.summary(id).accesses {
                if rec.from_call.is_some() || rec.approx || !rec.mode.moves_data() {
                    continue;
                }
                match rec.precision {
                    Precision::Interval => interval += 1,
                    Precision::Unbounded => unbounded += 1,
                    _ => {}
                }
            }
        }
    }
    let total = interval + unbounded;
    assert!(total >= 10, "corpus must exercise the fallback broadly, got {total}");
    assert!(
        interval * 100 >= total * 80,
        "interval pass must bound >=80% of non-affine accesses: \
         {interval} interval vs {unbounded} unbounded"
    );
}

/// The `.rgn` rows surface the new `precision` column: the corpus must
/// produce rows at every relevant level, and interval rows must carry
/// constant (renderable) bounds, not `MESSY`.
#[test]
fn rows_carry_the_precision_column() {
    let a = analyze("ss_inj_ok.f");
    let interval_rows: Vec<_> =
        a.rows.iter().filter(|r| r.precision == Precision::Interval).collect();
    assert!(!interval_rows.is_empty(), "gather rows must be interval-precision");
    for row in &interval_rows {
        assert!(
            !row.lb.contains("MESSY") && !row.ub.contains("MESSY"),
            "interval rows carry recovered constant bounds: {row:?}"
        );
    }
    let b = analyze("naf_opaque.f");
    assert!(
        b.rows.iter().any(|r| r.precision == Precision::Unbounded),
        "the opaque gather must stay unbounded"
    );
    assert!(
        a.rows.iter().any(|r| r.precision == Precision::Exact),
        "affine rows in the same program stay exact"
    );
}

/// Findings, report text, and SARIF are byte-identical at any lint thread
/// count — the corpus goes through the same deterministic merge as the
/// affine workloads.
#[test]
fn corpus_lint_is_thread_count_invariant() {
    for file in ALL_FILES {
        let a = analyze(file);
        let one = lint::run(&a, &LintOptions { threads: 1 });
        let eight = lint::run(&a, &LintOptions { threads: 8 });
        assert_eq!(one.render(), eight.render(), "{file}: report text diverged");
        assert_eq!(
            lint::sarif::to_sarif(&one, "t"),
            lint::sarif::to_sarif(&eight, "t"),
            "{file}: SARIF diverged"
        );
    }
}

/// SARIF property bags expose the finding-level precision so CI can gate
/// on it (`scripts/check_sarif.py` validates the vocabulary).
#[test]
fn sarif_reports_precision_for_corpus_findings() {
    let report = lint_file("ss_inj_oob.f");
    let doc = lint::sarif::to_sarif(&report, "test");
    assert!(doc.contains("\"precision\": \"interval\""), "{doc}");
    assert!(doc.contains("\"ruleId\": \"OOB-01\""), "{doc}");
    let report = lint_file("naf_opaque.f");
    let doc = lint::sarif::to_sarif(&report, "test");
    assert!(doc.contains("\"ruleId\": \"NAF-06\""), "{doc}");
    assert!(doc.contains("\"precision\": \"unbounded\""), "{doc}");
}
