//! Observability contract: the metrics the collector reports must agree
//! with what the analysis actually did, and observation must never change
//! what the analysis produces.
//!
//! - cache accounting covers every procedure: `cache.hits +
//!   cache.recomputes == session.procedures` on every update (rejects are
//!   a subset of recomputes — a hash hit whose validation failed);
//! - the degradation gauge equals `Analysis::degradations.len()`;
//! - tracing on vs off yields byte-identical `.rgn`/`.dgn`/`.cfg`;
//! - under the logical clock, both exporters are byte-deterministic and
//!   carry valid `#checksum` trailers;
//! - a warm-from-disk run profiles every procedure as primed, none as
//!   recomputed.

use araa::{Analysis, AnalysisOptions, AnalysisSession, SessionStore};
use support::budget::BudgetConfig;
use support::obs::{self, ClockKind, Collector, Counter, Gauge};
use support::testdir::TestDir;

fn opts_serial() -> AnalysisOptions {
    // Single-threaded: the byte-determinism assertions below need a
    // deterministic event interleaving, which worker pools cannot promise.
    AnalysisOptions::builder().threads(1).build()
}

fn edit_rhs(sources: &mut [workloads::GenSource]) {
    let rhs = sources.iter_mut().find(|s| s.name == "rhs.f").expect("rhs.f");
    rhs.text = rhs.text.replace("do k = 1, 10", "do k = 1, 7");
}

#[test]
fn cache_counters_cover_every_procedure() {
    let mut sources = workloads::mini_lu::sources();
    let mut session = AnalysisSession::new(opts_serial());

    // Cold: everything recomputes.
    let cold = Collector::new(ClockKind::Logical);
    {
        let _g = obs::attach(cold.clone());
        session.update(sources.clone()).expect("cold update");
    }
    let procs = cold.gauge(Gauge::SessionProcedures);
    assert!(procs > 0, "mini_lu has procedures");
    assert_eq!(cold.counter(Counter::CacheHits), 0, "cold run cannot hit");
    assert_eq!(cold.counter(Counter::CacheRecomputes), procs);

    // Warm after one edit: hits + recomputes still covers every procedure,
    // and rejects never exceed recomputes (a reject IS a recompute whose
    // cached candidate failed validation).
    edit_rhs(&mut sources);
    let warm = Collector::new(ClockKind::Logical);
    {
        let _g = obs::attach(warm.clone());
        session.update(sources).expect("warm update");
    }
    let procs = warm.gauge(Gauge::SessionProcedures);
    let hits = warm.counter(Counter::CacheHits);
    let recomputes = warm.counter(Counter::CacheRecomputes);
    assert_eq!(hits + recomputes, procs, "every procedure is hit or recomputed");
    assert!(hits > 0, "an edit of one file must not evict every summary");
    assert!(recomputes > 0, "the edited file's procedures must recompute");
    assert!(
        warm.counter(Counter::CacheRejects) <= recomputes,
        "rejects are a subset of recomputes"
    );
}

#[test]
fn degradation_gauge_matches_analysis() {
    // A starvation budget forces degradations; the gauge and counter must
    // agree with the analysis' own report exactly.
    let starved = AnalysisOptions::builder()
        .threads(1)
        .budget(BudgetConfig { fm_steps: 1, translations: 1, ..BudgetConfig::default() })
        .build();
    let c = Collector::new(ClockKind::Logical);
    let a = {
        let _g = obs::attach(c.clone());
        Analysis::analyze(&workloads::mini_lu::sources(), starved).expect("degrades, not fails")
    };
    assert!(a.degraded(), "starvation budget must degrade mini_lu");
    let n = a.degradations.len() as u64;
    assert_eq!(c.gauge(Gauge::SessionDegradations), n);
    assert_eq!(c.counter(Counter::DegradeEvents), n);
    assert!(c.counter(Counter::BudgetExhausted) > 0, "exhaustion must be counted");
}

#[test]
fn tracing_changes_no_artifact_bytes() {
    let sources = workloads::mini_lu::sources();
    let plain = Analysis::analyze(&sources, opts_serial()).expect("untraced analysis");
    let c = Collector::new(ClockKind::Logical);
    let traced = {
        let _g = obs::attach(c.clone());
        Analysis::analyze(&sources, opts_serial()).expect("traced analysis")
    };
    assert!(!c.events().is_empty(), "the traced run must actually record spans");
    assert_eq!(plain.rgn_document(), traced.rgn_document(), ".rgn changed under tracing");
    assert_eq!(plain.dgn_document(), traced.dgn_document(), ".dgn changed under tracing");
    assert_eq!(plain.cfg_document(), traced.cfg_document(), ".cfg changed under tracing");
}

#[test]
fn logical_clock_exports_are_byte_deterministic() {
    let run = || {
        let c = Collector::new(ClockKind::Logical);
        {
            let _g = obs::attach(c.clone());
            Analysis::analyze(&workloads::mini_lu::sources(), opts_serial())
                .expect("analysis succeeds");
        }
        (c.chrome_trace_json(), c.metrics_jsonl())
    };
    let (trace1, metrics1) = run();
    let (trace2, metrics2) = run();
    assert_eq!(trace1, trace2, "chrome trace is not byte-deterministic");
    assert_eq!(metrics1, metrics2, "metrics stream is not byte-deterministic");
    obs::verify_artifact(&trace1).expect("trace trailer verifies");
    obs::verify_artifact(&metrics1).expect("metrics trailer verifies");
}

#[test]
fn warm_from_disk_profiles_primed_procedures() {
    let dir = TestDir::new("obs-warm-disk");
    let sources = workloads::mini_lu::sources();

    // Cold run populates the cache directory.
    {
        let mut session = AnalysisSession::with_cache_dir(opts_serial(), dir.path());
        session.load();
        session.update(sources.clone()).expect("cold update");
        session.persist();
    }

    // Warm-from-disk run under a fresh collector: every procedure must
    // show as primed, none as recomputed, and the counters must agree.
    let c = Collector::new(ClockKind::Logical);
    {
        let _g = obs::attach(c.clone());
        let mut session = AnalysisSession::with_cache_dir(opts_serial(), dir.path());
        session.load();
        session.update(sources).expect("warm update");
    }
    let snap = c.snapshot();
    let procs = c.gauge(Gauge::SessionProcedures);
    assert_eq!(c.counter(Counter::StorePrimed), procs, "all procedures prime from disk");
    assert_eq!(c.counter(Counter::StoreRejected), 0);
    assert_eq!(c.counter(Counter::CacheHits), procs);
    assert_eq!(snap.procs.len() as u64, procs, "one profile row per procedure");
    for p in &snap.procs {
        assert!(p.primed, "{} must be primed from disk", p.proc);
        assert!(!p.recomputed, "{} must not recompute on a warm disk run", p.proc);
    }
}

#[test]
fn interval_pass_counters_are_thread_count_invariant() {
    // The non-affine counters describe *what the analysis concluded*, not
    // how the work was scheduled: analyzing the same irregular program at
    // 1 and 8 threads must count the same FM bail-outs, the same interval
    // recoveries, and the same index-array facts.
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../workloads/irregular_corpus/ss_inj_ok.f");
    let text = std::fs::read_to_string(&corpus).expect("corpus file");
    let sources =
        vec![workloads::GenSource { name: "ss_inj_ok.f".into(), text, fortran: true }];
    let run = |threads: usize| {
        let c = Collector::new(ClockKind::Logical);
        {
            let _g = obs::attach(c.clone());
            Analysis::analyze(&sources, AnalysisOptions::builder().threads(threads).build())
                .expect("analysis succeeds");
        }
        (
            c.counter(Counter::RegionsFmBailouts),
            c.counter(Counter::RegionsIntervalRecovered),
            c.counter(Counter::IpaIndexFacts),
        )
    };
    let serial = run(1);
    let parallel = run(8);
    assert!(serial.0 > 0, "the gather must make FM bail out");
    assert!(serial.1 > 0, "the interval pass must recover bounds");
    assert!(serial.2 > 0, "the defining loop must yield index-array facts");
    assert_eq!(serial, parallel, "counters must not depend on thread count");
}

#[test]
fn cache_stats_reconciles_store_gauge() {
    let dir = TestDir::new("obs-stats-gauge");

    // Populate and persist a cache (served from the stats.araa snapshot
    // on the next stats() call).
    {
        let mut session = AnalysisSession::with_cache_dir(opts_serial(), dir.path());
        session.load();
        session.update(workloads::mini_lu::sources()).expect("cold update");
        session.persist();
    }

    // A fresh process that never saved: its StoreEntries gauge can hold
    // anything (here: deliberately poisoned). `stats()` must reconcile the
    // live gauge with the persisted snapshot it reports.
    let c = Collector::new(ClockKind::Logical);
    let _g = obs::attach(c.clone());
    obs::set_gauge(Gauge::StoreEntries, 999);
    let store = SessionStore::new(dir.path(), &opts_serial());
    let stats = store.stats().expect("stats");
    assert!(stats.from_snapshot, "persisted snapshot must serve this read");
    assert!(stats.entry_files > 0, "populated cache has entry files");
    assert_eq!(
        c.gauge(Gauge::StoreEntries),
        stats.entry_files as u64,
        "stats() must reconcile the live gauge with the reported entry count"
    );

    // The same holds on the live-scan path (snapshot removed).
    std::fs::remove_file(dir.path().join("stats.araa")).expect("drop snapshot");
    obs::set_gauge(Gauge::StoreEntries, 999);
    let stats = store.stats().expect("live stats");
    assert!(!stats.from_snapshot, "snapshot is gone; this is a live scan");
    assert_eq!(c.gauge(Gauge::StoreEntries), stats.entry_files as u64);
}
