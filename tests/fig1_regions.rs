//! Integration test for the paper's Fig. 1: interprocedural access analysis.
//!
//! "Once procedure P1 is invoked, the region of array A represented by the
//! triplet notation format (1:100:1, 1:100:1) will be defined. Similarly, on
//! invocation of procedure P2, the region ... (101:200:1, 101:200:1) will be
//! used. ... both procedures can concurrently and safely be parallelized."

use araa::{Analysis, AnalysisOptions};
use dragon::{advisor, Project};
use regions::access::AccessMode;

fn analyze() -> (Analysis, Project) {
    let srcs = vec![workloads::fig1::source()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let project = Project::from_generated(&analysis, &srcs);
    (analysis, project)
}

#[test]
fn p1_defines_the_paper_region() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("p1");
    let def = rows
        .iter()
        .find(|r| r.array == "x" && r.mode == AccessMode::Def)
        .expect("p1 defines its formal x");
    assert_eq!(def.lb, "1|1");
    assert_eq!(def.ub, "100|100");
    assert_eq!(def.stride, "1|1");
    assert_eq!(def.dims, 2);
}

#[test]
fn p2_uses_the_paper_region() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("p2");
    let use_row = rows
        .iter()
        .find(|r| r.array == "x" && r.mode == AccessMode::Use)
        .expect("p2 uses its formal x");
    assert_eq!(use_row.lb, "101|101");
    assert_eq!(use_row.ub, "200|200");
}

#[test]
fn caller_sees_interprocedural_regions_on_a() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("add");
    let idef = rows
        .iter()
        .find(|r| r.array == "a" && r.via.as_deref() == Some("p1"))
        .expect("IDEF of A propagated to add");
    assert_eq!(idef.display_mode(), "IDEF");
    assert_eq!((idef.lb.as_str(), idef.ub.as_str()), ("1|1", "100|100"));
    let iuse = rows
        .iter()
        .find(|r| r.array == "a" && r.via.as_deref() == Some("p2"))
        .expect("IUSE of A propagated to add");
    assert_eq!(iuse.display_mode(), "IUSE");
    assert_eq!((iuse.lb.as_str(), iuse.ub.as_str()), ("101|101", "200|200"));
}

#[test]
fn passed_rows_recorded_at_call_sites() {
    let (analysis, _) = analyze();
    let passed: Vec<_> = analysis
        .rows_for_proc("add")
        .into_iter()
        .filter(|r| r.array == "a" && r.mode == AccessMode::Passed)
        .collect();
    // A is passed at two call sites inside the loop.
    assert_eq!(passed.len(), 2);
    for p in passed {
        assert_eq!(p.refs, 2, "references count both PASSED sites");
        assert_eq!((p.lb.as_str(), p.ub.as_str()), ("1|1", "200|200"));
    }
}

#[test]
fn advisor_declares_p1_p2_parallelizable() {
    let (analysis, project) = analyze();
    let advice = advisor::parallel_call_advice(&analysis);
    assert!(advice.iter().any(|a| matches!(
        a,
        advisor::Advice::ParallelCalls { caller, callee_a, callee_b }
            if caller == "add" && callee_a == "p1" && callee_b == "p2"
    )));
    let _ = project;
}

#[test]
fn overlapping_variant_is_not_parallelizable() {
    let srcs = vec![workloads::fig1::overlapping_variant()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let advice = advisor::parallel_call_advice(&analysis);
    assert!(
        advice.is_empty(),
        "P2 reading (50:150) overlaps P1's DEF (1:100): {advice:?}"
    );
}

#[test]
fn fig1_project_round_trips_through_files() {
    let (analysis, _) = analyze();
    let dir = std::env::temp_dir().join("fig1_it_project");
    analysis.write_project(&dir, "fig1").unwrap();
    let loaded = Project::load(&dir, "fig1").unwrap();
    assert_eq!(loaded.rows.len(), analysis.rows.len());
    assert_eq!(loaded.dgn.procs.len(), 3);
    assert_eq!(loaded.dgn.calls.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convex_independence_matches_triplet_verdict() {
    // The Fig. 1 disjointness must hold under both representations.
    let def_region = regions::convex::box_region(&[(1, 100), (1, 100)]);
    let use_region = regions::convex::box_region(&[(101, 200), (101, 200)]);
    assert!(def_region.disjoint_from(&use_region));

    let t_def = regions::TripletRegion::new(vec![
        regions::Triplet::constant(1, 100, 1),
        regions::Triplet::constant(1, 100, 1),
    ]);
    let t_use = regions::TripletRegion::new(vec![
        regions::Triplet::constant(101, 200, 1),
        regions::Triplet::constant(101, 200, 1),
    ]);
    assert_eq!(t_def.disjoint_from(&t_use), Some(true));
}
