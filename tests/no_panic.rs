//! Robustness corpus: no input, however malformed, may panic the pipeline.
//!
//! Every source below goes through the full `Analysis::analyze`
//! pipeline. The contract is graceful: either a clean result, a degraded
//! result (with structured [`araa::Degradation`] entries), or a typed
//! error — never a panic, never a stack-overflow abort.

use araa::{Analysis, AnalysisOptions};
use support::budget::BudgetConfig;

fn fortran(name: &str, text: &str) -> workloads::GenSource {
    workloads::GenSource { name: name.to_string(), text: text.to_string(), fortran: true }
}

fn c(name: &str, text: &str) -> workloads::GenSource {
    workloads::GenSource { name: name.to_string(), text: text.to_string(), fortran: false }
}

/// The malformed corpus. Each entry must run to completion without panicking;
/// whether it yields `Ok` (possibly degraded) or `Err` is input-dependent.
fn corpus() -> Vec<(&'static str, workloads::GenSource)> {
    vec![
        ("empty file", fortran("empty.f", "")),
        ("whitespace only", fortran("blank.f", "\n\n   \n")),
        ("lone keyword", fortran("lone.f", "subroutine\n")),
        ("lex garbage", fortran("garbage.f", "@#$%^&*\n")),
        (
            "unterminated do",
            fortran("undone.f", "program main\n  integer i\n  do i = 1, 5\n    i = i\nend\n"),
        ),
        (
            "double equals",
            fortran("deq.f", "program main\n  integer i\n  i = = 1\nend\n"),
        ),
        (
            "duplicate procedure",
            fortran(
                "dup.f",
                "subroutine f\n  return\nend\nsubroutine f\n  return\nend\nprogram main\n  call f\nend\n",
            ),
        ),
        (
            "call to nothing",
            fortran("ghost.f", "program main\n  call ghost(1)\nend\n"),
        ),
        (
            "deep parens",
            fortran(
                "deep.f",
                &format!(
                    "program main\n  integer i\n  i = {}1{}\nend\n",
                    "(".repeat(4000),
                    ")".repeat(4000)
                ),
            ),
        ),
        ("c garbage", c("garbage.c", "@#$ not a program\n")),
        ("c unbalanced braces", c("brace.c", "void f() { int i; i = 0;\n")),
        (
            "c missing semicolons",
            c("semi.c", "void f() { int i\n i = 0\n }\nvoid g() { int j; j = 1; }\n"),
        ),
        (
            "c deep unary",
            c(
                "deepc.c",
                &format!("void f() {{ int i; i = {}1; }}\n", "!".repeat(4000)),
            ),
        ),
        (
            "c type soup",
            c("soup.c", "int int int; void; { } ; ; void g() { int j; j = 2; }\n"),
        ),
    ]
}

/// Every real workload source in `crates/workloads`.
fn workload_sources() -> Vec<workloads::GenSource> {
    let mut all = vec![
        workloads::fig1::source(),
        workloads::fig10::source(),
        workloads::caf::source(),
        workloads::stencil::source(),
    ];
    all.extend(workloads::mini_lu::sources());
    all
}

/// Deterministic single-character mutations at positions spread over the
/// source (drop a char, double it, or swap it for a hostile token).
fn mutations(src: &workloads::GenSource) -> Vec<workloads::GenSource> {
    let chars: Vec<char> = src.text.chars().collect();
    let mut out = Vec::new();
    for frac in [1usize, 3, 5, 7, 9] {
        let at = (chars.len() * frac / 10).min(chars.len().saturating_sub(1));
        let dropped: String = {
            let mut v = chars.clone();
            v.remove(at);
            v.into_iter().collect()
        };
        let doubled: String = {
            let mut v = chars.clone();
            let c = v[at];
            v.insert(at, c);
            v.into_iter().collect()
        };
        let hostile: String = {
            let mut v = chars.clone();
            v[at] = '(';
            v.into_iter().collect()
        };
        for (tag, variant) in [("drop", dropped), ("dup", doubled), ("hostile", hostile)] {
            out.push(workloads::GenSource {
                name: format!("{}-{tag}{frac}", src.name),
                text: variant,
                fortran: src.fortran,
            });
        }
    }
    // Truncations at the same spread of positions.
    for frac in [1usize, 3, 5, 7, 9] {
        let at = chars.len() * frac / 10;
        out.push(workloads::GenSource {
            name: format!("{}-trunc{frac}", src.name),
            text: chars[..at].iter().collect(),
            fortran: src.fortran,
        });
    }
    out
}

#[test]
fn mutated_workloads_never_panic() {
    for src in workload_sources() {
        for variant in mutations(&src) {
            let name = variant.name.clone();
            let result = std::panic::catch_unwind(|| {
                Analysis::analyze(&[variant], AnalysisOptions::default())
            });
            assert!(result.is_ok(), "pipeline panicked on mutated workload: {name}");
        }
    }
}

#[test]
fn malformed_corpus_never_panics() {
    for (label, src) in corpus() {
        // A panic here fails the test with the corpus label in the backtrace.
        let result = std::panic::catch_unwind(|| {
            Analysis::analyze(&[src.clone()], AnalysisOptions::default())
        });
        assert!(result.is_ok(), "pipeline panicked on corpus entry: {label}");
    }
}

#[test]
fn each_corpus_entry_paired_with_a_healthy_unit_keeps_the_healthy_rows() {
    let healthy = fortran(
        "healthy.f",
        "subroutine fill(n)\n  integer n\n  real a(100)\n  common /g/ a\n  integer i\n  do i = 1, n\n    a(i) = 1.0\n  end do\nend\nprogram main\n  call fill(100)\nend\n",
    );
    for (label, src) in corpus() {
        if !src.fortran {
            // Mixing languages is fine, but keep the pairing simple: the
            // healthy Fortran unit rides along with every Fortran breakage.
            continue;
        }
        let srcs = vec![src, healthy.clone()];
        match Analysis::analyze(&srcs, AnalysisOptions::default()) {
            Ok(a) => {
                assert!(
                    a.rows.iter().any(|r| r.proc == "fill"),
                    "healthy procedure lost its rows next to: {label}"
                );
            }
            Err(e) => panic!("healthy unit dragged down by {label}: {e}"),
        }
    }
}

#[test]
fn tiny_budget_degrades_every_workload_without_failing() {
    let opts = AnalysisOptions::builder().budget(BudgetConfig::tiny()).build();
    for (label, srcs) in [
        ("fig1", vec![workloads::fig1::source()]),
        ("matrix", vec![workloads::fig10::source()]),
        ("mini_lu", workloads::mini_lu::sources()),
    ] {
        let a = Analysis::analyze(&srcs, opts)
            .unwrap_or_else(|e| panic!("{label} failed under tiny budget: {e}"));
        assert!(
            !a.rows.is_empty(),
            "{label}: budget exhaustion must still yield conservative rows"
        );
    }
}

#[test]
fn degradations_render_one_line_each() {
    let srcs = vec![
        fortran("bad.f", "program main\n  integer i\n  i = = 1\n  i = 2\nend\n"),
    ];
    let a = Analysis::analyze(&srcs, AnalysisOptions::default()).expect("degrades, not fails");
    assert!(a.degraded());
    let report = a.degradation_report();
    assert_eq!(report.lines().count(), a.degradations.len());
    for line in report.lines() {
        assert!(line.starts_with('['), "report line format: {line}");
    }
}
