//! Integration test for Case 2 (Fig. 14, Tables III/IV): the 4-D `u` array
//! in LU's `rhs`, the sub-array `copyin` advice, and the modeled Table IV
//! speedups.

use araa::{Analysis, AnalysisOptions};
use dragon::view::{scope_table, ViewOptions};
use dragon::{advisor, Project};
use gpusim::{offload_speedup, sweep_classes, LinkModel, OffloadCase};
use regions::access::AccessMode;

fn analyze() -> (Analysis, Project) {
    let srcs = workloads::mini_lu::sources();
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let project = Project::from_generated(&analysis, &srcs);
    (analysis, project)
}

/// Table III: `U | rhs.o | USE | 110 | 4 | (1:3,1:5,1:10,1:4) | 8 | double |
/// 64|65|65|5 | 1352000 | 10816000 | AD 0`.
#[test]
fn table3_u_rows() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("rhs");
    let uses: Vec<_> = rows
        .iter()
        .filter(|r| r.array == "u" && r.mode == AccessMode::Use)
        .collect();
    assert_eq!(uses.len(), 110);
    for r in &uses {
        assert_eq!(r.refs, 110);
        assert_eq!(r.file, "rhs.o");
        assert_eq!(r.dims, 4);
        assert_eq!(r.elem_size, 8);
        assert_eq!(r.data_type, "double");
        assert_eq!(r.dim_size, "64|65|65|5");
        assert_eq!(r.tot_size, 1_352_000);
        assert_eq!(r.size_bytes, 10_816_000, "about 10 MB");
        assert_eq!(r.acc_density, 0);
    }
}

/// "The regions of each dimension that have been accessed in one loop in
/// rhs.f source file are (1:3,1:5,1:10,1:4). The elements in the last
/// dimension were accessed separately."
#[test]
fn accessed_region_shape() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("rhs");
    let mut last_dim = std::collections::BTreeSet::new();
    for r in rows.iter().filter(|r| r.array == "u" && r.mode == AccessMode::Use) {
        let lbs: Vec<&str> = r.lb.split('|').collect();
        let ubs: Vec<&str> = r.ub.split('|').collect();
        assert_eq!(&lbs[..3], &["1", "1", "1"]);
        assert_eq!(&ubs[..3], &["3", "5", "10"]);
        assert_eq!(lbs[3], ubs[3], "last dimension accessed one plane at a time");
        last_dim.insert(ubs[3].to_string());
    }
    let collected: Vec<&str> = last_dim.iter().map(String::as_str).collect();
    assert_eq!(collected, ["1", "2", "3", "4"]);
}

/// The advisor emits the paper's exact directive for Case 2.
#[test]
fn copyin_directive_matches_paper() {
    let (_, project) = analyze();
    let advice = advisor::copyin_advice(&project);
    let directives: Vec<String> = advice
        .iter()
        .filter_map(|a| match a {
            advisor::Advice::SubArrayCopyin { array, proc, directive, .. }
                if array == "u" && proc == "rhs" =>
            {
                Some(directive.clone())
            }
            _ => None,
        })
        .collect();
    assert!(
        directives.contains(&"!$acc region copyin(u(1:3,1:5,1:10,1:4))".to_string()),
        "{directives:#?}"
    );
}

/// Fig. 14's display layout: expanding a 4-D row shows one line per
/// dimension.
#[test]
fn fig14_expanded_view() {
    let (_, project) = analyze();
    let base = scope_table(&project, "rhs", &ViewOptions::default());
    let expanded =
        scope_table(&project, "rhs", &ViewOptions { expand_dims: true, ..Default::default() });
    // Every multi-dim row becomes 4 display rows.
    assert!(expanded.row_count() >= base.row_count() * 3);
}

/// Table IV's shape: sub-array offload wins by a large factor for LU's `u`,
/// and the advantage grows with the problem class.
#[test]
fn table4_speedups() {
    let link = LinkModel::pcie2();
    let result = offload_speedup(link, OffloadCase::lu_case2(50));
    assert!(result.speedup() > 5.0, "huge speedup: {}", result.speedup());
    assert!(result.volume_reduction() > 2000.0);

    let sweep = sweep_classes(link, 50);
    let speedups: Vec<f64> = sweep.iter().map(|(_, r)| r.speedup()).collect();
    assert!(speedups.windows(2).all(|w| w[1] > w[0]), "{speedups:?}");
}

/// The bytes the model moves under the sub-array policy equal the bytes the
/// analysis reported for the accessed region — the tool output *drives* the
/// transfer decision.
#[test]
fn analysis_feeds_the_transfer_model() {
    let (_, project) = analyze();
    let advice = advisor::copyin_advice(&project);
    let (whole, accessed) = advice
        .iter()
        .find_map(|a| match a {
            advisor::Advice::SubArrayCopyin { array, proc, whole_bytes, accessed_bytes, .. }
                if array == "u" && proc == "rhs" =>
            {
                Some((*whole_bytes, *accessed_bytes))
            }
            _ => None,
        })
        .unwrap();
    let case = OffloadCase {
        whole_bytes: whole as u64,
        accessed_bytes: accessed as u64,
        kernel_us: 50.0,
        invocations: 50,
    };
    let r = offload_speedup(LinkModel::pcie2(), case);
    assert_eq!(r.whole_bytes_moved, 10_816_000 * 50);
    assert_eq!(r.sub_bytes_moved, 4800 * 50);
}
