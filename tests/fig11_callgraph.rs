//! Integration test for Fig. 11: the Dragon call graph of NAS LU —
//! "the LU benchmark has 24 procedures".

use araa::{Analysis, AnalysisOptions};
use dragon::Project;

fn analyze_lu() -> Analysis {
    Analysis::analyze(&workloads::mini_lu::sources(), AnalysisOptions::default())
        .unwrap()
}

#[test]
fn lu_has_exactly_24_procedures() {
    let a = analyze_lu();
    assert_eq!(a.program.procedure_count(), 24);
    assert_eq!(a.callgraph.size(), 24);
}

#[test]
fn every_fig11_procedure_is_reachable_from_main() {
    let a = analyze_lu();
    let order = a.callgraph.pre_order();
    assert_eq!(order.len(), 24, "pre-order covers the whole graph");
    // MAIN__ first.
    let first = a.program.procedure(order[0]);
    assert_eq!(ipa::callgraph::display_name(&a.program, first), "MAIN__");
    // No orphan entries besides main: everything hangs off applu.
    assert_eq!(a.callgraph.entries().len(), 1);
}

#[test]
fn caller_callee_wiring_matches_lu_structure() {
    let a = analyze_lu();
    let id = |name: &str| a.program.find_procedure(name).unwrap();
    let callees = |name: &str| -> Vec<String> {
        a.callgraph
            .callees(id(name))
            .into_iter()
            .map(|c| a.program.name_of(a.program.procedure(c).name).to_string())
            .collect()
    };
    let ssor = callees("ssor");
    for expected in ["rhs", "jacld", "blts", "jacu", "buts", "l2norm", "timer_clear",
        "timer_start", "timer_stop", "timer_read"]
    {
        assert!(ssor.contains(&expected.to_string()), "ssor must call {expected}: {ssor:?}");
    }
    let main = callees("applu");
    for expected in ["read_input", "domain", "setcoeff", "setbv", "setiv", "erhs",
        "ssor", "error", "pintgr", "verify", "print_results"]
    {
        assert!(main.contains(&expected.to_string()), "applu must call {expected}");
    }
    // exact is called from setbv, setiv and error.
    let exact = id("exact");
    assert!(a.callgraph.node(exact).callers.len() >= 3);
}

#[test]
fn dot_export_renders_all_nodes_and_edges() {
    let a = analyze_lu();
    let dot = a.callgraph.to_dot(&a.program);
    assert!(dot.contains("MAIN__"));
    for name in workloads::mini_lu::PROC_NAMES.iter().skip(1) {
        assert!(dot.contains(name), "DOT must include {name}");
    }
    let edge_count = dot.matches("->").count();
    let site_count: usize =
        (0..24).map(|i| a.callgraph.calls(whirl::ProcId(i)).len()).sum();
    assert_eq!(edge_count, site_count);
}

#[test]
fn graph_is_acyclic() {
    let a = analyze_lu();
    assert!(!a.callgraph.is_recursive());
    assert!(!a.ipa.recursion_cut);
}

#[test]
fn dgn_project_reconstructs_the_graph() {
    let a = analyze_lu();
    let doc = a.dgn_document();
    let prj = araa::dgn::DgnProject::read(&doc).unwrap();
    assert_eq!(prj.procs.len(), 24);
    assert!(prj.procs[0].display == "MAIN__");
    let loaded_dot = prj.to_dot();
    assert!(loaded_dot.contains("verify"));
    // The Dragon project view exposes the 24-procedure list plus `@`.
    let project = Project { dgn: prj, rows: a.rows.clone(), sources: Default::default() };
    assert_eq!(project.scopes().len(), 25);
}

#[test]
fn cfg_export_covers_every_procedure() {
    let a = analyze_lu();
    let cfg = a.cfg_document();
    assert_eq!(cfg.matches("digraph cfg_").count(), 24);
    assert!(cfg.contains("digraph cfg_verify"));
    assert!(cfg.contains("loop hdr"));
}
