//! Integration test for Case 1 (Figs. 12/13, Table II): the `xcr` array in
//! LU's `verify`, plus the loop-fusion payoff measured with the cache
//! simulator.

use araa::{Analysis, AnalysisOptions};
use dragon::{advisor, Project};
use memsim::{fusion_experiment, ArraySpec, CacheConfig};
use regions::access::AccessMode;

fn analyze() -> (Analysis, Project) {
    let srcs = workloads::mini_lu::sources();
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let project = Project::from_generated(&analysis, &srcs);
    (analysis, project)
}

/// Table II, row 1: `XCR | verify.o | USE | 4 | 1 | 1 | 5 | 1 | 8 | double |
/// 5 | 5 | 40 | b79edfa0 | 10`.
#[test]
fn table2_use_row() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("verify");
    let uses: Vec<_> = rows
        .iter()
        .filter(|r| r.array == "xcr" && r.mode == AccessMode::Use)
        .collect();
    assert_eq!(uses.len(), 4, "Fig. 12 shows four USE rows for xcr");
    for r in &uses {
        assert_eq!(r.file, "verify.o");
        assert_eq!(r.refs, 4);
        assert_eq!(r.dims, 1);
        assert_eq!((r.lb.as_str(), r.ub.as_str(), r.stride.as_str()), ("1", "5", "1"));
        assert_eq!(r.elem_size, 8);
        assert_eq!(r.data_type, "double");
        assert_eq!(r.dim_size, "5");
        assert_eq!(r.tot_size, 5);
        assert_eq!(r.size_bytes, 40);
        assert_eq!(r.acc_density, 10, "4 refs / 40 bytes = 10%");
    }
}

/// Table II, row 2: the FORMAL row with access density 2.
#[test]
fn table2_formal_row() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("verify");
    let formal = rows
        .iter()
        .find(|r| r.array == "xcr" && r.mode == AccessMode::Formal)
        .unwrap();
    assert_eq!(formal.refs, 1);
    assert_eq!((formal.lb.as_str(), formal.ub.as_str()), ("1", "5"));
    assert_eq!(formal.acc_density, 2, "1 ref / 40 bytes truncates to 2%");
}

/// Fig. 12 also shows `xce` rows at a *different* memory location
/// (b79edfa0 vs b79ef7e0): the formals resolve to their distinct actuals.
#[test]
fn xcr_and_xce_have_distinct_resolved_addresses() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("verify");
    let loc = |name: &str| {
        rows.iter()
            .find(|r| r.array == name && r.mode == AccessMode::Use)
            .unwrap()
            .mem_loc
            .clone()
    };
    let (xcr, xce) = (loc("xcr"), loc("xce"));
    assert_ne!(xcr, "0");
    assert_ne!(xce, "0");
    assert_ne!(xcr, xce);
}

/// The `class` hotspot of Fig. 12: char, 1 byte, DEF ×9, AD 900.
#[test]
fn class_row_has_density_900() {
    let (analysis, _) = analyze();
    let class = analysis
        .rows
        .iter()
        .find(|r| r.array == "class" && r.mode == AccessMode::Def)
        .unwrap();
    assert_eq!(class.refs, 9);
    assert_eq!(class.acc_density, 900);
    assert_eq!(class.data_type, "char");
    assert!(class.is_global);
}

/// The advisor reproduces the Fig. 13 recommendation: the two loops reading
/// `xcr(1:5)` should be merged under one `!$omp parallel do`.
#[test]
fn fusion_advice_for_verify() {
    let (_, project) = analyze();
    let advice = advisor::fusion_advice(&project);
    let hit = advice.iter().find_map(|a| match a {
        advisor::Advice::LoopFusion { array, proc, lines, region }
            if array == "xcr" && proc == "verify" =>
        {
            Some((lines.clone(), region.clone()))
        }
        _ => None,
    });
    let (lines, region) = hit.expect("fusion advice for xcr in verify");
    assert_eq!(lines.len(), 2, "two loops: {lines:?}");
    assert!(region.starts_with("1:5:1"), "{region}");
    // Rendered advice mentions the paper's directive.
    let text = advisor::render(&advice);
    assert!(text.contains("!$omp parallel do"), "{text}");
}

/// The measured payoff: with a cache the wash evicts, fusing the two loops
/// removes the second round of XCR misses — "avoiding the delay resulting
/// from fetching XCR from memory again".
#[test]
fn fusion_saves_cache_misses() {
    let xcr = ArraySpec { base: 0xb79e_dfa0, elem_bytes: 8, len: 5 };
    let report = fusion_experiment(CacheConfig::tiny(512), xcr, 0x100000, 4096);
    assert!(report.misses_saved() > 0, "{report:?}");
    assert!(report.fused.miss_ratio() < report.split.miss_ratio());
}

/// The same experiment with a big cache is neutral — fusion only matters
/// when capacity pressure exists, which the report makes visible.
#[test]
fn fusion_neutral_without_pressure() {
    let xcr = ArraySpec { base: 0xb79e_dfa0, elem_bytes: 8, len: 5 };
    let report = fusion_experiment(CacheConfig::l1(), xcr, 0x100000, 2048);
    assert_eq!(report.misses_saved(), 0);
}

/// The auto-parallelization pillar on the case-study code: `verify`'s
/// reduction loops are parallelizable with the right clauses, `blts`'s
/// sweep is not.
#[test]
fn omp_advice_on_lu() {
    let (analysis, _) = analyze();
    let advice = advisor::omp_advice(&analysis);
    let verify_dirs: Vec<&str> = advice
        .iter()
        .filter_map(|a| match a {
            advisor::Advice::OmpParallelDo { proc, directive, .. } if proc == "verify" => {
                Some(directive.as_str())
            }
            _ => None,
        })
        .collect();
    assert!(!verify_dirs.is_empty());
    assert!(
        verify_dirs.iter().any(|d| d.contains("reduction(+:")),
        "{verify_dirs:?}"
    );
    // rhs's big loop nest parallelizes; blts's sweep must not appear.
    assert!(advice.iter().any(|a| matches!(a,
        advisor::Advice::OmpParallelDo { proc, .. } if proc == "rhs")));
    assert!(!advice.iter().any(|a| matches!(a,
        advisor::Advice::OmpParallelDo { proc, .. } if proc == "blts")));
}
