//! Integration test: the 2-D C stencil through the whole pipeline —
//! regions, halo-vs-interior bounds, parallelization advice, sub-array
//! offload advice, and dynamic validation.

use araa::{Analysis, AnalysisOptions};
use dragon::{advisor, Project};
use regions::access::AccessMode;
use workloads::stencil::N;

fn analyze() -> (Analysis, Project) {
    let srcs = vec![workloads::stencil::source()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let project = Project::from_generated(&analysis, &srcs);
    (analysis, project)
}

#[test]
fn sweep_regions_are_the_halo_shifted_interior() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("sweep");
    let interior = N - 2;
    // next is written over the interior only.
    let def = rows
        .iter()
        .find(|r| r.array == "next" && r.mode == AccessMode::Def)
        .unwrap();
    assert_eq!(def.lb, "1|1");
    assert_eq!(def.ub, format!("{interior}|{interior}"));
    // grid reads reach one cell further in each direction: hull rows exist
    // for (0..n-3, 1..interior) etc.
    let grid_uses: Vec<_> = rows
        .iter()
        .filter(|r| r.array == "grid" && r.mode == AccessMode::Use)
        .collect();
    assert_eq!(grid_uses.len(), 4, "four stencil taps");
    let lbs: std::collections::BTreeSet<&str> =
        grid_uses.iter().map(|r| r.lb.as_str()).collect();
    assert!(lbs.contains("0|1"), "{lbs:?}"); // grid[i-1][j]
    assert!(lbs.contains("1|0"), "{lbs:?}"); // grid[i][j-1]
    let ubs: std::collections::BTreeSet<&str> =
        grid_uses.iter().map(|r| r.ub.as_str()).collect();
    assert!(ubs.contains(&format!("{}|{interior}", N - 1).as_str()), "{ubs:?}");
}

#[test]
fn both_kernels_parallelize() {
    let (analysis, _) = analyze();
    let advice = advisor::omp_advice(&analysis);
    for proc in ["sweep", "copyback"] {
        assert!(
            advice.iter().any(|a| matches!(a,
                advisor::Advice::OmpParallelDo { proc: p, .. } if p == proc)),
            "{proc} should be parallelizable: {advice:?}"
        );
    }
}

#[test]
fn copyin_advice_for_interior_region() {
    let (_, project) = analyze();
    let advice = advisor::copyin_advice(&project);
    let next_dir = advice.iter().find_map(|a| match a {
        advisor::Advice::SubArrayCopyin { array, proc, directive, .. }
            if array == "next" && proc == "copyback" =>
        {
            Some(directive.clone())
        }
        _ => None,
    });
    // The C sub-array syntax uses an exclusive upper bound (the paper's
    // `aarr[2:7]` convention), so interior 1..=62 renders as [1:63].
    let excl = N - 1;
    assert_eq!(
        next_dir.as_deref(),
        Some(format!("#pragma acc region for copyin(next[1:{excl}][1:{excl}])").as_str()),
        "interior-only reads should offload as a sub-array"
    );
}

#[test]
fn dynamic_execution_validates_and_converges() {
    let (analysis, _) = analyze();
    let dynamic =
        araa::dynamic::check_analysis(&analysis, "main", whirl::interp::Limits::default())
            .unwrap();
    // 4 steps × (interior sweep reads 4·62² + writes 62², copyback 2·62²)
    // plus the init writes 64².
    let expected_min = (4 * (62 * 62 * 7)) as u64;
    assert!(dynamic.total_accesses > expected_min, "{}", dynamic.total_accesses);
    // Jacobi on an all-ones grid with ones boundary stays all ones: execute
    // and peek a few cells.
    let mut interp = whirl::interp::Interp::new(
        &analysis.program,
        whirl::interp::NullSink,
        whirl::interp::Limits::default(),
    );
    interp.run("main").unwrap();
    let grid = analysis
        .program
        .symbols
        .find(analysis.program.interner.get("grid").unwrap())
        .unwrap();
    for probe in [[1i64, 1], [30, 30], [62, 62]] {
        assert_eq!(interp.peek(grid, &probe), Some(1.0), "{probe:?}");
    }
}

#[test]
fn interprocedural_rows_reach_main() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("MAIN__");
    // main sees sweep's and copyback's effects on the globals.
    assert!(rows.iter().any(|r| r.array == "next" && r.via.as_deref() == Some("sweep")));
    assert!(rows
        .iter()
        .any(|r| r.array == "grid" && r.via.as_deref() == Some("copyback")));
}
