//! Integration test for the PGAS/coarray extension (the paper's future
//! work): remote accesses are parsed, analyzed, displayed with a `Remote`
//! marker, and drive bulk-communication advice — and the interpreter still
//! executes the program (single-image semantics).

use araa::{Analysis, AnalysisOptions};
use dragon::view::{render_scope, ViewOptions};
use dragon::{advisor, Project};
use regions::access::AccessMode;

fn analyze() -> (Analysis, Project) {
    let srcs = vec![workloads::caf::source()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let project = Project::from_generated(&analysis, &srcs);
    (analysis, project)
}

#[test]
fn remote_reads_and_writes_are_flagged() {
    let (analysis, _) = analyze();
    let rows = analysis.rows_for_proc("halo");
    let x_rows: Vec<_> = rows.iter().filter(|r| r.array == "x").collect();
    let remote_use = x_rows
        .iter()
        .find(|r| r.mode == AccessMode::Use && r.remote)
        .expect("remote read of x");
    // x(i + 92)[left] for i = 1..8 → region 93:100.
    assert_eq!((remote_use.lb.as_str(), remote_use.ub.as_str()), ("93", "100"));
    let remote_def = x_rows
        .iter()
        .find(|r| r.mode == AccessMode::Def && r.remote)
        .expect("remote write of x");
    assert_eq!((remote_def.lb.as_str(), remote_def.ub.as_str()), ("1", "8"));
    // The purely local read of x stays unflagged.
    let local_use = x_rows
        .iter()
        .find(|r| r.mode == AccessMode::Use && !r.remote)
        .expect("local read of x");
    assert_eq!((local_use.lb.as_str(), local_use.ub.as_str()), ("9", "92"));
}

#[test]
fn remote_column_renders_in_dragon() {
    let (_, project) = analyze();
    let out = render_scope(&project, "halo", &ViewOptions::default());
    assert!(out.contains("Remote"), "{out}");
    assert!(out.contains("yes"), "{out}");
}

#[test]
fn bulk_communication_advice() {
    let (_, project) = analyze();
    let advice = advisor::communication_advice(&project);
    assert_eq!(advice.len(), 2, "{advice:#?}");
    let get = advice.iter().find_map(|a| match a {
        advisor::Advice::BulkCommunication { get: true, region, refs, .. } => {
            Some((region.clone(), *refs))
        }
        _ => None,
    });
    let (region, refs) = get.expect("a bulk get");
    assert!(region.starts_with("93:100"), "{region}");
    assert_eq!(refs, 1);
    let text = advisor::render(&advice);
    assert!(text.contains("aggregate into one bulk"), "{text}");
}

#[test]
fn rgn_round_trip_preserves_remote_flag() {
    let (analysis, _) = analyze();
    let doc = analysis.rgn_document();
    let rows = araa::rgn::read_rgn(&doc).unwrap();
    assert_eq!(rows, analysis.rows);
    assert!(rows.iter().any(|r| r.remote));
}

#[test]
fn interpreter_executes_single_image() {
    let (analysis, _) = analyze();
    let dynamic = araa::dynamic::run_dynamic(
        &analysis.program,
        "halo",
        whirl::interp::Limits::default(),
    )
    .unwrap();
    assert!(dynamic.total_accesses > 100);
    // Static covers dynamic on coarray programs too.
    let violations = araa::dynamic::validate_against_static(
        &analysis.program,
        &analysis.ipa,
        &dynamic,
    );
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn coindexing_non_coarray_is_rejected() {
    let bad = workloads::GenSource::fortran(
        "bad.f",
        "program p\n  double precision y(10)\n  integer i\n  do i = 1, 10\n    y(i)[2] = 0.0\n  end do\nend\n",
    );
    // Graceful degradation: the offending procedure is emptied rather than
    // failing the whole run, and the diagnostic survives in the report.
    let a = Analysis::analyze(&[bad], AnalysisOptions::default())
        .expect("a sema error in one procedure degrades, not fails");
    assert!(a.degraded());
    let report = a.degradation_report();
    assert!(report.contains("not declared as a coarray"), "{report}");
}

#[test]
fn whirl2f_renders_coindex() {
    let (analysis, _) = analyze();
    let out = whirl::emit::emit_program(&analysis.program, whirl::emit::Dialect::Fortran);
    assert!(out.contains(")[left]") || out.contains(")[1]") || out.contains("]["), "{out}");
}
