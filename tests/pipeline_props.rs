//! Property-based end-to-end tests: for randomly generated loop nests, the
//! region the pipeline reports must contain every element a concrete
//! interpretation of the loop actually touches (soundness), and for simple
//! rectangular nests it must be exact.

use araa::{Analysis, AnalysisOptions};
use proptest::prelude::*;
use regions::access::AccessMode;

/// One generated 1-D loop: `do i = lo, hi, step: a(c*i + d) = 0`.
#[derive(Debug, Clone)]
struct GenLoop {
    lo: i64,
    hi: i64,
    step: i64,
    coeff: i64,
    off: i64,
}

impl GenLoop {
    /// Indices the loop concretely touches (1-based Fortran source view).
    fn touched(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut i = self.lo;
        while i <= self.hi {
            out.push(self.coeff * i + self.off);
            i += self.step;
        }
        out
    }

    /// The array extent needed to keep every access in bounds.
    fn extent(&self) -> (i64, i64) {
        let t = self.touched();
        let lo = *t.iter().min().unwrap();
        let hi = *t.iter().max().unwrap();
        (lo.min(1), hi.max(1))
    }

    fn source(&self) -> String {
        let (elo, ehi) = self.extent();
        let sub = match (self.coeff, self.off) {
            (1, 0) => "i".to_string(),
            (1, d) if d > 0 => format!("i + {d}"),
            (1, d) => format!("i - {}", -d),
            (c, 0) => format!("{c} * i"),
            (c, d) if d > 0 => format!("{c} * i + {d}"),
            (c, d) => format!("{c} * i - {}", -d),
        };
        format!(
            "subroutine s\n  double precision a({elo}:{ehi})\n  common /g/ a\n  integer i\n  do i = {}, {}, {}\n    a({sub}) = 0.0\n  end do\nend\n",
            self.lo, self.hi, self.step
        )
    }
}

fn gen_loop() -> impl Strategy<Value = GenLoop> {
    (1i64..20, 0i64..30, 1i64..4, 1i64..4, -5i64..10).prop_map(
        |(lo, span, step, coeff, off)| GenLoop {
            lo,
            hi: lo + span,
            step,
            coeff,
            off,
        },
    )
}

fn def_bounds(src: &str) -> (Vec<i64>, Vec<i64>, Vec<i64>) {
    let analysis = Analysis::analyze(
        &[workloads::GenSource::fortran("p.f", src)],
        AnalysisOptions::default(),
    )
    .unwrap();
    let row = analysis
        .rows
        .iter()
        .find(|r| r.array == "a" && r.mode == AccessMode::Def)
        .expect("DEF row")
        .clone();
    let parse = |s: &str| -> Vec<i64> {
        s.split('|').map(|p| p.parse().unwrap()).collect()
    };
    (parse(&row.lb), parse(&row.ub), parse(&row.stride))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: every concretely-touched index lies inside the reported
    /// triplet (bounds and stride).
    #[test]
    fn reported_region_covers_concrete_execution(l in gen_loop()) {
        let (lb, ub, stride) = def_bounds(&l.source());
        let (lb, ub, stride) = (lb[0], ub[0], stride[0]);
        for idx in l.touched() {
            prop_assert!(idx >= lb && idx <= ub, "{idx} outside {lb}:{ub}");
            prop_assert_eq!((idx - lb) % stride, 0, "{} not on stride {}", idx, stride);
        }
    }

    /// Exactness for affine single-loop accesses: the reported bounds are
    /// attained and the stride is not coarser than the true gap.
    #[test]
    fn reported_region_is_tight(l in gen_loop()) {
        let (lb, ub, _stride) = def_bounds(&l.source());
        let touched = l.touched();
        let lo = *touched.iter().min().unwrap();
        let hi = *touched.iter().max().unwrap();
        prop_assert_eq!(lb[0], lo);
        prop_assert_eq!(ub[0], hi);
    }

    /// The whole pipeline is deterministic.
    #[test]
    fn analysis_is_deterministic(l in gen_loop()) {
        let a = def_bounds(&l.source());
        let b = def_bounds(&l.source());
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Synthetic whole programs analyze cleanly and produce one PASSED row
    /// per call-site array argument, at any size.
    #[test]
    fn synthetic_programs_analyze(procs in 1usize..10, arrays in 1usize..5, seed in 0u64..1000) {
        let cfg = workloads::synthetic::SynthConfig {
            procedures: procs,
            arrays,
            loop_depth: 2,
            stmts_per_loop: 3,
            seed,
        };
        let src = workloads::synthetic::generate(&cfg);
        let analysis = Analysis::analyze(&[src], AnalysisOptions::default()).unwrap();
        prop_assert_eq!(analysis.program.procedure_count(), procs + 1);
        // Every worker contributes DEF rows on some global.
        for p in 0..procs {
            let rows = analysis.rows_for_proc(&format!("work{p}"));
            prop_assert!(
                rows.iter().any(|r| r.mode == AccessMode::Def),
                "work{} has no DEF rows", p
            );
        }
    }
}
