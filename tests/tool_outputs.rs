//! Integration tests for the tool-side artifacts: the usage recipe of
//! Section V.B (compile → .dgn/.rgn/.cfg on disk → load in Dragon → view),
//! plus whirl2c/whirl2f emission over the full LU workload.

use araa::{Analysis, AnalysisOptions};
use dragon::view::{render_procedure_list, render_scope, ViewOptions};
use dragon::Project;

fn lu() -> (Analysis, Vec<workloads::GenSource>) {
    let srcs = workloads::mini_lu::sources();
    let a = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    (a, srcs)
}

#[test]
fn usage_recipe_end_to_end() {
    // Step 1-2: compile with analysis on; files are generated.
    let (analysis, srcs) = lu();
    let dir = std::env::temp_dir().join("araa_usage_recipe");
    analysis.write_project(&dir, "lu").unwrap();
    for ext in ["rgn", "dgn", "cfg"] {
        assert!(dir.join(format!("lu.{ext}")).exists(), "missing lu.{ext}");
    }
    // Step 3: invoke Dragon and load the project.
    let mut project = Project::load(&dir, "lu").unwrap();
    for s in &srcs {
        project.add_source(&s.name, &s.text);
    }
    // Step 4: view the array region analysis data.
    let list = render_procedure_list(&project);
    assert_eq!(list.lines().count(), 25);
    let view = render_scope(&project, "verify", &ViewOptions::default());
    assert!(view.contains("xcr"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rgn_document_is_stable_across_runs() {
    let (a1, _) = lu();
    let (a2, _) = lu();
    assert_eq!(a1.rgn_document(), a2.rgn_document());
}

#[test]
fn whirl2f_emits_all_lu_procedures() {
    let (analysis, _) = lu();
    let out = whirl::emit::emit_program(&analysis.program, whirl::emit::Dialect::Fortran);
    for name in workloads::mini_lu::PROC_NAMES {
        assert!(
            out.contains(&format!("subroutine {name}")),
            "whirl2f missing {name}"
        );
    }
    assert!(out.contains("do "), "loops survive round-trip");
    assert!(out.contains("call rhs"), "calls survive round-trip");
}

#[test]
fn whirl2c_emits_matrix_source() {
    let srcs = vec![workloads::fig10::source()];
    let a = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let out = whirl::emit::emit_program(&a.program, whirl::emit::Dialect::C);
    assert!(out.contains("void main()"));
    assert!(out.contains("aarr["));
}

#[test]
fn grep_feature_finds_u_statements_across_files() {
    let (analysis, srcs) = lu();
    let project = Project::from_generated(&analysis, &srcs);
    let hits = dragon::browse::grep_array(&project, "u");
    let files: std::collections::BTreeSet<&str> =
        hits.iter().map(|h| h.file.as_str()).collect();
    assert!(files.contains("rhs.f"));
    assert!(files.contains("setiv.f"));
    assert!(files.len() >= 4, "{files:?}");
}

#[test]
fn parallel_analysis_gives_identical_artifacts() {
    let srcs = workloads::mini_lu::sources();
    let serial = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let threaded = Analysis::analyze(
        &srcs,
        AnalysisOptions::builder().threads(8).build(),
    )
    .unwrap();
    assert_eq!(serial.rgn_document(), threaded.rgn_document());
    assert_eq!(serial.dgn_document(), threaded.dgn_document());
}

#[test]
fn view_renders_every_scope_without_panicking() {
    let (analysis, srcs) = lu();
    let project = Project::from_generated(&analysis, &srcs);
    for scope in project.scopes() {
        let out = render_scope(&project, &scope, &ViewOptions::default());
        assert!(out.starts_with("Procedure/Scope:"), "{scope}");
    }
}
