//! Thread-count determinism: the exported `.rgn`/`.dgn`/`.cfg` artifacts
//! must be byte-identical whether the IPL phase runs serially or fanned out
//! over worker threads, on every workload source in the repo. The parallel
//! path merges per-worker results by procedure index, so any ordering leak
//! shows up here as a diff.

use araa::{Analysis, AnalysisOptions, AnalysisSession};
use workloads::synthetic::SynthConfig;
use workloads::GenSource;

fn artifacts(sources: &[GenSource], threads: usize) -> (String, String, String) {
    let a = Analysis::analyze(sources, AnalysisOptions::builder().threads(threads).build())
        .expect("analysis succeeds");
    (a.rgn_document(), a.dgn_document(), a.cfg_document())
}

fn assert_thread_invariant(label: &str, sources: &[GenSource]) {
    let (rgn1, dgn1, cfg1) = artifacts(sources, 1);
    let (rgn8, dgn8, cfg8) = artifacts(sources, 8);
    assert_eq!(rgn1, rgn8, "{label}: .rgn differs between 1 and 8 threads");
    assert_eq!(dgn1, dgn8, "{label}: .dgn differs between 1 and 8 threads");
    assert_eq!(cfg1, cfg8, "{label}: .cfg differs between 1 and 8 threads");
}

#[test]
fn mini_lu_artifacts_are_thread_invariant() {
    assert_thread_invariant("mini_lu", &workloads::mini_lu::sources());
}

#[test]
fn single_file_workloads_are_thread_invariant() {
    assert_thread_invariant("fig1", &[workloads::fig1::source()]);
    assert_thread_invariant("fig10", &[workloads::fig10::source()]);
    assert_thread_invariant("caf", &[workloads::caf::source()]);
    assert_thread_invariant("stencil", &[workloads::stencil::source()]);
}

#[test]
fn synthetic_family_is_thread_invariant() {
    let cfg = SynthConfig { procedures: 24, ..SynthConfig::default() };
    assert_thread_invariant("synthetic", &[workloads::synthetic::generate(&cfg)]);
}

#[test]
fn warm_session_updates_are_thread_invariant() {
    let run = |threads: usize| {
        let mut sources = workloads::mini_lu::sources();
        let opts = AnalysisOptions::builder().threads(threads).build();
        let mut session = AnalysisSession::new(opts);
        session.update(sources.clone()).expect("cold update");
        let rhs = sources.iter_mut().find(|s| s.name == "rhs.f").expect("rhs.f");
        rhs.text = rhs.text.replace("do k = 1, 10", "do k = 1, 7");
        session.update(sources).expect("warm update");
        let a = session.analysis().expect("analysis kept");
        (a.rgn_document(), a.dgn_document(), a.cfg_document())
    };
    let serial = run(1);
    let threaded = run(8);
    assert_eq!(serial.0, threaded.0, "warm .rgn differs between 1 and 8 threads");
    assert_eq!(serial.1, threaded.1, "warm .dgn differs between 1 and 8 threads");
    assert_eq!(serial.2, threaded.2, "warm .cfg differs between 1 and 8 threads");
}

/// The observability contract rides the same invariant: metric *counts*
/// (counters and gauges — exact event tallies, not timings) must not
/// depend on the worker fan-out, just like the artifacts they describe.
#[test]
fn metric_counts_are_thread_invariant() {
    use support::obs::{self, ClockKind, Collector};
    let count_lines = |doc: &str| -> Vec<String> {
        doc.lines()
            .filter(|l| {
                l.starts_with("{\"type\":\"counter\"") || l.starts_with("{\"type\":\"gauge\"")
            })
            .map(str::to_string)
            .collect()
    };
    let run = |threads: usize| {
        let c = Collector::new(ClockKind::Logical);
        {
            let _g = obs::attach(c.clone());
            Analysis::analyze(
                &workloads::mini_lu::sources(),
                AnalysisOptions::builder().threads(threads).build(),
            )
            .expect("analysis succeeds");
        }
        count_lines(&c.metrics_jsonl())
    };
    assert_eq!(run(1), run(8), "counter/gauge lines differ between 1 and 8 threads");
}
