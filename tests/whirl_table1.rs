//! Integration test for Table I: "The components of WHIRL Node used in our
//! tool" — every listed field must exist with the documented semantics, on a
//! tree produced by the real frontend.

use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
use whirl::{Lang, Opr};

fn lu_verify_tree() -> (whirl::Program, whirl::ProcId) {
    let srcs: Vec<SourceFile> = workloads::mini_lu::sources()
        .iter()
        .map(|g| SourceFile::new(&g.name, &g.text, Lang::Fortran))
        .collect();
    let p = compile_to_h(&srcs, DEFAULT_LAYOUT_BASE).unwrap();
    let id = p.find_procedure("verify").unwrap();
    (p, id)
}

#[test]
fn prev_next_pointers() {
    let (p, id) = lu_verify_tree();
    let tree = &p.procedure(id).tree;
    // Find a Block with several statements and check the chain.
    let block = tree
        .iter()
        .find(|&n| tree.node(n).operator == Opr::Block && tree.node(n).kids.len() >= 3)
        .expect("a multi-statement block");
    let kids = &tree.node(block).kids;
    assert_eq!(tree.node(kids[0]).prev, None);
    assert_eq!(tree.node(kids[0]).next, Some(kids[1]));
    assert_eq!(tree.node(kids[1]).prev, Some(kids[0]));
    assert_eq!(tree.node(*kids.last().unwrap()).next, None);
}

#[test]
fn linenum_offset_and_st_idx() {
    let (p, id) = lu_verify_tree();
    let tree = &p.procedure(id).tree;
    for wn in tree.iter() {
        let node = tree.node(wn);
        if node.operator == Opr::Istore {
            assert!(node.linenum > 0, "stores carry source positions");
        }
        if node.operator == Opr::Lda {
            let st = node.st_idx.expect("LDA names a symbol");
            // ST_IDX resolves through the symbol table.
            let _ = p.symbols.get(st);
        }
    }
}

#[test]
fn array_node_fields() {
    let (p, id) = lu_verify_tree();
    let tree = &p.procedure(id).tree;
    let xcr_sym = p.interner.get("xcr").unwrap();
    let arr = tree
        .iter()
        .find(|&n| {
            let node = tree.node(n);
            node.operator == Opr::Array
                && tree
                    .node(node.array_base_kid())
                    .st_idx
                    .is_some_and(|st| p.symbols.get(st).name == xcr_sym)
        })
        .expect("verify accesses xcr");
    let node = tree.node(arr);
    // kid_count: "number of kids for n-ary operators"; num_dim is
    // "inferred from kid-count shifted right by 1".
    assert_eq!(node.kid_count(), 2 * node.num_dim() + 1);
    // elem_size: "element size for array" (xcr is double).
    assert_eq!(node.elem_size, 8);
    // array_base: the base kid names the array symbol.
    let base = tree.node(node.array_base_kid());
    assert!(base.st_idx.is_some());
    // array_dim and array_index kids exist per dimension.
    for d in 0..node.num_dim() {
        let _ = node.array_dim_kid(d);
        let _ = node.array_index_kid(d);
    }
}

#[test]
fn const_val_on_intconst() {
    let (p, id) = lu_verify_tree();
    let tree = &p.procedure(id).tree;
    let any_const = tree
        .iter()
        .find(|&n| tree.node(n).operator == Opr::Intconst)
        .expect("constants exist");
    // "64-bit integer constant."
    let _: i64 = tree.node(any_const).const_val;
}

#[test]
fn address_formula_on_real_access() {
    // u(2, 3, 4, 1) in H order (reversed, zero-based): indices (0,3,2,1)
    // over dims (5,65,65,64); address = base + 8*(0*65*65*64 + 3*65*64 +
    // 2*64 + 1).
    let src = "\
subroutine s
  double precision u(64, 65, 65, 5)
  common /cvar/ u
  u(2, 3, 4, 1) = 0.0
end
";
    let p = compile_to_h(
        &[SourceFile::new("s.f", src, Lang::Fortran)],
        DEFAULT_LAYOUT_BASE,
    )
    .unwrap();
    let id = p.find_procedure("s").unwrap();
    let tree = &p.procedure(id).tree;
    let arr = tree
        .iter()
        .find(|&n| tree.node(n).operator == Opr::Array)
        .unwrap();
    let addr = tree
        .array_address(arr, 0, &|wn| tree.eval_const(wn))
        .expect("all-constant access");
    let expected = 8 * (3 * 65 * 64 + 2 * 64 + 1);
    assert_eq!(addr, expected);
}

#[test]
fn operator_and_res_fields() {
    let (p, id) = lu_verify_tree();
    let tree = &p.procedure(id).tree;
    let iload = tree
        .iter()
        .find(|&n| tree.node(n).operator == Opr::Iload)
        .expect("reads exist");
    assert_eq!(tree.node(iload).res, whirl::DataType::F8, "xcr loads are double");
}
