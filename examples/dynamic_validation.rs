//! Dynamic array region information (the paper's future-work item) — and
//! the strongest validation of the whole pipeline: execute the program in
//! the WHIRL interpreter, record the *actual* per-(procedure, array, mode)
//! regions, and check that the static summaries cover every access.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example dynamic_validation
//! ```

use araa::dynamic::{render_report, run_dynamic, validate_against_static};
use araa::{Analysis, AnalysisOptions};
use whirl::interp::Limits;

fn main() {
    // 1. The matrix.c example.
    let srcs = vec![workloads::fig10::source()];
    let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
    let dynamic = run_dynamic(&analysis.program, "main", Limits::default()).unwrap();
    println!("== dynamic regions: matrix.c ==");
    print!("{}", render_report(&analysis.program, &dynamic));
    println!("({} element accesses executed)\n", dynamic.total_accesses);

    let violations = validate_against_static(&analysis.program, &analysis.ipa, &dynamic);
    println!(
        "static-covers-dynamic check: {} violation(s)\n",
        violations.len()
    );
    assert!(violations.is_empty());

    // 2. The mini-LU benchmark at a small grid (6³, 2 SSOR steps).
    let lu = workloads::mini_lu::sources_scaled(workloads::mini_lu::LuConfig::tiny());
    let analysis = Analysis::analyze(&lu, AnalysisOptions::default()).unwrap();
    let dynamic = run_dynamic(&analysis.program, "applu", Limits::default()).unwrap();
    println!("== dynamic regions: mini-LU (grid 6, 2 steps) ==");
    print!("{}", render_report(&analysis.program, &dynamic));
    println!("({} element accesses executed)", dynamic.total_accesses);

    let violations = validate_against_static(&analysis.program, &analysis.ipa, &dynamic);
    println!("\nstatic-covers-dynamic check: {} violation(s)", violations.len());
    for v in &violations {
        println!("  VIOLATION: {}", v.detail);
    }
    assert!(violations.is_empty(), "static analysis must cover execution");
    println!("\nevery executed access lies inside the statically reported regions ✓");
}
