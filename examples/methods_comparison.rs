//! Fig. 2 in numbers: the efficiency-vs-accuracy trade-off of the four
//! array-analysis methods (classic, reference-list, bounded regular
//! sections, convex regions) over characteristic access patterns.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example methods_comparison
//! ```

use regions::access::AccessMode;
use regions::methods::{
    enumerate_region, false_positive_rate, ClassicMethod, ConvexMethod, RefListMethod,
    RsdMethod, SummaryMethod,
};
use regions::{Triplet, TripletRegion};
use std::collections::BTreeSet;

/// One comparison workload: name, array extent, summarized references.
type Workload = (&'static str, Vec<(i64, i64)>, Vec<TripletRegion>);

fn main() {
    let workloads: Vec<Workload> = vec![
        (
            "dense half of a 1-D array",
            vec![(0, 99)],
            vec![TripletRegion::new(vec![Triplet::constant(0, 49, 1)])],
        ),
        (
            "stride-7 sweep",
            vec![(0, 99)],
            vec![TripletRegion::new(vec![Triplet::constant(0, 98, 7)])],
        ),
        (
            "two distant blocks",
            vec![(0, 99)],
            vec![
                TripletRegion::new(vec![Triplet::constant(0, 9, 1)]),
                TripletRegion::new(vec![Triplet::constant(90, 99, 1)]),
            ],
        ),
        (
            "2-D sub-block with stride",
            vec![(0, 19), (0, 19)],
            vec![TripletRegion::new(vec![
                Triplet::constant(2, 6, 1),
                Triplet::constant(3, 9, 2),
            ])],
        ),
    ];

    println!("Fig. 2 reproduced: summary storage (bytes) and false-positive rate\n");
    for (name, extent, refs) in &workloads {
        let mut truth: BTreeSet<Vec<i64>> = BTreeSet::new();
        for r in refs {
            enumerate_region(r, &mut |p| {
                truth.insert(p.to_vec());
            });
        }

        let mut classic = ClassicMethod::new(extent.clone());
        let mut reflist = RefListMethod::new();
        let mut rsd = RsdMethod::new();
        let mut convex = ConvexMethod::new();
        let methods: Vec<&mut dyn SummaryMethod> =
            vec![&mut classic, &mut reflist, &mut rsd, &mut convex];

        println!("— {name} ({} touched elements)", truth.len());
        println!("  {:<18} {:>10} {:>12}", "method", "bytes", "FP rate");
        for m in methods {
            for r in refs {
                m.add_reference(AccessMode::Use, r);
            }
            let fp = false_positive_rate(&*m, AccessMode::Use, &truth, extent);
            println!("  {:<18} {:>10} {:>11.1}%", m.name(), m.storage_bytes(), fp * 100.0);
        }
        println!();
    }

    println!("reading: accuracy grows left→right (classic → convex → RSD → ref-list),");
    println!("storage grows the same way — the Fig. 2 diagonal.");
}
