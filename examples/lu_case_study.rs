//! The Section V.B case study on the NAS-LU-style workload: the Fig. 11
//! call graph, Case 1 (`xcr` in `verify`, Table II) with the measured
//! loop-fusion payoff, and the hotspot scan by access density.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example lu_case_study
//! ```

use araa::{Analysis, AnalysisOptions};
use dragon::view::{render_scope, ViewOptions};
use dragon::{advisor, Project};
use memsim::{fusion_experiment, ArraySpec, CacheConfig};
use regions::access::AccessMode;

fn main() {
    let sources = workloads::mini_lu::sources();
    let analysis = Analysis::analyze(&sources, AnalysisOptions::default())
        .expect("mini-LU analyzes");
    let project = Project::from_generated(&analysis, &sources);

    // Fig. 11: the 24-procedure call graph, as Graphviz DOT.
    println!(
        "== call graph: {} procedures, entry MAIN__ ==",
        analysis.callgraph.size()
    );
    print!("{}", analysis.callgraph.to_dot(&analysis.program));

    // Case 1: select `verify` in the procedure list.
    let opts = ViewOptions { find: Some("xcr".into()), ..Default::default() };
    print!(
        "\n== array analysis graph, scope `verify` (xcr highlighted) ==\n{}",
        render_scope(&project, "verify", &opts)
    );

    // Table II, reconstructed from the rows.
    let rows = analysis.rows_for_proc("verify");
    println!("\n== Table II ==");
    println!("Array | File | Mode | Ref | Dim | LB | UB | S | Elem | type | dim | tot | bytes | Acc_density");
    for r in rows.iter().filter(|r| r.array == "xcr") {
        if r.mode == AccessMode::Use || r.mode == AccessMode::Formal {
            println!(
                "XCR | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {}",
                r.file, r.mode, r.refs, r.dims, r.lb, r.ub, r.stride, r.elem_size,
                r.data_type, r.dim_size, r.tot_size, r.size_bytes, r.acc_density
            );
        }
    }

    // The browse view of verify.f (Fig. 13).
    let browse =
        dragon::browse::render_source_with_highlights(&project, "verify.f", "xcr", false)
            .unwrap();
    print!("\n== verify.f with xcr accesses marked ==\n{browse}");

    // The fusion advice and its measured payoff in the cache simulator.
    let advice = advisor::fusion_advice(&project);
    print!("\n== advice ==\n{}", advisor::render(&advice));

    let xcr = ArraySpec { base: 0xb79e_dfa0, elem_bytes: 8, len: 5 };
    println!("\n== cache simulation: split vs fused verify loops ==");
    for (label, cap, wash) in [
        ("tiny 512B cache, 4KiB between loops", 512u64, 4096u64),
        ("L1-sized cache, 4KiB between loops", 32 * 1024, 4096),
        ("tiny 512B cache, 64KiB between loops", 512, 65_536),
    ] {
        let cfg = if cap == 32 * 1024 {
            CacheConfig::l1()
        } else {
            CacheConfig::tiny(cap)
        };
        let report = fusion_experiment(cfg, xcr, 0x10_0000, wash);
        println!(
            "{label}: split misses {}, fused misses {}, saved {}",
            report.split.misses,
            report.fused.misses,
            report.misses_saved()
        );
    }

    // Hotspot scan: the paper defines access density to "identify the
    // hotspot arrays in the program".
    println!("\n== top access densities ==");
    let mut by_density: Vec<_> = analysis.rows.iter().collect();
    by_density.sort_by_key(|r| std::cmp::Reverse(r.acc_density));
    for r in by_density.iter().take(5) {
        println!(
            "{} in {} ({}): AD {} ({} refs / {} bytes)",
            r.array, r.proc, r.mode, r.acc_density, r.refs, r.size_bytes
        );
    }
}
