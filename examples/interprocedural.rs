//! The Fig. 1 walk-through: interprocedural array region analysis proving
//! that two procedure calls can safely run in parallel.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example interprocedural
//! ```

use araa::{Analysis, AnalysisOptions};
use dragon::view::{render_scope, ViewOptions};
use dragon::{advisor, Project};

fn main() {
    let sources = vec![workloads::fig1::source()];
    println!("== source (fig1.f) ==\n{}", sources[0].text);

    let analysis = Analysis::analyze(&sources, AnalysisOptions::default())
        .expect("fig1 analyzes");
    let project = Project::from_generated(&analysis, &sources);

    // The caller's view of `a` after IPA propagation: the IDEF from P1 and
    // the IUSE from P2 with the paper's exact triplet regions.
    print!("== scope `add` ==\n{}", render_scope(&project, "add", &ViewOptions::default()));
    for row in analysis.rows_for_proc("add") {
        if let Some(via) = &row.via {
            println!(
                "{} of {}({}:{}) via call to {via} at line {}",
                row.display_mode(),
                row.array,
                row.lb,
                row.ub,
                row.line
            );
        }
    }

    // The independence verdict.
    let advice = advisor::parallel_call_advice(&analysis);
    println!("\n== parallelization ==");
    if advice.is_empty() {
        println!("no independent call pairs found");
    } else {
        print!("{}", advisor::render(&advice));
    }

    // Negative control: overlap the regions and watch the verdict flip.
    let overlap = vec![workloads::fig1::overlapping_variant()];
    let analysis2 = Analysis::analyze(&overlap, AnalysisOptions::default())
        .expect("variant analyzes");
    let advice2 = advisor::parallel_call_advice(&analysis2);
    println!(
        "\nwith P2 moved to (50:150,50:150): {} parallel pair(s) — regions overlap",
        advice2.len()
    );
    assert!(advice2.is_empty());
}
