//! Quickstart: analyze the paper's `matrix.c` example (Fig. 10) and print
//! the array analysis graph (Fig. 9), plus the advisor's suggestions.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example quickstart
//! ```

use araa::{Analysis, AnalysisOptions};
use dragon::view::{render_procedure_list, render_scope, ViewOptions};
use dragon::{advisor, Project};

fn main() {
    // 1. The input program: `int aarr[20]` defined twice and used three
    //    times (one strided read-only loop).
    let sources = vec![workloads::fig10::source()];
    println!("== source (matrix.c) ==\n{}", sources[0].text);

    // 2. Compile + analyze: frontend → H WHIRL → call graph → IPL/IPA →
    //    Algorithm 1 extraction.
    let analysis = Analysis::analyze(&sources, AnalysisOptions::default())
        .expect("matrix.c analyzes");
    println!(
        "analyzed {} procedure(s), extracted {} region rows",
        analysis.program.procedure_count(),
        analysis.rows.len()
    );

    // 3. Load into Dragon and render the array analysis graph (Fig. 9):
    //    every aarr row with bounds, strides, sizes and access densities.
    let project = Project::from_generated(&analysis, &sources);
    print!("\n== procedures ==\n{}", render_procedure_list(&project));
    let opts = ViewOptions { find: Some("aarr".into()), ..Default::default() };
    print!("\n== array analysis graph (@ globals) ==\n{}", render_scope(&project, "@", &opts));

    // 4. Browse the source with access highlighting (Fig. 7).
    let browse =
        dragon::browse::render_source_with_highlights(&project, "matrix.c", "aarr", false)
            .unwrap();
    print!("\n== matrix.c with aarr accesses marked ==\n{browse}");

    // 5. The advisor reproduces both of the paper's recommendations:
    //    shrink `aarr[20]` → `aarr[8]`, and insert
    //    `#pragma acc region for copyin(aarr[2:7])` before the last loop.
    let advice = advisor::advise(&analysis, &project);
    print!("\n== advice ==\n{}", advisor::render(&advice));

    // 6. Persist the project files the real tool writes.
    let dir = std::env::temp_dir().join("araa_quickstart");
    analysis.write_project(&dir, "matrix").expect("write project");
    println!("\nwrote {}/matrix.{{rgn,dgn,cfg}}", dir.display());
}
