//! Case 2 end-to-end: the analysis finds the accessed sub-region of LU's
//! 10 MB array `u`, the advisor emits the paper's `copyin` directive, and
//! the transfer model regenerates Table IV's speedups.
//!
//! Run with:
//! ```text
//! cargo run -p bench --example gpu_offload
//! ```

use araa::{Analysis, AnalysisOptions};
use dragon::{advisor, Project};
use gpusim::{offload_speedup, sweep_classes, LinkModel, OffloadCase};
use regions::access::AccessMode;

fn main() {
    let sources = workloads::mini_lu::sources();
    let analysis = Analysis::analyze(&sources, AnalysisOptions::default())
        .expect("mini-LU analyzes");
    let project = Project::from_generated(&analysis, &sources);

    // The Fig. 14 rows: u is a 4-D double, 64|65|65|5, 10 816 000 bytes,
    // used 110 times over (1:3, 1:5, 1:10, 1:4).
    let u_row = analysis
        .rows_for_proc("rhs")
        .into_iter()
        .find(|r| r.array == "u" && r.mode == AccessMode::Use)
        .expect("u used in rhs")
        .clone();
    println!("== analysis row for u in rhs ==");
    println!(
        "u | {} | USE | refs {} | dims {} | ({}):({}) | {} bytes | AD {}",
        u_row.file, u_row.refs, u_row.dims, u_row.lb, u_row.ub, u_row.size_bytes,
        u_row.acc_density
    );

    // The advisor's directive (the paper's exact clause).
    let advice = advisor::copyin_advice(&project);
    for a in &advice {
        if let advisor::Advice::SubArrayCopyin {
            array, proc, directive, whole_bytes, accessed_bytes,
        } = a
        {
            if array == "u" && proc == "rhs" {
                println!("\n== advice ==");
                println!("insert before the rhs loop nest: {directive}");
                println!(
                    "moves {accessed_bytes} bytes instead of {whole_bytes} ({}x less)",
                    whole_bytes / accessed_bytes.max(&1)
                );
            }
        }
    }

    // Table IV: whole-array vs sub-array offload, modeled.
    let link = LinkModel::pcie2();
    println!("\n== Table IV (modeled: PCIe-2-like link, 50 µs kernel, 50 steps) ==");
    println!("{:<8} {:>14} {:>14} {:>10} {:>12}", "class", "whole (ms)", "sub (ms)", "speedup", "vol. ratio");
    for (class, r) in sweep_classes(link, 50) {
        println!(
            "{:<8} {:>14.2} {:>14.2} {:>9.1}x {:>11.0}x",
            class,
            r.whole_us / 1e3,
            r.sub_us / 1e3,
            r.speedup(),
            r.volume_reduction()
        );
    }

    // Sensitivity: the benefit shrinks as the kernel dominates.
    println!("\n== kernel-time sensitivity (class A array) ==");
    for kernel_us in [10.0, 50.0, 500.0, 5000.0] {
        let case = OffloadCase { kernel_us, ..OffloadCase::lu_case2(50) };
        let r = offload_speedup(link, case);
        println!("kernel {kernel_us:>7.0} µs → speedup {:>6.1}x", r.speedup());
    }
}
