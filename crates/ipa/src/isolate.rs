//! Per-procedure fault isolation for the IPL phase.
//!
//! IPL summaries are mutually independent, so one procedure's failure never
//! needs to take the analysis down: each summarization runs under its own
//! [`budget`] scope and `catch_unwind`. A panicking procedure is replaced
//! by a conservative summary (whole-array `DEF`+`USE` over every array it
//! could possibly touch — globals and its array formals), a
//! budget-exhausted procedure keeps its already-widened summary, and either
//! way the incident is reported as an [`IplFailure`] so drivers can emit a
//! degradation report instead of dying.

use crate::local::{summarize_procedure, whole_array_record, ProcSummary};
use parking_lot::Mutex;
use regions::access::{AccessMode, Precision};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use support::budget::{self, BudgetConfig};
use whirl::{ProcId, Program, StClass, TyKind};

/// One contained per-procedure failure.
#[derive(Debug)]
pub struct IplFailure {
    /// The procedure whose summary degraded.
    pub proc: ProcId,
    /// `"ipl"` for a contained panic, `"budget"` for budget exhaustion.
    pub stage: &'static str,
    /// Human-readable cause (panic message or exhausted budget name).
    pub detail: String,
}

/// All summaries plus the failures contained while computing them.
#[derive(Debug)]
pub struct IplOutcome {
    /// One summary per procedure (indexable by `ProcId`), every entry
    /// usable — failed procedures hold conservative fallbacks.
    pub summaries: Vec<ProcSummary>,
    /// Contained failures, in procedure order.
    pub failures: Vec<IplFailure>,
}

/// Renders a `catch_unwind` payload as text.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Summarizes one procedure under a budget scope and panic isolation.
pub fn summarize_proc_guarded(
    program: &Program,
    id: ProcId,
    config: BudgetConfig,
) -> (ProcSummary, Option<IplFailure>) {
    // Raw (undecorated) name, matching `store.prime` and `extract.rows`,
    // so one procedure aggregates to one profile row.
    let _span = support::obs::span_arg("ipa.ipl", || {
        program.name_of(program.procedure(id).name).to_string()
    });
    let scope = budget::enter(config);
    let result = catch_unwind(AssertUnwindSafe(|| summarize_procedure(program, id)));
    let exhausted = budget::exhaustion();
    drop(scope);
    match result {
        Ok(summary) => {
            let failure = exhausted.map(|label| IplFailure {
                proc: id,
                stage: "budget",
                detail: format!("{label} budget exhausted; regions widened"),
            });
            (summary, failure)
        }
        Err(payload) => {
            let detail = panic_message(payload.as_ref());
            let failure = IplFailure { proc: id, stage: "ipl", detail };
            (conservative_summary(program, id), Some(failure))
        }
    }
}

/// The fallback summary for a procedure whose analysis panicked: it may
/// define and use *every element* of every array visible to it (globals and
/// its own array formals). Grossly imprecise, but sound — and it keeps the
/// procedure's rows in the `.rgn` output.
pub fn conservative_summary(program: &Program, id: ProcId) -> ProcSummary {
    let proc = program.procedure(id);
    let mut accesses = Vec::new();
    for (st, entry) in program.symbols.iter() {
        if !matches!(program.types.get(entry.ty).kind, TyKind::Array { .. }) {
            continue;
        }
        let is_formal = proc.formals.contains(&st);
        if entry.class != StClass::Global && !is_formal {
            continue;
        }
        if is_formal {
            let mut f = whole_array_record(
                program,
                proc,
                st,
                entry.ty,
                AccessMode::Formal,
                proc.linenum,
            );
            f.approx = true;
            f.precision = f.precision.worst(Precision::AffineApprox);
            accesses.push(f);
        }
        for mode in [AccessMode::Def, AccessMode::Use] {
            let mut rec =
                whole_array_record(program, proc, st, entry.ty, mode, proc.linenum);
            rec.approx = true;
            rec.precision = rec.precision.worst(Precision::AffineApprox);
            accesses.push(rec);
        }
    }
    ProcSummary { accesses, index_facts: Default::default() }
}

/// Serial isolated IPL over every procedure.
pub fn summarize_all_isolated(program: &Program, config: BudgetConfig) -> IplOutcome {
    let mut summaries = Vec::with_capacity(program.procedure_count());
    let mut failures = Vec::new();
    for id in program.procedures.indices() {
        let (s, f) = summarize_proc_guarded(program, id, config);
        summaries.push(s);
        failures.extend(f);
    }
    IplOutcome { summaries, failures }
}

/// Isolated IPL over an arbitrary subset of procedures — the incremental
/// session's dirty set. Results come back in `ids` order, one entry per
/// requested procedure. Uses the same worker structure as the full parallel
/// path; with one thread (or one id) it runs serially.
pub fn summarize_subset_isolated(
    program: &Program,
    ids: &[ProcId],
    threads: usize,
    config: BudgetConfig,
) -> Vec<(ProcId, ProcSummary, Option<IplFailure>)> {
    let n = ids.len();
    if threads <= 1 || n <= 1 {
        return ids
            .iter()
            .map(|&id| {
                let (s, f) = summarize_proc_guarded(program, id, config);
                (id, s, f)
            })
            .collect();
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    type Slot = (usize, ProcSummary, Option<IplFailure>);
    let merged: Mutex<Vec<Slot>> = Mutex::new(Vec::with_capacity(n));
    // Observability, deadline, and memory-budget contexts are
    // thread-scoped (like budgets); capture the spawning thread's so worker
    // spans land in the same trace and workers observe the same request
    // deadline and charge the same allocation pool.
    let obs_ctx = support::obs::current();
    let deadline_ctx = support::deadline::current();
    let memory_ctx = support::memory::current();

    let joined = crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let _obs = obs_ctx.clone().map(support::obs::attach);
                let _deadline = deadline_ctx.clone().map(support::deadline::enter);
                let _memory = memory_ctx.clone().map(support::memory::enter);
                let mut local: Vec<Slot> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (s, f) = summarize_proc_guarded(program, ids[i], config);
                    local.push((i, s, f));
                }
                merged.lock().extend(local);
            });
        }
    });
    if let Err(payload) = joined {
        // Only infrastructure panics (not analysis ones — those are caught
        // per procedure) can reach here; surface them unchanged.
        std::panic::resume_unwind(payload);
    }

    let mut indexed = merged.into_inner();
    indexed.sort_by_key(|(i, _, _)| *i);
    indexed
        .into_iter()
        .map(|(i, s, f)| (ids[i], s, f))
        .collect()
}

/// Parallel isolated IPL: the worker structure of
/// [`crate::parallel::summarize_all_parallel`] with per-procedure budget
/// scopes (budgets are thread-local, so each worker enters its own) and
/// panic containment.
pub fn summarize_all_parallel_isolated(
    program: &Program,
    threads: usize,
    config: BudgetConfig,
) -> IplOutcome {
    let n = program.procedure_count();
    if threads <= 1 || n <= 1 {
        return summarize_all_isolated(program, config);
    }
    let ids: Vec<ProcId> = program.procedures.indices().collect();
    let mut summaries = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for (_, s, f) in summarize_subset_isolated(program, &ids, threads, config) {
        summaries.push(s);
        failures.extend(f);
    }
    IplOutcome { summaries, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn program() -> Program {
        let src = "\
program main
  real a(8)
  common /g/ a
  integer i
  do i = 1, 8
    a(i) = 0.0
  end do
  call q
end
subroutine q
  real a(8)
  common /g/ a
  a(1) = 1.0
end
";
        compile_to_h(&[SourceFile::new("t.f", src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap()
    }

    #[test]
    fn clean_program_has_no_failures() {
        let p = program();
        let out = summarize_all_isolated(&p, BudgetConfig::default());
        assert_eq!(out.summaries.len(), p.procedure_count());
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert!(out.summaries.iter().all(|s| s.accesses.iter().all(|r| !r.approx)));
    }

    #[test]
    fn tiny_budget_reports_budget_failures_not_errors() {
        let p = program();
        let out = summarize_all_isolated(
            &p,
            BudgetConfig { fm_steps: 0, ..BudgetConfig::default() },
        );
        assert_eq!(out.summaries.len(), p.procedure_count());
        // Summaries still exist for every procedure; any failure is a
        // budget report, not a loss of coverage.
        assert!(out.failures.iter().all(|f| f.stage == "budget"));
    }

    #[test]
    fn parallel_isolated_matches_serial() {
        let p = program();
        let serial = summarize_all_isolated(&p, BudgetConfig::default());
        let par = summarize_all_parallel_isolated(&p, 4, BudgetConfig::default());
        assert_eq!(serial.summaries.len(), par.summaries.len());
        for (a, b) in serial.summaries.iter().zip(&par.summaries) {
            assert_eq!(a.accesses.len(), b.accesses.len());
        }
        assert_eq!(serial.failures.len(), par.failures.len());
    }

    #[test]
    fn conservative_summary_claims_visible_arrays() {
        let p = program();
        let q = p.find_procedure("q").unwrap();
        let s = conservative_summary(&p, q);
        assert!(!s.accesses.is_empty(), "global `a` must be claimed");
        assert!(s.accesses.iter().all(|r| r.approx));
        assert!(s.accesses.iter().any(|r| r.mode == AccessMode::Def));
        assert!(s.accesses.iter().any(|r| r.mode == AccessMode::Use));
    }

    #[test]
    fn panic_message_renders_both_payload_kinds() {
        let e = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(e.as_ref()), "boom 7");
        let e = std::panic::catch_unwind(|| panic!("static")).unwrap_err();
        assert_eq!(panic_message(e.as_ref()), "static");
    }
}
