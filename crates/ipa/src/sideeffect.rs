//! Procedure side effects and the parallelization-safety test.
//!
//! "Side effects of procedure calls can partially be handled by showing how
//! the array parameters are being accessed. This necessity becomes critical
//! when these procedures are invoked inside loops." Fig. 1's payoff: P1
//! defines `A(1:100,1:100)`, P2 uses `A(101:200,101:200)`, the regions are
//! disjoint, therefore "both procedures can concurrently and safely be
//! parallelized".
//!
//! This module exposes that judgement: the *effect set* of a call site (the
//! caller-visible DEF/USE regions of the callee, translated), and pairwise
//! independence between call sites.

use crate::callgraph::{CallGraph, CallSite};
use crate::index_facts::IndexArrayFact;
use crate::local::AccessRecord;
use crate::propagate::IpaResult;
use regions::access::{AccessMode, Precision};
use regions::triplet::Triplet;
use std::collections::BTreeMap;
use support::idx::Idx;
use whirl::{ProcId, Program, StIdx};

/// The caller-visible effects of one call site.
#[derive(Debug)]
pub struct CallEffects {
    /// The call site.
    pub callee: ProcId,
    /// Translated DEF/USE records (caller array identities).
    pub records: Vec<AccessRecord>,
}

/// Collects the effects of every call site in `caller`, using the propagated
/// summary (records tagged `from_call`).
pub fn call_effects(
    _program: &Program,
    cg: &CallGraph,
    ipa: &IpaResult,
    caller: ProcId,
) -> Vec<CallEffects> {
    let summary = ipa.summary(caller);
    cg.calls(caller)
        .iter()
        .map(|site: &CallSite| CallEffects {
            callee: site.callee,
            records: summary
                .accesses
                .iter()
                .filter(|r| r.from_call == Some(site.callee) && r.line == site.line)
                .cloned()
                .collect(),
        })
        .collect()
}

/// Why two call sites were judged dependent.
#[derive(Debug, Clone, PartialEq)]
pub struct Conflict {
    /// The array both sides touch.
    pub array: StIdx,
    /// Mode on the first site.
    pub mode_a: AccessMode,
    /// Mode on the second site.
    pub mode_b: AccessMode,
}

/// Tests whether two effect sets are independent; returns the first conflict
/// otherwise. Two records conflict when they touch the same array, at least
/// one is a DEF, and their regions are not provably disjoint.
///
/// `facts` are the globally-validated index-array facts ([`IpaResult::
/// index_facts`]). Records carrying interval-recovered (or worse) regions
/// never prove disjointness through region math — the recovered bounds are
/// over-approximations of an indirection the solver could not see through —
/// but a pair of `A(idx(..))` accesses through the same *injective*,
/// write-once index array is independent whenever their subscript domains
/// are disjoint subsets of the range the facts were derived over.
pub fn independent(
    a: &CallEffects,
    b: &CallEffects,
    facts: &BTreeMap<StIdx, IndexArrayFact>,
) -> Result<(), Conflict> {
    for ra in &a.records {
        for rb in &b.records {
            if ra.array != rb.array {
                continue;
            }
            if !ra.mode.moves_data() || !rb.mode.moves_data() {
                continue;
            }
            if ra.mode == AccessMode::Use && rb.mode == AccessMode::Use {
                continue;
            }
            let affine = ra.precision <= Precision::AffineApprox
                && rb.precision <= Precision::AffineApprox;
            let disjoint = if affine {
                match (&ra.convex, &rb.convex) {
                    (Some(ca), Some(cb)) => ca.disjoint_from(cb),
                    _ => ra.region.disjoint_from(&rb.region) == Some(true),
                }
            } else {
                injective_index_disjoint(ra, rb, facts)
            };
            if !disjoint {
                return Err(Conflict {
                    array: ra.array,
                    mode_a: ra.mode,
                    mode_b: rb.mode,
                });
            }
        }
    }
    Ok(())
}

/// The injective-index escape hatch: both records reach the array through
/// the same index array `idx`, `idx` is constant-after-init and injective
/// (globally validated), both subscript domains sit inside the region the
/// fact covers, the offsets match, and the domains are disjoint — then
/// `idx`'s injectivity carries the domains' disjointness through to the
/// accessed elements.
fn injective_index_disjoint(
    ra: &AccessRecord,
    rb: &AccessRecord,
    facts: &BTreeMap<StIdx, IndexArrayFact>,
) -> bool {
    let (Some(va), Some(vb)) = (&ra.via_index, &rb.via_index) else { return false };
    if va.index_array != vb.index_array || va.offset != vb.offset {
        return false;
    }
    let Some(fact) = facts.get(&va.index_array) else { return false };
    if !fact.injective || !fact.constant_after_init {
        return false;
    }
    let Some(init) = &fact.init_region else { return false };
    let ([da], [db], [init]) = (&va.domain.dims[..], &vb.domain.dims[..], &init.dims[..])
    else {
        return false;
    };
    const_subset(da, init) && const_subset(db, init) && da.disjoint_from(db) == Some(true)
}

/// `a ⊆ b` for constant triplets: `b`'s lattice (anchor + stride) covers
/// every point of `a`'s.
pub(crate) fn const_subset(a: &Triplet, b: &Triplet) -> bool {
    let (Some((alo, ahi, astep)), Some((blo, bhi, bstep))) = (a.as_const(), b.as_const())
    else {
        return false;
    };
    if alo > ahi {
        return true; // empty
    }
    blo <= alo
        && ahi <= bhi
        && bstep != 0
        && astep % bstep == 0
        && (alo - blo) % bstep == 0
}

/// A parallelization opportunity the Dragon advisor reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelPair {
    /// The enclosing (caller) procedure.
    pub caller: ProcId,
    /// First callee.
    pub callee_a: ProcId,
    /// Second callee.
    pub callee_b: ProcId,
    /// Line of the first call.
    pub line_a: u32,
    /// Line of the second call.
    pub line_b: u32,
}

/// Scans every procedure for adjacent call pairs that can run concurrently —
/// the "Visual feedback on procedures that can be executed in parallel"
/// feature.
pub fn find_parallel_pairs(
    program: &Program,
    cg: &CallGraph,
    ipa: &IpaResult,
) -> Vec<ParallelPair> {
    let mut out = Vec::new();
    for caller in (0..cg.size()).map(ProcId::from_usize) {
        let effects = call_effects(program, cg, ipa, caller);
        for i in 0..effects.len() {
            for j in (i + 1)..effects.len() {
                if effects[i].callee == effects[j].callee {
                    continue;
                }
                if independent(&effects[i], &effects[j], &ipa.index_facts).is_ok() {
                    let sites = cg.calls(caller);
                    out.push(ParallelPair {
                        caller,
                        callee_a: effects[i].callee,
                        callee_b: effects[j].callee,
                        line_a: sites[i].line,
                        line_b: sites[j].line,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::analyze;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn build(src: &str) -> (Program, CallGraph, IpaResult) {
        let p = compile_to_h(
            &[SourceFile::new("t.f", src, Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        )
        .unwrap();
        let (cg, r) = analyze(&p);
        (p, cg, r)
    }

    fn fig1_like(p2_lo: i64, p2_hi: i64) -> String {
        String::from(
            "\
subroutine add(m)
  integer, dimension(1:200, 1:200) :: a
  common /g/ a
  integer :: m, j
  do j = 1, m
    call p1(a, j)
    call p2(a, j)
  end do
end
subroutine p1(x, k)
  integer, dimension(1:200, 1:200) :: x
  integer :: k, i, j
  do i = 1, 100
    do j = 1, 100
      x(i, j) = 0
    end do
  end do
end
subroutine p2(x, k)
  integer, dimension(1:200, 1:200) :: x
  integer :: k, i, j, t
  do i = {lo}, {hi}
    do j = {lo}, {hi}
      t = x(i, j)
    end do
  end do
end
",
        )
        .replace("{lo}", &p2_lo.to_string())
        .replace("{hi}", &p2_hi.to_string())
    }

    #[test]
    fn fig1_calls_are_parallelizable() {
        let (p, cg, r) = build(&fig1_like(101, 200));
        let pairs = find_parallel_pairs(&p, &cg, &r);
        assert_eq!(pairs.len(), 1, "P1/P2 are independent");
        let add = p.find_procedure("add").unwrap();
        assert_eq!(pairs[0].caller, add);
    }

    #[test]
    fn overlapping_regions_block_parallelization() {
        let (p, cg, r) = build(&fig1_like(50, 150));
        let pairs = find_parallel_pairs(&p, &cg, &r);
        assert!(pairs.is_empty(), "P2 reads what P1 writes");
    }

    #[test]
    fn use_use_pairs_are_parallel() {
        let (p, cg, r) = build(
            "\
subroutine add
  integer a(100)
  common /g/ a
  call r1
  call r2
end
subroutine r1
  integer a(100)
  common /g/ a
  integer i, t
  do i = 1, 100
    t = a(i)
  end do
end
subroutine r2
  integer a(100)
  common /g/ a
  integer i, t
  do i = 1, 100
    t = a(i)
  end do
end
",
        );
        let pairs = find_parallel_pairs(&p, &cg, &r);
        assert_eq!(pairs.len(), 1, "two readers never conflict");
    }

    #[test]
    fn conflict_reports_array_and_modes() {
        let (p, cg, r) = build(&fig1_like(1, 100));
        let add = p.find_procedure("add").unwrap();
        let effects = call_effects(&p, &cg, &r, add);
        let err = independent(&effects[0], &effects[1], &r.index_facts).unwrap_err();
        assert_eq!(err.mode_a, AccessMode::Def);
        assert_eq!(err.mode_b, AccessMode::Use);
        let name = p.name_of(p.symbols.get(err.array).name);
        assert_eq!(name, "a");
    }

    /// `p1`/`p2` both write `a(idx(i))` over disjoint halves of an
    /// injective, write-once permutation — only the index-array fact can
    /// prove them independent; plain region math sees two unbounded blobs.
    fn gather_pair(p2_lo: i64, p2_hi: i64) -> String {
        String::from(
            "\
subroutine init
  integer idx(100)
  common /gi/ idx
  integer i
  do i = 1, 100
    idx(i) = 101 - i
  end do
end
subroutine driver
  call p1
  call p2
end
subroutine p1
  integer idx(100)
  real a(100)
  common /gi/ idx
  common /ga/ a
  integer i
  do i = 1, 50
    a(idx(i)) = 0.0
  end do
end
subroutine p2
  integer idx(100)
  real a(100)
  common /gi/ idx
  common /ga/ a
  integer i
  do i = {lo}, {hi}
    a(idx(i)) = 1.0
  end do
end
",
        )
        .replace("{lo}", &p2_lo.to_string())
        .replace("{hi}", &p2_hi.to_string())
    }

    #[test]
    fn injective_index_writes_over_disjoint_domains_are_parallel() {
        let (p, cg, r) = build(&gather_pair(51, 100));
        let idx_st = (0..p.symbols.len())
            .map(|i| StIdx(i as u32))
            .find(|&st| p.name_of(p.symbols.get(st).name) == "idx")
            .unwrap();
        let fact = r.index_facts.get(&idx_st).expect("validated fact for idx");
        assert!(fact.injective && fact.constant_after_init);
        let pairs = find_parallel_pairs(&p, &cg, &r);
        let driver = p.find_procedure("driver").unwrap();
        assert!(
            pairs.iter().any(|pr| pr.caller == driver),
            "injective disjoint-domain gather writes must parallelize: {pairs:?}"
        );
    }

    #[test]
    fn injective_index_writes_over_overlapping_domains_conflict() {
        let (p, cg, r) = build(&gather_pair(50, 100));
        let pairs = find_parallel_pairs(&p, &cg, &r);
        let driver = p.find_procedure("driver").unwrap();
        assert!(
            pairs.iter().all(|pr| pr.caller != driver),
            "overlapping index domains must not parallelize: {pairs:?}"
        );
    }

    #[test]
    fn interval_records_alone_never_prove_disjointness() {
        // Same shape but the index array is written twice (second store
        // kills injectivity validation), so the escape hatch must not fire
        // even though interval regions might look disjoint.
        let src = gather_pair(51, 100).replace(
            "    idx(i) = 101 - i\n",
            "    idx(i) = 101 - i\n    idx(i) = i\n",
        );
        let (p, cg, r) = build(&src);
        let pairs = find_parallel_pairs(&p, &cg, &r);
        let driver = p.find_procedure("driver").unwrap();
        assert!(pairs.iter().all(|pr| pr.caller != driver));
    }

    #[test]
    fn effects_are_attached_to_sites() {
        let (p, cg, r) = build(&fig1_like(101, 200));
        let add = p.find_procedure("add").unwrap();
        let effects = call_effects(&p, &cg, &r, add);
        assert_eq!(effects.len(), 2);
        assert_eq!(effects[0].records.len(), 1);
        assert_eq!(effects[1].records.len(), 1);
    }
}
