//! Rebasing cached summaries onto a freshly compiled program.
//!
//! A [`ProcSummary`] is full of indices minted by the program it was
//! computed for: `StIdx` of the accessed array, interned `Symbol`s inside
//! the region [`Space`]s, and `ProcId` in `from_call`. After a re-parse all
//! of those may shift even for procedures whose content is unchanged (an
//! unrelated file adding one symbol renumbers every later entry). Rebasing
//! rewrites a cached summary onto the new program's tables using the
//! [`SymbolMaps`] produced by a verified correspondence
//! ([`whirl::hash::procs_correspond`]) plus a name-keyed `ProcId` map.
//!
//! Rebasing is all-or-nothing per summary: any record that mentions a
//! symbol outside the maps makes the whole rebase fail (`None`), and the
//! caller must recompute the summary from scratch. Failure is always the
//! sound direction — a rebased summary is only returned when every index
//! was positively re-identified.

use crate::local::{AccessRecord, ProcSummary};
use regions::space::{Space, VarKind};
use regions::ConvexRegion;
use std::collections::BTreeMap;
use support::intern::Symbol;
use whirl::hash::SymbolMaps;
use whirl::ProcId;

/// Rewrites `sum` onto the program described by `maps` (old→new symbol
/// bindings) and `proc_map` (old→new `ProcId`, keyed by procedure name
/// equality). Returns `None` when any referenced symbol or procedure has no
/// mapping — the caller must then treat the procedure as dirty.
pub fn rebase_summary(
    sum: &ProcSummary,
    maps: &SymbolMaps,
    proc_map: &BTreeMap<ProcId, ProcId>,
) -> Option<ProcSummary> {
    let accesses = sum
        .accesses
        .iter()
        .map(|r| rebase_record(r, maps, proc_map))
        .collect::<Option<Vec<_>>>()?;
    let index_facts = sum
        .index_facts
        .iter()
        .map(|(st, f)| Some((*maps.st.get(st)?, f.clone())))
        .collect::<Option<BTreeMap<_, _>>>()?;
    Some(ProcSummary { accesses, index_facts })
}

fn rebase_record(
    rec: &AccessRecord,
    maps: &SymbolMaps,
    proc_map: &BTreeMap<ProcId, ProcId>,
) -> Option<AccessRecord> {
    let array = *maps.st.get(&rec.array)?;
    let space = rebase_space(&rec.space, &maps.sym)?;
    let convex = match &rec.convex {
        Some(c) => Some(ConvexRegion::new(
            rebase_space(c.space(), &maps.sym)?,
            c.system().clone(),
        )),
        None => None,
    };
    let from_call = match rec.from_call {
        Some(p) => Some(*proc_map.get(&p)?),
        None => None,
    };
    // The domain of an indirect index is constant, so only the index
    // array's symbol needs translating.
    let via_index = match &rec.via_index {
        Some(v) => Some(crate::local::IndirectIndex {
            index_array: *maps.st.get(&v.index_array)?,
            domain: v.domain.clone(),
            offset: v.offset,
        }),
        None => None,
    };
    Some(AccessRecord {
        array,
        mode: rec.mode,
        region: rec.region.clone(),
        convex,
        space,
        line: rec.line,
        from_call,
        remote: rec.remote,
        approx: rec.approx,
        precision: rec.precision,
        via_index,
    })
}

/// Rebuilds a [`Space`] with every named variable's `Symbol` translated.
/// Variables keep their positions, so the `VarId`s inside regions and
/// constraint systems remain valid unchanged.
fn rebase_space(space: &Space, sym: &BTreeMap<Symbol, Symbol>) -> Option<Space> {
    let mut out = Space::new();
    for (_, kind) in space.iter() {
        let k = match kind {
            VarKind::Dim(d) => VarKind::Dim(d),
            VarKind::Loop(s) => VarKind::Loop(*sym.get(&s)?),
            VarKind::Sym(s) => VarKind::Sym(*sym.get(&s)?),
        };
        out.add(k);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use support::idx::Idx;
    use whirl::hash::procs_correspond;
    use whirl::Lang;

    const WORK: &str = "\
subroutine work(m)
  real a(16)
  common /c/ a
  integer m, i
  do i = 1, m
    a(i) = 0.0
  end do
end
";

    const PAD: &str = "\
subroutine pad
  real q(4)
  common /qq/ q
  q(1) = 1.0
end
";

    const PAD_V2: &str = "\
subroutine pad
  real q(4), r(4)
  common /qq/ q
  common /rr/ r
  q(2) = 1.0
  r(1) = 2.0
end
";

    #[test]
    fn rebase_survives_index_shift_and_preserves_regions() {
        let compile = |pad: &str| {
            compile_to_h(
                &[
                    SourceFile::new("p.f", pad, Lang::Fortran),
                    SourceFile::new("w.f", WORK, Lang::Fortran),
                ],
                DEFAULT_LAYOUT_BASE,
            )
            .unwrap()
        };
        let p1 = compile(PAD);
        let p2 = compile(PAD_V2);
        let w1 = p1.find_procedure("work").unwrap();
        let w2 = p2.find_procedure("work").unwrap();
        let maps = procs_correspond(&p1, w1, &p2, w2).expect("work unchanged");
        let proc_map = BTreeMap::from([(w1, w2)]);

        let old_sum = &crate::local::summarize_all(&p1)[w1.as_usize()];
        let rebased = rebase_summary(old_sum, &maps, &proc_map).expect("rebase");
        let fresh = &crate::local::summarize_all(&p2)[w2.as_usize()];

        assert_eq!(rebased.accesses.len(), fresh.accesses.len());
        for (a, b) in rebased.accesses.iter().zip(&fresh.accesses) {
            assert_eq!(a.array, b.array, "array StIdx must be the new program's");
            assert_eq!(a.mode, b.mode);
            assert_eq!(a.region.to_string(), b.region.to_string());
            assert_eq!(a.line, b.line);
            // Space symbols must resolve in the *new* interner to the same
            // names as the fresh computation.
            for ((_, ka), (_, kb)) in a.space.iter().zip(b.space.iter()) {
                match (ka, kb) {
                    (VarKind::Loop(x), VarKind::Loop(y))
                    | (VarKind::Sym(x), VarKind::Sym(y)) => {
                        assert_eq!(p2.name_of(x), p2.name_of(y));
                    }
                    (VarKind::Dim(x), VarKind::Dim(y)) => assert_eq!(x, y),
                    other => panic!("kind mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn rebase_fails_on_unmapped_symbol() {
        let p = compile_to_h(
            &[SourceFile::new("w.f", WORK, Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        )
        .unwrap();
        let w = p.find_procedure("work").unwrap();
        let sum = &crate::local::summarize_all(&p)[w.as_usize()];
        assert!(!sum.accesses.is_empty());
        // Empty maps: nothing resolves, rebase must refuse.
        let empty = SymbolMaps::default();
        assert!(rebase_summary(sum, &empty, &BTreeMap::new()).is_none());
    }
}
