//! IPA: the main interprocedural propagation phase.
//!
//! "Then, the main IPA module gathers all the IPL summary files to perform
//! interprocedural analysis." We walk the call graph bottom-up; at every
//! call site the callee's summary is *translated* into the caller:
//!
//! - records on **global** arrays copy through unchanged;
//! - records on **formal** arrays map to the caller's actual array (the
//!   Creusillet-style formal→actual mapping — our formals alias whole
//!   arrays, so the element mapping is the identity and only the array's
//!   identity and the symbolic parameters change);
//! - symbolic bounds naming the callee's scalar formals are substituted with
//!   the caller's actual argument expression when it is a constant,
//!   otherwise the bound degrades to `MESSY` (the same conservative fallback
//!   the paper documents for non-linearizable bounds).
//!
//! Translated records keep their original mode but carry `from_call`, which
//! Dragon renders as the interprocedural `IDEF`/`IUSE` annotations of Fig. 1.

use crate::callgraph::{CallGraph, CallSite};
use crate::index_facts::IndexArrayFact;
use crate::local::{AccessRecord, ProcSummary};
use regions::access::Precision;
use regions::space::{Space, VarKind};
use regions::triplet::{Bound, Triplet, TripletRegion};
use std::collections::BTreeMap;
use support::idx::Idx;
use whirl::{Opr, ProcId, Program, StClass, StIdx};

/// The result of IPA: per-procedure summaries including propagated effects.
#[derive(Debug)]
pub struct IpaResult {
    /// One summary per procedure (indexable by `ProcId`).
    pub summaries: Vec<ProcSummary>,
    /// True when the program was recursive and propagation stopped at one
    /// level (records from recursive cycles are not fix-pointed).
    pub recursion_cut: bool,
    /// Index-array facts that survive *global* validation: the fact's
    /// owning procedure is the only one that writes the array, so
    /// injectivity/value-range reasoning is safe program-wide.
    pub index_facts: BTreeMap<StIdx, IndexArrayFact>,
}

impl IpaResult {
    /// The summary for `id`.
    pub fn summary(&self, id: ProcId) -> &ProcSummary {
        &self.summaries[id.as_usize()]
    }
}

/// Keeps only index-array facts whose owning procedure is the array's sole
/// writer: one procedure carries the fact, and no *other* procedure has a
/// direct `DEF` or `PASSED` record on the array. Cheap (one scan of the
/// summaries) and derived fresh, so incremental re-propagation can simply
/// recompute it.
pub fn validated_index_facts(summaries: &[ProcSummary]) -> BTreeMap<StIdx, IndexArrayFact> {
    let mut owner: BTreeMap<StIdx, Vec<usize>> = BTreeMap::new();
    for (i, s) in summaries.iter().enumerate() {
        for st in s.index_facts.keys() {
            owner.entry(*st).or_default().push(i);
        }
    }
    let mut out = BTreeMap::new();
    for (st, owners) in owner {
        let [only] = owners[..] else { continue };
        let foreign_writer = summaries.iter().enumerate().any(|(i, s)| {
            i != only
                && s.accesses.iter().any(|r| {
                    r.array == st
                        && r.from_call.is_none()
                        && matches!(
                            r.mode,
                            regions::access::AccessMode::Def
                                | regions::access::AccessMode::Passed
                        )
                })
        });
        if !foreign_writer {
            out.insert(st, summaries[only].index_facts[&st].clone());
        }
    }
    out
}

/// Runs propagation over already-computed local summaries.
pub fn propagate(
    program: &Program,
    cg: &CallGraph,
    local: Vec<ProcSummary>,
) -> IpaResult {
    let mut summaries = local;
    let affected = vec![true; cg.size()];
    let recursion_cut = propagate_subset(program, cg, &mut summaries, &affected);
    let index_facts = validated_index_facts(&summaries);
    IpaResult { summaries, recursion_cut, index_facts }
}

/// Propagates callee effects into exactly the procedures marked in
/// `affected` (a mask indexable by `ProcId`, typically from
/// [`CallGraph::ancestor_closure`]).
///
/// On entry, every *affected* slot of `summaries` must hold that
/// procedure's local-only summary, and every *unaffected* slot its full
/// already-propagated summary. This is exactly the incremental contract:
/// a clean procedure's propagated summary depends only on its descendants'
/// summaries, which the ancestor closure guarantees are also clean.
/// With an all-`true` mask this is a full cold propagation.
///
/// Returns the recursion-cut flag.
pub fn propagate_subset(
    program: &Program,
    cg: &CallGraph,
    summaries: &mut [ProcSummary],
    affected: &[bool],
) -> bool {
    let _span = support::obs::span("ipa.propagate");
    support::obs::add(
        support::obs::Counter::PropagateInvalidated,
        affected.iter().filter(|&&a| a).count() as u64,
    );
    let recursion_cut = cg.is_recursive();
    for id in cg.bottom_up() {
        if !affected[id.as_usize()] {
            continue; // clean: its propagated summary is already in place
        }
        // Collect translations first (the callee summaries are complete
        // because of the bottom-up order, recursion aside).
        let mut translated: Vec<AccessRecord> = Vec::new();
        for site in cg.calls(id) {
            if site.callee == id {
                continue; // self-recursion: cut
            }
            let callee_sum = &summaries[site.callee.as_usize()];
            let callee_proc = program.procedure(site.callee);
            for rec in &callee_sum.accesses {
                if !rec.mode.moves_data() {
                    continue; // FORMAL/PASSED are per-procedure bookkeeping
                }
                if let Some(t) = translate_record(program, rec, site, &callee_proc.formals)
                {
                    translated.push(t);
                }
            }
        }
        summaries[id.as_usize()].accesses.extend(translated);
    }
    recursion_cut
}

/// Translates one callee record to the caller's view at `site`.
/// Returns `None` when the record concerns a callee-local array (invisible
/// to the caller).
fn translate_record(
    program: &Program,
    rec: &AccessRecord,
    site: &CallSite,
    callee_formals: &[StIdx],
) -> Option<AccessRecord> {
    support::faultpoint::hit("ipa::translate");
    let entry = program.symbols.get(rec.array);
    let (target_array, set_from_call) = match entry.class {
        StClass::Global => (rec.array, true),
        StClass::Formal => {
            // Which formal position?
            let pos = callee_formals.iter().position(|&f| f == rec.array)?;
            let actual = *site.array_actuals.get(pos)?;
            (actual?, true)
        }
        _ => return None, // callee-local array: no caller-visible effect
    };

    // Once the translation budget is dry, keep the record (soundness needs
    // the callee's effect to stay visible) but degrade every bound to MESSY
    // instead of doing substitution work.
    if !support::budget::charge_translation() {
        let dims = rec.region.dims.iter().map(|_| Triplet::messy()).collect();
        return Some(AccessRecord {
            array: target_array,
            mode: rec.mode,
            region: TripletRegion::new(dims),
            convex: None,
            space: rec.space.clone(),
            line: site.line,
            from_call: set_from_call.then_some(site.callee),
            remote: rec.remote,
            approx: true,
            precision: Precision::Unbounded,
            via_index: rec.via_index.clone(),
        });
    }

    // Substitute symbolic formal scalars with the caller's actual constants.
    let subst = build_scalar_substitution(program, site, callee_formals);
    let region = translate_region(&rec.region, &rec.space, &subst);
    let convex = if region.is_const() {
        let bounds: Option<Vec<(i64, i64)>> = region
            .dims
            .iter()
            .map(|t| t.as_const().map(|(lo, hi, _)| (lo, hi)))
            .collect();
        bounds.map(|b| regions::convex::box_region(&b))
    } else {
        rec.convex.clone().filter(|_| subst.is_empty())
    };

    // Translation may degrade symbolic bounds to MESSY: reflect that in the
    // precision so downstream consumers never over-trust the copy.
    let has_unknown = region
        .dims
        .iter()
        .any(|t| {
            [&t.lb, &t.ub]
                .iter()
                .any(|b| matches!(b, Bound::Messy | Bound::Unprojected))
        });
    let precision = if has_unknown {
        rec.precision.worst(Precision::Unbounded)
    } else {
        rec.precision
    };
    Some(AccessRecord {
        array: target_array,
        mode: rec.mode,
        region,
        convex,
        space: rec.space.clone(),
        line: site.line,
        from_call: set_from_call.then_some(site.callee),
        remote: rec.remote,
        approx: rec.approx,
        precision,
        via_index: rec.via_index.clone(),
    })
}

/// Maps callee scalar-formal *names* to constant actual values at `site`.
fn build_scalar_substitution(
    program: &Program,
    site: &CallSite,
    callee_formals: &[StIdx],
) -> BTreeMap<support::Symbol, i64> {
    let caller_proc = program.procedure(site.caller);
    let call_node = caller_proc.tree.node(site.wn);
    debug_assert_eq!(call_node.operator, Opr::Call);
    let mut map = BTreeMap::new();
    for (pos, &formal) in callee_formals.iter().enumerate() {
        let Some(&parm) = call_node.kids.get(pos) else { continue };
        let value = caller_proc.tree.node(parm).kids[0];
        if let Some(c) = caller_proc.tree.eval_const(value) {
            let name = program.symbols.get(formal).name;
            map.insert(name, c);
        }
    }
    map
}

/// Rewrites a region's symbolic bounds under a name→constant substitution;
/// bounds that still mention unknown symbols become `MESSY`.
fn translate_region(
    region: &TripletRegion,
    space: &Space,
    subst: &BTreeMap<support::Symbol, i64>,
) -> TripletRegion {
    let translate_bound = |b: &Bound| -> Bound {
        match b {
            Bound::Const(c) => Bound::Const(*c),
            Bound::Messy => Bound::Messy,
            Bound::Unprojected => Bound::Unprojected,
            Bound::Expr(e) => {
                let mut acc = e.constant_term();
                for (v, coeff) in e.terms() {
                    match space.kind(v) {
                        VarKind::Sym(name) => match subst.get(&name) {
                            Some(&val) => acc += coeff * val,
                            None => return Bound::Messy,
                        },
                        _ => return Bound::Messy,
                    }
                }
                Bound::Const(acc)
            }
        }
    };
    TripletRegion::new(
        region
            .dims
            .iter()
            .map(|t| {
                Triplet::new(
                    translate_bound(&t.lb),
                    translate_bound(&t.ub),
                    translate_bound(&t.stride),
                )
            })
            .collect(),
    )
}

/// Convenience: IPL + IPA in one call (serial).
pub fn analyze(program: &Program) -> (CallGraph, IpaResult) {
    let cg = CallGraph::build(program);
    let local = crate::local::summarize_all(program);
    let result = propagate(program, &cg, local);
    (cg, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use regions::access::AccessMode;
    use whirl::Lang;

    fn build(src: &str) -> (Program, CallGraph, IpaResult) {
        let p = compile_to_h(&[SourceFile::new("t.f", src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap();
        let (cg, r) = analyze(&p);
        (p, cg, r)
    }

    /// The paper's Fig. 1 program.
    const FIG1: &str = "\
subroutine add(m)
  integer, dimension(1:200, 1:200) :: a
  common /g/ a
  integer :: m, j
  do j = 1, m
    call p1(a, j)
    call p2(a, j)
  end do
end
subroutine p1(x, k)
  integer, dimension(1:200, 1:200) :: x
  integer :: k, i, j
  do i = 1, 100
    do j = 1, 100
      x(i, j) = 0
    end do
  end do
end
subroutine p2(x, k)
  integer, dimension(1:200, 1:200) :: x
  integer :: k, i, j, t
  do i = 101, 200
    do j = 101, 200
      t = x(i, j)
    end do
  end do
end
";

    #[test]
    fn fig1_regions_propagate_to_caller() {
        let (p, _cg, r) = build(FIG1);
        let add = p.find_procedure("add").unwrap();
        let sum = r.summary(add);
        let a_sym = p.interner.get("a").unwrap();
        let a_st = p.symbols.find(a_sym).unwrap();
        let p1 = p.find_procedure("p1").unwrap();
        let p2 = p.find_procedure("p2").unwrap();

        let idef: Vec<_> = sum
            .for_array(a_st)
            .filter(|rec| rec.mode == AccessMode::Def && rec.from_call == Some(p1))
            .collect();
        assert_eq!(idef.len(), 1, "one propagated DEF from p1");
        // Zero-based: (1:100,1:100) → (0:99,0:99) in both (row-major) dims.
        assert_eq!(idef[0].region.to_string(), "(0:99:1, 0:99:1)");

        let iuse: Vec<_> = sum
            .for_array(a_st)
            .filter(|rec| rec.mode == AccessMode::Use && rec.from_call == Some(p2))
            .collect();
        assert_eq!(iuse.len(), 1);
        assert_eq!(iuse[0].region.to_string(), "(100:199:1, 100:199:1)");
    }

    #[test]
    fn fig1_propagated_regions_are_independent() {
        let (p, _cg, r) = build(FIG1);
        let add = p.find_procedure("add").unwrap();
        let sum = r.summary(add);
        let recs: Vec<_> = sum
            .accesses
            .iter()
            .filter(|rec| rec.from_call.is_some())
            .collect();
        assert_eq!(recs.len(), 2);
        let d = &recs[0];
        let u = &recs[1];
        assert_eq!(d.region.disjoint_from(&u.region), Some(true));
    }

    #[test]
    fn callee_local_arrays_do_not_propagate() {
        let (p, _cg, r) = build(
            "\
program main
  call work
end
subroutine work
  real tmp(10)
  integer i
  do i = 1, 10
    tmp(i) = 0.0
  end do
end
",
        );
        let main = p.find_procedure("main").unwrap();
        assert!(
            r.summary(main).accesses.iter().all(|rec| rec.from_call.is_none()),
            "local tmp must stay inside work"
        );
    }

    #[test]
    fn constant_actual_substitutes_into_symbolic_bound() {
        let (p, _cg, r) = build(
            "\
program main
  real a(50)
  common /g/ a
  call fill(a, 7)
end
subroutine fill(x, n)
  real x(50)
  integer n, i
  do i = 1, n
    x(i) = 0.0
  end do
end
",
        );
        let main = p.find_procedure("main").unwrap();
        let sum = r.summary(main);
        let a_st = p.symbols.find(p.interner.get("a").unwrap()).unwrap();
        let def = sum
            .for_array(a_st)
            .find(|rec| rec.mode == AccessMode::Def && rec.from_call.is_some())
            .expect("propagated DEF");
        // x(1:n) with n=7 → zero-based 0:6.
        assert_eq!(def.region.to_string(), "(0:6:1)");
    }

    #[test]
    fn unknown_actual_degrades_to_messy() {
        let (p, _cg, r) = build(
            "\
program main
  real a(50)
  common /g/ a
  integer k
  call fill(a, k)
end
subroutine fill(x, n)
  real x(50)
  integer n, i
  do i = 1, n
    x(i) = 0.0
  end do
end
",
        );
        let main = p.find_procedure("main").unwrap();
        let a_st = p.symbols.find(p.interner.get("a").unwrap()).unwrap();
        let def = r
            .summary(main)
            .for_array(a_st)
            .find(|rec| rec.mode == AccessMode::Def && rec.from_call.is_some())
            .unwrap();
        assert_eq!(def.region.dims[0].ub, Bound::Messy);
        assert_eq!(def.region.dims[0].lb.as_const(), Some(0));
    }

    #[test]
    fn transitive_propagation_two_levels() {
        let (p, _cg, r) = build(
            "\
program main
  call mid
end
subroutine mid
  call leaf
end
subroutine leaf
  real g(9)
  common /c/ g
  integer i
  do i = 1, 9
    g(i) = 1.0
  end do
end
",
        );
        let main = p.find_procedure("main").unwrap();
        let g_st = p.symbols.find(p.interner.get("g").unwrap()).unwrap();
        let defs: Vec<_> = r
            .summary(main)
            .for_array(g_st)
            .filter(|rec| rec.mode == AccessMode::Def)
            .collect();
        assert_eq!(defs.len(), 1, "leaf's DEF reaches main through mid");
        assert_eq!(defs[0].region.to_string(), "(0:8:1)");
    }

    #[test]
    fn subset_propagation_matches_full_when_clean_slots_are_reused() {
        let src = "\
program main
  call mid
end
subroutine mid
  call leaf
end
subroutine leaf
  real g(9)
  common /c/ g
  integer i
  do i = 1, 9
    g(i) = 1.0
  end do
end
";
        let p = compile_to_h(&[SourceFile::new("t.f", src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap();
        let cg = CallGraph::build(&p);
        let local = crate::local::summarize_all(&p);
        let cold = propagate(&p, &cg, local.clone());

        // Warm path: pretend only `main` needs re-propagation. Its slot is
        // reset to the local summary; mid/leaf keep their cold propagated
        // summaries, as the session would reuse them from the cache.
        let main = p.find_procedure("main").unwrap();
        let mut warm: Vec<ProcSummary> = cold.summaries.clone();
        warm[main.as_usize()] = local[main.as_usize()].clone();
        let mut mask = vec![false; cg.size()];
        mask[main.as_usize()] = true;
        propagate_subset(&p, &cg, &mut warm, &mask);

        for (a, b) in cold.summaries.iter().zip(&warm) {
            assert_eq!(a.accesses.len(), b.accesses.len());
            for (x, y) in a.accesses.iter().zip(&b.accesses) {
                assert_eq!(x.array, y.array);
                assert_eq!(x.mode, y.mode);
                assert_eq!(x.region.to_string(), y.region.to_string());
                assert_eq!(x.from_call, y.from_call);
                assert_eq!(x.line, y.line);
            }
        }
    }

    #[test]
    fn recursion_is_cut_not_hung() {
        let (_p, _cg, r) = build(
            "\
subroutine r(n)
  integer n
  real a(5)
  common /c/ a
  a(1) = 0.0
  call r(n)
end
",
        );
        assert!(r.recursion_cut);
    }
}
