//! Loop-level auto-parallelization analysis.
//!
//! The paper's third functionality pillar: "We provide an approach to detect
//! and exploit parallelism in Fortran 77/90, C, and C++ programs ...
//! [OpenUH's APO] can be invoked ... to discover and exploit parallelism"
//! — and the Case 1 payoff inserts "one `!$omp parallel do`" before the
//! fused loop. This module decides whether a counted loop carries a
//! cross-iteration dependence, using the same Fourier–Motzkin machinery the
//! Regions method relies on:
//!
//! for every pair of references to one array with at least one `DEF`, build
//! the system { bounds(i₁), bounds(i₂), i₁ < i₂, subsA(i₁) = subsB(i₂) }
//! (inner loop variables get independent copies per instance) and test
//! satisfiability — satisfiable ⇒ two different iterations touch the same
//! element ⇒ loop-carried dependence.
//!
//! Scalars assigned inside the body are classified as *reductions*
//! (`s = s ⊕ expr`) or *privatizable* temporaries; neither blocks
//! parallelization, but both are reported so the advisor can emit the right
//! OpenMP clauses.

use crate::index_facts::{self, IndexArrayFact};
use crate::local::{peel_const_offset, whirl_to_affine, AffExpr};
use crate::sideeffect::const_subset;
use regions::constraint::{Constraint, ConstraintSystem};
use regions::fourier_motzkin::is_satisfiable;
use regions::linexpr::LinExpr;
use regions::space::{Space, VarId};
use regions::triplet::Triplet;
use std::collections::{BTreeMap, BTreeSet};
use whirl::{Opr, ProcId, Program, StClass, StIdx, TyKind, WhirlTree, WnId};

/// Variable-allocation callback used while building a dependence system:
/// `(symbol, instance, per_instance, space, interner, shared, per-instance
/// maps) → space variable`.
type VarAllocFn<'a> = dyn FnMut(
        StIdx,
        usize,
        bool,
        &mut Space,
        &mut support::Interner,
        &mut BTreeMap<StIdx, VarId>,
        &mut [BTreeMap<StIdx, VarId>; 2],
    ) -> VarId
    + 'a;

/// One array reference collected from a loop body.
#[derive(Debug, Clone)]
struct BodyRef {
    array: StIdx,
    is_def: bool,
    subs: Vec<AffExpr>,
    /// Inner loops enclosing this reference (inside the tested loop),
    /// outermost first: (ivar, lo, hi).
    inner: Vec<(StIdx, AffExpr, AffExpr)>,
    /// For 1-D references of the shape `a(idx(g) + offset)`: the index
    /// array, the inner subscript `g`, and the constant offset.
    indirect: Option<IndirectRef>,
}

/// An indirect subscript `idx(g) + offset` discovered in a loop body.
#[derive(Debug, Clone)]
struct IndirectRef {
    array: StIdx,
    g: AffExpr,
    offset: i64,
}

/// Scalar behaviour inside the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarUse {
    /// `s = s ⊕ expr` — parallelizable with a `reduction` clause.
    Reduction,
    /// Assigned but never self-referencing — parallelizable with `private`.
    Privatizable,
}

/// Why a loop was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopConflict {
    /// The array carrying the dependence.
    pub array: StIdx,
    /// Human-readable reason.
    pub reason: String,
}

/// The verdict for one loop.
#[derive(Debug, Clone)]
pub struct LoopVerdict {
    /// The loop's induction variable.
    pub ivar: StIdx,
    /// Source line of the loop header.
    pub line: u32,
    /// True when no loop-carried array dependence was found.
    pub parallelizable: bool,
    /// Scalars needing OpenMP clauses, with their classification.
    pub scalars: Vec<(StIdx, ScalarUse)>,
    /// The first conflicts found (empty when parallelizable).
    pub conflicts: Vec<LoopConflict>,
}

/// Analyzes every outermost-in-procedure counted loop of `proc_id`.
///
/// ```
/// use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
///
/// let src = "\
/// subroutine s
///   real a(101)
///   integer i
///   do i = 1, 100
///     a(i + 1) = a(i)
///   end do
/// end
/// ";
/// let p = compile_to_h(&[SourceFile::new("s.f", src, whirl::Lang::Fortran)],
///                      DEFAULT_LAYOUT_BASE).unwrap();
/// let verdicts = ipa::analyze_proc_loops(&p, p.find_procedure("s").unwrap());
/// assert!(!verdicts[0].parallelizable, "a(i+1) = a(i) carries a dependence");
/// ```
pub fn analyze_proc_loops(program: &Program, proc_id: ProcId) -> Vec<LoopVerdict> {
    analyze_proc_loops_with_facts(program, proc_id, &BTreeMap::new())
}

/// [`analyze_proc_loops`] with globally-validated index-array facts (from
/// [`crate::propagate::IpaResult::index_facts`]). Facts let `a(idx(g))`
/// subscripts through an injective, write-once index array be tested for
/// dependence on `g` instead of being rejected as messy. Locally-derived
/// facts for `Local`-class index arrays are merged in — those cannot be
/// written by any other procedure, so per-procedure derivation is already
/// globally sound for them.
pub fn analyze_proc_loops_with_facts(
    program: &Program,
    proc_id: ProcId,
    global_facts: &BTreeMap<StIdx, IndexArrayFact>,
) -> Vec<LoopVerdict> {
    let mut facts = global_facts.clone();
    // Completion positions for every index array this procedure itself
    // defines (any storage class): the injective escape must not fire for
    // a loop that runs before — or inside — the defining nest.
    let mut local_init_end: BTreeMap<StIdx, u32> = BTreeMap::new();
    for (st, f) in index_facts::derive(program, proc_id) {
        local_init_end.insert(st, f.init_end_pos);
        if program.symbols.get(st).class == StClass::Local {
            facts.entry(st).or_insert(f);
        }
    }
    let proc = program.procedure(proc_id);
    let mut out = Vec::new();
    let Some(root) = proc.tree.root() else { return out };
    let Some(&body) = proc.tree.node(root).kids.last() else { return out };
    let pos = index_facts::preorder_positions(&proc.tree);
    collect_top_loops(&proc.tree, body, &mut |loop_wn| {
        out.push(analyze_loop_with_facts(
            program,
            proc_id,
            loop_wn,
            &facts,
            &local_init_end,
            pos.get(&loop_wn).copied(),
        ));
    });
    out
}

/// Finds the outermost `DoLoop`s under a block (not descending into loops).
fn collect_top_loops(tree: &WhirlTree, block: WnId, f: &mut impl FnMut(WnId)) {
    for &stmt in &tree.node(block).kids {
        match tree.node(stmt).operator {
            Opr::DoLoop => f(stmt),
            Opr::If => {
                collect_top_loops(tree, tree.node(stmt).kids[1], f);
                collect_top_loops(tree, tree.node(stmt).kids[2], f);
            }
            _ => {}
        }
    }
}

/// Analyzes one `DoLoop` node.
pub fn analyze_loop(program: &Program, proc_id: ProcId, loop_wn: WnId) -> LoopVerdict {
    analyze_loop_with_facts(program, proc_id, loop_wn, &BTreeMap::new(), &BTreeMap::new(), None)
}

/// Conditions under which the injective-index escape may fire for a loop.
struct EscapeCtx<'a> {
    facts: &'a BTreeMap<StIdx, IndexArrayFact>,
    /// Arrays the loop body (or a call inside it) may define.
    body_defs: BTreeSet<StIdx>,
    /// A call anywhere in the body could mutate a global index array
    /// without appearing in `body_defs`; disable the escape entirely.
    saw_call: bool,
    /// Per-array position after which a locally-defined index array's
    /// initialization completes (pre-order, this procedure's tree).
    local_init_end: &'a BTreeMap<StIdx, u32>,
    /// Pre-order position of the tested loop; `None` when unknown.
    loop_pos: Option<u32>,
}

/// [`analyze_loop`] with index-array facts available.
fn analyze_loop_with_facts(
    program: &Program,
    proc_id: ProcId,
    loop_wn: WnId,
    facts: &BTreeMap<StIdx, IndexArrayFact>,
    local_init_end: &BTreeMap<StIdx, u32>,
    loop_pos: Option<u32>,
) -> LoopVerdict {
    let proc = program.procedure(proc_id);
    let tree = &proc.tree;
    let node = tree.node(loop_wn);
    debug_assert_eq!(node.operator, Opr::DoLoop);
    let Some(ivar) = node.st_idx else {
        // Malformed loop: no induction variable to reason about. Reject
        // conservatively instead of panicking.
        return LoopVerdict {
            ivar: StIdx(0),
            line: node.linenum,
            parallelizable: false,
            scalars: Vec::new(),
            conflicts: vec![LoopConflict {
                array: StIdx(0),
                reason: "malformed loop: missing induction variable".to_string(),
            }],
        };
    };
    let line = node.linenum;
    let lo = whirl_to_affine(tree, tree.node(node.kids[0]).kids[0]);
    let hi = whirl_to_affine(tree, tree.node(node.kids[1]).kids[1]);
    let body = node.kids[3];

    // Collect references and scalar writes.
    let mut refs: Vec<BodyRef> = Vec::new();
    let mut scalars: BTreeMap<StIdx, ScalarUse> = BTreeMap::new();
    let mut inner: Vec<(StIdx, AffExpr, AffExpr)> = Vec::new();
    let mut saw_call = false;
    walk_body(program, tree, body, &mut inner, &mut refs, &mut scalars, &mut saw_call);

    let ctx = EscapeCtx {
        facts,
        body_defs: refs.iter().filter(|r| r.is_def).map(|r| r.array).collect(),
        saw_call,
        local_init_end,
        loop_pos,
    };

    // Pairwise array dependence tests.
    let mut conflicts = Vec::new();
    'pairs: for a in 0..refs.len() {
        for b in a..refs.len() {
            let (ra, rb) = (&refs[a], &refs[b]);
            if ra.array != rb.array || (!ra.is_def && !rb.is_def) {
                continue;
            }
            match carried_dependence(ivar, &lo, &hi, ra, rb, &ctx) {
                Some(true) | None => {
                    conflicts.push(LoopConflict {
                        array: ra.array,
                        reason: describe(program, ra, rb),
                    });
                    if conflicts.len() >= 4 {
                        break 'pairs;
                    }
                }
                Some(false) => {}
            }
        }
    }

    LoopVerdict {
        ivar,
        line,
        parallelizable: conflicts.is_empty(),
        scalars: scalars.into_iter().collect(),
        conflicts,
    }
}

fn describe(program: &Program, a: &BodyRef, b: &BodyRef) -> String {
    let name = program.name_of(program.symbols.get(a.array).name);
    let kind = match (a.is_def, b.is_def) {
        (true, true) => "write/write",
        (true, false) => "write/read",
        (false, true) => "read/write",
        (false, false) => unreachable!("USE/USE pairs never conflict"),
    };
    format!("loop-carried {kind} dependence on `{name}`")
}

/// Walks a loop body collecting array references (with their inner-loop
/// context) and scalar assignment classifications. `DoLoop` init/increment
/// stores are structural, not body scalars.
fn walk_body(
    program: &Program,
    tree: &WhirlTree,
    block: WnId,
    inner: &mut Vec<(StIdx, AffExpr, AffExpr)>,
    refs: &mut Vec<BodyRef>,
    scalars: &mut BTreeMap<StIdx, ScalarUse>,
    saw_call: &mut bool,
) {
    for &stmt in &tree.node(block).kids {
        let node = tree.node(stmt);
        match node.operator {
            Opr::Stid => {
                let Some(st) = node.st_idx else {
                    collect_expr_refs(program, tree, node.kids[0], inner, refs);
                    continue;
                };
                let rhs = node.kids[0];
                collect_expr_refs(program, tree, rhs, inner, refs);
                let self_ref = mentions_scalar(tree, rhs, st);
                let class =
                    if self_ref { ScalarUse::Reduction } else { ScalarUse::Privatizable };
                // A later self-referencing write upgrades the class.
                scalars
                    .entry(st)
                    .and_modify(|c| {
                        if class == ScalarUse::Reduction {
                            *c = ScalarUse::Reduction;
                        }
                    })
                    .or_insert(class);
            }
            Opr::Istore => {
                collect_expr_refs(program, tree, node.kids[0], inner, refs);
                record_address(program, tree, node.kids[1], true, inner, refs);
            }
            Opr::Call => {
                // Calls inside candidate loops are the APO limitation the
                // paper's tool works around; conservatively reject by
                // treating every array argument as a messy DEF.
                *saw_call = true;
                for &parm in &node.kids {
                    let v = tree.node(parm).kids[0];
                    let vn = tree.node(v);
                    if vn.operator == Opr::Lda {
                        if let Some(st) = vn.st_idx {
                            if matches!(
                                program.types.get(program.symbols.get(st).ty).kind,
                                TyKind::Array { .. }
                            ) {
                                refs.push(BodyRef {
                                    array: st,
                                    is_def: true,
                                    subs: vec![AffExpr::Messy],
                                    inner: inner.clone(),
                                    indirect: None,
                                });
                            }
                        }
                    } else {
                        collect_expr_refs(program, tree, v, inner, refs);
                    }
                }
            }
            Opr::DoLoop => {
                let Some(iv) = node.st_idx else {
                    // No induction variable: walk the body without an inner
                    // frame; its subscripts degrade to shared symbols.
                    walk_body(program, tree, node.kids[3], inner, refs, scalars, saw_call);
                    continue;
                };
                let lo = whirl_to_affine(tree, tree.node(node.kids[0]).kids[0]);
                let hi = whirl_to_affine(tree, tree.node(node.kids[1]).kids[1]);
                inner.push((iv, lo, hi));
                walk_body(program, tree, node.kids[3], inner, refs, scalars, saw_call);
                inner.pop();
            }
            Opr::If => {
                collect_expr_refs(program, tree, node.kids[0], inner, refs);
                walk_body(program, tree, node.kids[1], inner, refs, scalars, saw_call);
                walk_body(program, tree, node.kids[2], inner, refs, scalars, saw_call);
            }
            _ => {}
        }
    }
}

fn collect_expr_refs(
    program: &Program,
    tree: &WhirlTree,
    id: WnId,
    inner: &[(StIdx, AffExpr, AffExpr)],
    refs: &mut Vec<BodyRef>,
) {
    let node = tree.node(id);
    if node.operator == Opr::Iload {
        let mut addr = node.kids[0];
        if tree.node(addr).operator == Opr::RemoteArray {
            collect_expr_refs(program, tree, tree.node(addr).kids[1], inner, refs);
            addr = tree.node(addr).kids[0];
        }
        if tree.node(addr).operator == Opr::Array {
            record_address(program, tree, addr, false, &mut inner.to_vec(), refs);
            let n = tree.node(addr).num_dim();
            for d in 0..n {
                collect_expr_refs(program, tree, tree.node(addr).array_index_kid(d), inner, refs);
            }
            return;
        }
    }
    for &k in &node.kids {
        collect_expr_refs(program, tree, k, inner, refs);
    }
}

fn record_address(
    program: &Program,
    tree: &WhirlTree,
    mut addr: WnId,
    is_def: bool,
    inner: &mut [(StIdx, AffExpr, AffExpr)],
    refs: &mut Vec<BodyRef>,
) {
    if tree.node(addr).operator == Opr::RemoteArray {
        addr = tree.node(addr).kids[0];
    }
    let node = tree.node(addr);
    if node.operator != Opr::Array {
        return;
    }
    let Some(array) = tree.node(node.array_base_kid()).st_idx else { return };
    let n = node.num_dim();
    let subs: Vec<AffExpr> = (0..n)
        .map(|d| whirl_to_affine(tree, node.array_index_kid(d)))
        .collect();
    let indirect = (n == 1)
        .then(|| match_indirect(program, tree, addr))
        .flatten();
    refs.push(BodyRef { array, is_def, subs, inner: inner.to_vec(), indirect });
}

/// Recognizes `idx(g) + offset` as the (only) subscript of a 1-D array
/// reference, where `idx` is a 1-D integer array.
fn match_indirect(program: &Program, tree: &WhirlTree, array_wn: WnId) -> Option<IndirectRef> {
    let node = tree.node(array_wn);
    let (iload, offset) = peel_const_offset(tree, node.array_index_kid(0))?;
    let n = tree.node(iload);
    if n.operator != Opr::Iload {
        return None;
    }
    let inner = tree.node(n.kids[0]);
    if inner.operator != Opr::Array || inner.num_dim() != 1 {
        return None;
    }
    let idx_st = tree.node(inner.array_base_kid()).st_idx?;
    if !index_facts::is_index_array(program, idx_st) {
        return None;
    }
    let g = whirl_to_affine(tree, inner.array_index_kid(0));
    matches!(g, AffExpr::Lin { .. }).then(|| IndirectRef { array: idx_st, g, offset })
}

fn mentions_scalar(tree: &WhirlTree, id: WnId, st: StIdx) -> bool {
    let node = tree.node(id);
    if node.operator == Opr::Ldid && node.st_idx == Some(st) {
        return true;
    }
    node.kids.iter().any(|&k| mentions_scalar(tree, k, st))
}

/// Decides whether accesses `a` (at iteration i₁) and `b` (at iteration
/// i₂ ≠ i₁) can touch the same element. `Some(false)` = provably
/// independent; `Some(true)` = dependence witnessed; `None` = unknown
/// (messy subscripts) — callers must treat as dependent.
fn carried_dependence(
    ivar: StIdx,
    lo: &AffExpr,
    hi: &AffExpr,
    a: &BodyRef,
    b: &BodyRef,
    ctx: &EscapeCtx<'_>,
) -> Option<bool> {
    if a.subs.len() != b.subs.len() {
        return None;
    }
    if a.subs.iter().chain(&b.subs).any(|s| matches!(s, AffExpr::Messy)) {
        // Injective-index escape: both subscripts read through the same
        // write-once injective index array, so element equality is
        // equivalent to inner-subscript equality — retest on `g`.
        if let Some((ga, gb)) = injective_escape(ivar, lo, hi, a, b, ctx) {
            let strip = |r: &BodyRef, g: AffExpr| BodyRef {
                array: r.array,
                is_def: r.is_def,
                subs: vec![g],
                inner: r.inner.clone(),
                indirect: None,
            };
            return carried_dependence(ivar, lo, hi, &strip(a, ga), &strip(b, gb), ctx);
        }
        return None;
    }
    if matches!(lo, AffExpr::Messy) || matches!(hi, AffExpr::Messy) {
        return None;
    }
    // Two directional checks: A@i₁ meets B@i₂ with i₁ < i₂, and vice versa.
    for flip in [false, true] {
        let (first, second) = if flip { (b, a) } else { (a, b) };
        if dependence_system_satisfiable(ivar, lo, hi, first, second)? {
            return Some(true);
        }
    }
    Some(false)
}

/// Checks the preconditions of the injective-index escape for a reference
/// pair; returns the two inner subscripts when element equality on the
/// outer array is equivalent to equality of those subscripts.
fn injective_escape(
    ivar: StIdx,
    lo: &AffExpr,
    hi: &AffExpr,
    a: &BodyRef,
    b: &BodyRef,
    ctx: &EscapeCtx<'_>,
) -> Option<(AffExpr, AffExpr)> {
    if ctx.saw_call {
        return None;
    }
    let (ia, ib) = (a.indirect.as_ref()?, b.indirect.as_ref()?);
    if ia.array != ib.array || ia.offset != ib.offset || ctx.body_defs.contains(&ia.array) {
        return None;
    }
    let fact = ctx.facts.get(&ia.array)?;
    if !fact.injective || !fact.constant_after_init {
        return None;
    }
    // Flow gate: when this procedure itself defines the index array, the
    // tested loop must start after the defining nest has completed — a
    // gather loop placed ahead of the init loop reads values the array
    // has not been given yet.
    if let Some(&end) = ctx.local_init_end.get(&ia.array) {
        if !ctx.loop_pos.is_some_and(|p| p > end) {
            return None;
        }
    }
    let init = fact.init_region.as_ref()?;
    let [init_dim] = &init.dims[..] else { return None };
    // Injectivity only holds over the initialized domain: both inner
    // subscripts must stay inside it for every tested iteration.
    let (lo_c, hi_c) = (lo.as_const()?, hi.as_const()?);
    for g in [&ia.g, &ib.g] {
        if !const_subset(&g_range(g, ivar, lo_c, hi_c)?, init_dim) {
            return None;
        }
    }
    Some((ia.g.clone(), ib.g.clone()))
}

/// The constant triplet `g` covers as `ivar` sweeps `[lo, hi]`; `None` when
/// `g` mentions anything besides `ivar` or overflows.
fn g_range(g: &AffExpr, ivar: StIdx, lo: i64, hi: i64) -> Option<Triplet> {
    let AffExpr::Lin { constant, terms } = g else { return None };
    if terms.keys().any(|&st| st != ivar) {
        return None;
    }
    let c = terms.get(&ivar).copied().unwrap_or(0);
    let at = |i: i64| c.checked_mul(i)?.checked_add(*constant);
    let (x, y) = (at(lo)?, at(hi)?);
    Some(Triplet::constant(x.min(y), x.max(y), c.abs().max(1)))
}

/// Builds and tests the dependence system for `first@i₁`, `second@i₂`,
/// `i₁ < i₂`.
fn dependence_system_satisfiable(
    ivar: StIdx,
    lo: &AffExpr,
    hi: &AffExpr,
    first: &BodyRef,
    second: &BodyRef,
) -> Option<bool> {
    let mut space = Space::new();
    let mut interner = support::Interner::new();
    // Variable maps per instance: the tested ivar and every inner loop var
    // get per-instance copies; everything else is shared (loop-invariant).
    let mut shared: BTreeMap<StIdx, VarId> = BTreeMap::new();
    let mut inst: [BTreeMap<StIdx, VarId>; 2] = [BTreeMap::new(), BTreeMap::new()];

    let mut var_for = |st: StIdx,
                       instance: usize,
                       per_instance: bool,
                       space: &mut Space,
                       interner: &mut support::Interner,
                       shared: &mut BTreeMap<StIdx, VarId>,
                       inst: &mut [BTreeMap<StIdx, VarId>; 2]|
     -> VarId {
        if per_instance {
            *inst[instance].entry(st).or_insert_with(|| {
                let name = interner.intern(&format!("v{}_{}", st.0, instance));
                space.add_loop(name)
            })
        } else {
            *shared.entry(st).or_insert_with(|| {
                let name = interner.intern(&format!("s{}", st.0));
                space.add_sym(name)
            })
        }
    };

    // Per-instance variables: the tested ivar plus that instance's inner
    // loop variables.
    let instance_vars = |r: &BodyRef| -> Vec<StIdx> {
        let mut v: Vec<StIdx> = vec![ivar];
        v.extend(r.inner.iter().map(|(st, _, _)| *st));
        v
    };
    let inst_vars = [instance_vars(first), instance_vars(second)];

    let to_lin = |e: &AffExpr,
                  instance: usize,
                  space: &mut Space,
                  interner: &mut support::Interner,
                  shared: &mut BTreeMap<StIdx, VarId>,
                  inst: &mut [BTreeMap<StIdx, VarId>; 2],
                  var_for: &mut VarAllocFn,
                  inst_vars: &[Vec<StIdx>; 2]|
     -> Option<LinExpr> {
        match e {
            AffExpr::Lin { constant, terms } => {
                let mut out = LinExpr::constant(*constant);
                for (&st, &c) in terms {
                    let per_instance = inst_vars[instance].contains(&st);
                    let v = var_for(st, instance, per_instance, space, interner, shared, inst);
                    out.add_term(v, c);
                }
                Some(out)
            }
            AffExpr::Messy => None,
        }
    };

    let mut cs = ConstraintSystem::new();
    // Loop bounds for both instances of the tested variable.
    for instance in 0..2 {
        let iv = var_for(ivar, instance, true, &mut space, &mut interner, &mut shared, &mut inst);
        let lo_l = to_lin(lo, instance, &mut space, &mut interner, &mut shared, &mut inst, &mut var_for, &inst_vars)?;
        let hi_l = to_lin(hi, instance, &mut space, &mut interner, &mut shared, &mut inst, &mut var_for, &inst_vars)?;
        cs.push(Constraint::ge(LinExpr::var(iv), lo_l));
        cs.push(Constraint::le(LinExpr::var(iv), hi_l));
    }
    // Distinct iterations: i₁ ≤ i₂ - 1.
    let i1 = inst[0][&ivar];
    let i2 = inst[1][&ivar];
    cs.push(Constraint::le(
        LinExpr::var(i1),
        LinExpr::var(i2).add(&LinExpr::constant(-1)),
    ));
    // Inner loop bounds per instance.
    for (instance, r) in [(0usize, first), (1usize, second)] {
        for (st, ilo, ihi) in &r.inner {
            let v = var_for(*st, instance, true, &mut space, &mut interner, &mut shared, &mut inst);
            let lo_l = to_lin(ilo, instance, &mut space, &mut interner, &mut shared, &mut inst, &mut var_for, &inst_vars)?;
            let hi_l = to_lin(ihi, instance, &mut space, &mut interner, &mut shared, &mut inst, &mut var_for, &inst_vars)?;
            cs.push(Constraint::ge(LinExpr::var(v), lo_l));
            cs.push(Constraint::le(LinExpr::var(v), hi_l));
        }
    }
    // Element equality per dimension.
    for (sa, sb) in first.subs.iter().zip(&second.subs) {
        let la = to_lin(sa, 0, &mut space, &mut interner, &mut shared, &mut inst, &mut var_for, &inst_vars)?;
        let lb = to_lin(sb, 1, &mut space, &mut interner, &mut shared, &mut inst, &mut var_for, &inst_vars)?;
        cs.push(Constraint::eq(la, lb));
    }
    Some(is_satisfiable(&cs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn verdicts(src: &str, proc: &str) -> Vec<LoopVerdict> {
        let p = compile_to_h(
            &[SourceFile::new("t.f", src, Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        )
        .unwrap();
        let id = p.find_procedure(proc).unwrap();
        analyze_proc_loops(&p, id)
    }

    #[test]
    fn disjoint_writes_are_parallel() {
        let v = verdicts(
            "subroutine s\n  real a(100)\n  integer i\n  do i = 1, 100\n    a(i) = 1.0\n  end do\nend\n",
            "s",
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].parallelizable, "{v:?}");
    }

    #[test]
    fn read_same_write_same_iteration_is_parallel() {
        // a(i) = a(i) + 1: intra-iteration only.
        let v = verdicts(
            "subroutine s\n  real a(100)\n  integer i\n  do i = 1, 100\n    a(i) = a(i) + 1.0\n  end do\nend\n",
            "s",
        );
        assert!(v[0].parallelizable, "{v:?}");
    }

    #[test]
    fn shifted_write_read_is_carried() {
        // a(i+1) = a(i): classic flow dependence.
        let v = verdicts(
            "subroutine s\n  real a(101)\n  integer i\n  do i = 1, 100\n    a(i + 1) = a(i)\n  end do\nend\n",
            "s",
        );
        assert!(!v[0].parallelizable);
        assert!(v[0].conflicts[0].reason.contains("dependence on `a`"), "{v:?}");
    }

    #[test]
    fn stride_two_shift_is_still_carried() {
        let v = verdicts(
            "subroutine s\n  real a(102)\n  integer i\n  do i = 1, 100\n    a(i + 2) = a(i)\n  end do\nend\n",
            "s",
        );
        assert!(!v[0].parallelizable);
    }

    #[test]
    fn disjoint_halves_are_parallel() {
        // a(i) reads a(i + 50) over i = 1..50: read/write regions at
        // distance 50 with only 49 iterations of separation — wait, i₂ can
        // be i₁ + 50? i ranges 1..50, write a(i), read a(i+50) ∈ 51..100:
        // never equal.
        let v = verdicts(
            "subroutine s\n  real a(100)\n  integer i\n  do i = 1, 50\n    a(i) = a(i + 50)\n  end do\nend\n",
            "s",
        );
        assert!(v[0].parallelizable, "{v:?}");
    }

    #[test]
    fn reduction_detected_and_does_not_block() {
        let v = verdicts(
            "subroutine s\n  real a(100)\n  real total\n  integer i\n  do i = 1, 100\n    total = total + a(i)\n  end do\nend\n",
            "s",
        );
        assert!(v[0].parallelizable);
        assert_eq!(v[0].scalars.len(), 1);
        assert_eq!(v[0].scalars[0].1, ScalarUse::Reduction);
    }

    #[test]
    fn private_temporary_detected() {
        let v = verdicts(
            "subroutine s\n  real a(100)\n  real t\n  integer i\n  do i = 1, 100\n    t = 2.0\n    a(i) = t\n  end do\nend\n",
            "s",
        );
        assert!(v[0].parallelizable);
        assert_eq!(v[0].scalars[0].1, ScalarUse::Privatizable);
    }

    #[test]
    fn nested_loop_outer_parallel() {
        // a(i, j) = b(i, j): outer loop has no carried dependence.
        let v = verdicts(
            "\
subroutine s
  real a(50, 50), b(50, 50)
  integer i, j
  do i = 1, 50
    do j = 1, 50
      a(i, j) = b(i, j)
    end do
  end do
end
",
            "s",
        );
        assert_eq!(v.len(), 1, "only the outer loop is a top-level candidate");
        assert!(v[0].parallelizable, "{v:?}");
    }

    #[test]
    fn wavefront_is_not_parallel() {
        // a(i, j) = a(i - 1, j): carried on the outer loop.
        let v = verdicts(
            "\
subroutine s
  real a(50, 50)
  integer i, j
  do i = 2, 50
    do j = 1, 50
      a(i, j) = a(i - 1, j)
    end do
  end do
end
",
            "s",
        );
        assert!(!v[0].parallelizable);
    }

    #[test]
    fn indirect_subscript_is_conservative() {
        let v = verdicts(
            "\
subroutine s
  real a(100)
  integer idx(100)
  integer i
  do i = 1, 100
    a(idx(i)) = 1.0
  end do
end
",
            "s",
        );
        assert!(!v[0].parallelizable, "messy subscripts must be conservative");
    }

    #[test]
    fn injective_gather_write_is_parallel() {
        // idx is a local permutation initialized before the loop: the
        // derived fact proves the gather writes hit distinct elements.
        let v = verdicts(
            "\
subroutine s
  real a(100)
  integer idx(100)
  integer i
  do i = 1, 100
    idx(i) = 101 - i
  end do
  do i = 1, 100
    a(idx(i)) = 1.0
  end do
end
",
            "s",
        );
        assert_eq!(v.len(), 2);
        assert!(v[0].parallelizable, "init loop: {v:?}");
        assert!(v[1].parallelizable, "gather through injective idx: {v:?}");
    }

    #[test]
    fn injective_gather_update_same_iteration_is_parallel() {
        // a(idx(i)) = a(idx(i)) + 1: read and write agree per iteration.
        let v = verdicts(
            "\
subroutine s
  real a(100)
  integer idx(100)
  integer i
  do i = 1, 100
    idx(i) = 101 - i
  end do
  do i = 1, 100
    a(idx(i)) = a(idx(i)) + 1.0
  end do
end
",
            "s",
        );
        assert!(v[1].parallelizable, "{v:?}");
    }

    #[test]
    fn injective_gather_shifted_read_is_carried() {
        // a(idx(i)) = a(idx(i - 1)): injectivity maps the collision back to
        // i₂ = i₁ + 1, which the affine test finds.
        let v = verdicts(
            "\
subroutine s
  real a(100)
  integer idx(100)
  integer i
  do i = 1, 100
    idx(i) = 101 - i
  end do
  do i = 2, 100
    a(idx(i)) = a(idx(i - 1))
  end do
end
",
            "s",
        );
        assert!(!v[1].parallelizable, "{v:?}");
    }

    #[test]
    fn gather_before_init_loop_stays_conservative() {
        // The gather loop runs before idx is initialized: the injectivity
        // fact describes values the array has not been given yet, so the
        // escape must not fire.
        let v = verdicts(
            "\
subroutine s
  real a(100)
  integer idx(100)
  integer i
  do i = 1, 100
    a(idx(i)) = 1.0
  end do
  do i = 1, 100
    idx(i) = 101 - i
  end do
end
",
            "s",
        );
        assert!(!v[0].parallelizable, "idx is uninitialized when the gather runs: {v:?}");
    }

    #[test]
    fn non_injective_index_stays_conservative() {
        // idx(i) = 1 + i / 2 repeats values; no injectivity, no escape.
        let v = verdicts(
            "\
subroutine s
  real a(100)
  integer idx(100)
  integer i
  do i = 1, 100
    idx(i) = 7
  end do
  do i = 1, 100
    a(idx(i)) = 1.0
  end do
end
",
            "s",
        );
        assert!(!v[1].parallelizable, "constant idx repeats: {v:?}");
    }

    #[test]
    fn index_written_in_body_stays_conservative() {
        let v = verdicts(
            "\
subroutine s
  real a(100)
  integer idx(100)
  integer i
  do i = 1, 100
    idx(i) = 101 - i
  end do
  do i = 1, 100
    idx(i) = i
    a(idx(i)) = 1.0
  end do
end
",
            "s",
        );
        assert!(!v[1].parallelizable, "idx mutates inside the loop: {v:?}");
    }

    #[test]
    fn call_in_loop_is_conservative() {
        // The APO limitation the paper cites: "function calls inside loops
        // can not be handled by this module".
        let v = verdicts(
            "\
subroutine s
  real a(100)
  common /g/ a
  integer i
  do i = 1, 100
    call leaf(a)
  end do
end
subroutine leaf(x)
  real x(100)
  x(1) = 0.0
end
",
            "s",
        );
        assert!(!v[0].parallelizable);
    }

    #[test]
    fn write_write_same_element_conflicts() {
        // a(1) = i: every iteration writes element 1.
        let v = verdicts(
            "subroutine s\n  real a(10)\n  integer i\n  do i = 1, 10\n    a(1) = i\n  end do\nend\n",
            "s",
        );
        assert!(!v[0].parallelizable);
        assert!(v[0].conflicts[0].reason.contains("write/write"), "{v:?}");
    }

    #[test]
    fn lu_rhs_loop_is_parallelizable() {
        let srcs: Vec<SourceFile> = workloads::mini_lu::sources()
            .iter()
            .map(|g| SourceFile::new(&g.name, &g.text, Lang::Fortran))
            .collect();
        let p = compile_to_h(&srcs, DEFAULT_LAYOUT_BASE).unwrap();
        let rhs = p.find_procedure("rhs").unwrap();
        let v = analyze_proc_loops(&p, rhs);
        assert_eq!(v.len(), 1);
        assert!(v[0].parallelizable, "{:?}", v[0].conflicts);
    }

    #[test]
    fn lu_blts_loop_is_not_parallelizable() {
        let srcs: Vec<SourceFile> = workloads::mini_lu::sources()
            .iter()
            .map(|g| SourceFile::new(&g.name, &g.text, Lang::Fortran))
            .collect();
        let p = compile_to_h(&srcs, DEFAULT_LAYOUT_BASE).unwrap();
        let blts = p.find_procedure("blts").unwrap();
        let v = analyze_proc_loops(&p, blts);
        assert!(!v[0].parallelizable, "rsd(i-1) is a sweep dependence");
    }
}
