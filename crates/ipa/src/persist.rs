//! Persistence codec implementations for interprocedural summaries.
//!
//! Together with `regions::persist` these let the session cache write
//! [`ProcSummary`] values to disk and reload them exactly — the
//! byte-identical warm-vs-cold guarantee rides on these round-trips being
//! lossless. Decoders return typed errors on any malformed input; they
//! never panic.

use crate::index_facts::IndexArrayFact;
use crate::local::{AccessRecord, IndirectIndex, ProcSummary};
use support::error::Result;
use support::persist::{ByteReader, ByteWriter, Persist};
use whirl::{ProcId, StIdx};

impl Persist for IndirectIndex {
    fn save(&self, w: &mut ByteWriter) {
        w.u32(self.index_array.0);
        self.domain.save(w);
        w.i64(self.offset);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(IndirectIndex {
            index_array: StIdx(r.u32()?),
            domain: Persist::load(r)?,
            offset: r.i64()?,
        })
    }
}

impl Persist for IndexArrayFact {
    fn save(&self, w: &mut ByteWriter) {
        w.bool(self.constant_after_init);
        w.bool(self.monotone_nondecreasing);
        w.bool(self.injective);
        self.value_range.save(w);
        self.init_region.save(w);
        w.u32(self.init_end_pos);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(IndexArrayFact {
            constant_after_init: r.bool()?,
            monotone_nondecreasing: r.bool()?,
            injective: r.bool()?,
            value_range: Option::<(i64, i64)>::load(r)?,
            init_region: Persist::load(r)?,
            init_end_pos: r.u32()?,
        })
    }
}

impl Persist for AccessRecord {
    fn save(&self, w: &mut ByteWriter) {
        w.u32(self.array.0);
        self.mode.save(w);
        self.region.save(w);
        self.convex.save(w);
        self.space.save(w);
        w.u32(self.line);
        self.from_call.as_ref().map(|p| p.0).save(w);
        w.bool(self.remote);
        w.bool(self.approx);
        self.precision.save(w);
        self.via_index.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(AccessRecord {
            array: StIdx(r.u32()?),
            mode: Persist::load(r)?,
            region: Persist::load(r)?,
            convex: Persist::load(r)?,
            space: Persist::load(r)?,
            line: r.u32()?,
            from_call: Option::<u32>::load(r)?.map(ProcId),
            remote: r.bool()?,
            approx: r.bool()?,
            precision: Persist::load(r)?,
            via_index: Persist::load(r)?,
        })
    }
}

impl Persist for ProcSummary {
    fn save(&self, w: &mut ByteWriter) {
        self.accesses.save(w);
        // BTreeMap iteration is sorted: the encoding is deterministic.
        let facts: Vec<(u32, &IndexArrayFact)> =
            self.index_facts.iter().map(|(st, f)| (st.0, f)).collect();
        w.u32(facts.len() as u32);
        for (st, f) in facts {
            w.u32(st);
            f.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        let accesses = Vec::load(r)?;
        let n = r.u32()?;
        let mut index_facts = std::collections::BTreeMap::new();
        for _ in 0..n {
            let st = StIdx(r.u32()?);
            index_facts.insert(st, IndexArrayFact::load(r)?);
        }
        Ok(ProcSummary { accesses, index_facts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regions::access::{AccessMode, Precision};
    use regions::space::Space;
    use regions::triplet::{Bound, Triplet, TripletRegion};

    fn record(line: u32) -> AccessRecord {
        AccessRecord {
            array: StIdx(4),
            mode: AccessMode::Def,
            region: TripletRegion {
                dims: vec![Triplet {
                    lb: Bound::Const(1),
                    ub: Bound::Const(line as i64),
                    stride: Bound::Const(1),
                }],
            },
            convex: None,
            space: Space::with_dims(1),
            line,
            from_call: Some(ProcId(2)),
            remote: false,
            approx: line % 2 == 0,
            precision: if line % 2 == 0 { Precision::Interval } else { Precision::Exact },
            via_index: (line % 2 == 0).then(|| IndirectIndex {
                index_array: StIdx(9),
                domain: TripletRegion::new(vec![Triplet::constant(0, 9, 1)]),
                offset: -1,
            }),
        }
    }

    fn summary() -> ProcSummary {
        let mut index_facts = std::collections::BTreeMap::new();
        index_facts.insert(
            StIdx(9),
            IndexArrayFact {
                constant_after_init: true,
                monotone_nondecreasing: false,
                injective: true,
                value_range: Some((1, 10)),
                init_region: Some(TripletRegion::new(vec![Triplet::constant(0, 9, 1)])),
                init_end_pos: 42,
            },
        );
        ProcSummary { accesses: vec![record(10), record(11)], index_facts }
    }

    #[test]
    fn proc_summary_round_trips() {
        let s = summary();
        let mut w = ByteWriter::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = ProcSummary::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.accesses.len(), 2);
        assert_eq!(back.accesses[0].array, StIdx(4));
        assert_eq!(back.accesses[0].mode, AccessMode::Def);
        assert_eq!(back.accesses[0].region, s.accesses[0].region);
        assert_eq!(back.accesses[1].from_call, Some(ProcId(2)));
        assert!(back.accesses[0].approx);
        assert_eq!(back.accesses[0].precision, Precision::Interval);
        assert_eq!(back.accesses[0].via_index, s.accesses[0].via_index);
        assert_eq!(back.accesses[1].precision, Precision::Exact);
        assert_eq!(back.accesses[1].via_index, None);
        assert_eq!(back.index_facts, s.index_facts);
    }

    #[test]
    fn truncation_never_panics() {
        let s = summary();
        let mut w = ByteWriter::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(ProcSummary::load(&mut r).is_err());
        }
    }
}
