//! Persistence codec implementations for interprocedural summaries.
//!
//! Together with `regions::persist` these let the session cache write
//! [`ProcSummary`] values to disk and reload them exactly — the
//! byte-identical warm-vs-cold guarantee rides on these round-trips being
//! lossless. Decoders return typed errors on any malformed input; they
//! never panic.

use crate::local::{AccessRecord, ProcSummary};
use support::error::Result;
use support::persist::{ByteReader, ByteWriter, Persist};
use whirl::{ProcId, StIdx};

impl Persist for AccessRecord {
    fn save(&self, w: &mut ByteWriter) {
        w.u32(self.array.0);
        self.mode.save(w);
        self.region.save(w);
        self.convex.save(w);
        self.space.save(w);
        w.u32(self.line);
        self.from_call.as_ref().map(|p| p.0).save(w);
        w.bool(self.remote);
        w.bool(self.approx);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(AccessRecord {
            array: StIdx(r.u32()?),
            mode: Persist::load(r)?,
            region: Persist::load(r)?,
            convex: Persist::load(r)?,
            space: Persist::load(r)?,
            line: r.u32()?,
            from_call: Option::<u32>::load(r)?.map(ProcId),
            remote: r.bool()?,
            approx: r.bool()?,
        })
    }
}

impl Persist for ProcSummary {
    fn save(&self, w: &mut ByteWriter) {
        self.accesses.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(ProcSummary { accesses: Vec::load(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regions::access::AccessMode;
    use regions::space::Space;
    use regions::triplet::{Bound, Triplet, TripletRegion};

    fn record(line: u32) -> AccessRecord {
        AccessRecord {
            array: StIdx(4),
            mode: AccessMode::Def,
            region: TripletRegion {
                dims: vec![Triplet {
                    lb: Bound::Const(1),
                    ub: Bound::Const(line as i64),
                    stride: Bound::Const(1),
                }],
            },
            convex: None,
            space: Space::with_dims(1),
            line,
            from_call: Some(ProcId(2)),
            remote: false,
            approx: line % 2 == 0,
        }
    }

    #[test]
    fn proc_summary_round_trips() {
        let s = ProcSummary { accesses: vec![record(10), record(11)] };
        let mut w = ByteWriter::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = ProcSummary::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.accesses.len(), 2);
        assert_eq!(back.accesses[0].array, StIdx(4));
        assert_eq!(back.accesses[0].mode, AccessMode::Def);
        assert_eq!(back.accesses[0].region, s.accesses[0].region);
        assert_eq!(back.accesses[1].from_call, Some(ProcId(2)));
        assert!(back.accesses[0].approx);
    }

    #[test]
    fn truncation_never_panics() {
        let s = ProcSummary { accesses: vec![record(3)] };
        let mut w = ByteWriter::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(ProcSummary::load(&mut r).is_err());
        }
    }
}
