//! IPL: the local, per-procedure information-gathering phase.
//!
//! "IPL (the local interprocedural analysis part) first gathers data flow
//! analysis and procedure summary information from each compilation unit,
//! and the information is summarized for each procedure." For every
//! procedure we walk the H-level WHIRL tree once, tracking the enclosing
//! `DO_LOOP` nest, and record one [`AccessRecord`] per array reference:
//! `DEF` for `ISTORE` targets, `USE` for `ILOAD`s, `FORMAL` for array
//! formals, and `PASSED` for whole-array call arguments.

use crate::index_facts::{self, IndexArrayFact};
use crate::interval_ai;
use regions::access::{AccessMode, Precision};
use regions::linexpr::LinExpr;
use regions::space::{Space, VarId};
use regions::summarize::{summarize_reference_detailed, LoopInfo, LoopNest, Subscript};
use regions::triplet::{Bound, Triplet, TripletRegion};
use regions::ConvexRegion;
use std::collections::BTreeMap;
use support::obs::{self, Counter};
use whirl::{Opr, ProcId, Procedure, Program, StIdx, TyKind, WhirlTree, WnId};

/// A subscript that reads through an index array: `A(idx(g) + offset)`.
///
/// Carried on the outer access so the side-effect and loop-parallel tests
/// can apply injectivity reasoning: if `idx` is injective and two accesses
/// go through disjoint `domain`s with equal `offset`, their images are
/// disjoint.
#[derive(Debug, Clone, PartialEq)]
pub struct IndirectIndex {
    /// The index array being read.
    pub index_array: StIdx,
    /// Zero-based elements of `index_array` the inner subscript covers
    /// (constant bounds only — symbolic domains never qualify).
    pub domain: TripletRegion,
    /// Constant added to the loaded value before indexing the outer array.
    pub offset: i64,
}

/// One summarized array reference.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// The accessed array's symbol.
    pub array: StIdx,
    /// Access mode.
    pub mode: AccessMode,
    /// The accessed region in H order (row-major dimensions, zero-based).
    pub region: TripletRegion,
    /// Convex companion for comparisons, when linearizable.
    pub convex: Option<ConvexRegion>,
    /// The variable space `region`'s symbolic bounds refer to.
    pub space: Space,
    /// Source line of the reference.
    pub line: u32,
    /// Set when this record was propagated from a callee by the IPA phase.
    pub from_call: Option<ProcId>,
    /// True for coindexed (remote, PGAS) accesses — `x(i)[p]`.
    pub remote: bool,
    /// True when the region is a budget-exhaustion fallback (whole declared
    /// array or all-messy) rather than a computed summary. Still sound —
    /// approximate records only over-state what is accessed.
    pub approx: bool,
    /// How trustworthy the region is — the `.rgn` `precision` column.
    pub precision: Precision,
    /// Set when the (1-D) subscript reads through an index array.
    pub via_index: Option<IndirectIndex>,
}

/// The summary of one procedure.
#[derive(Debug, Clone, Default)]
pub struct ProcSummary {
    /// All records, in visit order.
    pub accesses: Vec<AccessRecord>,
    /// Facts derived for this procedure's index arrays (sparse; only
    /// populated when the interval fallback ran).
    pub index_facts: BTreeMap<StIdx, IndexArrayFact>,
}

impl ProcSummary {
    /// Records touching `array`.
    pub fn for_array(&self, array: StIdx) -> impl Iterator<Item = &AccessRecord> {
        self.accesses.iter().filter(move |a| a.array == array)
    }

    /// Total references for `(array, mode)` — the Dragon `References`
    /// column ("The number of region accesses for the selected array based
    /// on the access mode").
    pub fn ref_count(&self, array: StIdx, mode: AccessMode) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.array == array && a.mode == mode)
            .count() as u64
    }
}

/// An affine expression over symbol-table entries — the bridge between
/// WHIRL expression trees and the region machinery's [`LinExpr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffExpr {
    /// `constant + Σ coeff·st`.
    Lin {
        /// Constant term.
        constant: i64,
        /// Per-symbol coefficients (no zero entries).
        terms: BTreeMap<StIdx, i64>,
    },
    /// Not affine (indirect loads, products of variables, division, ...).
    Messy,
}

impl AffExpr {
    /// The constant expression.
    pub fn constant(c: i64) -> Self {
        AffExpr::Lin { constant: c, terms: BTreeMap::new() }
    }

    /// The single-variable expression.
    pub fn var(st: StIdx) -> Self {
        AffExpr::Lin { constant: 0, terms: BTreeMap::from([(st, 1)]) }
    }

    fn add(&self, other: &AffExpr) -> AffExpr {
        match (self, other) {
            (
                AffExpr::Lin { constant: c1, terms: t1 },
                AffExpr::Lin { constant: c2, terms: t2 },
            ) => {
                let mut terms = t1.clone();
                for (&st, &c) in t2 {
                    let e = terms.entry(st).or_insert(0);
                    *e += c;
                    if *e == 0 {
                        terms.remove(&st);
                    }
                }
                AffExpr::Lin { constant: c1 + c2, terms }
            }
            _ => AffExpr::Messy,
        }
    }

    fn scale(&self, k: i64) -> AffExpr {
        match self {
            AffExpr::Lin { constant, terms } => {
                if k == 0 {
                    return AffExpr::constant(0);
                }
                AffExpr::Lin {
                    constant: constant * k,
                    terms: terms.iter().map(|(&st, &c)| (st, c * k)).collect(),
                }
            }
            AffExpr::Messy => AffExpr::Messy,
        }
    }

    fn sub(&self, other: &AffExpr) -> AffExpr {
        self.add(&other.scale(-1))
    }

    /// `Some(c)` when the expression is the constant `c`.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            AffExpr::Lin { constant, terms } if terms.is_empty() => Some(*constant),
            _ => None,
        }
    }

    /// Symbols mentioned.
    pub fn symbols(&self) -> Vec<StIdx> {
        match self {
            AffExpr::Lin { terms, .. } => terms.keys().copied().collect(),
            AffExpr::Messy => Vec::new(),
        }
    }
}

/// Converts a WHIRL expression subtree to an [`AffExpr`].
pub fn whirl_to_affine(tree: &WhirlTree, id: WnId) -> AffExpr {
    let n = tree.node(id);
    match n.operator {
        Opr::Intconst => AffExpr::constant(n.const_val),
        Opr::Ldid => match n.st_idx {
            Some(st) => AffExpr::var(st),
            None => AffExpr::Messy,
        },
        Opr::Add => {
            whirl_to_affine(tree, n.kids[0]).add(&whirl_to_affine(tree, n.kids[1]))
        }
        Opr::Sub => {
            whirl_to_affine(tree, n.kids[0]).sub(&whirl_to_affine(tree, n.kids[1]))
        }
        Opr::Neg => whirl_to_affine(tree, n.kids[0]).scale(-1),
        Opr::Mpy => {
            let a = whirl_to_affine(tree, n.kids[0]);
            let b = whirl_to_affine(tree, n.kids[1]);
            match (a.as_const(), b.as_const()) {
                (Some(k), _) => b.scale(k),
                (_, Some(k)) => a.scale(k),
                _ => AffExpr::Messy,
            }
        }
        _ => AffExpr::Messy,
    }
}

/// One enclosing loop while walking.
#[derive(Debug, Clone)]
struct LoopFrame {
    ivar: StIdx,
    lo: AffExpr,
    hi: AffExpr,
    step: i64,
}

struct Walker<'a> {
    program: &'a Program,
    proc: &'a Procedure,
    nest: Vec<LoopFrame>,
    out: Vec<AccessRecord>,
    /// Records whose affine summary left `Messy`/`Unprojected` dimensions:
    /// `(index into out, ARRAY node, bad dims)` — the interval fallback's
    /// work list.
    pending: Vec<(usize, WnId, Vec<usize>)>,
    /// The procedure stores into a candidate index array — facts must be
    /// derived here even when every access is affine, because *other*
    /// procedures may read through the array it defines.
    defines_index_array: bool,
    /// Per enclosing loop (parallel to `nest`): scalars assigned anywhere
    /// in that loop's body, including call-clobbered by-reference actuals.
    /// A subscript mentioning one of these is *not* loop-invariant — the
    /// affine "symbolic single element" summary would be unsound, so the
    /// dimension is demoted to messy and queued for interval recovery.
    variant: Vec<std::collections::BTreeSet<StIdx>>,
}

/// Summarizes one procedure (must be at H level).
pub fn summarize_procedure(program: &Program, proc_id: ProcId) -> ProcSummary {
    support::faultpoint::hit("ipl::summarize");
    // A *stall* fault: simulates a wedged solve by spinning until the
    // budget (or an expired deadline, which denies every charge) cuts it
    // off — exercising the "stuck work degrades within its deadline"
    // guarantee end-to-end. Bounded even without a deadline: each spin
    // charges real FM steps, so the default budget stops it too.
    if support::faultpoint::fires("stall::ipl") {
        // ~8 s at the default 2M-step budget; a shorter deadline cuts it
        // off proportionally earlier.
        while support::budget::charge_steps(256) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let proc = program.procedure(proc_id);
    debug_assert_eq!(proc.level, whirl::Level::High, "IPL runs on H WHIRL");
    let mut w = Walker {
        program,
        proc,
        nest: Vec::new(),
        out: Vec::new(),
        pending: Vec::new(),
        defines_index_array: false,
        variant: Vec::new(),
    };

    // FORMAL records first: the array as found in the definition.
    for &formal in &proc.formals {
        let entry = program.symbols.get(formal);
        if matches!(program.types.get(entry.ty).kind, TyKind::Array { .. }) {
            w.record_whole_array(formal, AccessMode::Formal, proc.linenum);
        }
    }

    if let Some(root) = proc.tree.root() {
        if let Some(&body) = proc.tree.node(root).kids.last() {
            w.walk_block(body);
        }
    }

    // Fact derivation is a cheap single tree scan; it runs when this
    // procedure could either *consume* facts (unbounded dimensions pending)
    // or *produce* them for other procedures (it writes an index-array
    // candidate). The interval fixpoint — the expensive part — runs only
    // for consumers, so affine-only procedures pay nothing there.
    let mut facts = BTreeMap::new();
    if (!w.pending.is_empty() || w.defines_index_array)
        && !support::budget::exhausted()
        && interval_fallback_enabled()
    {
        facts = index_facts::derive(program, proc_id);
        if !w.pending.is_empty() {
            let recovered = interval_ai::analyze_proc(program, proc_id, &facts);
            let pending = std::mem::take(&mut w.pending);
            for (idx, wn, bad_dims) in pending {
                patch_record(&mut w.out[idx], wn, &bad_dims, &recovered);
            }
        }
    }
    ProcSummary { accesses: w.out, index_facts: facts }
}

/// Fills `Messy`/`Unprojected` sides of `rec`'s bad dimensions from the
/// interval interpreter's result; upgrades precision to `Interval` when
/// every bad dimension came back fully bounded.
fn patch_record(
    rec: &mut AccessRecord,
    wn: WnId,
    bad_dims: &[usize],
    recovered: &interval_ai::RecoveredBounds,
) {
    let mut all_bounded = !bad_dims.is_empty();
    for &d in bad_dims {
        let interval = recovered.dims.get(&(wn, d));
        let t = &rec.region.dims[d];
        let (ilb, iub) = interval.map_or((Bound::Messy, Bound::Messy), |iv| iv.to_bounds());
        let unknown = |b: &Bound| matches!(b, Bound::Messy | Bound::Unprojected);
        let lb = if unknown(&t.lb) { ilb } else { t.lb.clone() };
        let ub = if unknown(&t.ub) { iub } else { t.ub.clone() };
        if lb == t.lb && ub == t.ub {
            all_bounded = false;
            continue;
        }
        let dim_bounded = !unknown(&lb) && !unknown(&ub);
        // Any stride information died with the affine summary: the sound
        // patched dim is the dense interval.
        rec.region.dims[d] = Triplet::new(lb, ub, Bound::Const(1));
        if dim_bounded {
            obs::incr(Counter::RegionsIntervalRecovered);
        } else {
            all_bounded = false;
        }
    }
    if all_bounded {
        rec.precision = rec.precision.min(Precision::Interval);
    }
}

/// Ablation kill switch for the interval fallback (facts + fixpoint +
/// record patching), process-global, default on. Exists for the
/// `session_warm` bench's overhead measurement on affine-only workloads —
/// production paths never touch it, and flipping it mid-analysis gives
/// whichever procedures run afterwards the no-fallback behavior.
static INTERVAL_FALLBACK: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(true);

/// Enables or disables the interval fallback (ablation/bench only).
pub fn set_interval_fallback(enabled: bool) {
    INTERVAL_FALLBACK.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

fn interval_fallback_enabled() -> bool {
    INTERVAL_FALLBACK.load(std::sync::atomic::Ordering::Relaxed)
}

/// Collects every scalar symbol assigned in `root`'s subtree: direct
/// `STID` targets plus anything a `CALL` may clobber through a
/// by-reference argument (Fortran passes scalars as `PARM(LDID)`, arrays
/// as `PARM(LDA)`). Inner loops contribute their induction variables via
/// their start/step `STID`s.
fn stored_symbols(
    tree: &WhirlTree,
    root: WnId,
    out: &mut std::collections::BTreeSet<StIdx>,
) {
    let node = tree.node(root);
    match node.operator {
        Opr::Stid => {
            if let Some(st) = node.st_idx {
                out.insert(st);
            }
        }
        Opr::Call => {
            for &p in &node.kids {
                let parm = tree.node(p);
                let Some(&v) = parm.kids.first() else { continue };
                let vn = tree.node(v);
                if matches!(vn.operator, Opr::Lda | Opr::Ldid) {
                    if let Some(st) = vn.st_idx {
                        out.insert(st);
                    }
                }
            }
        }
        _ => {}
    }
    for k in node.kids.clone() {
        stored_symbols(tree, k, out);
    }
}

/// Summarizes every procedure serially.
pub fn summarize_all(program: &Program) -> Vec<ProcSummary> {
    program
        .procedures
        .indices()
        .map(|id| summarize_procedure(program, id))
        .collect()
}

impl<'a> Walker<'a> {
    fn walk_block(&mut self, block: WnId) {
        debug_assert_eq!(self.proc.tree.node(block).operator, Opr::Block);
        let kids = self.proc.tree.node(block).kids.clone();
        for k in kids {
            self.walk_stmt(k);
        }
    }

    fn walk_stmt(&mut self, id: WnId) {
        let tree = &self.proc.tree;
        let node = tree.node(id);
        match node.operator {
            Opr::Stid => self.walk_expr_uses(node.kids[0]),
            Opr::Istore => {
                let value = node.kids[0];
                let mut addr = node.kids[1];
                self.walk_expr_uses(value);
                let mut remote = false;
                if tree.node(addr).operator == Opr::RemoteArray {
                    remote = true;
                    self.walk_expr_uses(tree.node(addr).kids[1]);
                    addr = tree.node(addr).kids[0];
                }
                if tree.node(addr).operator == Opr::Array {
                    // Subscript expressions are themselves uses.
                    let n = tree.node(addr).num_dim();
                    for d in 0..n {
                        self.walk_expr_uses(tree.node(addr).array_index_kid(d));
                    }
                    self.record_array_ref(addr, AccessMode::Def, remote);
                } else {
                    self.walk_expr_uses(addr);
                }
            }
            Opr::Call => {
                let kids = node.kids.clone();
                let line = node.linenum;
                for parm in kids {
                    let v = tree.node(parm).kids[0];
                    let vn = tree.node(v);
                    if vn.operator == Opr::Lda {
                        if let Some(st) = vn.st_idx {
                            let is_array = matches!(
                                self.program.types.get(self.program.symbols.get(st).ty).kind,
                                TyKind::Array { .. }
                            );
                            if is_array {
                                self.record_whole_array(st, AccessMode::Passed, line);
                                continue;
                            }
                        }
                    }
                    self.walk_expr_uses(v);
                }
            }
            Opr::DoLoop => {
                let Some(ivar) = node.st_idx else {
                    // Malformed loop (no induction variable): walk the body
                    // without a loop frame — subscripts that mention the
                    // missing variable degrade to symbolic/messy regions.
                    self.walk_block(node.kids[3]);
                    return;
                };
                let init = tree.node(node.kids[0]).kids[0];
                let bound = tree.node(node.kids[1]).kids[1];
                let step = node.const_val;
                // Loop bound expressions are scalar uses too, but of scalars
                // — arrays inside bounds are walked for ILOADs.
                self.walk_expr_uses(init);
                self.walk_expr_uses(bound);
                let lo_e = whirl_to_affine(tree, init);
                let hi_e = whirl_to_affine(tree, bound);
                // Normalize descending loops: iterate lo..hi regardless.
                let (lo, hi) = if step < 0 { (hi_e, lo_e) } else { (lo_e, hi_e) };
                self.nest.push(LoopFrame { ivar, lo, hi, step: step.abs().max(1) });
                let mut stored = std::collections::BTreeSet::new();
                stored_symbols(tree, node.kids[3], &mut stored);
                self.variant.push(stored);
                self.walk_block(node.kids[3]);
                self.variant.pop();
                self.nest.pop();
            }
            Opr::If => {
                self.walk_expr_uses(node.kids[0]);
                self.walk_block(node.kids[1]);
                self.walk_block(node.kids[2]);
            }
            Opr::Return => {
                if let Some(&v) = node.kids.first() {
                    self.walk_expr_uses(v);
                }
            }
            _ => {}
        }
    }

    /// Recursively records USE for every `ILOAD(ARRAY)` in an expression.
    fn walk_expr_uses(&mut self, id: WnId) {
        let tree = &self.proc.tree;
        let node = tree.node(id);
        if node.operator == Opr::Iload {
            let mut addr = node.kids[0];
            let mut remote = false;
            if tree.node(addr).operator == Opr::RemoteArray {
                remote = true;
                self.walk_expr_uses(tree.node(addr).kids[1]);
                addr = tree.node(addr).kids[0];
            }
            if tree.node(addr).operator == Opr::Array {
                let n = tree.node(addr).num_dim();
                for d in 0..n {
                    self.walk_expr_uses(tree.node(addr).array_index_kid(d));
                }
                self.record_array_ref(addr, AccessMode::Use, remote);
                return;
            }
        }
        let kids = node.kids.clone();
        for k in kids {
            self.walk_expr_uses(k);
        }
    }

    /// Builds the region for an `ARRAY` node under the current nest.
    fn record_array_ref(&mut self, array_wn: WnId, mode: AccessMode, remote: bool) {
        let tree = &self.proc.tree;
        let node = tree.node(array_wn);
        let base = tree.node(node.array_base_kid());
        let Some(array_st) = base.st_idx else { return };
        let ndims = node.num_dim();
        let line = node.linenum;
        if mode == AccessMode::Def && index_facts::is_index_array(self.program, array_st) {
            self.defines_index_array = true;
        }

        // Once the analysis budget is dry, stop summarizing subscripts and
        // record the whole declared array instead — conservative and cheap.
        if support::budget::exhausted() {
            let ty = self.program.symbols.get(array_st).ty;
            let mut record =
                whole_array_record(self.program, self.proc, array_st, ty, mode, line);
            record.remote = remote;
            record.approx = true;
            record.precision = record.precision.worst(Precision::AffineApprox);
            self.out.push(record);
            return;
        }

        // Collect subscripts as AffExprs first.
        let subs_aff: Vec<AffExpr> = (0..ndims)
            .map(|d| whirl_to_affine(tree, node.array_index_kid(d)))
            .collect();

        // Build the space: dims, then loop vars (outermost first), then the
        // remaining symbols as symbolic parameters.
        let mut space = Space::with_dims(ndims as u8);
        let mut var_of: BTreeMap<StIdx, VarId> = BTreeMap::new();
        // A loop frame participates only when both bounds are affine.
        let mut frames: Vec<(usize, VarId)> = Vec::new();
        for (i, f) in self.nest.iter().enumerate() {
            if matches!(f.lo, AffExpr::Messy) || matches!(f.hi, AffExpr::Messy) {
                continue;
            }
            let name = self.program.symbols.get(f.ivar).name;
            let v = space.add_loop(name);
            var_of.insert(f.ivar, v);
            frames.push((i, v));
        }
        // Symbols from subscripts and loop bounds that are not loop vars.
        let add_syms = |e: &AffExpr, space: &mut Space, var_of: &mut BTreeMap<StIdx, VarId>| {
            for st in e.symbols() {
                var_of.entry(st).or_insert_with(|| {
                    let name = self.program.symbols.get(st).name;
                    space.add_sym(name)
                });
            }
        };
        for e in &subs_aff {
            add_syms(e, &mut space, &mut var_of);
        }
        for &(i, _) in &frames {
            let f = &self.nest[i];
            add_syms(&f.lo, &mut space, &mut var_of);
            add_syms(&f.hi, &mut space, &mut var_of);
        }

        let to_lin = |e: &AffExpr, var_of: &BTreeMap<StIdx, VarId>| -> Option<LinExpr> {
            match e {
                AffExpr::Lin { constant, terms } => {
                    let mut out = LinExpr::constant(*constant);
                    for (&st, &c) in terms {
                        out.add_term(*var_of.get(&st)?, c);
                    }
                    Some(out)
                }
                AffExpr::Messy => None,
            }
        };

        let mut nest = LoopNest::new();
        for &(i, v) in &frames {
            let f = &self.nest[i];
            let (Some(lb), Some(ub)) = (to_lin(&f.lo, &var_of), to_lin(&f.hi, &var_of))
            else {
                continue;
            };
            nest.push(LoopInfo { var: v, lb, ub, step: f.step });
        }

        let subs: Vec<Subscript> = subs_aff
            .iter()
            .map(|e| match to_lin(e, &var_of) {
                Some(l) => Subscript::Lin(l),
                None => Subscript::Messy,
            })
            .collect();

        let (mut region, mut convex, detail) = summarize_reference_detailed(&space, &nest, &subs);
        let mut bad_dims: Vec<usize> =
            detail.messy_dims.iter().chain(&detail.unprojected_dims).copied().collect();
        // A dimension whose summary leans on a scalar some enclosing loop
        // reassigns (an accumulating pointer, a call-clobbered index) is
        // not the single symbolic element it claims: the scalar takes a
        // different value each iteration. Demote it to messy — dropping
        // the convex companion, which would otherwise let FM treat the
        // stale symbol as one fixed value — and queue it for the interval
        // pass, whose widening/narrowing on the loop body re-bounds it.
        for (d, e) in subs_aff.iter().enumerate() {
            if bad_dims.contains(&d) {
                continue;
            }
            let loop_variant = e.symbols().into_iter().any(|st| {
                self.variant.iter().any(|s| s.contains(&st))
                    && !self.nest.iter().any(|f| {
                        f.ivar == st
                            && !matches!(f.lo, AffExpr::Messy)
                            && !matches!(f.hi, AffExpr::Messy)
                    })
            });
            if loop_variant {
                region.dims[d] = Triplet::messy();
                convex = None;
                bad_dims.push(d);
            }
        }
        bad_dims.sort_unstable();
        bad_dims.dedup();
        let precision = if !bad_dims.is_empty() {
            // Provisional: the post-walk interval pass may upgrade this.
            Precision::Unbounded
        } else if detail.is_exact() {
            Precision::Exact
        } else {
            Precision::AffineApprox
        };
        let via_index = (ndims == 1).then(|| self.match_via_index(array_wn)).flatten();
        self.out.push(AccessRecord {
            array: array_st,
            mode,
            region,
            convex,
            space,
            line,
            from_call: None,
            remote,
            approx: false,
            precision,
            via_index,
        });
        if !bad_dims.is_empty() {
            self.pending.push((self.out.len() - 1, array_wn, bad_dims));
        }
    }

    /// Recognizes `A(idx(g) + offset)` for a 1-D reference: the subscript
    /// is a single `ILOAD` of a 1-D index array plus a constant, and the
    /// inner subscript `g` is affine over constant-bound enclosing loops.
    fn match_via_index(&self, array_wn: WnId) -> Option<IndirectIndex> {
        let tree = &self.proc.tree;
        let sub = tree.node(array_wn).array_index_kid(0);
        let (iload, offset) = peel_const_offset(tree, sub)?;
        let n = tree.node(iload);
        if n.operator != Opr::Iload {
            return None;
        }
        let addr = tree.node(n.kids[0]);
        if addr.operator != Opr::Array || addr.num_dim() != 1 {
            return None;
        }
        let idx_st = tree.node(addr.array_base_kid()).st_idx?;
        if !matches!(
            &self.program.types.get(self.program.symbols.get(idx_st).ty).kind,
            TyKind::Array { elem: whirl::DataType::I4 | whirl::DataType::I8, dims, .. }
                if dims.len() == 1
        ) {
            return None;
        }
        let g = whirl_to_affine(tree, addr.array_index_kid(0));
        let domain = self.const_domain(&g)?;
        Some(IndirectIndex { index_array: idx_st, domain, offset })
    }

    /// The constant triplet an affine expression covers over the current
    /// constant-bound loop nest; `None` when any mentioned symbol is not a
    /// constant-bound loop variable.
    fn const_domain(&self, e: &AffExpr) -> Option<TripletRegion> {
        let AffExpr::Lin { constant, terms } = e else { return None };
        let (mut lo, mut hi) = (i128::from(*constant), i128::from(*constant));
        let mut stride: i64 = 1;
        for (&st, &c) in terms {
            let f = self.nest.iter().find(|f| f.ivar == st)?;
            let (flo, fhi) = (f.lo.as_const()?, f.hi.as_const()?);
            let (a, b) = (i128::from(c) * i128::from(flo), i128::from(c) * i128::from(fhi));
            lo += a.min(b);
            hi += a.max(b);
            // Checked: a pathological coefficient/step pair degrades the
            // whole domain to "unknown" instead of wrapping or panicking.
            stride = if terms.len() == 1 {
                c.checked_mul(f.step).and_then(i64::checked_abs)?.max(1)
            } else {
                1
            };
        }
        let (lo, hi) = (i64::try_from(lo).ok()?, i64::try_from(hi).ok()?);
        Some(TripletRegion::new(vec![Triplet::constant(lo, hi, stride)]))
    }

    /// Records a whole-declared-array region (FORMAL / PASSED), expressed in
    /// H order: zero-based extents, dimension order reversed for Fortran.
    fn record_whole_array(&mut self, array_st: StIdx, mode: AccessMode, line: u32) {
        let ty = self.program.symbols.get(array_st).ty;
        let record = whole_array_record(self.program, self.proc, array_st, ty, mode, line);
        self.out.push(record);
    }
}

/// Strips constant addends around a subscript expression, returning the
/// remaining core node and the accumulated offset: `x + 3` → `(x, 3)`,
/// `x - 1` → `(x, -1)`, `x` → `(x, 0)`.
pub(crate) fn peel_const_offset(tree: &WhirlTree, id: WnId) -> Option<(WnId, i64)> {
    let n = tree.node(id);
    match n.operator {
        Opr::Add => {
            if let Some(c) = tree.eval_const(n.kids[1]) {
                let (core, o) = peel_const_offset(tree, n.kids[0])?;
                Some((core, o + c))
            } else if let Some(c) = tree.eval_const(n.kids[0]) {
                let (core, o) = peel_const_offset(tree, n.kids[1])?;
                Some((core, o + c))
            } else {
                None
            }
        }
        Opr::Sub => {
            let c = tree.eval_const(n.kids[1])?;
            let (core, o) = peel_const_offset(tree, n.kids[0])?;
            Some((core, o - c))
        }
        _ => Some((id, 0)),
    }
}

/// Builds the whole-array record used for FORMAL/PASSED modes.
pub fn whole_array_record(
    program: &Program,
    proc: &Procedure,
    array_st: StIdx,
    ty: whirl::TyIdx,
    mode: AccessMode,
    line: u32,
) -> AccessRecord {
    let mut extents = program.types.dim_sizes(ty);
    if proc.lang == whirl::Lang::Fortran {
        extents.reverse(); // H order is row-major
    }
    let dims: Vec<regions::Triplet> = extents
        .iter()
        .map(|&e| {
            if e > 0 {
                regions::Triplet::constant(0, e - 1, 1)
            } else {
                regions::Triplet::messy() // runtime extent
            }
        })
        .collect();
    let bounds: Option<Vec<(i64, i64)>> =
        extents.iter().map(|&e| (e > 0).then_some((0, e - 1))).collect();
    let convex = bounds.map(|b| regions::convex::box_region(&b));
    let ndims = extents.len() as u8;
    let precision = if extents.iter().all(|&e| e > 0) {
        Precision::Exact
    } else {
        Precision::Unbounded // runtime extents: bounds unknown
    };
    AccessRecord {
        array: array_st,
        mode,
        region: TripletRegion::new(dims),
        convex,
        space: Space::with_dims(ndims),
        line,
        from_call: None,
        remote: false,
        approx: false,
        precision,
        via_index: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn program_f(src: &str) -> Program {
        compile_to_h(&[SourceFile::new("t.f", src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap()
    }

    fn program_c(src: &str) -> Program {
        compile_to_h(&[SourceFile::new("t.c", src, Lang::C)], DEFAULT_LAYOUT_BASE)
            .unwrap()
    }

    fn summary_of(p: &Program, name: &str) -> ProcSummary {
        summarize_procedure(p, p.find_procedure(name).unwrap())
    }

    fn st_of(p: &Program, name: &str) -> StIdx {
        p.symbols.find(p.interner.get(name).unwrap()).unwrap()
    }

    #[test]
    fn def_in_unit_stride_loop() {
        let p = program_f(
            "subroutine s\n  real a(10)\n  integer i\n  do i = 1, 10\n    a(i) = 0.0\n  end do\nend\n",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let defs: Vec<_> = s
            .for_array(a)
            .filter(|r| r.mode == AccessMode::Def)
            .collect();
        assert_eq!(defs.len(), 1);
        // Zero-based: a(1..10) → 0:9:1.
        assert_eq!(defs[0].region.to_string(), "(0:9:1)");
        assert_eq!(s.ref_count(a, AccessMode::Def), 1);
    }

    #[test]
    fn fig9_matrix_c_records() {
        let p = program_c(
            "\
int aarr[20];
void main() {
    int i, sum;
    for (i = 0; i <= 7; i++)
        aarr[i] = i;
    for (i = 0; i < 8; i++)
        aarr[i + 1] = aarr[i] + aarr[i];
    sum = 0;
    for (i = 2; i <= 6; i += 2)
        sum = sum + aarr[i];
}
",
        );
        let s = summary_of(&p, "main");
        let a = st_of(&p, "aarr");
        // Paper: "array aarr has been defined twice and used three times".
        assert_eq!(s.ref_count(a, AccessMode::Def), 2);
        assert_eq!(s.ref_count(a, AccessMode::Use), 3);
        let regions: Vec<String> = s
            .for_array(a)
            .map(|r| format!("{} {}", r.mode, r.region))
            .collect();
        assert!(regions.contains(&"DEF (0:7:1)".to_string()), "{regions:?}");
        assert!(regions.contains(&"DEF (1:8:1)".to_string()), "{regions:?}");
        assert!(regions.contains(&"USE (0:7:1)".to_string()), "{regions:?}");
        assert!(regions.contains(&"USE (2:6:2)".to_string()), "{regions:?}");
        let use07 = regions.iter().filter(|r| *r == "USE (0:7:1)").count();
        assert_eq!(use07, 2, "a[i] read twice in the second loop");
    }

    #[test]
    fn fortran_two_dim_region_is_row_major() {
        // A(1:10, 1:20), A(i, j) with i=1..10, j=1..20:
        // H order reverses dims ⇒ (j-region, i-region) = (0:19, 0:9).
        let p = program_f(
            "\
subroutine s
  real a(10, 20)
  integer i, j
  do i = 1, 10
    do j = 1, 20
      a(i, j) = 0.0
    end do
  end do
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert_eq!(def.region.to_string(), "(0:19:1, 0:9:1)");
    }

    #[test]
    fn strided_loop_stride_preserved() {
        let p = program_f(
            "subroutine s\n  real a(10)\n  integer i\n  do i = 2, 6, 2\n    a(i) = 1.0\n  end do\nend\n",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        // a(2:6:2) zero-based → 1:5:2.
        assert_eq!(def.region.to_string(), "(1:5:2)");
    }

    #[test]
    fn descending_loop_normalizes_bounds() {
        let p = program_f(
            "subroutine s\n  real a(10)\n  integer i\n  do i = 10, 1, -1\n    a(i) = 1.0\n  end do\nend\n",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert_eq!(def.region.to_string(), "(0:9:1)");
    }

    #[test]
    fn formal_array_gets_formal_record() {
        let p = program_f(
            "\
program main
  real z(5)
  common /g/ z
  call q(z)
end
subroutine q(x)
  real x(5)
  x(1) = 0.0
end
",
        );
        let s = summary_of(&p, "q");
        let x = s
            .accesses
            .iter()
            .find(|r| r.mode == AccessMode::Formal)
            .expect("formal record");
        assert_eq!(x.region.to_string(), "(0:4:1)");
    }

    #[test]
    fn passed_array_recorded_at_call_site() {
        let p = program_f(
            "\
program main
  real z(5)
  common /g/ z
  call q(z)
end
subroutine q(x)
  real x(5)
  x(1) = 0.0
end
",
        );
        let s = summary_of(&p, "main");
        let z = st_of(&p, "z");
        let passed: Vec<_> = s
            .for_array(z)
            .filter(|r| r.mode == AccessMode::Passed)
            .collect();
        assert_eq!(passed.len(), 1);
        assert_eq!(passed[0].region.to_string(), "(0:4:1)");
    }

    #[test]
    fn subscript_uses_inside_store_are_counted() {
        // a(b(i)) = 0: b is USEd, a is DEFed with a messy region.
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer b(10)
  integer i
  do i = 1, 10
    a(b(i)) = 0.0
  end do
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let b = st_of(&p, "b");
        assert_eq!(s.ref_count(b, AccessMode::Use), 1);
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert!(!def.region.is_const(), "indirect subscript must be messy");
    }

    #[test]
    fn symbolic_bound_region() {
        let p = program_f(
            "\
subroutine s(n)
  real a(100)
  common /g/ a
  integer n, i
  do i = 1, n
    a(i) = 0.0
  end do
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert!(!def.region.is_const());
        assert_eq!(def.region.dims[0].lb.as_const(), Some(0));
        // Upper bound is `n - 1` (zero-based): an IVAR-class bound.
        use regions::triplet::BoundClass;
        assert_eq!(def.region.dims[0].ub.classify(&def.space), BoundClass::IVar);
    }

    #[test]
    fn triangular_nest_summarized() {
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer i, j
  do i = 1, 10
    do j = 1, i
      a(j) = 0.0
    end do
  end do
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert_eq!(def.region.to_string(), "(0:9:1)");
    }

    #[test]
    fn if_branches_both_walked() {
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer i
  if (i .le. 5) then
    a(1) = 0.0
  else
    a(2) = 0.0
  end if
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        assert_eq!(s.ref_count(a, AccessMode::Def), 2);
    }

    #[test]
    fn affine_conversion_cases() {
        let p = program_f("subroutine s\n  integer i\n  i = 1\nend\n");
        let proc = p.procedure(p.find_procedure("s").unwrap());
        // Find the Stid's rhs (Intconst 1).
        let stid = proc
            .tree
            .iter()
            .find(|&n| proc.tree.node(n).operator == Opr::Stid)
            .unwrap();
        let rhs = proc.tree.node(stid).kids[0];
        assert_eq!(whirl_to_affine(&proc.tree, rhs).as_const(), Some(1));
    }
}
