//! IPL: the local, per-procedure information-gathering phase.
//!
//! "IPL (the local interprocedural analysis part) first gathers data flow
//! analysis and procedure summary information from each compilation unit,
//! and the information is summarized for each procedure." For every
//! procedure we walk the H-level WHIRL tree once, tracking the enclosing
//! `DO_LOOP` nest, and record one [`AccessRecord`] per array reference:
//! `DEF` for `ISTORE` targets, `USE` for `ILOAD`s, `FORMAL` for array
//! formals, and `PASSED` for whole-array call arguments.

use regions::access::AccessMode;
use regions::linexpr::LinExpr;
use regions::space::{Space, VarId};
use regions::summarize::{summarize_reference, LoopInfo, LoopNest, Subscript};
use regions::triplet::TripletRegion;
use regions::ConvexRegion;
use std::collections::BTreeMap;
use whirl::{Opr, ProcId, Procedure, Program, StIdx, TyKind, WhirlTree, WnId};

/// One summarized array reference.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// The accessed array's symbol.
    pub array: StIdx,
    /// Access mode.
    pub mode: AccessMode,
    /// The accessed region in H order (row-major dimensions, zero-based).
    pub region: TripletRegion,
    /// Convex companion for comparisons, when linearizable.
    pub convex: Option<ConvexRegion>,
    /// The variable space `region`'s symbolic bounds refer to.
    pub space: Space,
    /// Source line of the reference.
    pub line: u32,
    /// Set when this record was propagated from a callee by the IPA phase.
    pub from_call: Option<ProcId>,
    /// True for coindexed (remote, PGAS) accesses — `x(i)[p]`.
    pub remote: bool,
    /// True when the region is a budget-exhaustion fallback (whole declared
    /// array or all-messy) rather than a computed summary. Still sound —
    /// approximate records only over-state what is accessed.
    pub approx: bool,
}

/// The summary of one procedure.
#[derive(Debug, Clone, Default)]
pub struct ProcSummary {
    /// All records, in visit order.
    pub accesses: Vec<AccessRecord>,
}

impl ProcSummary {
    /// Records touching `array`.
    pub fn for_array(&self, array: StIdx) -> impl Iterator<Item = &AccessRecord> {
        self.accesses.iter().filter(move |a| a.array == array)
    }

    /// Total references for `(array, mode)` — the Dragon `References`
    /// column ("The number of region accesses for the selected array based
    /// on the access mode").
    pub fn ref_count(&self, array: StIdx, mode: AccessMode) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.array == array && a.mode == mode)
            .count() as u64
    }
}

/// An affine expression over symbol-table entries — the bridge between
/// WHIRL expression trees and the region machinery's [`LinExpr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffExpr {
    /// `constant + Σ coeff·st`.
    Lin {
        /// Constant term.
        constant: i64,
        /// Per-symbol coefficients (no zero entries).
        terms: BTreeMap<StIdx, i64>,
    },
    /// Not affine (indirect loads, products of variables, division, ...).
    Messy,
}

impl AffExpr {
    /// The constant expression.
    pub fn constant(c: i64) -> Self {
        AffExpr::Lin { constant: c, terms: BTreeMap::new() }
    }

    /// The single-variable expression.
    pub fn var(st: StIdx) -> Self {
        AffExpr::Lin { constant: 0, terms: BTreeMap::from([(st, 1)]) }
    }

    fn add(&self, other: &AffExpr) -> AffExpr {
        match (self, other) {
            (
                AffExpr::Lin { constant: c1, terms: t1 },
                AffExpr::Lin { constant: c2, terms: t2 },
            ) => {
                let mut terms = t1.clone();
                for (&st, &c) in t2 {
                    let e = terms.entry(st).or_insert(0);
                    *e += c;
                    if *e == 0 {
                        terms.remove(&st);
                    }
                }
                AffExpr::Lin { constant: c1 + c2, terms }
            }
            _ => AffExpr::Messy,
        }
    }

    fn scale(&self, k: i64) -> AffExpr {
        match self {
            AffExpr::Lin { constant, terms } => {
                if k == 0 {
                    return AffExpr::constant(0);
                }
                AffExpr::Lin {
                    constant: constant * k,
                    terms: terms.iter().map(|(&st, &c)| (st, c * k)).collect(),
                }
            }
            AffExpr::Messy => AffExpr::Messy,
        }
    }

    fn sub(&self, other: &AffExpr) -> AffExpr {
        self.add(&other.scale(-1))
    }

    /// `Some(c)` when the expression is the constant `c`.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            AffExpr::Lin { constant, terms } if terms.is_empty() => Some(*constant),
            _ => None,
        }
    }

    /// Symbols mentioned.
    pub fn symbols(&self) -> Vec<StIdx> {
        match self {
            AffExpr::Lin { terms, .. } => terms.keys().copied().collect(),
            AffExpr::Messy => Vec::new(),
        }
    }
}

/// Converts a WHIRL expression subtree to an [`AffExpr`].
pub fn whirl_to_affine(tree: &WhirlTree, id: WnId) -> AffExpr {
    let n = tree.node(id);
    match n.operator {
        Opr::Intconst => AffExpr::constant(n.const_val),
        Opr::Ldid => match n.st_idx {
            Some(st) => AffExpr::var(st),
            None => AffExpr::Messy,
        },
        Opr::Add => {
            whirl_to_affine(tree, n.kids[0]).add(&whirl_to_affine(tree, n.kids[1]))
        }
        Opr::Sub => {
            whirl_to_affine(tree, n.kids[0]).sub(&whirl_to_affine(tree, n.kids[1]))
        }
        Opr::Neg => whirl_to_affine(tree, n.kids[0]).scale(-1),
        Opr::Mpy => {
            let a = whirl_to_affine(tree, n.kids[0]);
            let b = whirl_to_affine(tree, n.kids[1]);
            match (a.as_const(), b.as_const()) {
                (Some(k), _) => b.scale(k),
                (_, Some(k)) => a.scale(k),
                _ => AffExpr::Messy,
            }
        }
        _ => AffExpr::Messy,
    }
}

/// One enclosing loop while walking.
#[derive(Debug, Clone)]
struct LoopFrame {
    ivar: StIdx,
    lo: AffExpr,
    hi: AffExpr,
    step: i64,
}

struct Walker<'a> {
    program: &'a Program,
    proc: &'a Procedure,
    proc_id: ProcId,
    nest: Vec<LoopFrame>,
    out: Vec<AccessRecord>,
}

/// Summarizes one procedure (must be at H level).
pub fn summarize_procedure(program: &Program, proc_id: ProcId) -> ProcSummary {
    support::faultpoint::hit("ipl::summarize");
    // A *stall* fault: simulates a wedged solve by spinning until the
    // budget (or an expired deadline, which denies every charge) cuts it
    // off — exercising the "stuck work degrades within its deadline"
    // guarantee end-to-end. Bounded even without a deadline: each spin
    // charges real FM steps, so the default budget stops it too.
    if support::faultpoint::fires("stall::ipl") {
        // ~8 s at the default 2M-step budget; a shorter deadline cuts it
        // off proportionally earlier.
        while support::budget::charge_steps(256) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let proc = program.procedure(proc_id);
    debug_assert_eq!(proc.level, whirl::Level::High, "IPL runs on H WHIRL");
    let mut w = Walker { program, proc, proc_id, nest: Vec::new(), out: Vec::new() };

    // FORMAL records first: the array as found in the definition.
    for &formal in &proc.formals {
        let entry = program.symbols.get(formal);
        if matches!(program.types.get(entry.ty).kind, TyKind::Array { .. }) {
            w.record_whole_array(formal, AccessMode::Formal, proc.linenum);
        }
    }

    if let Some(root) = proc.tree.root() {
        if let Some(&body) = proc.tree.node(root).kids.last() {
            w.walk_block(body);
        }
    }
    ProcSummary { accesses: w.out }
}

/// Summarizes every procedure serially.
pub fn summarize_all(program: &Program) -> Vec<ProcSummary> {
    program
        .procedures
        .indices()
        .map(|id| summarize_procedure(program, id))
        .collect()
}

impl<'a> Walker<'a> {
    fn walk_block(&mut self, block: WnId) {
        debug_assert_eq!(self.proc.tree.node(block).operator, Opr::Block);
        let kids = self.proc.tree.node(block).kids.clone();
        for k in kids {
            self.walk_stmt(k);
        }
    }

    fn walk_stmt(&mut self, id: WnId) {
        let tree = &self.proc.tree;
        let node = tree.node(id);
        match node.operator {
            Opr::Stid => self.walk_expr_uses(node.kids[0]),
            Opr::Istore => {
                let value = node.kids[0];
                let mut addr = node.kids[1];
                self.walk_expr_uses(value);
                let mut remote = false;
                if tree.node(addr).operator == Opr::RemoteArray {
                    remote = true;
                    self.walk_expr_uses(tree.node(addr).kids[1]);
                    addr = tree.node(addr).kids[0];
                }
                if tree.node(addr).operator == Opr::Array {
                    // Subscript expressions are themselves uses.
                    let n = tree.node(addr).num_dim();
                    for d in 0..n {
                        self.walk_expr_uses(tree.node(addr).array_index_kid(d));
                    }
                    self.record_array_ref(addr, AccessMode::Def, remote);
                } else {
                    self.walk_expr_uses(addr);
                }
            }
            Opr::Call => {
                let kids = node.kids.clone();
                let line = node.linenum;
                for parm in kids {
                    let v = tree.node(parm).kids[0];
                    let vn = tree.node(v);
                    if vn.operator == Opr::Lda {
                        if let Some(st) = vn.st_idx {
                            let is_array = matches!(
                                self.program.types.get(self.program.symbols.get(st).ty).kind,
                                TyKind::Array { .. }
                            );
                            if is_array {
                                self.record_whole_array(st, AccessMode::Passed, line);
                                continue;
                            }
                        }
                    }
                    self.walk_expr_uses(v);
                }
            }
            Opr::DoLoop => {
                let Some(ivar) = node.st_idx else {
                    // Malformed loop (no induction variable): walk the body
                    // without a loop frame — subscripts that mention the
                    // missing variable degrade to symbolic/messy regions.
                    self.walk_block(node.kids[3]);
                    return;
                };
                let init = tree.node(node.kids[0]).kids[0];
                let bound = tree.node(node.kids[1]).kids[1];
                let step = node.const_val;
                // Loop bound expressions are scalar uses too, but of scalars
                // — arrays inside bounds are walked for ILOADs.
                self.walk_expr_uses(init);
                self.walk_expr_uses(bound);
                let lo_e = whirl_to_affine(tree, init);
                let hi_e = whirl_to_affine(tree, bound);
                // Normalize descending loops: iterate lo..hi regardless.
                let (lo, hi) = if step < 0 { (hi_e, lo_e) } else { (lo_e, hi_e) };
                self.nest.push(LoopFrame { ivar, lo, hi, step: step.abs().max(1) });
                self.walk_block(node.kids[3]);
                self.nest.pop();
            }
            Opr::If => {
                self.walk_expr_uses(node.kids[0]);
                self.walk_block(node.kids[1]);
                self.walk_block(node.kids[2]);
            }
            Opr::Return => {
                if let Some(&v) = node.kids.first() {
                    self.walk_expr_uses(v);
                }
            }
            _ => {}
        }
    }

    /// Recursively records USE for every `ILOAD(ARRAY)` in an expression.
    fn walk_expr_uses(&mut self, id: WnId) {
        let tree = &self.proc.tree;
        let node = tree.node(id);
        if node.operator == Opr::Iload {
            let mut addr = node.kids[0];
            let mut remote = false;
            if tree.node(addr).operator == Opr::RemoteArray {
                remote = true;
                self.walk_expr_uses(tree.node(addr).kids[1]);
                addr = tree.node(addr).kids[0];
            }
            if tree.node(addr).operator == Opr::Array {
                let n = tree.node(addr).num_dim();
                for d in 0..n {
                    self.walk_expr_uses(tree.node(addr).array_index_kid(d));
                }
                self.record_array_ref(addr, AccessMode::Use, remote);
                return;
            }
        }
        let kids = node.kids.clone();
        for k in kids {
            self.walk_expr_uses(k);
        }
    }

    /// Builds the region for an `ARRAY` node under the current nest.
    fn record_array_ref(&mut self, array_wn: WnId, mode: AccessMode, remote: bool) {
        let tree = &self.proc.tree;
        let node = tree.node(array_wn);
        let base = tree.node(node.array_base_kid());
        let Some(array_st) = base.st_idx else { return };
        let ndims = node.num_dim();
        let line = node.linenum;

        // Once the analysis budget is dry, stop summarizing subscripts and
        // record the whole declared array instead — conservative and cheap.
        if support::budget::exhausted() {
            let ty = self.program.symbols.get(array_st).ty;
            let mut record =
                whole_array_record(self.program, self.proc, array_st, ty, mode, line);
            record.remote = remote;
            record.approx = true;
            self.out.push(record);
            return;
        }

        // Collect subscripts as AffExprs first.
        let subs_aff: Vec<AffExpr> = (0..ndims)
            .map(|d| whirl_to_affine(tree, node.array_index_kid(d)))
            .collect();

        // Build the space: dims, then loop vars (outermost first), then the
        // remaining symbols as symbolic parameters.
        let mut space = Space::with_dims(ndims as u8);
        let mut var_of: BTreeMap<StIdx, VarId> = BTreeMap::new();
        // A loop frame participates only when both bounds are affine.
        let mut frames: Vec<(usize, VarId)> = Vec::new();
        for (i, f) in self.nest.iter().enumerate() {
            if matches!(f.lo, AffExpr::Messy) || matches!(f.hi, AffExpr::Messy) {
                continue;
            }
            let name = self.program.symbols.get(f.ivar).name;
            let v = space.add_loop(name);
            var_of.insert(f.ivar, v);
            frames.push((i, v));
        }
        // Symbols from subscripts and loop bounds that are not loop vars.
        let add_syms = |e: &AffExpr, space: &mut Space, var_of: &mut BTreeMap<StIdx, VarId>| {
            for st in e.symbols() {
                var_of.entry(st).or_insert_with(|| {
                    let name = self.program.symbols.get(st).name;
                    space.add_sym(name)
                });
            }
        };
        for e in &subs_aff {
            add_syms(e, &mut space, &mut var_of);
        }
        for &(i, _) in &frames {
            let f = &self.nest[i];
            add_syms(&f.lo, &mut space, &mut var_of);
            add_syms(&f.hi, &mut space, &mut var_of);
        }

        let to_lin = |e: &AffExpr, var_of: &BTreeMap<StIdx, VarId>| -> Option<LinExpr> {
            match e {
                AffExpr::Lin { constant, terms } => {
                    let mut out = LinExpr::constant(*constant);
                    for (&st, &c) in terms {
                        out.add_term(*var_of.get(&st)?, c);
                    }
                    Some(out)
                }
                AffExpr::Messy => None,
            }
        };

        let mut nest = LoopNest::new();
        for &(i, v) in &frames {
            let f = &self.nest[i];
            let (Some(lb), Some(ub)) = (to_lin(&f.lo, &var_of), to_lin(&f.hi, &var_of))
            else {
                continue;
            };
            nest.push(LoopInfo { var: v, lb, ub, step: f.step });
        }

        let subs: Vec<Subscript> = subs_aff
            .iter()
            .map(|e| match to_lin(e, &var_of) {
                Some(l) => Subscript::Lin(l),
                None => Subscript::Messy,
            })
            .collect();

        let (region, convex) = summarize_reference(&space, &nest, &subs);
        self.out.push(AccessRecord {
            array: array_st,
            mode,
            region,
            convex,
            space,
            line,
            from_call: None,
            remote,
            approx: false,
        });
        let _ = self.proc_id;
    }

    /// Records a whole-declared-array region (FORMAL / PASSED), expressed in
    /// H order: zero-based extents, dimension order reversed for Fortran.
    fn record_whole_array(&mut self, array_st: StIdx, mode: AccessMode, line: u32) {
        let ty = self.program.symbols.get(array_st).ty;
        let record = whole_array_record(self.program, self.proc, array_st, ty, mode, line);
        self.out.push(record);
    }
}

/// Builds the whole-array record used for FORMAL/PASSED modes.
pub fn whole_array_record(
    program: &Program,
    proc: &Procedure,
    array_st: StIdx,
    ty: whirl::TyIdx,
    mode: AccessMode,
    line: u32,
) -> AccessRecord {
    let mut extents = program.types.dim_sizes(ty);
    if proc.lang == whirl::Lang::Fortran {
        extents.reverse(); // H order is row-major
    }
    let dims: Vec<regions::Triplet> = extents
        .iter()
        .map(|&e| {
            if e > 0 {
                regions::Triplet::constant(0, e - 1, 1)
            } else {
                regions::Triplet::messy() // runtime extent
            }
        })
        .collect();
    let bounds: Option<Vec<(i64, i64)>> =
        extents.iter().map(|&e| (e > 0).then_some((0, e - 1))).collect();
    let convex = bounds.map(|b| regions::convex::box_region(&b));
    let ndims = extents.len() as u8;
    AccessRecord {
        array: array_st,
        mode,
        region: TripletRegion::new(dims),
        convex,
        space: Space::with_dims(ndims),
        line,
        from_call: None,
        remote: false,
        approx: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn program_f(src: &str) -> Program {
        compile_to_h(&[SourceFile::new("t.f", src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap()
    }

    fn program_c(src: &str) -> Program {
        compile_to_h(&[SourceFile::new("t.c", src, Lang::C)], DEFAULT_LAYOUT_BASE)
            .unwrap()
    }

    fn summary_of(p: &Program, name: &str) -> ProcSummary {
        summarize_procedure(p, p.find_procedure(name).unwrap())
    }

    fn st_of(p: &Program, name: &str) -> StIdx {
        p.symbols.find(p.interner.get(name).unwrap()).unwrap()
    }

    #[test]
    fn def_in_unit_stride_loop() {
        let p = program_f(
            "subroutine s\n  real a(10)\n  integer i\n  do i = 1, 10\n    a(i) = 0.0\n  end do\nend\n",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let defs: Vec<_> = s
            .for_array(a)
            .filter(|r| r.mode == AccessMode::Def)
            .collect();
        assert_eq!(defs.len(), 1);
        // Zero-based: a(1..10) → 0:9:1.
        assert_eq!(defs[0].region.to_string(), "(0:9:1)");
        assert_eq!(s.ref_count(a, AccessMode::Def), 1);
    }

    #[test]
    fn fig9_matrix_c_records() {
        let p = program_c(
            "\
int aarr[20];
void main() {
    int i, sum;
    for (i = 0; i <= 7; i++)
        aarr[i] = i;
    for (i = 0; i < 8; i++)
        aarr[i + 1] = aarr[i] + aarr[i];
    sum = 0;
    for (i = 2; i <= 6; i += 2)
        sum = sum + aarr[i];
}
",
        );
        let s = summary_of(&p, "main");
        let a = st_of(&p, "aarr");
        // Paper: "array aarr has been defined twice and used three times".
        assert_eq!(s.ref_count(a, AccessMode::Def), 2);
        assert_eq!(s.ref_count(a, AccessMode::Use), 3);
        let regions: Vec<String> = s
            .for_array(a)
            .map(|r| format!("{} {}", r.mode, r.region))
            .collect();
        assert!(regions.contains(&"DEF (0:7:1)".to_string()), "{regions:?}");
        assert!(regions.contains(&"DEF (1:8:1)".to_string()), "{regions:?}");
        assert!(regions.contains(&"USE (0:7:1)".to_string()), "{regions:?}");
        assert!(regions.contains(&"USE (2:6:2)".to_string()), "{regions:?}");
        let use07 = regions.iter().filter(|r| *r == "USE (0:7:1)").count();
        assert_eq!(use07, 2, "a[i] read twice in the second loop");
    }

    #[test]
    fn fortran_two_dim_region_is_row_major() {
        // A(1:10, 1:20), A(i, j) with i=1..10, j=1..20:
        // H order reverses dims ⇒ (j-region, i-region) = (0:19, 0:9).
        let p = program_f(
            "\
subroutine s
  real a(10, 20)
  integer i, j
  do i = 1, 10
    do j = 1, 20
      a(i, j) = 0.0
    end do
  end do
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert_eq!(def.region.to_string(), "(0:19:1, 0:9:1)");
    }

    #[test]
    fn strided_loop_stride_preserved() {
        let p = program_f(
            "subroutine s\n  real a(10)\n  integer i\n  do i = 2, 6, 2\n    a(i) = 1.0\n  end do\nend\n",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        // a(2:6:2) zero-based → 1:5:2.
        assert_eq!(def.region.to_string(), "(1:5:2)");
    }

    #[test]
    fn descending_loop_normalizes_bounds() {
        let p = program_f(
            "subroutine s\n  real a(10)\n  integer i\n  do i = 10, 1, -1\n    a(i) = 1.0\n  end do\nend\n",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert_eq!(def.region.to_string(), "(0:9:1)");
    }

    #[test]
    fn formal_array_gets_formal_record() {
        let p = program_f(
            "\
program main
  real z(5)
  common /g/ z
  call q(z)
end
subroutine q(x)
  real x(5)
  x(1) = 0.0
end
",
        );
        let s = summary_of(&p, "q");
        let x = s
            .accesses
            .iter()
            .find(|r| r.mode == AccessMode::Formal)
            .expect("formal record");
        assert_eq!(x.region.to_string(), "(0:4:1)");
    }

    #[test]
    fn passed_array_recorded_at_call_site() {
        let p = program_f(
            "\
program main
  real z(5)
  common /g/ z
  call q(z)
end
subroutine q(x)
  real x(5)
  x(1) = 0.0
end
",
        );
        let s = summary_of(&p, "main");
        let z = st_of(&p, "z");
        let passed: Vec<_> = s
            .for_array(z)
            .filter(|r| r.mode == AccessMode::Passed)
            .collect();
        assert_eq!(passed.len(), 1);
        assert_eq!(passed[0].region.to_string(), "(0:4:1)");
    }

    #[test]
    fn subscript_uses_inside_store_are_counted() {
        // a(b(i)) = 0: b is USEd, a is DEFed with a messy region.
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer b(10)
  integer i
  do i = 1, 10
    a(b(i)) = 0.0
  end do
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let b = st_of(&p, "b");
        assert_eq!(s.ref_count(b, AccessMode::Use), 1);
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert!(!def.region.is_const(), "indirect subscript must be messy");
    }

    #[test]
    fn symbolic_bound_region() {
        let p = program_f(
            "\
subroutine s(n)
  real a(100)
  common /g/ a
  integer n, i
  do i = 1, n
    a(i) = 0.0
  end do
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert!(!def.region.is_const());
        assert_eq!(def.region.dims[0].lb.as_const(), Some(0));
        // Upper bound is `n - 1` (zero-based): an IVAR-class bound.
        use regions::triplet::BoundClass;
        assert_eq!(def.region.dims[0].ub.classify(&def.space), BoundClass::IVar);
    }

    #[test]
    fn triangular_nest_summarized() {
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer i, j
  do i = 1, 10
    do j = 1, i
      a(j) = 0.0
    end do
  end do
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        let def = s.for_array(a).find(|r| r.mode == AccessMode::Def).unwrap();
        assert_eq!(def.region.to_string(), "(0:9:1)");
    }

    #[test]
    fn if_branches_both_walked() {
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer i
  if (i .le. 5) then
    a(1) = 0.0
  else
    a(2) = 0.0
  end if
end
",
        );
        let s = summary_of(&p, "s");
        let a = st_of(&p, "a");
        assert_eq!(s.ref_count(a, AccessMode::Def), 2);
    }

    #[test]
    fn affine_conversion_cases() {
        let p = program_f("subroutine s\n  integer i\n  i = 1\nend\n");
        let proc = p.procedure(p.find_procedure("s").unwrap());
        // Find the Stid's rhs (Intconst 1).
        let stid = proc
            .tree
            .iter()
            .find(|&n| proc.tree.node(n).operator == Opr::Stid)
            .unwrap();
        let rhs = proc.tree.node(stid).kids[0];
        assert_eq!(whirl_to_affine(&proc.tree, rhs).as_const(), Some(1));
    }
}
