//! The IPA call graph.
//!
//! "The call graph is generated at this level, where each node in this graph
//! represents a procedure and the caller-callee relationships are expressed
//! by the edges. This call graph should be traversed to extract the
//! necessary array analysis information needed by our tool." We provide the
//! same access paths the paper uses: total size, a node iterator, pre-order
//! traversal from the entries (Algorithm 1's `while !cg.empty()`), a
//! bottom-up order for summary propagation, and per-node call-site
//! iteration.

use support::idx::IndexVec;
use whirl::{Opr, ProcId, Program, StIdx, WnId};

/// One call site inside a caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The calling procedure.
    pub caller: ProcId,
    /// The called procedure.
    pub callee: ProcId,
    /// The `Call` node in the caller's tree.
    pub wn: WnId,
    /// Source line of the call.
    pub line: u32,
    /// Actual arguments: for each parameter position, the array symbol when
    /// the actual is a whole-array (`PARM(LDA ...)`), else `None`.
    pub array_actuals: Vec<Option<StIdx>>,
}

/// One call-graph node.
#[derive(Debug, Clone, Default)]
pub struct CgNode {
    /// Outgoing call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Procedures that call this one.
    pub callers: Vec<ProcId>,
}

/// The call graph of a [`Program`].
#[derive(Debug)]
pub struct CallGraph {
    nodes: IndexVec<ProcId, CgNode>,
    entries: Vec<ProcId>,
}

impl CallGraph {
    /// Builds the graph by scanning every procedure's WHIRL tree for `Call`
    /// nodes. Calls to symbols with no matching procedure are ignored
    /// (external library calls).
    pub fn build(program: &Program) -> Self {
        let _span = support::obs::span("ipa.callgraph");
        let mut nodes: IndexVec<ProcId, CgNode> =
            (0..program.procedure_count()).map(|_| CgNode::default()).collect();

        for (caller, proc) in program.procedures.iter_enumerated() {
            for wn in proc.tree.iter() {
                let node = proc.tree.node(wn);
                if node.operator != Opr::Call {
                    continue;
                }
                let Some(callee_st) = node.st_idx else { continue };
                let callee_name = program.symbols.get(callee_st).name;
                let Some(callee) = program.proc_by_symbol(callee_name) else {
                    continue;
                };
                let array_actuals = node
                    .kids
                    .iter()
                    .map(|&parm| {
                        let v = proc.tree.node(parm).kids.first().copied()?;
                        let vn = proc.tree.node(v);
                        (vn.operator == Opr::Lda).then_some(vn.st_idx).flatten()
                    })
                    .collect();
                nodes[caller].calls.push(CallSite {
                    caller,
                    callee,
                    wn,
                    line: node.linenum,
                    array_actuals,
                });
                if !nodes[callee].callers.contains(&caller) {
                    nodes[callee].callers.push(caller);
                }
            }
        }

        // Entries: explicit program entries, plus any procedure nobody calls.
        let mut entries: Vec<ProcId> = Vec::new();
        for (id, proc) in program.procedures.iter_enumerated() {
            let uncalled = nodes[id].callers.is_empty();
            let is_main = program.name_of(proc.name) == "main"
                || program.name_of(proc.name) == "applu";
            if (uncalled || is_main)
                && !entries.contains(&id) {
                    entries.push(id);
                }
        }
        CallGraph { nodes, entries }
    }

    /// Total number of nodes — "The call graph structure retrieves the total
    /// size of the graph which is useful while traversing."
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// The entry procedures.
    pub fn entries(&self) -> &[ProcId] {
        &self.entries
    }

    /// The node for `id`.
    pub fn node(&self, id: ProcId) -> &CgNode {
        &self.nodes[id]
    }

    /// Call sites of `id`.
    pub fn calls(&self, id: ProcId) -> &[CallSite] {
        &self.nodes[id].calls
    }

    /// Direct callees of `id`, deduplicated, in first-call order.
    pub fn callees(&self, id: ProcId) -> Vec<ProcId> {
        let mut out = Vec::new();
        for c in &self.nodes[id].calls {
            if !out.contains(&c.callee) {
                out.push(c.callee);
            }
        }
        out
    }

    /// Pre-order traversal from the entries; unreachable nodes are appended
    /// afterwards so every procedure is visited exactly once (Algorithm 1
    /// iterates the whole graph).
    pub fn pre_order(&self) -> Vec<ProcId> {
        let mut order = Vec::with_capacity(self.size());
        let mut seen = vec![false; self.size()];
        let mut visit_stack: Vec<ProcId> = Vec::new();
        for &e in self.entries.iter().rev() {
            visit_stack.push(e);
        }
        while let Some(id) = visit_stack.pop() {
            use support::idx::Idx;
            if seen[id.as_usize()] {
                continue;
            }
            seen[id.as_usize()] = true;
            order.push(id);
            for callee in self.callees(id).into_iter().rev() {
                visit_stack.push(callee);
            }
        }
        for id in self.nodes.indices() {
            use support::idx::Idx;
            if !seen[id.as_usize()] {
                order.push(id);
            }
        }
        order
    }

    /// Bottom-up order: every procedure appears after all procedures it
    /// calls (ignoring back edges on recursive cycles, which are reported
    /// separately via [`CallGraph::is_recursive`]).
    pub fn bottom_up(&self) -> Vec<ProcId> {
        let mut order = Vec::with_capacity(self.size());
        let mut state = vec![0u8; self.size()]; // 0 new, 1 visiting, 2 done
        for id in self.nodes.indices() {
            self.post_order(id, &mut state, &mut order);
        }
        order
    }

    fn post_order(&self, id: ProcId, state: &mut [u8], order: &mut Vec<ProcId>) {
        use support::idx::Idx;
        if state[id.as_usize()] != 0 {
            return;
        }
        state[id.as_usize()] = 1;
        for callee in self.callees(id) {
            if state[callee.as_usize()] == 0 {
                self.post_order(callee, state, order);
            }
        }
        state[id.as_usize()] = 2;
        order.push(id);
    }

    /// The ancestor closure of `seeds`: the seeds themselves plus every
    /// procedure that can reach a seed through call edges (direct and
    /// transitive callers). This is the incremental-analysis invalidation
    /// rule — a procedure's *propagated* summary depends exactly on the
    /// summaries of its call-graph descendants, so when a procedure changes,
    /// the procedures whose propagated summaries may change are its
    /// ancestors. Returns a membership mask indexable by `ProcId`.
    pub fn ancestor_closure(&self, seeds: impl IntoIterator<Item = ProcId>) -> Vec<bool> {
        use support::idx::Idx;
        let mut mask = vec![false; self.size()];
        let mut stack: Vec<ProcId> = Vec::new();
        for s in seeds {
            if !mask[s.as_usize()] {
                mask[s.as_usize()] = true;
                stack.push(s);
            }
        }
        while let Some(id) = stack.pop() {
            for &caller in &self.nodes[id].callers {
                if !mask[caller.as_usize()] {
                    mask[caller.as_usize()] = true;
                    stack.push(caller);
                }
            }
        }
        mask
    }

    /// True when the graph contains a call cycle.
    pub fn is_recursive(&self) -> bool {
        let mut state = vec![0u8; self.size()];
        for id in self.nodes.indices() {
            if self.cycle_from(id, &mut state) {
                return true;
            }
        }
        false
    }

    fn cycle_from(&self, id: ProcId, state: &mut [u8]) -> bool {
        use support::idx::Idx;
        match state[id.as_usize()] {
            1 => return true,
            2 => return false,
            _ => {}
        }
        state[id.as_usize()] = 1;
        for callee in self.callees(id) {
            if self.cycle_from(callee, state) {
                return true;
            }
        }
        state[id.as_usize()] = 2;
        false
    }

    /// Graphviz DOT rendering — the Dragon call graph view (Fig. 11).
    pub fn to_dot(&self, program: &Program) -> String {
        let mut out = String::from("digraph callgraph {\n  node [shape=box];\n");
        for (id, proc) in program.procedures.iter_enumerated() {
            let name = display_name(program, proc);
            out.push_str(&format!("  p{} [label=\"{}\"];\n", id.0, name));
        }
        for node in self.nodes.iter() {
            for c in &node.calls {
                out.push_str(&format!("  p{} -> p{};\n", c.caller.0, c.callee.0));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Dragon's display name for a procedure: entry points show as `MAIN__`
/// (the Fortran main convention visible in Fig. 11), everything else by
/// source name.
pub fn display_name(program: &Program, proc: &whirl::Procedure) -> String {
    let raw = program.name_of(proc.name);
    // Entry detection mirrors CallGraph::build.
    if raw == "main" || raw == "applu" {
        "MAIN__".to_string()
    } else {
        raw.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn program(src: &str) -> Program {
        compile_to_h(
            &[SourceFile::new("t.f", src, Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        )
        .unwrap()
    }

    const DIAMOND: &str = "\
program main
  call a
  call b
end
subroutine a
  call c
end
subroutine b
  call c
end
subroutine c
  return
end
";

    #[test]
    fn builds_diamond_graph() {
        let p = program(DIAMOND);
        let cg = CallGraph::build(&p);
        assert_eq!(cg.size(), 4);
        let main = p.find_procedure("main").unwrap();
        let c = p.find_procedure("c").unwrap();
        assert_eq!(cg.callees(main).len(), 2);
        assert_eq!(cg.node(c).callers.len(), 2);
        assert_eq!(cg.entries(), &[main]);
    }

    #[test]
    fn pre_order_visits_all_once_parent_first() {
        let p = program(DIAMOND);
        let cg = CallGraph::build(&p);
        let order = cg.pre_order();
        assert_eq!(order.len(), 4);
        let main = p.find_procedure("main").unwrap();
        assert_eq!(order[0], main);
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn bottom_up_puts_callees_first() {
        let p = program(DIAMOND);
        let cg = CallGraph::build(&p);
        let order = cg.bottom_up();
        let posn = |name: &str| {
            let id = p.find_procedure(name).unwrap();
            order.iter().position(|&x| x == id).unwrap()
        };
        assert!(posn("c") < posn("a"));
        assert!(posn("c") < posn("b"));
        assert!(posn("a") < posn("main"));
    }

    #[test]
    fn call_sites_carry_array_actuals() {
        let p = program(
            "\
program main
  real a(10)
  common /g/ a
  integer k
  call f(a, k)
end
subroutine f(x, n)
  real x(10)
  integer n
  x(1) = 0.0
end
",
        );
        let cg = CallGraph::build(&p);
        let main = p.find_procedure("main").unwrap();
        let site = &cg.calls(main)[0];
        assert_eq!(site.array_actuals.len(), 2);
        assert!(site.array_actuals[0].is_some(), "first actual is array a");
        assert!(site.array_actuals[1].is_none(), "second actual is scalar");
        let a_sym = p.interner.get("a").unwrap();
        assert_eq!(
            p.symbols.get(site.array_actuals[0].unwrap()).name,
            a_sym
        );
    }

    #[test]
    fn recursion_detection() {
        let p = program("\
subroutine r
  call r
end
");
        let cg = CallGraph::build(&p);
        assert!(cg.is_recursive());
        let p2 = program(DIAMOND);
        assert!(!CallGraph::build(&p2).is_recursive());
    }

    #[test]
    fn unreachable_procedures_still_traversed() {
        let p = program("\
program main
  return
end
subroutine orphan_helper
  call leaf
end
subroutine leaf
  return
end
");
        let cg = CallGraph::build(&p);
        assert_eq!(cg.pre_order().len(), 3);
        // orphan_helper is uncalled ⇒ also an entry.
        assert!(cg.entries().len() >= 2);
    }

    #[test]
    fn dot_output_shape() {
        let p = program(DIAMOND);
        let cg = CallGraph::build(&p);
        let dot = cg.to_dot(&p);
        assert!(dot.starts_with("digraph callgraph {"));
        assert!(dot.contains("MAIN__"));
        assert!(dot.contains("->"));
        assert_eq!(dot.matches("->").count(), 4);
    }

    #[test]
    fn ancestor_closure_walks_caller_edges_transitively() {
        let p = program(DIAMOND);
        let cg = CallGraph::build(&p);
        let id = |n: &str| p.find_procedure(n).unwrap();
        use support::idx::Idx;
        let at = |mask: &[bool], n: &str| mask[id(n).as_usize()];

        // c is called by a and b, both called by main: everything invalidates.
        let mask = cg.ancestor_closure([id("c")]);
        assert!(at(&mask, "c") && at(&mask, "a") && at(&mask, "b") && at(&mask, "main"));

        // a's ancestors are just main; b and c stay clean.
        let mask = cg.ancestor_closure([id("a")]);
        assert!(at(&mask, "a") && at(&mask, "main"));
        assert!(!at(&mask, "b") && !at(&mask, "c"));

        // main has no callers: only itself.
        let mask = cg.ancestor_closure([id("main")]);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 1);

        // Empty seed set: nothing affected.
        let mask = cg.ancestor_closure([]);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn bottom_up_handles_recursion_without_hanging() {
        let p = program("subroutine r\n  call r\nend\n");
        let cg = CallGraph::build(&p);
        assert_eq!(cg.bottom_up().len(), 1);
    }
}
