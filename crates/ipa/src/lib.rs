//! Interprocedural analysis (the paper's IPL + IPA phases).
//!
//! "Interprocedural analysis consists of two phases: an information
//! gathering phase (IPL) and the main optimization phase (IPA)."
//!
//! - [`callgraph`] — nodes = procedures, edges = call sites; pre-order and
//!   bottom-up traversals, DOT export for the Dragon view (Fig. 11);
//! - [`local`] — IPL: per-procedure array-access summaries built from the
//!   H-level WHIRL tree (`DEF`/`USE`/`FORMAL`/`PASSED` records with triplet
//!   and convex regions);
//! - [`propagate`] — IPA: bottom-up summary propagation with formal→actual
//!   translation;
//! - [`sideeffect`] — call-site effect sets and the Fig. 1 parallelization
//!   independence test;
//! - [`parallel`] — crossbeam-parallel IPL driver;
//! - [`isolate`] — budget-bounded, panic-contained IPL used by robust
//!   drivers (one failure degrades one procedure, not the run);
//! - [`rebase`] — rewrites cached summaries onto a re-parsed program (the
//!   incremental session's cache-hit path).

pub mod callgraph;
pub mod index_facts;
pub mod interval_ai;
pub mod isolate;
pub mod local;
pub mod loop_parallel;
pub mod parallel;
pub mod persist;
pub mod propagate;
pub mod rebase;
pub mod sideeffect;

pub use callgraph::{CallGraph, CallSite};
pub use index_facts::IndexArrayFact;
pub use interval_ai::RecoveredBounds;
pub use isolate::{IplFailure, IplOutcome};
pub use local::{AccessRecord, ProcSummary};
pub use loop_parallel::{analyze_proc_loops, analyze_proc_loops_with_facts, LoopVerdict, ScalarUse};
pub use propagate::{analyze, validated_index_facts, IpaResult};
pub use sideeffect::{find_parallel_pairs, independent, CallEffects, ParallelPair};
