//! Interval abstract interpretation over WHIRL loop nests.
//!
//! Runs wherever the Fourier–Motzkin machinery bails: a classic
//! per-variable `[lo, hi]` analysis ([`regions::Interval`]) evaluated over
//! a procedure body, with delayed widening at loop back-edges, a bounded
//! narrowing pass, and a trip-count clamp for self-increment recurrences
//! (`k = k + c` inside a constant-trip loop stays `[k₀, k₀ + c·(T-1)]`
//! instead of shooting to `+∞`).
//!
//! The result maps `(ARRAY node, dimension)` to the interval its subscript
//! expression can take — consulted by IPL only for dimensions the affine
//! path left `Messy`/`Unprojected`, so affine-only procedures never pay
//! for a fixpoint (the pass is invoked lazily, see [`crate::local`]).
//!
//! Soundness discipline: every recovered interval over-approximates the
//! concrete subscript values, so it may *refute* overlap or bound a region,
//! but never proves coverage; consumers must keep interval-derived verdicts
//! at `possible` severity.

use crate::index_facts::IndexArrayFact;
use regions::{Interval, Triplet};
use std::collections::BTreeMap;
use whirl::{Opr, ProcId, Program, StClass, StIdx, TyKind, WhirlTree, WnId};

/// Subscript intervals recovered for array reference dimensions.
#[derive(Debug, Default)]
pub struct RecoveredBounds {
    /// `(ARRAY node, dim) → interval` of the dim's subscript expression.
    pub dims: BTreeMap<(WnId, usize), Interval>,
}

/// The abstract store: scalars with a known interval. A missing entry is ⊤.
type Env = BTreeMap<StIdx, Interval>;

/// Rounds of plain join before the back-edge switches to widening.
const WIDEN_DELAY: u32 = 2;
/// Hard cap on ascending iterations (the widening lattice has height 2 per
/// variable, so this is never reached; it bounds the loop defensively).
const MAX_ROUNDS: u32 = 64;

/// Runs the interpreter over one procedure.
pub fn analyze_proc(
    program: &Program,
    proc_id: ProcId,
    facts: &BTreeMap<StIdx, IndexArrayFact>,
) -> RecoveredBounds {
    let proc = program.procedure(proc_id);
    let mut out = RecoveredBounds::default();
    let Some(root) = proc.tree.root() else { return out };
    let Some(&body) = proc.tree.node(root).kids.last() else { return out };
    let pos = crate::index_facts::preorder_positions(&proc.tree);
    let mut interp =
        Interp { program, tree: &proc.tree, facts, pos: &pos, out: &mut out.dims };
    let mut env = Env::new();
    interp.exec_block(body, &mut env, true);
    out
}

struct Interp<'a> {
    program: &'a Program,
    tree: &'a WhirlTree,
    facts: &'a BTreeMap<StIdx, IndexArrayFact>,
    /// Pre-order node positions — used to gate index-array facts to read
    /// sites that execute after the defining nest has completed.
    pos: &'a BTreeMap<WnId, u32>,
    out: &'a mut BTreeMap<(WnId, usize), Interval>,
}

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (st, va) in a {
        if let Some(vb) = b.get(st) {
            let j = va.join(vb);
            if !j.is_top() {
                out.insert(*st, j);
            }
        }
    }
    out
}

fn widen_env(prev: &Env, next: &Env) -> Env {
    let mut out = Env::new();
    for (st, vp) in prev {
        if let Some(vn) = next.get(st) {
            let w = vp.widen(vn);
            if !w.is_top() {
                out.insert(*st, w);
            }
        }
    }
    out
}

impl<'a> Interp<'a> {
    fn is_scalar(&self, st: StIdx) -> bool {
        matches!(
            self.program.types.get(self.program.symbols.get(st).ty).kind,
            TyKind::Scalar(_)
        )
    }

    fn eval(&self, id: WnId, env: &Env) -> Interval {
        let n = self.tree.node(id);
        match n.operator {
            Opr::Intconst => Interval::constant(n.const_val),
            Opr::Ldid => n
                .st_idx
                .and_then(|st| env.get(&st).copied())
                .unwrap_or_else(Interval::top),
            Opr::Add => self.eval(n.kids[0], env).add(&self.eval(n.kids[1], env)),
            Opr::Sub => self.eval(n.kids[0], env).sub(&self.eval(n.kids[1], env)),
            Opr::Neg => self.eval(n.kids[0], env).neg(),
            Opr::Mpy => self.eval(n.kids[0], env).mul(&self.eval(n.kids[1], env)),
            Opr::Iload => self
                .index_value_range(id, n.kids[0], env)
                .unwrap_or_else(Interval::top),
            _ => Interval::top(),
        }
    }

    /// A read of a known index array evaluates to its stored value range —
    /// the subscripted-subscript recovery. Guarded four ways, each of which
    /// keeps a fact from describing values the load can actually see:
    /// the array must be write-once (`constant_after_init`), procedure-local
    /// (a COMMON/global array can be rewritten by a callee with no visible
    /// escape, and a formal aliases the caller's array), the read site must
    /// execute after the defining nest has completed (the fact is
    /// flow-insensitive), and the inner subscript must stay inside the
    /// initialized region (outside it the load returns garbage).
    fn index_value_range(&self, iload: WnId, addr: WnId, env: &Env) -> Option<Interval> {
        let a = self.tree.node(addr);
        if a.operator != Opr::Array || a.num_dim() != 1 {
            return None;
        }
        let st = self.tree.node(a.array_base_kid()).st_idx?;
        let fact = self.facts.get(&st)?;
        let (lo, hi) = fact.value_range?;
        if !fact.constant_after_init
            || self.program.symbols.get(st).class != StClass::Local
            || self.pos.get(&iload).copied().unwrap_or(0) <= fact.init_end_pos
        {
            return None;
        }
        let inner = self.eval(a.array_index_kid(0), env);
        let (ilo, ihi) = (inner.lo?, inner.hi?);
        let init = fact.init_region.as_ref()?;
        let [init_dim] = &init.dims[..] else { return None };
        crate::sideeffect::const_subset(&Triplet::constant(ilo, ihi, 1), init_dim)
            .then(|| Interval::range(lo, hi))
    }

    /// Records subscript intervals for every `ARRAY` node inside `id`.
    fn record_expr(&mut self, id: WnId, env: &Env) {
        let arrays: Vec<WnId> = self
            .tree
            .pre_order(id)
            .filter(|&n| self.tree.node(n).operator == Opr::Array)
            .collect();
        for a in arrays {
            let ndims = self.tree.node(a).num_dim();
            for d in 0..ndims {
                let v = self.eval(self.tree.node(a).array_index_kid(d), env);
                self.out
                    .entry((a, d))
                    .and_modify(|cur| *cur = cur.join(&v))
                    .or_insert(v);
            }
        }
    }

    /// Executes a statement; mutates `env`. When `record` is set, subscript
    /// intervals are folded into the output map (the final stable pass).
    fn exec_stmt(&mut self, id: WnId, env: &mut Env, record: bool) {
        let node = self.tree.node(id).clone();
        match node.operator {
            Opr::Stid => {
                if record {
                    self.record_expr(node.kids[0], env);
                }
                let v = self.eval(node.kids[0], env);
                if let Some(st) = node.st_idx {
                    if v.is_top() {
                        env.remove(&st);
                    } else {
                        env.insert(st, v);
                    }
                }
            }
            Opr::Istore => {
                if record {
                    self.record_expr(node.kids[0], env);
                    self.record_expr(node.kids[1], env);
                }
            }
            Opr::Call => {
                if record {
                    for &parm in &node.kids {
                        self.record_expr(parm, env);
                    }
                }
                // Havoc anything the callee can reach: argument scalars
                // (Fortran passes by reference, so a bare `LDID` argument
                // is writable too) and every global scalar.
                for &parm in &node.kids {
                    let v = self.tree.node(self.tree.node(parm).kids[0]);
                    if matches!(v.operator, Opr::Lda | Opr::Ldid) {
                        if let Some(st) = v.st_idx {
                            env.remove(&st);
                        }
                    }
                }
                env.retain(|st, _| {
                    self.program.symbols.get(*st).class != StClass::Global
                });
            }
            Opr::If => {
                if record {
                    self.record_expr(node.kids[0], env);
                }
                let mut then_env = env.clone();
                self.exec_block(node.kids[1], &mut then_env, record);
                self.exec_block(node.kids[2], env, record);
                *env = join_env(&then_env, env);
            }
            Opr::Return => {
                if record {
                    for &k in &node.kids {
                        self.record_expr(k, env);
                    }
                }
            }
            Opr::DoLoop => self.exec_loop(id, env, record),
            _ => {}
        }
    }

    fn exec_block(&mut self, block: WnId, env: &mut Env, record: bool) {
        let kids = self.tree.node(block).kids.clone();
        for k in kids {
            self.exec_stmt(k, env, record);
        }
    }

    fn exec_loop(&mut self, id: WnId, env: &mut Env, record: bool) {
        let node = self.tree.node(id).clone();
        let init = self.tree.node(node.kids[0]).kids[0];
        let bound = self.tree.node(node.kids[1]).kids[1];
        let body = node.kids[3];
        if record {
            self.record_expr(init, env);
            self.record_expr(bound, env);
        }
        let ivar_int = self.eval(init, env).join(&self.eval(bound, env));
        let entry = env.clone();

        // Trip-count clamp: `v = v + c` recurrences inside a constant-trip
        // loop get the closed form instead of a widened `∞`.
        let trips = self.const_trips(init, bound, node.const_val);
        let clamps = match trips {
            Some(t) => self.self_increment_clamps(body, &entry, t),
            None => BTreeMap::new(),
        };

        let seed = |head: &mut Env| {
            match node.st_idx {
                Some(iv) if !ivar_int.is_top() => {
                    head.insert(iv, ivar_int);
                }
                Some(iv) => {
                    head.remove(&iv);
                }
                None => {}
            }
            for (st, v) in &clamps {
                if v.is_top() {
                    head.remove(st);
                } else {
                    head.insert(*st, *v);
                }
            }
        };

        let mut head = entry.clone();
        seed(&mut head);
        for round in 0..MAX_ROUNDS {
            let mut out = head.clone();
            self.exec_block(body, &mut out, false);
            let mut next = join_env(&head, &out);
            seed(&mut next);
            if next == head {
                break;
            }
            head = if round < WIDEN_DELAY { next } else { widen_env(&head, &next) };
        }
        // One bounded narrowing pass: re-run the body from the stable head
        // and pull unbounded sides back where the descending step permits.
        let mut out = head.clone();
        self.exec_block(body, &mut out, false);
        let mut cand = join_env(&entry, &out);
        seed(&mut cand);
        let mut narrowed = Env::new();
        for (st, v) in &head {
            let n = match cand.get(st) {
                Some(c) => v.narrow(c),
                None => *v,
            };
            narrowed.insert(*st, n);
        }
        head = narrowed;
        seed(&mut head);

        // Final recording pass with the stable loop-head store.
        let mut out = head.clone();
        self.exec_block(body, &mut out, record);
        // After the loop: either it never ran (entry) or it ran (out).
        *env = join_env(&entry, &out);
        // The exit value of the induction variable overshoots its in-loop
        // range by one step — drop it rather than model the overshoot.
        if let Some(iv) = node.st_idx {
            env.remove(&iv);
        }
        // The clamp bounds the *post* value tighter than the joined head.
        if let Some(t) = trips {
            for (st, delta) in self.increment_deltas(body) {
                if clamps.contains_key(&st) {
                    if let Some(v0) = entry.get(&st) {
                        let post = v0.add(&delta.scale(t));
                        let cur = env.get(&st).copied().unwrap_or_else(Interval::top);
                        if let Some(m) = cur.meet(&post) {
                            env.insert(st, m);
                        }
                    }
                }
            }
        }
    }

    fn const_trips(&self, init: WnId, bound: WnId, step: i64) -> Option<i64> {
        if step == 0 {
            return None;
        }
        let lo = self.tree.eval_const(init)?;
        let hi = self.tree.eval_const(bound)?;
        let (lo, hi) = if step < 0 { (hi, lo) } else { (lo, hi) };
        if hi < lo {
            return Some(0);
        }
        Some((hi - lo) / step.abs() + 1)
    }

    /// Per-outer-iteration increment interval for every scalar whose only
    /// assignments in `body` are `v = v + const` (each site weighted by the
    /// constant trip product of intervening loops); scalars with any other
    /// assignment are absent.
    fn increment_deltas(&self, body: WnId) -> BTreeMap<StIdx, Interval> {
        let mut acc: BTreeMap<StIdx, IncAcc> = BTreeMap::new();
        self.collect_increments(body, Some(1), &mut acc);
        acc.into_iter()
            .filter(|(_, a)| !a.broken)
            .map(|(st, a)| (st, Interval::range(a.lo, a.hi)))
            .collect()
    }

    fn collect_increments(
        &self,
        block: WnId,
        mult: Option<i64>,
        acc: &mut BTreeMap<StIdx, IncAcc>,
    ) {
        let kids = self.tree.node(block).kids.clone();
        for id in kids {
            let node = self.tree.node(id);
            match node.operator {
                Opr::Stid => {
                    let Some(st) = node.st_idx else { continue };
                    if !self.is_scalar(st) {
                        continue;
                    }
                    let a = acc.entry(st).or_default();
                    let inc = self.as_self_increment(id, st);
                    match (inc, mult) {
                        (Some(c), Some(m)) => {
                            let (Some(w), true) = (c.checked_mul(m), !a.broken) else {
                                a.broken = true;
                                continue;
                            };
                            // Each site may execute 0..m times per outer
                            // iteration (it can sit under an `If`).
                            a.lo = a.lo.saturating_add(w.min(0));
                            a.hi = a.hi.saturating_add(w.max(0));
                        }
                        _ => a.broken = true,
                    }
                }
                Opr::DoLoop => {
                    let init = self.tree.node(node.kids[0]).kids[0];
                    let bound = self.tree.node(node.kids[1]).kids[1];
                    let inner = self.const_trips(init, bound, node.const_val);
                    let m = match (mult, inner) {
                        (Some(a), Some(b)) => a.checked_mul(b),
                        _ => None,
                    };
                    // The loop's own induction variable is reassigned.
                    if let Some(iv) = node.st_idx {
                        acc.entry(iv).or_default().broken = true;
                    }
                    self.collect_increments(node.kids[3], m, acc);
                }
                Opr::If => {
                    self.collect_increments(node.kids[1], mult, acc);
                    self.collect_increments(node.kids[2], mult, acc);
                }
                Opr::Call => {
                    // Havocked scalars cannot be clamped.
                    for &parm in &node.kids.clone() {
                        let v = self.tree.node(self.tree.node(parm).kids[0]);
                        if matches!(v.operator, Opr::Lda | Opr::Ldid) {
                            if let Some(st) = v.st_idx {
                                acc.entry(st).or_default().broken = true;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// `Some(c)` when statement `id` is `st = st + c`.
    fn as_self_increment(&self, id: WnId, st: StIdx) -> Option<i64> {
        let rhs = self.tree.node(id).kids[0];
        match crate::local::whirl_to_affine(self.tree, rhs) {
            crate::local::AffExpr::Lin { constant, terms } => {
                (terms.len() == 1 && terms.get(&st) == Some(&1)).then_some(constant)
            }
            crate::local::AffExpr::Messy => None,
        }
    }

    /// Loop-head clamp values: `v ∈ v₀ ⊔ (v₀ + δ·(T-1))` for every
    /// self-increment recurrence, where `δ` is the per-iteration delta.
    fn self_increment_clamps(
        &self,
        body: WnId,
        entry: &Env,
        trips: i64,
    ) -> BTreeMap<StIdx, Interval> {
        let mut out = BTreeMap::new();
        if trips <= 0 {
            return out;
        }
        for (st, delta) in self.increment_deltas(body) {
            let Some(v0) = entry.get(&st) else { continue };
            let head = v0.join(&v0.add(&delta.scale(trips - 1)));
            out.insert(st, head);
        }
        out
    }
}

/// Per-variable accumulator for `collect_increments`.
#[derive(Default)]
struct IncAcc {
    lo: i64,
    hi: i64,
    broken: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_facts;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn program_f(src: &str) -> Program {
        compile_to_h(&[SourceFile::new("t.f", src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap()
    }

    /// All recovered intervals for references to `array` in `proc`.
    fn recovered_for(p: &Program, proc: &str, array: &str) -> Vec<Interval> {
        let id = p.find_procedure(proc).unwrap();
        let facts = index_facts::derive(p, id);
        let rec = analyze_proc(p, id, &facts);
        let pr = p.procedure(id);
        let st = p.symbols.find(p.interner.get(array).unwrap()).unwrap();
        let mut out = Vec::new();
        for n in pr.tree.iter() {
            let node = pr.tree.node(n);
            if node.operator == Opr::Array
                && pr.tree.node(node.array_base_kid()).st_idx == Some(st)
            {
                for d in 0..node.num_dim() {
                    if let Some(iv) = rec.dims.get(&(n, d)) {
                        out.push(*iv);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn subscripted_subscript_gets_value_range() {
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer idx(10)
  integer i
  do i = 1, 10
    idx(i) = i
  end do
  do i = 1, 10
    a(idx(i)) = 0.0
  end do
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        // a(idx(i)): zero-based subscript = idx(i) - 1 ∈ [0, 9].
        assert!(
            ivs.contains(&Interval::range(0, 9)),
            "expected [0, 9] in {ivs:?}"
        );
    }

    #[test]
    fn common_index_array_is_never_trusted() {
        // idx lives in a COMMON block: a callee can rewrite it directly
        // through the block with no visible escape (no PARM(LDA)), so its
        // value_range must never refute anything. Before the storage-class
        // gate this recovered [0, 9] and silenced the OOB write via
        // idx(5) = 1000.
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer idx(10)
  common /g/ idx
  integer i, t
  do i = 1, 10
    idx(i) = i
  end do
  call clobber(t)
  do i = 1, 10
    a(idx(i)) = 0.0
  end do
end
subroutine clobber(v)
  integer idx(10)
  common /g/ idx
  integer v
  idx(5) = 1000
  v = 0
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        assert_eq!(ivs.len(), 1);
        assert!(
            ivs[0].is_top(),
            "COMMON idx can be clobbered behind our back: {:?}",
            ivs[0]
        );
    }

    #[test]
    fn read_before_init_loop_is_not_trusted() {
        // The gather loop runs before idx is initialized: the values read
        // are garbage, not the init loop's range.
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer idx(10)
  integer i
  do i = 1, 10
    a(idx(i)) = 0.0
  end do
  do i = 1, 10
    idx(i) = i
  end do
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        assert_eq!(ivs.len(), 1);
        assert!(ivs[0].is_top(), "read precedes init: {:?}", ivs[0]);
    }

    #[test]
    fn read_outside_init_region_is_not_trusted() {
        // Only idx(1..5) is initialized but the read sweeps idx(1..10):
        // elements 6..10 hold garbage, so the value range must not apply.
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer idx(10)
  integer i
  do i = 1, 5
    idx(i) = i
  end do
  do i = 1, 10
    a(idx(i)) = 0.0
  end do
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        assert_eq!(ivs.len(), 1);
        assert!(ivs[0].is_top(), "read escapes the initialized region: {:?}", ivs[0]);
    }

    #[test]
    fn escaped_then_reinitialized_index_is_not_trusted() {
        // idx escapes to a callee before (re)initialization completes:
        // constant_after_init is false and value_range must not be used.
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer idx(10)
  integer i
  call fill(idx)
  do i = 1, 5
    idx(i) = i
  end do
  do i = 1, 10
    a(idx(i)) = 0.0
  end do
end
subroutine fill(v)
  integer v(10)
  integer i
  do i = 1, 10
    v(i) = 1000
  end do
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        assert_eq!(ivs.len(), 1);
        assert!(ivs[0].is_top(), "escaped idx is not write-once: {:?}", ivs[0]);
    }

    #[test]
    fn self_increment_is_clamped_by_trip_count() {
        let p = program_f(
            "\
subroutine s
  real a(40)
  integer i, k
  k = 0
  do i = 1, 10
    a(k + 1) = 0.0
    k = k + 2
  end do
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        // k at the head of iteration t is 2(t-1) ∈ [0, 18]; subscript k+1-1.
        assert_eq!(ivs, vec![Interval::range(0, 18)]);
    }

    #[test]
    fn conditional_increment_still_bounded() {
        let p = program_f(
            "\
subroutine s
  real a(40)
  integer i, k
  k = 0
  do i = 1, 10
    if (i .le. 5) then
      k = k + 3
    end if
    a(k) = 0.0
  end do
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        // Head k ∈ [0, 27]; after at most one more +3 then a(k): zero-based
        // k-1 ∈ [-1, 29].
        assert_eq!(ivs, vec![Interval::range(-1, 29)]);
    }

    #[test]
    fn unknown_increment_widens_to_unbounded_side() {
        let p = program_f(
            "\
subroutine s(n)
  real a(40)
  integer i, k, n
  k = 0
  do i = 1, 10
    k = k + n
    a(k) = 0.0
  end do
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        assert_eq!(ivs.len(), 1);
        assert!(ivs[0].is_top(), "symbolic step must stay unbounded: {:?}", ivs[0]);
    }

    #[test]
    fn call_havocs_tracked_scalars() {
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer k
  k = 3
  call bump(k)
  a(k) = 0.0
end
subroutine bump(v)
  integer v
  v = 99
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        assert_eq!(ivs.len(), 1);
        assert!(ivs[0].is_top(), "k passed by reference must be havocked");
    }

    #[test]
    fn straightline_constant_propagates() {
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer k
  k = 4
  a(k) = 0.0
end
",
        );
        let ivs = recovered_for(&p, "s", "a");
        assert_eq!(ivs, vec![Interval::constant(3)]);
    }
}
