//! Subscripted-subscript facts: per-procedure properties of index arrays.
//!
//! When a subscript is itself an array read — `A(idx(i))` — the affine
//! machinery bails. But the *defining loop* of `idx` often proves useful
//! properties: the stored values fall in a known range, the mapping is
//! injective, monotone, or constant after its initialization. This module
//! derives those facts per procedure by pattern-matching `ISTORE`s into
//! small integer arrays under constant-bound loop nests; the interval
//! interpreter ([`crate::interval_ai`]) and the side-effect/loop-parallel
//! tests consume them.
//!
//! Everything here is an over-approximation of the stored values and is
//! only trusted where the consumer's own guards hold (e.g. injectivity is
//! used only after global validation shows a single defining procedure).

use crate::local::{whirl_to_affine, AffExpr};
use regions::triplet::{Triplet, TripletRegion};
use std::collections::BTreeMap;
use support::obs::{self, Counter};
use whirl::{DataType, Opr, ProcId, Program, StIdx, TyKind, WhirlTree, WnId};

/// What the defining loops of one index array prove about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexArrayFact {
    /// Every store to the array sits in a qualifying init nest and the
    /// array's address never escapes (no `LDA` outside its own stores), so
    /// the values are fixed once initialization completes.
    pub constant_after_init: bool,
    /// The stored value is a non-decreasing function of the element index
    /// (single defining store `idx(c1·i+c0) = a·i+b` with `a·c1 ≥ 0`).
    pub monotone_nondecreasing: bool,
    /// Distinct elements hold distinct values (single defining store with
    /// `c1 ≠ 0` and `a ≠ 0`).
    pub injective: bool,
    /// Raw stored-value range over all qualifying stores (inclusive).
    pub value_range: Option<(i64, i64)>,
    /// Zero-based element indices covered by the qualifying stores — the
    /// part of the array that is actually initialized.
    pub init_region: Option<TripletRegion>,
    /// Pre-order position (in the defining procedure's tree) of the last
    /// node of the outermost statement enclosing any qualifying store:
    /// initialization is complete only once execution passes this point.
    /// Same-procedure consumers must not apply the fact at sites at or
    /// before this position (the values have not been stored yet); the
    /// position is meaningless in any other procedure's tree.
    pub init_end_pos: u32,
}

impl IndexArrayFact {
    /// True when the fact carries anything a consumer can use.
    pub fn is_useful(&self) -> bool {
        self.value_range.is_some() || self.injective || self.monotone_nondecreasing
    }
}

/// One enclosing loop with constant bounds, normalized ascending.
#[derive(Debug, Clone, Copy)]
struct ConstLoop {
    ivar: StIdx,
    lo: i64,
    hi: i64,
    step: i64,
}

/// One `ISTORE` into a candidate index array.
#[derive(Debug, Clone)]
struct StoreSite {
    /// Zero-based element subscript expression.
    index: AffExpr,
    /// Stored value expression.
    value: AffExpr,
    /// The constant-bound loops enclosing the store, outermost first; a
    /// `None` entry marks an enclosing loop whose bounds are not constant.
    nest: Vec<Option<ConstLoop>>,
    /// The outermost statement enclosing the store (the outermost loop of
    /// its nest, or the `ISTORE` itself): the values exist only after this
    /// subtree finishes executing.
    container: WnId,
}

#[derive(Debug, Default)]
struct Candidate {
    sites: Vec<StoreSite>,
    /// `LDA` of the array seen outside its own store addresses (passed to a
    /// call, address taken): the values can change behind our back.
    escapes: bool,
    /// A store whose address we could not resolve into this scheme.
    opaque_store: bool,
}

/// Evaluates an affine expression over a box of constant loop ranges;
/// `None` when the expression mentions a symbol that is not one of the
/// constant-bound loop variables.
fn affine_extent(e: &AffExpr, nest: &[Option<ConstLoop>]) -> Option<(i64, i64)> {
    let AffExpr::Lin { constant, terms } = e else { return None };
    let (mut lo, mut hi) = (i128::from(*constant), i128::from(*constant));
    for (&st, &c) in terms {
        let l = nest
            .iter()
            .flatten()
            .find(|f| f.ivar == st)
            .map(|f| (f.lo, f.hi))?;
        let (a, b) = (i128::from(c) * i128::from(l.0), i128::from(c) * i128::from(l.1));
        lo += a.min(b);
        hi += a.max(b);
    }
    Some((i64::try_from(lo).ok()?, i64::try_from(hi).ok()?))
}

/// The single `(ivar, coeff)` of a one-variable affine expression.
fn single_term(e: &AffExpr) -> Option<(StIdx, i64, i64)> {
    let AffExpr::Lin { constant, terms } = e else { return None };
    if terms.len() != 1 {
        return None;
    }
    let (&st, &c) = terms.iter().next()?;
    Some((st, c, *constant))
}

/// Derives index-array facts for one procedure.
///
/// Candidates are 1-dimensional integer arrays written through constant
/// subscript patterns; anything else never produces a fact, so the map is
/// sparse. Facts are derived for every storage class — callers gate use on
/// locality ([`crate::local`]) or global validation ([`crate::propagate`]).
pub fn derive(program: &Program, proc_id: ProcId) -> BTreeMap<StIdx, IndexArrayFact> {
    let proc = program.procedure(proc_id);
    let tree = &proc.tree;
    let mut cands: BTreeMap<StIdx, Candidate> = BTreeMap::new();
    let mut nest: Vec<Option<ConstLoop>> = Vec::new();
    let mut loops: Vec<WnId> = Vec::new();
    let Some(root) = tree.root() else { return BTreeMap::new() };
    let Some(&body) = tree.node(root).kids.last() else { return BTreeMap::new() };
    scan_block(program, proc_id, body, &mut nest, &mut loops, &mut cands);

    let pos = if cands.values().any(|c| !c.sites.is_empty()) {
        preorder_positions(tree)
    } else {
        BTreeMap::new()
    };
    let mut out = BTreeMap::new();
    for (st, cand) in cands {
        if cand.opaque_store || cand.sites.is_empty() {
            continue;
        }
        let fact = summarize_candidate(&cand, tree, &pos);
        if fact.is_useful() {
            obs::incr(Counter::IpaIndexFacts);
            out.insert(st, fact);
        }
    }
    out
}

/// Pre-order position of every node in `tree`, counted from the root.
/// A subtree occupies a contiguous position range starting at its root,
/// so "after statement S has finished" is "position > max position in
/// S's subtree".
pub(crate) fn preorder_positions(tree: &WhirlTree) -> BTreeMap<WnId, u32> {
    let mut out = BTreeMap::new();
    if let Some(root) = tree.root() {
        for (i, n) in tree.pre_order(root).enumerate() {
            out.insert(n, i as u32);
        }
    }
    out
}

fn summarize_candidate(
    cand: &Candidate,
    tree: &WhirlTree,
    pos: &BTreeMap<WnId, u32>,
) -> IndexArrayFact {
    // Initialization is complete once the outermost statement enclosing
    // the *last* (in program order) qualifying store has finished.
    let init_end_pos = cand
        .sites
        .iter()
        .map(|s| {
            tree.pre_order(s.container)
                .filter_map(|n| pos.get(&n).copied())
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0);
    let mut value_range: Option<(i64, i64)> = None;
    let mut init_region: Option<TripletRegion> = None;
    let mut all_qualify = true;
    for site in &cand.sites {
        let (Some(vr), Some(ir)) = (
            affine_extent(&site.value, &site.nest),
            affine_extent(&site.index, &site.nest),
        ) else {
            all_qualify = false;
            break;
        };
        // Element stride: a single-ivar subscript steps by |c1·step|.
        // Checked: a pathological coefficient/step pair from source must
        // degrade to "no fact", not wrap or panic.
        let stride = match single_term(&site.index) {
            Some((ivar, c1, _)) => {
                match site.nest.iter().flatten().find(|f| f.ivar == ivar) {
                    Some(f) => match c1.checked_mul(f.step).and_then(i64::checked_abs) {
                        Some(p) => p.max(1),
                        None => {
                            all_qualify = false;
                            break;
                        }
                    },
                    None => 1,
                }
            }
            None => 1,
        };
        let t = TripletRegion::new(vec![Triplet::constant(ir.0, ir.1, stride)]);
        value_range = Some(match value_range {
            Some((lo, hi)) => (lo.min(vr.0), hi.max(vr.1)),
            None => vr,
        });
        init_region = Some(match init_region {
            Some(prev) => prev.hull(&t),
            None => t,
        });
    }
    if !all_qualify {
        return IndexArrayFact {
            constant_after_init: false,
            monotone_nondecreasing: false,
            injective: false,
            value_range: None,
            init_region: None,
            init_end_pos,
        };
    }

    // Injectivity / monotonicity need a single defining store
    // `idx(c1·i + c0) = a·i + b` over one constant-trip loop variable.
    let (mut injective, mut monotone) = (false, false);
    if cand.sites.len() == 1 && !cand.escapes {
        let site = &cand.sites[0];
        if let Some((iv_g, c1, _)) = single_term(&site.index) {
            let covering = site.nest.iter().flatten().any(|f| f.ivar == iv_g);
            // Value slope `a` per loop iteration: a constant store has a = 0.
            let a = if site.value.as_const().is_some() {
                Some(0)
            } else {
                single_term(&site.value)
                    .and_then(|(iv_h, a, _)| (iv_h == iv_g).then_some(a))
            };
            if let (Some(a), true, true) = (a, covering, c1 != 0) {
                injective = a != 0;
                // Value as a function of element position has slope sign
                // `sign(a·c1)` regardless of iteration direction.
                monotone = a.checked_mul(c1).is_some_and(|p| p >= 0);
            }
        }
    }
    IndexArrayFact {
        constant_after_init: all_qualify && !cand.escapes,
        monotone_nondecreasing: monotone,
        injective,
        value_range,
        init_region,
        init_end_pos,
    }
}

/// True for a 1-D integer-element array symbol.
pub(crate) fn is_index_array(program: &Program, st: StIdx) -> bool {
    match &program.types.get(program.symbols.get(st).ty).kind {
        TyKind::Array { elem, dims, .. } => {
            dims.len() == 1 && matches!(elem, DataType::I4 | DataType::I8 | DataType::Char)
        }
        _ => false,
    }
}

fn scan_block(
    program: &Program,
    proc_id: ProcId,
    block: WnId,
    nest: &mut Vec<Option<ConstLoop>>,
    loops: &mut Vec<WnId>,
    cands: &mut BTreeMap<StIdx, Candidate>,
) {
    let tree = &program.procedure(proc_id).tree;
    let kids = tree.node(block).kids.clone();
    for id in kids {
        let node = tree.node(id);
        match node.operator {
            Opr::Istore => {
                let addr = node.kids[1];
                let an = tree.node(addr);
                if an.operator == Opr::Array {
                    let base = tree.node(an.array_base_kid());
                    if let Some(st) = base.st_idx {
                        if is_index_array(program, st) {
                            let cand = cands.entry(st).or_default();
                            if an.num_dim() == 1 {
                                cand.sites.push(StoreSite {
                                    index: whirl_to_affine(tree, an.array_index_kid(0)),
                                    value: whirl_to_affine(tree, node.kids[0]),
                                    nest: nest.clone(),
                                    container: loops.first().copied().unwrap_or(id),
                                });
                            } else {
                                cand.opaque_store = true;
                            }
                        }
                    } else {
                        // Unresolvable base: could alias anything.
                        for c in cands.values_mut() {
                            c.opaque_store = true;
                        }
                    }
                }
                scan_escapes(program, proc_id, node.kids[0], cands);
                // Subscript expressions may take addresses too.
                if an.operator == Opr::Array {
                    for d in 0..an.num_dim() {
                        scan_escapes(program, proc_id, an.array_index_kid(d), cands);
                    }
                }
            }
            Opr::DoLoop => {
                let frame = node.st_idx.and_then(|ivar| {
                    let init = tree.node(node.kids[0]).kids[0];
                    let bound = tree.node(node.kids[1]).kids[1];
                    let (lo, hi) = (tree.eval_const(init)?, tree.eval_const(bound)?);
                    let step = node.const_val;
                    if step == 0 {
                        return None;
                    }
                    let (lo, hi) = if step < 0 { (hi, lo) } else { (lo, hi) };
                    Some(ConstLoop { ivar, lo, hi, step: step.abs() })
                });
                // A constant loop whose normalized range is empty never
                // runs its body: stores under it contribute neither values
                // nor init coverage, so scanning them would overclaim
                // value_range and init_region.
                if frame.is_some_and(|f| f.lo > f.hi) {
                    continue;
                }
                loops.push(id);
                nest.push(frame);
                scan_block(program, proc_id, node.kids[3], nest, loops, cands);
                nest.pop();
                loops.pop();
            }
            Opr::If => {
                scan_escapes(program, proc_id, node.kids[0], cands);
                scan_block(program, proc_id, node.kids[1], nest, loops, cands);
                scan_block(program, proc_id, node.kids[2], nest, loops, cands);
            }
            Opr::Stid | Opr::Return => {
                for &k in &tree.node(id).kids.clone() {
                    scan_escapes(program, proc_id, k, cands);
                }
            }
            Opr::Call => {
                // A candidate passed to a call escapes: the callee may
                // rewrite it.
                for &parm in &node.kids.clone() {
                    scan_escapes(program, proc_id, parm, cands);
                }
            }
            _ => {}
        }
    }
}

/// Marks candidates whose address (`LDA`) appears inside `id`.
fn scan_escapes(
    program: &Program,
    proc_id: ProcId,
    id: WnId,
    cands: &mut BTreeMap<StIdx, Candidate>,
) {
    let tree = &program.procedure(proc_id).tree;
    for n in tree.pre_order(id) {
        let node = tree.node(n);
        // `LDA` under an `ARRAY` base is the normal subscripted read path;
        // only a bare address handed to a call (`PARM(LDA x)`) escapes.
        if node.operator == Opr::Parm {
            let v = tree.node(node.kids[0]);
            if v.operator == Opr::Lda {
                if let Some(st) = v.st_idx {
                    if let Some(c) = cands.get_mut(&st) {
                        c.escapes = true;
                        c.opaque_store = true;
                    } else if is_index_array(program, st) {
                        cands.entry(st).or_default().escapes = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn program_f(src: &str) -> Program {
        compile_to_h(&[SourceFile::new("t.f", src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap()
    }

    fn st_of(p: &Program, name: &str) -> StIdx {
        p.symbols.find(p.interner.get(name).unwrap()).unwrap()
    }

    fn facts_of(p: &Program, proc_name: &str) -> BTreeMap<StIdx, IndexArrayFact> {
        derive(p, p.find_procedure(proc_name).unwrap())
    }

    #[test]
    fn identity_permutation_is_injective_and_monotone() {
        let p = program_f(
            "\
subroutine s
  integer idx(10)
  integer i
  do i = 1, 10
    idx(i) = i
  end do
end
",
        );
        let facts = facts_of(&p, "s");
        let f = facts.get(&st_of(&p, "idx")).expect("fact for idx");
        assert!(f.injective);
        assert!(f.monotone_nondecreasing);
        assert!(f.constant_after_init);
        assert_eq!(f.value_range, Some((1, 10)));
        assert_eq!(f.init_region.as_ref().unwrap().to_string(), "(0:9:1)");
    }

    #[test]
    fn reversed_mapping_is_injective_not_monotone() {
        let p = program_f(
            "\
subroutine s
  integer idx(10)
  integer i
  do i = 1, 10
    idx(i) = 11 - i
  end do
end
",
        );
        let facts = facts_of(&p, "s");
        let f = facts.get(&st_of(&p, "idx")).unwrap();
        assert!(f.injective);
        assert!(!f.monotone_nondecreasing);
        assert_eq!(f.value_range, Some((1, 10)));
    }

    #[test]
    fn constant_store_is_not_injective_but_has_range() {
        let p = program_f(
            "\
subroutine s
  integer idx(10)
  integer i
  do i = 1, 10
    idx(i) = 3
  end do
end
",
        );
        let facts = facts_of(&p, "s");
        let f = facts.get(&st_of(&p, "idx")).unwrap();
        assert!(!f.injective);
        // Constant is (vacuously) non-decreasing: a = 0.
        assert!(f.monotone_nondecreasing);
        assert_eq!(f.value_range, Some((3, 3)));
    }

    #[test]
    fn two_store_sites_join_ranges_and_drop_injectivity() {
        let p = program_f(
            "\
subroutine s
  integer idx(20)
  integer i
  do i = 1, 10
    idx(i) = i
  end do
  do i = 11, 20
    idx(i) = i - 10
  end do
end
",
        );
        let facts = facts_of(&p, "s");
        let f = facts.get(&st_of(&p, "idx")).unwrap();
        assert!(!f.injective, "two sites: duplicates possible");
        assert_eq!(f.value_range, Some((1, 10)));
        assert_eq!(f.init_region.as_ref().unwrap().to_string(), "(0:19:1)");
    }

    #[test]
    fn symbolic_bound_store_yields_no_fact() {
        let p = program_f(
            "\
subroutine s(n)
  integer idx(10)
  integer n, i
  do i = 1, n
    idx(i) = i
  end do
end
",
        );
        let facts = facts_of(&p, "s");
        assert!(facts.get(&st_of(&p, "idx")).is_none(), "symbolic trip count");
    }

    #[test]
    fn escaped_array_loses_constancy_and_injectivity() {
        let p = program_f(
            "\
subroutine s
  integer idx(10)
  integer i
  do i = 1, 10
    idx(i) = i
  end do
  call mutate(idx)
end
subroutine mutate(v)
  integer v(10)
  v(1) = 7
end
",
        );
        let facts = facts_of(&p, "s");
        // Escape poisons the candidate entirely: the callee may rewrite it.
        assert!(facts.get(&st_of(&p, "idx")).is_none());
    }

    #[test]
    fn zero_trip_loop_stores_contribute_nothing() {
        // `do i = 10, 1` (step +1) never executes: its store must not
        // widen value_range, overclaim init_region, or break injectivity.
        let p = program_f(
            "\
subroutine s
  integer idx(10)
  integer i
  do i = 1, 10
    idx(i) = i
  end do
  do i = 10, 1
    idx(i) = 1000
  end do
end
",
        );
        let facts = facts_of(&p, "s");
        let f = facts.get(&st_of(&p, "idx")).expect("fact for idx");
        assert!(f.injective, "dead store must not count as a second site");
        assert_eq!(f.value_range, Some((1, 10)));
        assert_eq!(f.init_region.as_ref().unwrap().to_string(), "(0:9:1)");
    }

    #[test]
    fn stride_overflow_is_non_qualifying() {
        // |c1 · step| overflows i64 while both affine extents stay in
        // range: the site must disqualify instead of wrapping/panicking.
        let cand = Candidate {
            sites: vec![StoreSite {
                index: AffExpr::Lin {
                    constant: 0,
                    terms: [(StIdx(7), 5_000_000_000_i64)].into_iter().collect(),
                },
                value: AffExpr::Lin { constant: 1, terms: BTreeMap::new() },
                nest: vec![Some(ConstLoop {
                    ivar: StIdx(7),
                    lo: -1_000_000_000,
                    hi: 1_000_000_000,
                    step: 2_000_000_000,
                })],
                container: WnId(0),
            }],
            escapes: false,
            opaque_store: false,
        };
        let p = program_f("subroutine s\nend\n");
        let tree = &p.procedure(p.find_procedure("s").unwrap()).tree;
        let f = summarize_candidate(&cand, tree, &BTreeMap::new());
        assert!(!f.is_useful(), "overflowing stride must yield no fact: {f:?}");
        assert_eq!(f.value_range, None);
    }

    #[test]
    fn init_end_pos_marks_the_defining_loop_exit() {
        let p = program_f(
            "\
subroutine s
  integer idx(10)
  integer i
  do i = 1, 10
    idx(i) = i
  end do
end
",
        );
        let id = p.find_procedure("s").unwrap();
        let f = facts_of(&p, "s")[&st_of(&p, "idx")].clone();
        let tree = &p.procedure(id).tree;
        let pos = preorder_positions(tree);
        // Every node of the defining loop's subtree is at or before the
        // completion position — only code after the loop may use the fact.
        let store = tree
            .iter()
            .find(|&n| tree.node(n).operator == Opr::Istore)
            .expect("the init store");
        assert!(pos[&store] <= f.init_end_pos);
        assert!(f.init_end_pos > 0);
    }

    #[test]
    fn real_array_is_not_a_candidate() {
        let p = program_f(
            "\
subroutine s
  real a(10)
  integer i
  do i = 1, 10
    a(i) = 1.0
  end do
end
",
        );
        assert!(facts_of(&p, "s").is_empty());
    }
}
