//! Parallel IPL: per-procedure summarization fanned out over worker threads.
//!
//! Procedure summaries are mutually independent (IPL is a purely local
//! phase), so the natural parallelization is one task per procedure. We use
//! crossbeam scoped threads over a shared atomic work index — no unsafe, no
//! cloning of the program — and benchmark the speedup in
//! `bench/benches/ablation_parallel_ipl.rs`.

use crate::local::{summarize_procedure, ProcSummary};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use support::idx::Idx;
use whirl::{ProcId, Program};

/// Summarizes every procedure using up to `threads` workers. With
/// `threads <= 1` this degrades to the serial path.
///
/// A panic while summarizing one procedure is caught inside the worker loop
/// and degrades *that one summary* to the conservative whole-array fallback
/// ([`crate::isolate::conservative_summary`]); it neither kills the worker
/// (which would silently drop every procedure still in its queue) nor
/// re-panics out of the scope join, which used to bypass the per-procedure
/// degradation containment entirely.
pub fn summarize_all_parallel(program: &Program, threads: usize) -> Vec<ProcSummary> {
    let n = program.procedure_count();
    if threads <= 1 || n <= 1 {
        return crate::local::summarize_all(program);
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    // Each worker drains the shared index and keeps its results locally;
    // one merge at the end (no shared lock on the hot path).
    let merged: Mutex<Vec<(usize, ProcSummary)>> = Mutex::new(Vec::with_capacity(n));

    // The scope join only errors if a worker died outside the per-procedure
    // catch below (thread-spawn infrastructure); any procedure left without
    // a result is filled conservatively afterwards, so ignore the join
    // result instead of resuming the unwind.
    let _ = crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut local: Vec<(usize, ProcSummary)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let id = ProcId::from_usize(i);
                    let summary =
                        catch_unwind(AssertUnwindSafe(|| summarize_procedure(program, id)))
                            .unwrap_or_else(|_| crate::isolate::conservative_summary(program, id));
                    local.push((i, summary));
                }
                merged.lock().extend(local);
            });
        }
    });

    let mut indexed = merged.into_inner();
    indexed.sort_by_key(|(i, _)| *i);
    let mut out: Vec<Option<ProcSummary>> = (0..n).map(|_| None).collect();
    for (i, s) in indexed {
        out[i] = Some(s);
    }
    out.into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or_else(|| {
                crate::isolate::conservative_summary(program, ProcId::from_usize(i))
            })
        })
        .collect()
}

/// Parallel IPL followed by serial IPA propagation (propagation is a cheap
/// bottom-up pass; the heavy lifting is the per-procedure tree walk).
pub fn analyze_parallel(
    program: &Program,
    threads: usize,
) -> (crate::callgraph::CallGraph, crate::propagate::IpaResult) {
    let cg = crate::callgraph::CallGraph::build(program);
    let local = summarize_all_parallel(program, threads);
    let result = crate::propagate::propagate(program, &cg, local);
    (cg, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn many_procs(n: usize) -> Program {
        let mut src = String::from("program main\n");
        for i in 0..n {
            src.push_str(&format!("  call w{i}\n"));
        }
        src.push_str("end\n");
        for i in 0..n {
            src.push_str(&format!(
                "subroutine w{i}\n  real a{i}(64)\n  common /c{i}/ a{i}\n  integer i\n  do i = 1, 64\n    a{i}(i) = 0.0\n  end do\nend\n"
            ));
        }
        compile_to_h(&[SourceFile::new("many.f", &src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap()
    }

    #[test]
    fn parallel_matches_serial() {
        let p = many_procs(12);
        let serial = crate::local::summarize_all(&p);
        let parallel = summarize_all_parallel(&p, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, q) in serial.iter().zip(&parallel) {
            assert_eq!(s.accesses.len(), q.accesses.len());
            for (a, b) in s.accesses.iter().zip(&q.accesses) {
                assert_eq!(a.array, b.array);
                assert_eq!(a.mode, b.mode);
                assert_eq!(a.region, b.region);
            }
        }
    }

    #[test]
    fn single_thread_falls_back_to_serial() {
        let p = many_procs(3);
        let out = summarize_all_parallel(&p, 1);
        assert_eq!(out.len(), 4); // main + 3 workers
    }

    #[test]
    fn analyze_parallel_end_to_end() {
        let p = many_procs(6);
        let (cg, r) = analyze_parallel(&p, 3);
        assert_eq!(cg.size(), 7);
        let main = p.find_procedure("main").unwrap();
        // main sees the 6 propagated DEFs.
        let propagated = r
            .summary(main)
            .accesses
            .iter()
            .filter(|rec| rec.from_call.is_some())
            .count();
        assert_eq!(propagated, 6);
    }

    #[test]
    fn more_threads_than_procs_is_fine() {
        let p = many_procs(2);
        let out = summarize_all_parallel(&p, 64);
        assert_eq!(out.len(), 3);
    }
}
