//! Property tests for the transfer model: monotonicity and scaling laws
//! that must hold for any physically-plausible link.

use gpusim::{offload_speedup, LinkModel, OffloadCase, TransferPolicy};
use proptest::prelude::*;

fn link_strategy() -> impl Strategy<Value = LinkModel> {
    (1.0f64..100.0, 0.5f64..64.0)
        .prop_map(|(latency_us, bandwidth_gbs)| LinkModel { latency_us, bandwidth_gbs })
}

fn case_strategy() -> impl Strategy<Value = OffloadCase> {
    (1u64..100_000_000, 1u64..100_000, 1.0f64..10_000.0, 1u64..1000).prop_map(
        |(whole, accessed_raw, kernel_us, invocations)| OffloadCase {
            whole_bytes: whole,
            accessed_bytes: accessed_raw.min(whole),
            kernel_us,
            invocations,
        },
    )
}

proptest! {
    /// Transfer time is strictly monotone in bytes (for nonzero sizes).
    #[test]
    fn transfer_monotone(link in link_strategy(), a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(link.transfer_us(lo) <= link.transfer_us(hi));
        if lo < hi {
            prop_assert!(link.transfer_us(lo) < link.transfer_us(hi));
        }
    }

    /// Sub-array offload never loses (accessed ≤ whole by construction).
    #[test]
    fn subarray_never_loses(link in link_strategy(), case in case_strategy()) {
        let r = offload_speedup(link, case);
        prop_assert!(r.speedup() >= 1.0 - 1e-12, "speedup {}", r.speedup());
        prop_assert!(r.sub_us <= r.whole_us + 1e-9);
    }

    /// Speedup is invariant in the number of invocations (both sides scale
    /// linearly).
    #[test]
    fn speedup_invocation_invariant(link in link_strategy(), case in case_strategy()) {
        let one = offload_speedup(link, OffloadCase { invocations: 1, ..case });
        let many = offload_speedup(link, case);
        prop_assert!((one.speedup() - many.speedup()).abs() < 1e-9);
    }

    /// Growing the kernel time strictly shrinks the advantage (when there
    /// is one).
    #[test]
    fn kernel_time_dampens_speedup(link in link_strategy(), case in case_strategy()) {
        let slow_kernel = OffloadCase { kernel_us: case.kernel_us * 10.0, ..case };
        let fast = offload_speedup(link, case);
        let slow = offload_speedup(link, slow_kernel);
        prop_assert!(slow.speedup() <= fast.speedup() + 1e-9);
    }

    /// Bytes-moved accounting is exact.
    #[test]
    fn volume_accounting(link in link_strategy(), case in case_strategy()) {
        let r = offload_speedup(link, case);
        prop_assert_eq!(r.whole_bytes_moved, case.whole_bytes * case.invocations);
        prop_assert_eq!(r.sub_bytes_moved, case.accessed_bytes * case.invocations);
        prop_assert!(r.volume_reduction() >= 1.0);
    }

    /// Policy byte selection is what the names say.
    #[test]
    fn policy_selection(whole in 1u64..1_000_000, accessed in 0u64..1_000_000) {
        prop_assert_eq!(TransferPolicy::WholeArray.bytes(whole, accessed), whole);
        prop_assert_eq!(TransferPolicy::SubArray.bytes(whole, accessed), accessed);
    }
}
