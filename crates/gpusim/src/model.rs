//! The link and kernel cost model.

/// A host↔device link: `time(bytes) = latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Per-transfer fixed latency in microseconds.
    pub latency_us: f64,
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

impl LinkModel {
    /// A PCIe-2.0-era link (the paper is from 2012): ~25 µs launch latency,
    /// ~6 GB/s sustained.
    pub fn pcie2() -> Self {
        LinkModel { latency_us: 25.0, bandwidth_gbs: 6.0 }
    }

    /// Transfer time for `bytes`, in microseconds. Zero bytes cost nothing
    /// (no transfer is issued).
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_us + bytes as f64 / (self.bandwidth_gbs * 1e3)
    }
}

/// Which region a `copyin` clause names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferPolicy {
    /// `copyin(u)` — the whole declared array.
    WholeArray,
    /// `copyin(u(lb:ub, ...))` — only the accessed region reported by the
    /// analysis tool.
    SubArray,
}

impl TransferPolicy {
    /// Bytes moved per offload under this policy.
    pub fn bytes(self, whole_bytes: u64, accessed_bytes: u64) -> u64 {
        match self {
            TransferPolicy::WholeArray => whole_bytes,
            TransferPolicy::SubArray => accessed_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_volume() {
        let link = LinkModel { latency_us: 10.0, bandwidth_gbs: 1.0 };
        // 1 MB over 1 GB/s = 1000 µs + 10 µs latency.
        assert!((link.transfer_us(1_000_000) - 1010.0).abs() < 1e-9);
        assert_eq!(link.transfer_us(0), 0.0);
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes() {
        let link = LinkModel::pcie2();
        let mut prev = 0.0;
        for bytes in [1u64, 10, 1_000, 1_000_000, 10_816_000] {
            let t = link.transfer_us(bytes);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn policies_choose_bytes() {
        assert_eq!(TransferPolicy::WholeArray.bytes(100, 7), 100);
        assert_eq!(TransferPolicy::SubArray.bytes(100, 7), 7);
    }
}
