//! The Table IV experiment: whole-array vs sub-array offload.

use crate::model::{LinkModel, TransferPolicy};

/// One offload scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadCase {
    /// Declared array size in bytes (`Size_bytes` from the analysis row —
    /// 10 816 000 for LU's `u`).
    pub whole_bytes: u64,
    /// Bytes of the accessed region the tool reports (`(1:3,1:5,1:10,1:4)`
    /// of doubles = 3·5·10·4·8 = 4 800).
    pub accessed_bytes: u64,
    /// Kernel execution time per invocation, microseconds.
    pub kernel_us: f64,
    /// Number of offloaded invocations (LU's time steps).
    pub invocations: u64,
}

impl OffloadCase {
    /// The paper's Case 2 array with a given iteration count.
    pub fn lu_case2(invocations: u64) -> Self {
        OffloadCase {
            whole_bytes: 10_816_000,
            accessed_bytes: 3 * 5 * 10 * 4 * 8,
            kernel_us: 50.0,
            invocations,
        }
    }
}

/// The measured outcome of one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadResult {
    /// Total time with `copyin(u)`, microseconds.
    pub whole_us: f64,
    /// Total time with the sub-array clause, microseconds.
    pub sub_us: f64,
    /// Bytes moved by each policy, total.
    pub whole_bytes_moved: u64,
    /// Bytes moved by the sub-array policy, total.
    pub sub_bytes_moved: u64,
}

impl OffloadResult {
    /// The Table IV column: `speedup = whole / sub`.
    pub fn speedup(&self) -> f64 {
        if self.sub_us == 0.0 {
            return 1.0;
        }
        self.whole_us / self.sub_us
    }

    /// Transfer-volume reduction factor.
    pub fn volume_reduction(&self) -> f64 {
        if self.sub_bytes_moved == 0 {
            return 1.0;
        }
        self.whole_bytes_moved as f64 / self.sub_bytes_moved as f64
    }
}

/// Evaluates both policies over a scenario.
///
/// ```
/// use gpusim::{offload_speedup, LinkModel, OffloadCase};
///
/// // The paper's Case 2: copyin(u) vs copyin(u(1:3,1:5,1:10,1:4)).
/// let r = offload_speedup(LinkModel::pcie2(), OffloadCase::lu_case2(50));
/// assert!(r.speedup() > 5.0, "a huge speedup, as the paper promises");
/// assert_eq!(r.volume_reduction().round() as u64, 2253);
/// ```
pub fn offload_speedup(link: LinkModel, case: OffloadCase) -> OffloadResult {
    let per_invocation = |policy: TransferPolicy| -> f64 {
        let bytes = policy.bytes(case.whole_bytes, case.accessed_bytes);
        link.transfer_us(bytes) + case.kernel_us
    };
    let n = case.invocations as f64;
    OffloadResult {
        whole_us: per_invocation(TransferPolicy::WholeArray) * n,
        sub_us: per_invocation(TransferPolicy::SubArray) * n,
        whole_bytes_moved: case.whole_bytes * case.invocations,
        sub_bytes_moved: case.accessed_bytes * case.invocations,
    }
}

/// A problem-class sweep in the NAS spirit (S/W/A/B/C scale the grid).
/// Returns `(class name, result)` rows — the regenerated Table IV.
pub fn sweep_classes(link: LinkModel, invocations: u64) -> Vec<(&'static str, OffloadResult)> {
    // Grid extents per class (nx = ny = nz), 5 components of doubles; the
    // accessed region keeps the Case 2 shape (a fixed small sub-block).
    let classes: [(&str, u64); 5] =
        [("S", 12), ("W", 33), ("A", 64), ("B", 102), ("C", 162)];
    classes
        .iter()
        .map(|&(name, n)| {
            let whole = n * (n + 1) * (n + 1) * 5 * 8;
            let case = OffloadCase {
                whole_bytes: whole,
                accessed_bytes: 3 * 5 * 10 * 4 * 8,
                kernel_us: 50.0,
                invocations,
            };
            (name, offload_speedup(link, case))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_array_wins_for_lu_case2() {
        let r = offload_speedup(LinkModel::pcie2(), OffloadCase::lu_case2(50));
        assert!(r.speedup() > 5.0, "huge speedup expected: {}", r.speedup());
        assert!(r.volume_reduction() > 2000.0);
        assert!(r.sub_us < r.whole_us);
    }

    #[test]
    fn speedup_grows_with_array_size() {
        let link = LinkModel::pcie2();
        let rows = sweep_classes(link, 50);
        assert_eq!(rows.len(), 5);
        let speedups: Vec<f64> = rows.iter().map(|(_, r)| r.speedup()).collect();
        for w in speedups.windows(2) {
            assert!(w[1] > w[0], "larger classes benefit more: {speedups:?}");
        }
    }

    #[test]
    fn speedup_invariant_in_invocations() {
        // Both policies scale linearly with invocations, so the ratio holds.
        let link = LinkModel::pcie2();
        let a = offload_speedup(link, OffloadCase::lu_case2(1)).speedup();
        let b = offload_speedup(link, OffloadCase::lu_case2(500)).speedup();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn kernel_bound_cases_cap_the_benefit() {
        // With an enormous kernel time, transfers stop mattering.
        let link = LinkModel::pcie2();
        let case = OffloadCase { kernel_us: 1e9, ..OffloadCase::lu_case2(10) };
        let r = offload_speedup(link, case);
        assert!(r.speedup() < 1.01);
        assert!(r.speedup() >= 1.0);
    }

    #[test]
    fn equal_regions_mean_no_speedup() {
        let link = LinkModel::pcie2();
        let case = OffloadCase {
            whole_bytes: 4800,
            accessed_bytes: 4800,
            kernel_us: 50.0,
            invocations: 3,
        };
        let r = offload_speedup(link, case);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_moved_accounting() {
        let r = offload_speedup(LinkModel::pcie2(), OffloadCase::lu_case2(2));
        assert_eq!(r.whole_bytes_moved, 2 * 10_816_000);
        assert_eq!(r.sub_bytes_moved, 2 * 4800);
    }
}
