//! `gpusim` — analytic host↔device transfer model (Table IV's substitute).
//!
//! The paper's Case 2 inserts `!$acc region copyin(u(1:3,1:5,1:10,1:4))`
//! instead of `copyin(u)`, so "only these portions of u will be offloaded to
//! GPU. This should considerably reduce data transfers between host and GPU
//! and guarantee a huge speedup" (Table IV, measured on the authors' 24-core
//! cluster with a PGI-accelerated GPU). That hardware is not available here,
//! so per the substitution rule we model the same decision analytically:
//! a PCIe-like link (fixed latency + bandwidth), a kernel cost, and the two
//! transfer policies. Absolute times are synthetic; the *shape* — who wins
//! and how the advantage scales with the accessed fraction — is the
//! reproduced result.

pub mod model;
pub mod offload;

pub use model::{LinkModel, TransferPolicy};
pub use offload::{offload_speedup, sweep_classes, OffloadCase, OffloadResult};
