//! Property tests for the region machinery: Fourier–Motzkin soundness,
//! triplet algebra laws, and convex-region lattice properties.

use proptest::prelude::*;
use regions::constraint::{Constraint, ConstraintSystem};
use regions::convex::box_region;
use regions::fourier_motzkin::{bounds_of, eliminate, is_satisfiable, FmStats};
use regions::linexpr::LinExpr;
use regions::space::VarId;
use regions::triplet::{Triplet, TripletRegion};

// ---------------------------------------------------------------- triplets

fn triplet_strategy() -> impl Strategy<Value = Triplet> {
    (-50i64..50, 0i64..60, 1i64..6)
        .prop_map(|(lb, span, stride)| Triplet::constant(lb, lb + span, stride))
}

proptest! {
    /// The normalized triplet's ub is the last element actually hit.
    #[test]
    fn triplet_ub_is_attained(t in triplet_strategy()) {
        let (lb, ub, stride) = t.as_const().unwrap();
        prop_assert_eq!((ub - lb) % stride, 0);
        prop_assert_eq!(t.contains(ub), Some(true));
        prop_assert_eq!(t.contains(lb), Some(true));
    }

    /// count() equals the number of iterated elements.
    #[test]
    fn triplet_count_matches_iteration(t in triplet_strategy()) {
        let n = t.iter().unwrap().count() as u64;
        prop_assert_eq!(t.count(), Some(n));
    }

    /// contains() agrees with explicit enumeration.
    #[test]
    fn triplet_contains_agrees_with_iter(t in triplet_strategy(), probe in -60i64..120) {
        let by_iter = t.iter().unwrap().any(|i| i == probe);
        prop_assert_eq!(t.contains(probe), Some(by_iter));
    }

    /// Hull contains every element of both operands.
    #[test]
    fn hull_is_an_upper_bound(a in triplet_strategy(), b in triplet_strategy()) {
        let h = a.hull(&b);
        for i in a.iter().unwrap().chain(b.iter().unwrap()) {
            prop_assert_eq!(h.contains(i), Some(true), "{} not in hull {}", i, h);
        }
    }

    /// Hull is commutative.
    #[test]
    fn hull_commutes(a in triplet_strategy(), b in triplet_strategy()) {
        prop_assert_eq!(a.hull(&b), b.hull(&a));
    }

    /// disjoint_from is symmetric and agrees with set intersection.
    #[test]
    fn disjoint_matches_set_semantics(a in triplet_strategy(), b in triplet_strategy()) {
        let d1 = a.disjoint_from(&b).unwrap();
        let d2 = b.disjoint_from(&a).unwrap();
        prop_assert_eq!(d1, d2);
        let sa: std::collections::BTreeSet<i64> = a.iter().unwrap().collect();
        let really_disjoint = !b.iter().unwrap().any(|i| sa.contains(&i));
        prop_assert_eq!(d1, really_disjoint);
    }
}

// ------------------------------------------------------------- 2-D regions

fn region2_strategy() -> impl Strategy<Value = TripletRegion> {
    (triplet_strategy(), triplet_strategy())
        .prop_map(|(a, b)| TripletRegion::new(vec![a, b]))
}

proptest! {
    /// Region disjointness is sound: if reported disjoint, no shared point.
    #[test]
    fn region_disjointness_sound(a in region2_strategy(), b in region2_strategy()) {
        if a.disjoint_from(&b) == Some(true) {
            // Sample the smaller region's points and check none is in b.
            let pts_a: Vec<Vec<i64>> = {
                let mut v = Vec::new();
                regions::methods::enumerate_region(&a, &mut |p| v.push(p.to_vec()));
                v
            };
            for p in pts_a.iter().take(500) {
                prop_assert_ne!(b.contains(p), Some(true), "shared point {:?}", p);
            }
        }
    }

    /// element_count multiplies per-dimension counts.
    #[test]
    fn region_count_is_product(r in region2_strategy()) {
        let expect = r.dims[0].count().unwrap() * r.dims[1].count().unwrap();
        prop_assert_eq!(r.element_count(), Some(expect));
    }

    /// The hull of a region with itself is itself.
    #[test]
    fn hull_idempotent(r in region2_strategy()) {
        prop_assert_eq!(r.hull(&r), r);
    }
}

// --------------------------------------------------------- Fourier–Motzkin

/// A random small constraint system over 3 variables with a guaranteed box,
/// so satisfiability is decidable by brute force over the box.
fn small_system() -> impl Strategy<Value = (ConstraintSystem, i64)> {
    let coeffs = proptest::collection::vec((-3i64..=3, -3i64..=3, -3i64..=3, -10i64..=10), 0..5);
    (coeffs, 3i64..8).prop_map(|(rows, box_hi)| {
        let mut cs = ConstraintSystem::new();
        for v in 0..3u32 {
            cs.push(Constraint::ge(LinExpr::var(VarId(v)), LinExpr::constant(0)));
            cs.push(Constraint::le(LinExpr::var(VarId(v)), LinExpr::constant(box_hi)));
        }
        for (a, b, c, k) in rows {
            let mut e = LinExpr::constant(k);
            e.add_term(VarId(0), a);
            e.add_term(VarId(1), b);
            e.add_term(VarId(2), c);
            cs.push(Constraint::ge0(e));
        }
        (cs, box_hi)
    })
}

fn brute_force_solutions(cs: &ConstraintSystem, hi: i64) -> Vec<[i64; 3]> {
    let mut out = Vec::new();
    for x in 0..=hi {
        for y in 0..=hi {
            for z in 0..=hi {
                let assign = |v: VarId| -> Option<i64> {
                    Some(match v.0 {
                        0 => x,
                        1 => y,
                        _ => z,
                    })
                };
                if cs.holds(&assign) == Some(true) {
                    out.push([x, y, z]);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FM elimination is an over-approximation: every integer solution of
    /// the original system satisfies the projected system.
    #[test]
    fn fm_projection_is_sound((cs, hi) in small_system()) {
        let sols = brute_force_solutions(&cs, hi);
        let mut stats = FmStats::default();
        if let regions::fourier_motzkin::Projection::Feasible(projected) =
            eliminate(&cs, VarId(2), &mut stats)
        {
            for s in &sols {
                let assign = |v: VarId| -> Option<i64> {
                    Some(match v.0 {
                        0 => s[0],
                        1 => s[1],
                        _ => s[2],
                    })
                };
                prop_assert_eq!(
                    projected.holds(&assign), Some(true),
                    "solution {:?} lost by projection", s
                );
            }
        } else {
            // Projection proved emptiness: there must be no solutions.
            prop_assert!(sols.is_empty(), "Empty projection but solutions exist");
        }
    }

    /// If brute force finds a solution, is_satisfiable must agree (it may
    /// also report rational-only solutions, so only this direction holds).
    #[test]
    fn satisfiability_never_misses_solutions((cs, hi) in small_system()) {
        if !brute_force_solutions(&cs, hi).is_empty() {
            prop_assert!(is_satisfiable(&cs));
        }
    }

    /// bounds_of returns bounds that every solution respects, and that are
    /// attained in the rational relaxation (lower ≤ min, max ≤ upper).
    #[test]
    fn bounds_of_is_sound((cs, hi) in small_system()) {
        let sols = brute_force_solutions(&cs, hi);
        if let Some((lo, up)) = bounds_of(&cs, VarId(0)) {
            for s in &sols {
                if let Some(lo) = lo {
                    prop_assert!(s[0] >= lo, "{:?} below reported lower {}", s, lo);
                }
                if let Some(up) = up {
                    prop_assert!(s[0] <= up, "{:?} above reported upper {}", s, up);
                }
            }
        } else {
            prop_assert!(sols.is_empty(), "bounds_of reported empty but solutions exist");
        }
    }
}

// ------------------------------------------------------------------ convex

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Boxes: containment, intersection and union respect set semantics.
    #[test]
    fn convex_box_laws(
        a_lo in -10i64..10, a_span in 0i64..15,
        b_lo in -10i64..10, b_span in 0i64..15,
        probe in -20i64..30,
    ) {
        let a = box_region(&[(a_lo, a_lo + a_span)]);
        let b = box_region(&[(b_lo, b_lo + b_span)]);
        let in_a = probe >= a_lo && probe <= a_lo + a_span;
        let in_b = probe >= b_lo && probe <= b_lo + b_span;

        prop_assert_eq!(a.may_contain_point(&[probe]), in_a);
        prop_assert_eq!(a.intersect(&b).may_contain_point(&[probe]), in_a && in_b);
        // Union over-approximates: contains everything either side had.
        if in_a || in_b {
            prop_assert!(a.union_hull(&b).may_contain_point(&[probe]));
        }
        // Disjointness is exact for boxes.
        let really_disjoint = a_lo + a_span < b_lo || b_lo + b_span < a_lo;
        prop_assert_eq!(a.disjoint_from(&b), really_disjoint);
    }

    /// contains_region is a partial order consistent with interval inclusion.
    #[test]
    fn convex_containment(
        lo in -5i64..5, span in 0i64..10, shrink in 0i64..5,
    ) {
        let big = box_region(&[(lo, lo + span)]);
        let small_hi = (lo + span - shrink).max(lo);
        let small = box_region(&[(lo, small_hi)]);
        prop_assert!(big.contains_region(&small));
        if small_hi < lo + span {
            prop_assert!(!small.contains_region(&big));
        }
    }
}

proptest! {
    /// Intersection agrees with explicit set intersection, including the
    /// stride/phase arithmetic.
    #[test]
    fn intersection_matches_set_semantics(a in triplet_strategy(), b in triplet_strategy()) {
        let sa: std::collections::BTreeSet<i64> = a.iter().unwrap().collect();
        let sb: std::collections::BTreeSet<i64> = b.iter().unwrap().collect();
        let expected: Vec<i64> = sa.intersection(&sb).copied().collect();
        match a.intersect(&b).unwrap() {
            None => prop_assert!(expected.is_empty(), "claimed empty, set has {expected:?}"),
            Some(t) => {
                let got: Vec<i64> = t.iter().unwrap().collect();
                prop_assert_eq!(got, expected);
            }
        }
    }

    /// Intersection is commutative.
    #[test]
    fn intersection_commutes(a in triplet_strategy(), b in triplet_strategy()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    /// A triplet intersected with itself is itself.
    #[test]
    fn intersection_idempotent(a in triplet_strategy()) {
        prop_assert_eq!(a.intersect(&a).unwrap(), Some(a));
    }
}
