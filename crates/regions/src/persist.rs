//! Persistence codec ([`Persist`]) implementations for region types.
//!
//! The session cache (see `core::session`) stores per-procedure summaries
//! on disk; those summaries bottom out in the types here. Encodings are
//! exact round-trips: a reloaded region compares `==` to the one that was
//! saved, which the byte-identical warm-vs-cold tests depend on.
//!
//! Decoding is total on hostile input — every malformed byte stream comes
//! back as [`support::Error::Format`], never a panic — because corrupt
//! cache files reach these decoders after container-level checksums only
//! in fault-injection scenarios that deliberately bypass them.

use crate::constraint::{Constraint, ConstraintSystem, Rel};
use crate::convex::ConvexRegion;
use crate::linexpr::LinExpr;
use crate::space::{Space, VarId, VarKind};
use crate::triplet::{Bound, Triplet, TripletRegion};
use crate::access::{AccessMode, Precision};
use support::error::{Error, Result};
use support::intern::Symbol;
use support::persist::{ByteReader, ByteWriter, Persist};

impl Persist for AccessMode {
    fn save(&self, w: &mut ByteWriter) {
        w.str(self.as_str());
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        let s = r.str()?;
        AccessMode::parse(&s).ok_or_else(|| Error::Format(format!("unknown access mode `{s}`")))
    }
}

impl Persist for Precision {
    fn save(&self, w: &mut ByteWriter) {
        w.str(self.as_str());
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        let s = r.str()?;
        Precision::parse(&s).ok_or_else(|| Error::Format(format!("unknown precision `{s}`")))
    }
}

impl Persist for VarId {
    fn save(&self, w: &mut ByteWriter) {
        w.u32(self.0);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(VarId(r.u32()?))
    }
}

impl Persist for VarKind {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            VarKind::Dim(d) => {
                w.u8(0);
                w.u8(*d);
            }
            VarKind::Loop(s) => {
                w.u8(1);
                w.usize(s.index());
            }
            VarKind::Sym(s) => {
                w.u8(2);
                w.usize(s.index());
            }
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(VarKind::Dim(r.u8()?)),
            1 => Ok(VarKind::Loop(Symbol::from_index(r.usize()?)?)),
            2 => Ok(VarKind::Sym(Symbol::from_index(r.usize()?)?)),
            t => Err(Error::Format(format!("invalid VarKind tag {t}"))),
        }
    }
}

impl Persist for Space {
    fn save(&self, w: &mut ByteWriter) {
        w.usize(self.len());
        for (_, kind) in self.iter() {
            kind.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        let len = r.usize()?;
        let mut space = Space::new();
        for _ in 0..len {
            space.add(VarKind::load(r)?);
        }
        Ok(space)
    }
}

impl Persist for LinExpr {
    fn save(&self, w: &mut ByteWriter) {
        w.i64(self.constant_term());
        let terms: Vec<(VarId, i64)> = self.terms().collect();
        w.usize(terms.len());
        for (v, c) in terms {
            v.save(w);
            w.i64(c);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        let mut e = LinExpr::constant(r.i64()?);
        let n = r.usize()?;
        for _ in 0..n {
            let v = VarId::load(r)?;
            let c = r.i64()?;
            e.add_term(v, c);
        }
        Ok(e)
    }
}

impl Persist for Rel {
    fn save(&self, w: &mut ByteWriter) {
        w.u8(match self {
            Rel::Ge => 0,
            Rel::Eq => 1,
        });
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(Rel::Ge),
            1 => Ok(Rel::Eq),
            t => Err(Error::Format(format!("invalid Rel tag {t}"))),
        }
    }
}

impl Persist for Constraint {
    fn save(&self, w: &mut ByteWriter) {
        self.expr.save(w);
        self.rel.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Constraint { expr: LinExpr::load(r)?, rel: Rel::load(r)? })
    }
}

impl Persist for ConstraintSystem {
    fn save(&self, w: &mut ByteWriter) {
        w.usize(self.constraints().len());
        for c in self.constraints() {
            c.save(w);
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        // `push` dedups and drops trivially-true constraints; a system that
        // was built through `push` (every saved one was) round-trips exactly.
        let n = r.usize()?;
        let mut sys = ConstraintSystem::new();
        for _ in 0..n {
            sys.push(Constraint::load(r)?);
        }
        Ok(sys)
    }
}

impl Persist for ConvexRegion {
    fn save(&self, w: &mut ByteWriter) {
        self.space().save(w);
        self.system().save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        let space = Space::load(r)?;
        let system = ConstraintSystem::load(r)?;
        Ok(ConvexRegion::new(space, system))
    }
}

impl Persist for Bound {
    fn save(&self, w: &mut ByteWriter) {
        match self {
            Bound::Const(c) => {
                w.u8(0);
                w.i64(*c);
            }
            Bound::Expr(e) => {
                w.u8(1);
                e.save(w);
            }
            Bound::Messy => w.u8(2),
            Bound::Unprojected => w.u8(3),
        }
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(Bound::Const(r.i64()?)),
            1 => Ok(Bound::Expr(LinExpr::load(r)?)),
            2 => Ok(Bound::Messy),
            3 => Ok(Bound::Unprojected),
            t => Err(Error::Format(format!("invalid Bound tag {t}"))),
        }
    }
}

impl Persist for Triplet {
    fn save(&self, w: &mut ByteWriter) {
        self.lb.save(w);
        self.ub.save(w);
        self.stride.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Triplet { lb: Bound::load(r)?, ub: Bound::load(r)?, stride: Bound::load(r)? })
    }
}

impl Persist for TripletRegion {
    fn save(&self, w: &mut ByteWriter) {
        self.dims.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(TripletRegion { dims: Vec::load(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = ByteWriter::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = T::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn region_types_round_trip() {
        let mut space = Space::with_dims(2);
        let i = space.add(VarKind::Loop(Symbol::from_index(3).unwrap()));
        let m = space.add(VarKind::Sym(Symbol::from_index(9).unwrap()));
        round_trip(&space);

        let e = LinExpr::term(i, 2).add(&LinExpr::term(m, -1)).add(&LinExpr::constant(7));
        round_trip(&e);

        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge0(e.clone()));
        sys.push(Constraint::eq0(LinExpr::var(i).sub(&LinExpr::constant(1))));
        round_trip(&sys);

        round_trip(&ConvexRegion::new(space, sys));

        let region = TripletRegion {
            dims: vec![
                Triplet { lb: Bound::Const(1), ub: Bound::Expr(e), stride: Bound::Const(2) },
                Triplet { lb: Bound::Messy, ub: Bound::Unprojected, stride: Bound::Const(1) },
            ],
        };
        round_trip(&region);

        for mode in [AccessMode::Use, AccessMode::Def, AccessMode::Formal, AccessMode::Passed] {
            round_trip(&mode);
        }
    }

    #[test]
    fn truncated_region_bytes_error_cleanly() {
        let region = TripletRegion {
            dims: vec![Triplet {
                lb: Bound::Const(1),
                ub: Bound::Const(8),
                stride: Bound::Const(1),
            }],
        };
        let mut w = ByteWriter::new();
        region.save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                TripletRegion::load(&mut r).is_err() || r.finish().is_err() || cut == bytes.len()
            );
        }
    }

    #[test]
    fn bad_tags_are_format_errors() {
        let mut w = ByteWriter::new();
        w.u8(9);
        let bytes = w.into_bytes();
        assert!(Bound::load(&mut ByteReader::new(&bytes)).is_err());
        assert!(Rel::load(&mut ByteReader::new(&bytes)).is_err());
        assert!(VarKind::load(&mut ByteReader::new(&bytes)).is_err());
    }
}
