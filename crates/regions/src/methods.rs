//! The Fig. 2 taxonomy of array-analysis methods.
//!
//! "The different methods for analyzing array access patterns are based
//! mainly on three approaches: reference-list-based, triplet-notation-based,
//! and linear constraint-based ... these methods differ in terms of
//! efficiency and accuracy." Plus the pre-region *classic* method that
//! "just uses two bits to represent array summaries".
//!
//! Every method implements [`SummaryMethod`] so the Fig. 2 bench can sweep
//! all four over the same access streams and report summary storage,
//! insertion cost, and precision (false-positive rate of `may_access`
//! against ground truth).

use crate::access::AccessMode;
use crate::convex::{box_region, ConvexRegion};
use crate::triplet::TripletRegion;
use std::collections::BTreeSet;

/// A uniform interface over the four summarization approaches.
pub trait SummaryMethod {
    /// Method name for reports.
    fn name(&self) -> &'static str;
    /// Folds one summarized reference into the per-mode summary. Only
    /// constant regions participate in the taxonomy comparison.
    fn add_reference(&mut self, mode: AccessMode, region: &TripletRegion);
    /// Conservative membership: may the summarized accesses of `mode` touch
    /// `point`? Must never answer `false` for a truly-accessed point.
    fn may_access(&self, mode: AccessMode, point: &[i64]) -> bool;
    /// Approximate bytes the summary occupies.
    fn storage_bytes(&self) -> usize;
}

fn mode_slot(mode: AccessMode) -> usize {
    match mode {
        AccessMode::Use => 0,
        AccessMode::Def => 1,
        AccessMode::Formal => 2,
        AccessMode::Passed => 3,
    }
}

/// Classic method: one bit per access mode — "it represents the array as a
/// whole and not the portions of array elements".
#[derive(Debug, Clone)]
pub struct ClassicMethod {
    extent: Vec<(i64, i64)>,
    bits: [bool; 4],
}

impl ClassicMethod {
    /// The array's declared extent per dimension (needed to answer
    /// whole-array membership).
    pub fn new(extent: Vec<(i64, i64)>) -> Self {
        ClassicMethod { extent, bits: [false; 4] }
    }
}

impl SummaryMethod for ClassicMethod {
    fn name(&self) -> &'static str {
        "classic"
    }

    fn add_reference(&mut self, mode: AccessMode, _region: &TripletRegion) {
        self.bits[mode_slot(mode)] = true;
    }

    fn may_access(&self, mode: AccessMode, point: &[i64]) -> bool {
        self.bits[mode_slot(mode)]
            && point.len() == self.extent.len()
            && point
                .iter()
                .zip(&self.extent)
                .all(|(&p, &(lo, hi))| p >= lo && p <= hi)
    }

    fn storage_bytes(&self) -> usize {
        1 // four mode bits fit in one byte
    }
}

/// Reference-list method (Linearization / Atom Images lineage): "maintain
/// information about references of all the elements of the array and store
/// them as a list ... a high degree of accuracy, \[but\] a significant storage
/// space."
#[derive(Debug, Clone, Default)]
pub struct RefListMethod {
    elements: [BTreeSet<Vec<i64>>; 4],
}

impl RefListMethod {
    /// Creates an empty reference list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total elements recorded across modes.
    pub fn total_elements(&self) -> usize {
        self.elements.iter().map(BTreeSet::len).sum()
    }
}

impl SummaryMethod for RefListMethod {
    fn name(&self) -> &'static str {
        "reference-list"
    }

    fn add_reference(&mut self, mode: AccessMode, region: &TripletRegion) {
        let set = &mut self.elements[mode_slot(mode)];
        enumerate_region(region, &mut |point| {
            set.insert(point.to_vec());
        });
    }

    fn may_access(&self, mode: AccessMode, point: &[i64]) -> bool {
        self.elements[mode_slot(mode)].contains(point)
    }

    fn storage_bytes(&self) -> usize {
        self.elements
            .iter()
            .flat_map(|set| set.iter())
            .map(|p| p.len() * std::mem::size_of::<i64>())
            .sum()
    }
}

/// Bounded regular sections (Havlak & Kennedy): one triplet region per mode,
/// widened by hulling — "quite simple in contrast with linear
/// constraint-based methods since complex arithmetic is not involved".
#[derive(Debug, Clone, Default)]
pub struct RsdMethod {
    sections: [Option<TripletRegion>; 4],
}

impl RsdMethod {
    /// Creates an empty section summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current section for `mode`.
    pub fn section(&self, mode: AccessMode) -> Option<&TripletRegion> {
        self.sections[mode_slot(mode)].as_ref()
    }
}

impl SummaryMethod for RsdMethod {
    fn name(&self) -> &'static str {
        "regular-sections"
    }

    fn add_reference(&mut self, mode: AccessMode, region: &TripletRegion) {
        let slot = &mut self.sections[mode_slot(mode)];
        *slot = Some(match slot.take() {
            Some(cur) => cur.hull(region),
            None => region.clone(),
        });
    }

    fn may_access(&self, mode: AccessMode, point: &[i64]) -> bool {
        match &self.sections[mode_slot(mode)] {
            Some(r) => r.contains(point).unwrap_or(true),
            None => false,
        }
    }

    fn storage_bytes(&self) -> usize {
        self.sections
            .iter()
            .flatten()
            .map(|r| r.ndims() * 3 * std::mem::size_of::<i64>())
            .sum()
    }
}

/// The linear-constraint Regions method: a list of convex regions per mode,
/// folded with the approximate convex union once the list exceeds a budget.
#[derive(Debug, Clone)]
pub struct ConvexMethod {
    regions: [Vec<ConvexRegion>; 4],
    /// Regions kept exactly per mode before union-folding kicks in.
    pub fold_threshold: usize,
}

impl Default for ConvexMethod {
    fn default() -> Self {
        ConvexMethod { regions: Default::default(), fold_threshold: 8 }
    }
}

impl ConvexMethod {
    /// Creates an empty summary with the default fold threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty summary keeping at most `fold_threshold` exact
    /// pieces per mode before union-folding kicks in.
    pub fn with_fold_threshold(fold_threshold: usize) -> Self {
        ConvexMethod { fold_threshold, ..Default::default() }
    }

    /// Number of retained convex pieces for `mode`.
    pub fn piece_count(&self, mode: AccessMode) -> usize {
        self.regions[mode_slot(mode)].len()
    }
}

impl SummaryMethod for ConvexMethod {
    fn name(&self) -> &'static str {
        "convex-regions"
    }

    fn add_reference(&mut self, mode: AccessMode, region: &TripletRegion) {
        // Re-express the (constant) triplet region as a box; strided triplets
        // lose their stride here, which is exactly the convex method's
        // documented imprecision for non-dense sections.
        let mut bounds = Vec::with_capacity(region.ndims());
        for t in &region.dims {
            match t.as_const() {
                Some((lo, hi, _s)) => bounds.push((lo, hi)),
                None => return, // symbolic regions don't join the comparison
            }
        }
        let cx = box_region(&bounds);
        let list = &mut self.regions[mode_slot(mode)];
        list.push(cx);
        if list.len() > self.fold_threshold {
            // Fold the two oldest pieces into their approximate union.
            let a = list.remove(0);
            let b = list.remove(0);
            list.insert(0, a.union_hull(&b));
        }
    }

    fn may_access(&self, mode: AccessMode, point: &[i64]) -> bool {
        self.regions[mode_slot(mode)]
            .iter()
            .any(|r| r.may_contain_point(point))
    }

    fn storage_bytes(&self) -> usize {
        self.regions
            .iter()
            .flatten()
            .map(|r| {
                r.system()
                    .constraints()
                    .iter()
                    .map(|c| (c.expr.terms().count() + 1) * std::mem::size_of::<i64>())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Calls `f` for every element of a constant region (row-major order).
pub fn enumerate_region(region: &TripletRegion, f: &mut dyn FnMut(&[i64])) {
    let mut iters: Vec<Vec<i64>> = Vec::with_capacity(region.ndims());
    for t in &region.dims {
        match t.iter() {
            Some(it) => iters.push(it.collect()),
            None => return,
        }
    }
    let mut point = vec![0i64; iters.len()];
    enumerate_rec(&iters, 0, &mut point, f);
}

fn enumerate_rec(
    iters: &[Vec<i64>],
    d: usize,
    point: &mut [i64],
    f: &mut dyn FnMut(&[i64]),
) {
    if d == iters.len() {
        f(point);
        return;
    }
    for &v in &iters[d] {
        point[d] = v;
        enumerate_rec(iters, d + 1, point, f);
    }
}

/// Precision report for one method against ground truth over an extent box:
/// fraction of extent points the method wrongly claims may be accessed.
pub fn false_positive_rate(
    method: &dyn SummaryMethod,
    mode: AccessMode,
    truth: &BTreeSet<Vec<i64>>,
    extent: &[(i64, i64)],
) -> f64 {
    let mut total = 0u64;
    let mut wrong = 0u64;
    let full = TripletRegion::new(
        extent
            .iter()
            .map(|&(lo, hi)| crate::triplet::Triplet::constant(lo, hi, 1))
            .collect(),
    );
    enumerate_region(&full, &mut |point| {
        total += 1;
        let claimed = method.may_access(mode, point);
        let actual = truth.contains(point);
        if claimed && !actual {
            wrong += 1;
        }
        // Soundness is asserted, not scored: a miss is a bug.
        debug_assert!(
            claimed || !actual,
            "method {} unsoundly denied {:?}",
            method.name(),
            point
        );
    });
    if total == 0 {
        0.0
    } else {
        wrong as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::Triplet;

    fn strided() -> TripletRegion {
        TripletRegion::new(vec![Triplet::constant(2, 6, 2)])
    }

    fn truth_of(regions: &[&TripletRegion]) -> BTreeSet<Vec<i64>> {
        let mut t = BTreeSet::new();
        for r in regions {
            enumerate_region(r, &mut |p| {
                t.insert(p.to_vec());
            });
        }
        t
    }

    #[test]
    fn classic_is_whole_array() {
        let mut m = ClassicMethod::new(vec![(0, 19)]);
        m.add_reference(AccessMode::Use, &strided());
        assert!(m.may_access(AccessMode::Use, &[0]));
        assert!(m.may_access(AccessMode::Use, &[19]));
        assert!(!m.may_access(AccessMode::Use, &[20]));
        assert!(!m.may_access(AccessMode::Def, &[4]));
        assert_eq!(m.storage_bytes(), 1);
    }

    #[test]
    fn reference_list_is_exact() {
        let mut m = RefListMethod::new();
        m.add_reference(AccessMode::Use, &strided());
        assert!(m.may_access(AccessMode::Use, &[2]));
        assert!(m.may_access(AccessMode::Use, &[4]));
        assert!(!m.may_access(AccessMode::Use, &[3]));
        assert_eq!(m.total_elements(), 3);
        assert_eq!(m.storage_bytes(), 3 * 8);
    }

    #[test]
    fn rsd_keeps_stride_for_single_reference() {
        let mut m = RsdMethod::new();
        m.add_reference(AccessMode::Use, &strided());
        assert!(m.may_access(AccessMode::Use, &[4]));
        assert!(!m.may_access(AccessMode::Use, &[3]));
    }

    #[test]
    fn rsd_hulls_multiple_references() {
        let mut m = RsdMethod::new();
        m.add_reference(AccessMode::Def, &TripletRegion::new(vec![Triplet::constant(0, 7, 1)]));
        m.add_reference(AccessMode::Def, &TripletRegion::new(vec![Triplet::constant(1, 8, 1)]));
        let s = m.section(AccessMode::Def).unwrap();
        assert_eq!(s.dims[0].as_const(), Some((0, 8, 1)));
    }

    #[test]
    fn convex_drops_stride_but_keeps_bounds() {
        let mut m = ConvexMethod::new();
        m.add_reference(AccessMode::Use, &strided());
        assert!(m.may_access(AccessMode::Use, &[3])); // stride lost: box 2..=6
        assert!(!m.may_access(AccessMode::Use, &[7]));
        assert_eq!(m.piece_count(AccessMode::Use), 1);
    }

    #[test]
    fn convex_folds_pieces_beyond_threshold() {
        let mut m = ConvexMethod { fold_threshold: 2, ..Default::default() };
        for k in 0..4 {
            let r = TripletRegion::new(vec![Triplet::constant(k * 10, k * 10 + 2, 1)]);
            m.add_reference(AccessMode::Use, &r);
        }
        assert!(m.piece_count(AccessMode::Use) <= 3);
        // Soundness after folding: every original point still claimed.
        for k in 0..4 {
            assert!(m.may_access(AccessMode::Use, &[k * 10 + 1]));
        }
    }

    #[test]
    fn precision_ordering_matches_fig2() {
        // Strided access over a 20-element array: accuracy should order
        // reference-list ≥ RSD > convex ≥ classic.
        let region = strided();
        let truth = truth_of(&[&region]);
        let extent = [(0i64, 19i64)];

        let mut classic = ClassicMethod::new(extent.to_vec());
        let mut reflist = RefListMethod::new();
        let mut rsd = RsdMethod::new();
        let mut convex = ConvexMethod::new();
        for m in [
            &mut classic as &mut dyn SummaryMethod,
            &mut reflist,
            &mut rsd,
            &mut convex,
        ] {
            m.add_reference(AccessMode::Use, &region);
        }

        let fp = |m: &dyn SummaryMethod| {
            false_positive_rate(m, AccessMode::Use, &truth, &extent)
        };
        let (c, r, s, x) = (fp(&classic), fp(&reflist), fp(&rsd), fp(&convex));
        assert_eq!(r, 0.0);
        assert!(s <= x, "rsd {s} should be at least as precise as convex {x}");
        assert!(x <= c, "convex {x} should be at least as precise as classic {c}");
        assert!(c > 0.0);
    }

    #[test]
    fn storage_ordering_matches_fig2() {
        // Storage: classic ≤ rsd ≤ convex ≤ reference-list on a large region.
        let big = TripletRegion::new(vec![Triplet::constant(0, 999, 1)]);
        let mut classic = ClassicMethod::new(vec![(0, 999)]);
        let mut reflist = RefListMethod::new();
        let mut rsd = RsdMethod::new();
        let mut convex = ConvexMethod::new();
        for m in [
            &mut classic as &mut dyn SummaryMethod,
            &mut reflist,
            &mut rsd,
            &mut convex,
        ] {
            m.add_reference(AccessMode::Def, &big);
        }
        assert!(classic.storage_bytes() <= rsd.storage_bytes());
        assert!(rsd.storage_bytes() <= convex.storage_bytes());
        assert!(convex.storage_bytes() < reflist.storage_bytes());
    }

    #[test]
    fn enumerate_region_row_major() {
        let r = TripletRegion::new(vec![
            Triplet::constant(0, 1, 1),
            Triplet::constant(5, 6, 1),
        ]);
        let mut seen = Vec::new();
        enumerate_region(&r, &mut |p| seen.push(p.to_vec()));
        assert_eq!(
            seen,
            vec![vec![0, 5], vec![0, 6], vec![1, 5], vec![1, 6]]
        );
    }
}
