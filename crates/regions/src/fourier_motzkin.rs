//! Fourier–Motzkin variable elimination.
//!
//! The paper notes the Regions method's first drawback: "Fourier-Motzkin
//! linear system solver, which has worst case exponential time, is needed to
//! compare Regions". We implement exactly that solver: projecting a variable
//! out of a conjunction of affine constraints by pairing every lower bound
//! with every upper bound, plus Gaussian substitution for equalities (which
//! avoids the quadratic blow-up whenever a subscript ties a dimension
//! variable to a loop variable — the common case).
//!
//! Over the integers FM projection is an *over-approximation* (dark-shadow
//! effects are ignored), which is exactly the conservative behaviour a region
//! summary needs: the projected region contains every truly-accessed element.

use crate::constraint::{lcm, Constraint, ConstraintSystem, Rel};
use crate::space::VarId;
use support::obs::{self, Counter};
use support::{budget, faultpoint};

/// Default constraint budget per elimination step. Classic FM is doubly
/// exponential on dense systems; beyond this many inequalities the
/// *simplest* ones (fewest terms, smallest coefficients) are kept and the
/// rest dropped. Dropping an inequality only enlarges the solution set, so
/// every consumer stays sound: projections over-approximate the shadow,
/// emptiness/disjointness are claimed less often (conservative for the
/// paper's parallelization test), and `bounds_of` can only widen.
///
/// An active [`budget`] scope overrides this cap (and additionally bounds
/// the total elimination work via its step budget).
pub const STEP_BUDGET: usize = budget::DEFAULT_MAX_CONSTRAINTS;

/// Why an FM-based summary is not exact. Every give-up site in this module
/// and in [`crate::summarize`] reports one of these instead of silently
/// returning a widened or absent result — the interval fallback pass keys
/// off the distinction (only `NonAffine` accesses are worth re-analyzing;
/// `Budget` means the affine answer exists but was truncated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ImpreciseReason {
    /// The step or constraint budget ran dry and a sound widening was
    /// applied (constraints dropped, bounds enlarged).
    Budget,
    /// A subscript or loop bound could not be linearized at all (indirect
    /// index, product of variables) — the affine machinery never saw it.
    NonAffine,
    /// The system stayed affine but a projection left residual symbolic
    /// terms no bound could be extracted from.
    Symbolic,
}

impl std::fmt::Display for ImpreciseReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ImpreciseReason::Budget => "budget",
            ImpreciseReason::NonAffine => "non-affine",
            ImpreciseReason::Symbolic => "symbolic",
        })
    }
}

/// Statistics from one elimination run, used by the ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FmStats {
    /// Variables eliminated.
    pub eliminated: usize,
    /// Constraint pairs combined across all eliminations.
    pub pairs_combined: usize,
    /// Equalities removed by substitution instead of pairing.
    pub substitutions: usize,
    /// Peak constraint count observed.
    pub peak_constraints: usize,
    /// Inequalities dropped by the [`STEP_BUDGET`] widening.
    pub widened: usize,
    /// Why the run is imprecise, when it is; `NonAffine` outranks `Budget`
    /// outranks `Symbolic` is *not* implied — the first recorded reason
    /// sticks unless a later one is strictly more fundamental (see
    /// [`FmStats::mark_imprecise`]).
    pub imprecise: Option<ImpreciseReason>,
}

impl FmStats {
    /// Records a give-up reason. `Budget` never overwrites `NonAffine`
    /// (a non-affine input is imprecise no matter how much budget is
    /// spent); otherwise the first reason wins.
    pub fn mark_imprecise(&mut self, reason: ImpreciseReason) {
        self.imprecise = Some(match self.imprecise {
            Some(ImpreciseReason::NonAffine) => ImpreciseReason::NonAffine,
            Some(cur) if reason != ImpreciseReason::NonAffine => cur,
            _ => reason,
        });
    }
}

/// Outcome of an elimination: the projected system or a proof of emptiness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// The variable was eliminated; the remaining system over-approximates
    /// the shadow of the original polyhedron.
    Feasible(ConstraintSystem),
    /// A contradiction surfaced: the original system has no solution.
    Empty,
}

impl Projection {
    /// Unwraps the feasible system, panicking on `Empty`.
    pub fn expect_feasible(self) -> ConstraintSystem {
        match self {
            Projection::Feasible(cs) => cs,
            Projection::Empty => panic!("projection of an empty system"),
        }
    }

    /// True when the projection proved emptiness.
    pub fn is_empty(&self) -> bool {
        matches!(self, Projection::Empty)
    }
}

/// Eliminates `v` from `system`.
///
/// Preference order: (1) if an equality mentions `v` with coefficient ±1,
/// substitute it exactly; (2) if an equality mentions `v` with another
/// coefficient, scale-and-substitute (still exact for the rational shadow,
/// conservative over ℤ); (3) otherwise pair lower × upper bounds.
pub fn eliminate(system: &ConstraintSystem, v: VarId, stats: &mut FmStats) -> Projection {
    faultpoint::hit("fm::eliminate");
    if system.has_contradiction() {
        return Projection::Empty;
    }
    if !system.mentions(v) {
        return Projection::Feasible(system.clone());
    }
    obs::incr(Counter::FmEliminations);

    let (lower, upper, eqs, rest) = system.partition_on(v);

    // Charge the work this elimination is about to do against the active
    // budget scope. Once the budget is dry, fall back to the coarsest sound
    // projection: drop every constraint mentioning `v` (the solution set
    // only grows, so consumers stay conservative).
    let cost = if eqs.is_empty() {
        1 + (lower.len() * upper.len()) as u64
    } else {
        system.len() as u64
    };
    if !budget::charge_steps(cost) {
        obs::incr(Counter::FmWidenings);
        obs::incr(Counter::RegionsFmBailouts);
        stats.mark_imprecise(ImpreciseReason::Budget);
        return Projection::Feasible(drop_mentions(system, v, stats));
    }

    // Case 1 & 2: substitution through an equality.
    if let Some(eq) = eqs.iter().min_by_key(|c| c.expr.coeff(v).abs()) {
        stats.substitutions += 1;
        stats.eliminated += 1;
        let a = eq.expr.coeff(v);
        let mut out = ConstraintSystem::new();
        if a.abs() == 1 {
            // v = -(expr - a·v)/a : solve exactly.
            let mut rhs = eq.expr.clone();
            rhs.add_term(v, -a);
            // a·v + rhs' = 0  ⇒  v = -rhs'/a; with |a| = 1, v = -a·rhs'.
            let solved = rhs.scale(-a);
            for c in system.constraints() {
                if std::ptr::eq(*eq, c) {
                    continue;
                }
                let e = c.expr.substitute(v, &solved);
                let nc = Constraint { expr: e, rel: c.rel }.normalized();
                if nc.is_trivially_false() {
                    return Projection::Empty;
                }
                out.push(nc);
            }
        } else {
            // Scale each other constraint by |a| so the substitution stays
            // integral: from a·v = -r, replace a·v inside k·v-terms.
            let mut rhs = eq.expr.clone();
            rhs.add_term(v, -a); // rhs = expr without the v term
            for c in system.constraints() {
                if std::ptr::eq(*eq, c) {
                    continue;
                }
                let k = c.expr.coeff(v);
                if k == 0 {
                    out.push(c.clone());
                    continue;
                }
                // a·(c.expr) - k·(eq.expr) removes v. Keep direction: need
                // positive multiplier on the Ge side, so multiply by |a| and
                // sign-correct.
                let mult = if a > 0 { a } else { -a };
                let eq_mult = if a > 0 { k } else { -k };
                let mut e = c.expr.scale(mult);
                e = e.sub(&eq.expr.scale(eq_mult));
                debug_assert_eq!(e.coeff(v), 0);
                let _ = rhs; // rhs retained for clarity; combination above is equivalent
                let nc = Constraint { expr: e, rel: c.rel }.normalized();
                if nc.is_trivially_false() {
                    return Projection::Empty;
                }
                out.push(nc);
            }
        }
        out.prune();
        stats.peak_constraints = stats.peak_constraints.max(out.len());
        return Projection::Feasible(out);
    }

    // Case 3: classic FM pairing.
    stats.eliminated += 1;
    let mut out = ConstraintSystem::new();
    for c in rest {
        out.push(c.clone());
    }
    for lo in &lower {
        for up in &upper {
            stats.pairs_combined += 1;
            let a = lo.expr.coeff(v); // a > 0
            let b = -up.expr.coeff(v); // b > 0
            let m = lcm(a, b);
            // m/a · lo + m/b · up eliminates v, preserving ≥.
            let combined = lo.expr.scale(m / a).add(&up.expr.scale(m / b));
            debug_assert_eq!(combined.coeff(v), 0);
            let nc = Constraint::ge0(combined);
            if nc.is_trivially_false() {
                return Projection::Empty;
            }
            out.push(nc);
        }
    }
    out.prune();
    widen_to_budget(&mut out, stats);
    stats.peak_constraints = stats.peak_constraints.max(out.len());
    Projection::Feasible(out)
}

/// Widening used once the step budget is exhausted: drops every constraint
/// mentioning `v`, the coarsest sound projection (`v` becomes unbounded).
fn drop_mentions(system: &ConstraintSystem, v: VarId, stats: &mut FmStats) -> ConstraintSystem {
    let mut out = ConstraintSystem::new();
    for c in system.constraints() {
        if c.expr.coeff(v) == 0 {
            out.push(c.clone());
        }
    }
    stats.widened += system.len() - out.len();
    stats.eliminated += 1;
    out
}

/// Enforces the constraint cap ([`STEP_BUDGET`] by default, the active
/// budget scope's `max_constraints` otherwise) by dropping the most complex
/// inequalities (a sound widening — see the constant's documentation).
/// Equalities are always kept: they never multiply and carry exact
/// information.
fn widen_to_budget(cs: &mut ConstraintSystem, stats: &mut FmStats) {
    let cap = budget::constraint_cap();
    if cs.len() <= cap {
        return;
    }
    obs::incr(Counter::FmWidenings);
    obs::incr(Counter::RegionsFmBailouts);
    stats.mark_imprecise(ImpreciseReason::Budget);
    let mut constraints: Vec<Constraint> = cs.constraints().to_vec();
    // Simplicity key: equalities first, then by term count, then by the
    // largest absolute coefficient (big coefficients breed overflow and
    // weak cuts).
    constraints.sort_by_key(|c| {
        let is_eq = c.rel == Rel::Eq;
        let terms = c.expr.terms().count();
        let max_coeff = c.expr.terms().map(|(_, k)| k.abs()).max().unwrap_or(0);
        (!is_eq, terms, max_coeff)
    });
    stats.widened += constraints.len() - cap;
    constraints.truncate(cap);
    *cs = constraints.into_iter().collect();
}

/// Eliminates every variable in `vars`, choosing the cheapest variable each
/// round (Fourier's heuristic: minimize the lower×upper pairing product;
/// variables bound by an equality are free).
pub fn eliminate_all(
    system: &ConstraintSystem,
    vars: &[VarId],
    stats: &mut FmStats,
) -> Projection {
    let mut current = system.clone();
    let mut remaining: Vec<VarId> = vars.to_vec();
    while let Some((pos, _)) = remaining
        .iter()
        .enumerate()
        .map(|(i, &v)| (i, elimination_cost(&current, v)))
        .min_by_key(|&(_, cost)| cost)
    {
        let v = remaining.swap_remove(pos);
        match eliminate(&current, v, stats) {
            Projection::Feasible(next) => current = next,
            Projection::Empty => return Projection::Empty,
        }
    }
    Projection::Feasible(current)
}

/// The pairing cost of eliminating `v` now: 0 when an equality can
/// substitute it away, else `|lower| * |upper|`.
fn elimination_cost(system: &ConstraintSystem, v: VarId) -> usize {
    let (lower, upper, eqs, _) = system.partition_on(v);
    if !eqs.is_empty() {
        return 0;
    }
    lower.len() * upper.len()
}

/// Decides whether the system has any rational solution by eliminating every
/// variable; the residue is a set of constant constraints.
pub fn is_satisfiable(system: &ConstraintSystem) -> bool {
    let mut stats = FmStats::default();
    let vars = system.vars();
    match eliminate_all(system, &vars, &mut stats) {
        Projection::Feasible(residue) => !residue.has_contradiction(),
        Projection::Empty => false,
    }
}

/// Computes integer bounds `[min, max]` for `v` under `system` by projecting
/// all other variables away; `None` on the respective side when unbounded,
/// and `None` overall when the system is empty.
///
/// ```
/// use regions::constraint::{Constraint, ConstraintSystem};
/// use regions::fourier_motzkin::bounds_of;
/// use regions::linexpr::LinExpr;
/// use regions::space::VarId;
///
/// // x = i + 100 with 1 ≤ i ≤ 100  ⇒  x ∈ [101, 200] (Fig. 1's P2 region).
/// let (x, i) = (VarId(0), VarId(1));
/// let mut cs = ConstraintSystem::new();
/// cs.push(Constraint::eq(LinExpr::var(x), LinExpr::var(i).add(&LinExpr::constant(100))));
/// cs.push(Constraint::ge(LinExpr::var(i), LinExpr::constant(1)));
/// cs.push(Constraint::le(LinExpr::var(i), LinExpr::constant(100)));
/// assert_eq!(bounds_of(&cs, x), Some((Some(101), Some(200))));
/// ```
pub fn bounds_of(
    system: &ConstraintSystem,
    v: VarId,
) -> Option<(Option<i64>, Option<i64>)> {
    let mut stats = FmStats::default();
    let others: Vec<VarId> =
        system.vars().into_iter().filter(|&u| u != v).collect();
    let projected = match eliminate_all(system, &others, &mut stats) {
        Projection::Feasible(cs) => cs,
        Projection::Empty => return None,
    };
    if projected.has_contradiction() {
        return None;
    }
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    for c in projected.constraints() {
        let a = c.expr.coeff(v);
        let k = c.expr.constant_term();
        if a == 0 {
            continue;
        }
        match c.rel {
            Rel::Ge => {
                if a > 0 {
                    // a·v + k ≥ 0 ⇒ v ≥ ⌈-k/a⌉
                    let bound = (-k).div_euclid(a) + if (-k).rem_euclid(a) != 0 { 1 } else { 0 };
                    lo = Some(lo.map_or(bound, |cur| cur.max(bound)));
                } else {
                    // a·v + k ≥ 0, a < 0 ⇒ v ≤ ⌊k/(-a)⌋
                    let bound = k.div_euclid(-a);
                    hi = Some(hi.map_or(bound, |cur| cur.min(bound)));
                }
            }
            Rel::Eq => {
                if k % a == 0 {
                    let val = -k / a;
                    lo = Some(lo.map_or(val, |cur| cur.max(val)));
                    hi = Some(hi.map_or(val, |cur| cur.min(val)));
                } else {
                    return None; // integer-infeasible equality
                }
            }
        }
    }
    if let (Some(l), Some(h)) = (lo, hi) {
        if l > h {
            return None;
        }
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::linexpr::LinExpr;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn between(var: VarId, lo: i64, hi: i64) -> [Constraint; 2] {
        [
            Constraint::ge(LinExpr::var(var), LinExpr::constant(lo)),
            Constraint::le(LinExpr::var(var), LinExpr::constant(hi)),
        ]
    }

    #[test]
    fn eliminate_via_pairing() {
        // 1 ≤ t ≤ 10, x ≥ t, x ≤ t + 2  →  after eliminating t: bounds on x.
        let mut cs = ConstraintSystem::new();
        for c in between(v(1), 1, 10) {
            cs.push(c);
        }
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::var(v(1))));
        cs.push(Constraint::le(
            LinExpr::var(v(0)),
            LinExpr::var(v(1)).add(&LinExpr::constant(2)),
        ));
        let mut stats = FmStats::default();
        let out = eliminate(&cs, v(1), &mut stats).expect_feasible();
        assert!(stats.pairs_combined > 0);
        // x must satisfy 1 ≤ x (from t ≥ 1, x ≥ t... actually x ≥ t gives x
        // ≥ 1 only combined with t ≥ 1 — FM produces it) and x ≤ 12.
        let b = bounds_of(&out, v(0)).unwrap();
        assert_eq!(b, (Some(1), Some(12)));
    }

    #[test]
    fn eliminate_via_equality_substitution() {
        // x = 2t + 1, 0 ≤ t ≤ 4  →  x ∈ {1..9}; rational shadow is [1, 9].
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::eq(
            LinExpr::var(v(0)),
            LinExpr::term(v(1), 2).add(&LinExpr::constant(1)),
        ));
        for c in between(v(1), 0, 4) {
            cs.push(c);
        }
        let mut stats = FmStats::default();
        let out = eliminate(&cs, v(1), &mut stats).expect_feasible();
        assert_eq!(stats.substitutions, 1);
        assert_eq!(bounds_of(&out, v(0)).unwrap(), (Some(1), Some(9)));
    }

    #[test]
    fn detects_empty_system() {
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(5)));
        cs.push(Constraint::le(LinExpr::var(v(0)), LinExpr::constant(2)));
        assert!(!is_satisfiable(&cs));
    }

    #[test]
    fn satisfiable_system() {
        let mut cs = ConstraintSystem::new();
        for c in between(v(0), 1, 100) {
            cs.push(c);
        }
        for c in between(v(1), 1, 100) {
            cs.push(c);
        }
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::var(v(1))));
        assert!(is_satisfiable(&cs));
    }

    #[test]
    fn bounds_of_simple_box() {
        let mut cs = ConstraintSystem::new();
        for c in between(v(0), -3, 7) {
            cs.push(c);
        }
        assert_eq!(bounds_of(&cs, v(0)).unwrap(), (Some(-3), Some(7)));
    }

    #[test]
    fn bounds_of_unbounded_side() {
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(2)));
        assert_eq!(bounds_of(&cs, v(0)).unwrap(), (Some(2), None));
    }

    #[test]
    fn bounds_of_through_equality_chain() {
        // Fig. 1 shape: x0 = i, 1 ≤ i ≤ 100  →  x0 ∈ [1, 100].
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::eq(LinExpr::var(v(0)), LinExpr::var(v(1))));
        for c in between(v(1), 1, 100) {
            cs.push(c);
        }
        assert_eq!(bounds_of(&cs, v(0)).unwrap(), (Some(1), Some(100)));
    }

    #[test]
    fn bounds_with_offset_equality() {
        // x0 = i + 100, 1 ≤ i ≤ 100  →  x0 ∈ [101, 200] (Fig. 1's P2 region).
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::eq(
            LinExpr::var(v(0)),
            LinExpr::var(v(1)).add(&LinExpr::constant(100)),
        ));
        for c in between(v(1), 1, 100) {
            cs.push(c);
        }
        assert_eq!(bounds_of(&cs, v(0)).unwrap(), (Some(101), Some(200)));
    }

    #[test]
    fn negative_bounds_survive_projection() {
        // The old Dragon lost negative bounds; ours must not.
        // x0 = i - 10, 1 ≤ i ≤ 5  →  x0 ∈ [-9, -5].
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::eq(
            LinExpr::var(v(0)),
            LinExpr::var(v(1)).add(&LinExpr::constant(-10)),
        ));
        for c in between(v(1), 1, 5) {
            cs.push(c);
        }
        assert_eq!(bounds_of(&cs, v(0)).unwrap(), (Some(-9), Some(-5)));
    }

    #[test]
    fn scaled_equality_substitution() {
        // 3x = y, 0 ≤ y ≤ 9  →  x ∈ [0, 3].
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::eq(LinExpr::term(v(0), 3), LinExpr::var(v(1))));
        for c in between(v(1), 0, 9) {
            cs.push(c);
        }
        assert_eq!(bounds_of(&cs, v(0)).unwrap(), (Some(0), Some(3)));
    }

    #[test]
    fn empty_system_bounds_none() {
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(5)));
        cs.push(Constraint::le(LinExpr::var(v(0)), LinExpr::constant(2)));
        assert!(bounds_of(&cs, v(0)).is_none());
    }

    #[test]
    fn exhausted_budget_widens_to_unbounded() {
        use support::budget::{self, BudgetConfig};
        // Same system as `eliminate_via_pairing`, but with a dead budget:
        // instead of pairing, every constraint on t is dropped, leaving x
        // unbounded — a sound over-approximation, not an error.
        let mut cs = ConstraintSystem::new();
        for c in between(v(1), 1, 10) {
            cs.push(c);
        }
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::var(v(1))));
        cs.push(Constraint::le(
            LinExpr::var(v(0)),
            LinExpr::var(v(1)).add(&LinExpr::constant(2)),
        ));
        let _scope = budget::enter(BudgetConfig { fm_steps: 0, ..Default::default() });
        let mut stats = FmStats::default();
        let out = eliminate(&cs, v(1), &mut stats).expect_feasible();
        assert!(stats.widened > 0);
        assert_eq!(stats.imprecise, Some(ImpreciseReason::Budget), "give-up must be typed");
        assert!(budget::exhausted());
        assert_eq!(bounds_of(&out, v(0)).unwrap(), (None, None));
    }

    #[test]
    fn imprecise_reason_precedence() {
        let mut s = FmStats::default();
        s.mark_imprecise(ImpreciseReason::Symbolic);
        assert_eq!(s.imprecise, Some(ImpreciseReason::Symbolic));
        s.mark_imprecise(ImpreciseReason::Budget);
        assert_eq!(s.imprecise, Some(ImpreciseReason::Symbolic), "first reason sticks");
        s.mark_imprecise(ImpreciseReason::NonAffine);
        assert_eq!(s.imprecise, Some(ImpreciseReason::NonAffine), "non-affine overrides");
        assert_eq!(ImpreciseReason::Budget.to_string(), "budget");
    }

    #[test]
    fn eliminate_untouched_variable_is_identity() {
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(1)));
        let mut stats = FmStats::default();
        let out = eliminate(&cs, v(9), &mut stats).expect_feasible();
        assert_eq!(out, cs);
        assert_eq!(stats.eliminated, 0);
    }
}
