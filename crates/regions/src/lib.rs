//! Array region analysis (the paper's ARA module, built from scratch).
//!
//! The paper's tool rests on the *linear-constraint-based Regions method*
//! (Triolet 1986, extended by Creusillet 1995): array accesses are grouped
//! into convex regions described by linear constraints over the array's
//! subscript variables, and loop/induction variables are eliminated by
//! Fourier–Motzkin projection. On top of the convex machinery the tool
//! reports each region in the *triplet notation* `[LB:UB:Stride]` per
//! dimension — unlike the earlier Dragon, strides are preserved exactly
//! (loops are not normalized) and negative bounds survive projection.
//!
//! This crate implements:
//! - [`linexpr`] — linear expressions over a typed variable [`space`];
//! - [`constraint`] — affine constraint systems;
//! - [`fourier_motzkin`] — variable elimination with redundancy pruning;
//! - [`convex`] — convex regions: projection, intersection, hull union,
//!   emptiness, containment, independence;
//! - [`triplet`] — triplet regions with the paper's bound lattice
//!   (`CONST`/`IVAR`/`LINDEX`/`SUBSCR`/`MESSY`/`UNPROJECTED`);
//! - [`interval`] — the `[lo, hi]` interval domain with widening/narrowing
//!   (the non-affine fallback);
//! - [`access`] — access modes (`USE`/`DEF`/`FORMAL`/`PASSED`) and summaries;
//! - [`summarize`] — building regions from subscripted references inside
//!   loop nests;
//! - [`methods`] — the full Fig. 2 taxonomy: classic two-bit, reference-list,
//!   bounded regular sections, and convex regions, with storage/precision
//!   metrics for the efficiency-vs-accuracy comparison.

pub mod access;
pub mod constraint;
pub mod convex;
pub mod fourier_motzkin;
pub mod interval;
pub mod linexpr;
pub mod methods;
pub mod persist;
pub mod space;
pub mod summarize;
pub mod triplet;

pub use access::{AccessMode, Precision, RegionSummary};
pub use interval::Interval;
pub use convex::ConvexRegion;
pub use linexpr::LinExpr;
pub use space::{Space, VarId, VarKind};
pub use triplet::{Bound, Triplet, TripletRegion};
