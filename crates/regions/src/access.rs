//! Access modes and per-access region summaries.
//!
//! "Access mode can be one of USE, DEF, FORMAL or PASSED. A statement S is a
//! definition of v iff S is an assignment statement with left-hand side v.
//! S is a use of v iff during execution of S, right-hand side v is read. The
//! term FORMAL parameter ... refers to the array as found in the function
//! definition (parameter), while PASSED refers to the actual value passed
//! (argument)."

use crate::convex::ConvexRegion;
use crate::triplet::TripletRegion;

/// The four access modes of the paper.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub enum AccessMode {
    /// Array variable read on a right-hand side.
    Use,
    /// Assignment of values to array elements (left-hand side).
    Def,
    /// Array used as a formal parameter in a procedure definition.
    Formal,
    /// Array passed as an actual argument at a call site.
    Passed,
}

impl AccessMode {
    /// All modes, in the paper's enumeration order.
    pub const ALL: [AccessMode; 4] =
        [AccessMode::Use, AccessMode::Def, AccessMode::Formal, AccessMode::Passed];

    /// The `.rgn`-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AccessMode::Use => "USE",
            AccessMode::Def => "DEF",
            AccessMode::Formal => "FORMAL",
            AccessMode::Passed => "PASSED",
        }
    }

    /// Parses the `.rgn`-file spelling.
    pub fn parse(s: &str) -> Option<AccessMode> {
        match s {
            "USE" => Some(AccessMode::Use),
            "DEF" => Some(AccessMode::Def),
            "FORMAL" => Some(AccessMode::Formal),
            "PASSED" => Some(AccessMode::Passed),
            _ => None,
        }
    }

    /// True for the modes that represent actual element traffic (the
    /// independence test in Fig. 1 cares about DEF/USE overlap, not about
    /// parameter-passing bookkeeping).
    pub fn moves_data(self) -> bool {
        matches!(self, AccessMode::Use | AccessMode::Def)
    }
}

impl std::fmt::Display for AccessMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How trustworthy a summarized region is — the `.rgn` `precision` column.
///
/// Ordered best-to-worst: `Exact < AffineApprox < Interval < Unbounded`,
/// so `max` combines precisions pessimistically. The lint engine keys its
/// severity discipline off this: only affine-derived regions may prove a
/// `definite` finding; `Interval` regions cap at `possible`; `Unbounded`
/// regions trip `NAF-06`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// The affine machinery summarized the access without loss (constant
    /// or symbolic bounds, no widening).
    Exact,
    /// Affine but approximated: a translation or projection budget forced
    /// a widening, or the record degraded while crossing a call boundary.
    AffineApprox,
    /// The affine machinery bailed; the interval fallback recovered
    /// constant bounds (an over-approximation — sound for disjointness
    /// and refutation, never for proof).
    Interval,
    /// Non-affine and unrecovered: the region still has unknown bounds.
    Unbounded,
}

impl Precision {
    /// All precisions, best first.
    pub const ALL: [Precision; 4] =
        [Precision::Exact, Precision::AffineApprox, Precision::Interval, Precision::Unbounded];

    /// The `.rgn`-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::Exact => "exact",
            Precision::AffineApprox => "affine-approx",
            Precision::Interval => "interval",
            Precision::Unbounded => "unbounded",
        }
    }

    /// Parses the `.rgn`-file spelling.
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "exact" => Some(Precision::Exact),
            "affine-approx" => Some(Precision::AffineApprox),
            "interval" => Some(Precision::Interval),
            "unbounded" => Some(Precision::Unbounded),
            _ => None,
        }
    }

    /// Pessimistic combination: the worse of the two.
    pub fn worst(self, other: Precision) -> Precision {
        self.max(other)
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One summarized region access: the unit that becomes a `.rgn` row.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSummary {
    /// How the region was touched.
    pub mode: AccessMode,
    /// Number of references merged into this summary.
    pub refs: u64,
    /// The displayed triplet region (exact strides, symbolic bounds allowed).
    pub triplets: TripletRegion,
    /// The convex region used for comparisons, when linearizable.
    pub convex: Option<ConvexRegion>,
}

impl RegionSummary {
    /// Builds a one-reference summary.
    pub fn new(mode: AccessMode, triplets: TripletRegion, convex: Option<ConvexRegion>) -> Self {
        RegionSummary { mode, refs: 1, triplets, convex }
    }

    /// True when this summary and `other` can never touch a common element
    /// *and conflict*: two USE regions never conflict; any pair involving a
    /// DEF conflicts unless the regions are provably disjoint. Parameter
    /// modes (FORMAL/PASSED) are bookkeeping and never conflict.
    pub fn independent_of(&self, other: &RegionSummary) -> bool {
        if !self.mode.moves_data() || !other.mode.moves_data() {
            return true;
        }
        if self.mode == AccessMode::Use && other.mode == AccessMode::Use {
            return true;
        }
        // Prefer the convex test (handles symbolic bounds); fall back to
        // constant triplets; unknown means "not provably independent".
        if let (Some(a), Some(b)) = (&self.convex, &other.convex) {
            return a.disjoint_from(b);
        }
        self.triplets.disjoint_from(&other.triplets) == Some(true)
    }

    /// Merges another summary of the *same region shape* into this one,
    /// bumping the reference count (used when the identical region is
    /// accessed repeatedly, like XCR's four USEs in `verify`).
    pub fn absorb(&mut self, other: &RegionSummary) {
        debug_assert_eq!(self.mode, other.mode);
        self.refs += other.refs;
    }

    /// True when the displayed regions are identical (same triplets).
    pub fn same_region(&self, other: &RegionSummary) -> bool {
        self.mode == other.mode && self.triplets == other.triplets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convex::box_region;
    use crate::triplet::{Triplet, TripletRegion};

    fn region(lo: i64, hi: i64) -> TripletRegion {
        TripletRegion::new(vec![Triplet::constant(lo, hi, 1)])
    }

    #[test]
    fn precision_round_trips_and_orders() {
        for p in Precision::ALL {
            assert_eq!(Precision::parse(p.as_str()), Some(p));
        }
        assert_eq!(Precision::parse("fuzzy"), None);
        assert!(Precision::Exact < Precision::AffineApprox);
        assert!(Precision::Interval < Precision::Unbounded);
        assert_eq!(Precision::Exact.worst(Precision::Interval), Precision::Interval);
        assert_eq!(Precision::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn mode_round_trips_through_strings() {
        for m in AccessMode::ALL {
            assert_eq!(AccessMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(AccessMode::parse("WRITE"), None);
    }

    #[test]
    fn mode_display_matches_paper_spelling() {
        assert_eq!(AccessMode::Use.to_string(), "USE");
        assert_eq!(AccessMode::Def.to_string(), "DEF");
        assert_eq!(AccessMode::Formal.to_string(), "FORMAL");
        assert_eq!(AccessMode::Passed.to_string(), "PASSED");
    }

    #[test]
    fn use_use_pairs_are_always_independent() {
        let a = RegionSummary::new(AccessMode::Use, region(1, 10), None);
        let b = RegionSummary::new(AccessMode::Use, region(5, 15), None);
        assert!(a.independent_of(&b));
    }

    #[test]
    fn def_use_overlap_is_a_conflict() {
        let d = RegionSummary::new(AccessMode::Def, region(1, 10), None);
        let u = RegionSummary::new(AccessMode::Use, region(5, 15), None);
        assert!(!d.independent_of(&u));
    }

    #[test]
    fn def_use_disjoint_is_independent() {
        // Fig. 1: DEF (1:100) vs USE (101:200).
        let d = RegionSummary::new(
            AccessMode::Def,
            region(1, 100),
            Some(box_region(&[(1, 100)])),
        );
        let u = RegionSummary::new(
            AccessMode::Use,
            region(101, 200),
            Some(box_region(&[(101, 200)])),
        );
        assert!(d.independent_of(&u));
        assert!(u.independent_of(&d));
    }

    #[test]
    fn formal_and_passed_never_conflict() {
        let f = RegionSummary::new(AccessMode::Formal, region(1, 5), None);
        let d = RegionSummary::new(AccessMode::Def, region(1, 5), None);
        assert!(f.independent_of(&d));
        assert!(d.independent_of(&f));
    }

    #[test]
    fn absorb_accumulates_refs() {
        let mut a = RegionSummary::new(AccessMode::Use, region(1, 5), None);
        let b = RegionSummary::new(AccessMode::Use, region(1, 5), None);
        assert!(a.same_region(&b));
        a.absorb(&b);
        assert_eq!(a.refs, 2);
    }

    #[test]
    fn unknown_disjointness_is_not_independent() {
        let d = RegionSummary::new(AccessMode::Def, TripletRegion::messy(1), None);
        let u = RegionSummary::new(AccessMode::Use, region(1, 5), None);
        assert!(!d.independent_of(&u));
    }
}
