//! Triplet-notation regions `[LB : UB : Stride]` per dimension.
//!
//! This is the representation the paper's tool actually *displays*: "We have
//! extended the array region analysis module inside OpenUH to extract the
//! bounds information for the array regions that have been accessed in a
//! triplet notation format [LB : UB : Stride]". Each bound is classified on
//! the paper's lattice — `CONST`, `IVAR` (symbolic parameter), `LINDEX`
//! (loop index), `SUBSCR` (depends on another subscript) — and bounds "that
//! have expressions which cannot be linearized are marked as MESSY or
//! UNPROJECTED".
//!
//! Unlike the earlier Dragon version, strides are exact (loops are not
//! normalized) and negative bounds are representable.

use crate::linexpr::{gcd, LinExpr};
use crate::space::{Space, VarKind};

/// Classification of a bound expression on the paper's lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundClass {
    /// Compile-time integer constant.
    Const,
    /// Affine in symbolic parameters only (formal argument, global scalar).
    IVar,
    /// Mentions a loop induction variable.
    LIndex,
    /// Mentions another dimension's subscript variable.
    Subscr,
    /// Could not be linearized.
    Messy,
    /// A projection step could not be completed.
    Unprojected,
}

impl std::fmt::Display for BoundClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BoundClass::Const => "CONST",
            BoundClass::IVar => "IVAR",
            BoundClass::LIndex => "LINDEX",
            BoundClass::Subscr => "SUBSCR",
            BoundClass::Messy => "MESSY",
            BoundClass::Unprojected => "UNPROJECTED",
        };
        f.write_str(s)
    }
}

/// One bound (lower, upper, or stride) of a triplet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Known integer.
    Const(i64),
    /// Affine expression over the region's space (symbolic/loop variables).
    Expr(LinExpr),
    /// Not linearizable.
    Messy,
    /// Projection failed.
    Unprojected,
}

impl Bound {
    /// Classifies against the variable kinds of `space`.
    pub fn classify(&self, space: &Space) -> BoundClass {
        match self {
            Bound::Const(_) => BoundClass::Const,
            Bound::Messy => BoundClass::Messy,
            Bound::Unprojected => BoundClass::Unprojected,
            Bound::Expr(e) => {
                if e.as_constant().is_some() {
                    return BoundClass::Const;
                }
                let mut class = BoundClass::IVar;
                for v in e.vars() {
                    match space.kind(v) {
                        VarKind::Dim(_) => return BoundClass::Subscr,
                        VarKind::Loop(_) => class = BoundClass::LIndex,
                        VarKind::Sym(_) => {}
                    }
                }
                class
            }
        }
    }

    /// The constant value, if any (folding constant expressions).
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Bound::Const(c) => Some(*c),
            Bound::Expr(e) => e.as_constant(),
            _ => None,
        }
    }

    /// True when the bound is exactly known.
    pub fn is_const(&self) -> bool {
        self.as_const().is_some()
    }

    /// Renders for display; variable-bearing bounds use `name`.
    pub fn render(&self, name: &dyn Fn(crate::space::VarId) -> String) -> String {
        match self {
            Bound::Const(c) => c.to_string(),
            Bound::Expr(e) => e.render(name),
            Bound::Messy => "MESSY".into(),
            Bound::Unprojected => "UNPROJECTED".into(),
        }
    }

    /// Pointwise minimum when both bounds are constant; `Messy` otherwise
    /// unless the bounds are equal.
    pub fn min_with(&self, other: &Bound) -> Bound {
        match (self.as_const(), other.as_const()) {
            (Some(a), Some(b)) => Bound::Const(a.min(b)),
            _ if self == other => self.clone(),
            _ => Bound::Messy,
        }
    }

    /// Pointwise maximum (same rules as [`Bound::min_with`]).
    pub fn max_with(&self, other: &Bound) -> Bound {
        match (self.as_const(), other.as_const()) {
            (Some(a), Some(b)) => Bound::Const(a.max(b)),
            _ if self == other => self.clone(),
            _ => Bound::Messy,
        }
    }
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Const(c) => write!(f, "{c}"),
            Bound::Expr(e) => f.write_str(&e.render_default()),
            Bound::Messy => f.write_str("MESSY"),
            Bound::Unprojected => f.write_str("UNPROJECTED"),
        }
    }
}

/// One dimension's accessed section: `lb : ub : stride`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triplet {
    /// Lower bound (first accessed index).
    pub lb: Bound,
    /// Upper bound (last accessed index, inclusive).
    pub ub: Bound,
    /// Step between consecutive accessed indices; always rendered positive.
    pub stride: Bound,
}

impl Triplet {
    /// A fully-constant triplet, normalized so `lb ≤ ub`, `stride ≥ 1`, and
    /// `ub` lands exactly on the last accessed element.
    pub fn constant(lb: i64, ub: i64, stride: i64) -> Self {
        let (mut lb, mut ub) = (lb, ub);
        let mut stride = stride.abs().max(1);
        if lb > ub {
            std::mem::swap(&mut lb, &mut ub);
        }
        // Snap ub down to the last element actually hit from lb.
        ub = lb + ((ub - lb) / stride) * stride;
        if lb == ub {
            stride = 1;
        }
        Triplet {
            lb: Bound::Const(lb),
            ub: Bound::Const(ub),
            stride: Bound::Const(stride),
        }
    }

    /// The degenerate single-element triplet `i:i:1`.
    pub fn point(i: i64) -> Self {
        Self::constant(i, i, 1)
    }

    /// A triplet with symbolic parts, un-normalized.
    pub fn new(lb: Bound, ub: Bound, stride: Bound) -> Self {
        Triplet { lb, ub, stride }
    }

    /// The fully-unknown triplet.
    pub fn messy() -> Self {
        Triplet { lb: Bound::Messy, ub: Bound::Messy, stride: Bound::Messy }
    }

    /// True when all three parts are compile-time constants.
    pub fn is_const(&self) -> bool {
        self.lb.is_const() && self.ub.is_const() && self.stride.is_const()
    }

    /// `(lb, ub, stride)` when constant.
    pub fn as_const(&self) -> Option<(i64, i64, i64)> {
        Some((self.lb.as_const()?, self.ub.as_const()?, self.stride.as_const()?))
    }

    /// Number of elements accessed along this dimension, when constant.
    pub fn count(&self) -> Option<u64> {
        let (lb, ub, s) = self.as_const()?;
        if s <= 0 || ub < lb {
            return None;
        }
        Some(((ub - lb) / s) as u64 + 1)
    }

    /// True when index `i` is accessed (constant triplets only: `None`
    /// otherwise).
    pub fn contains(&self, i: i64) -> Option<bool> {
        let (lb, ub, s) = self.as_const()?;
        Some(i >= lb && i <= ub && (i - lb) % s == 0)
    }

    /// Iterates all accessed indices of a constant triplet.
    pub fn iter(&self) -> Option<impl Iterator<Item = i64>> {
        let (lb, ub, s) = self.as_const()?;
        if s <= 0 {
            return None;
        }
        Some((lb..=ub).step_by(s as usize))
    }

    /// True when two constant triplets share no index. `None` when either is
    /// symbolic (unknown ⇒ must be assumed overlapping by callers).
    pub fn disjoint_from(&self, other: &Triplet) -> Option<bool> {
        let (alb, aub, astep) = self.as_const()?;
        let (blb, bub, bstep) = other.as_const()?;
        if aub < blb || bub < alb {
            return Some(true);
        }
        // Overlapping hulls: check arithmetic-progression intersection.
        // x ≡ alb (mod astep), x ≡ blb (mod bstep), max(alb,blb) ≤ x ≤ min(aub,bub)
        let g = gcd(astep, bstep);
        if (blb - alb) % g != 0 {
            return Some(true);
        }
        // Solve CRT for the smallest common element ≥ max(alb, blb).
        let (lo, hi) = (alb.max(blb), aub.min(bub));
        // Walk the sparser progression within the window (windows in this
        // tool are small; fall back is fine).
        let (base, step, olb, ostep) = if astep >= bstep {
            (alb, astep, blb, bstep)
        } else {
            (blb, bstep, alb, astep)
        };
        let mut x = if base >= lo { base } else { base + ((lo - base + step - 1) / step) * step };
        while x <= hi {
            if (x - olb) % ostep == 0 && x >= olb {
                return Some(false);
            }
            x += step;
        }
        Some(true)
    }

    /// Exact intersection of two constant triplets — the meet of two
    /// arithmetic progressions, solved with the extended Euclid / CRT
    /// construction. Returns `Ok(None)` when provably empty and `Err(())`
    /// when either operand is symbolic.
    pub fn intersect(&self, other: &Triplet) -> Result<Option<Triplet>, ()> {
        let (alb, aub, astep) = self.as_const().ok_or(())?;
        let (blb, bub, bstep) = other.as_const().ok_or(())?;
        let (lo, hi) = (alb.max(blb), aub.min(bub));
        if lo > hi {
            return Ok(None);
        }
        // Solve x ≡ alb (mod astep), x ≡ blb (mod bstep).
        let (g, p, _q) = ext_gcd(astep, bstep);
        if (blb - alb) % g != 0 {
            return Ok(None);
        }
        let l = lcm_i64(astep, bstep);
        // One solution: alb + astep * p * ((blb - alb) / g), then reduce
        // modulo l into the window.
        let mult = (blb - alb) / g;
        let x0 = alb as i128 + astep as i128 * p as i128 * mult as i128;
        let l128 = l as i128;
        let lo128 = lo as i128;
        // Smallest solution ≥ lo.
        let mut first = x0 + ((lo128 - x0).div_euclid(l128)) * l128;
        if first < lo128 {
            first += l128;
        }
        if first > hi as i128 {
            return Ok(None);
        }
        Ok(Some(Triplet::constant_with_stride(first as i64, hi, l)))
    }

    /// Smallest triplet containing both operands (conservative hull: bounds
    /// are min/max, stride is the gcd of both strides and the offset between
    /// the lower bounds). Symbolic inputs degrade to `Messy` parts.
    pub fn hull(&self, other: &Triplet) -> Triplet {
        match (self.as_const(), other.as_const()) {
            (Some((alb, aub, astep)), Some((blb, bub, bstep))) => {
                let lb = alb.min(blb);
                let ub = aub.max(bub);
                let mut s = gcd(astep, bstep);
                s = gcd(s, (alb - blb).abs());
                if s == 0 {
                    s = 1;
                }
                Triplet::constant(lb, ub, s)
            }
            _ => {
                if self == other {
                    self.clone()
                } else {
                    Triplet::new(
                        self.lb.min_with(&other.lb),
                        self.ub.max_with(&other.ub),
                        Bound::Messy,
                    )
                }
            }
        }
    }

    /// Renders as `lb:ub:stride`.
    pub fn render(&self, name: &dyn Fn(crate::space::VarId) -> String) -> String {
        format!(
            "{}:{}:{}",
            self.lb.render(name),
            self.ub.render(name),
            self.stride.render(name)
        )
    }
}

/// Extended Euclid: returns `(g, p, q)` with `a·p + b·q = g = gcd(a, b)`.
fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, p, q) = ext_gcd(b, a % b);
        (g, q, p - (a / b) * q)
    }
}

fn lcm_i64(a: i64, b: i64) -> i64 {
    (a / gcd(a, b)) * b
}

impl std::fmt::Display for Triplet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.lb, self.ub, self.stride)
    }
}

/// A multi-dimensional triplet region: the cartesian product of per-dimension
/// triplets, e.g. the paper's `(1:100:1, 1:100:1)`.
///
/// ```
/// use regions::{Triplet, TripletRegion};
///
/// // The paper's Fig. 1 regions:
/// let def = TripletRegion::new(vec![Triplet::constant(1, 100, 1); 2]);
/// let use_ = TripletRegion::new(vec![Triplet::constant(101, 200, 1); 2]);
/// assert_eq!(def.to_string(), "(1:100:1, 1:100:1)");
/// assert_eq!(def.disjoint_from(&use_), Some(true)); // ⇒ parallelizable
/// assert_eq!(def.element_count(), Some(10_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TripletRegion {
    /// One triplet per array dimension, in source order (dimension 0 first).
    pub dims: Vec<Triplet>,
}

impl TripletRegion {
    /// Builds from per-dimension triplets.
    pub fn new(dims: Vec<Triplet>) -> Self {
        TripletRegion { dims }
    }

    /// A fully-messy region of `n` dimensions.
    pub fn messy(n: usize) -> Self {
        TripletRegion { dims: vec![Triplet::messy(); n] }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total accessed elements (product over dimensions), when constant.
    pub fn element_count(&self) -> Option<u64> {
        self.dims.iter().map(Triplet::count).try_fold(1u64, |acc, c| {
            c.map(|c| acc.saturating_mul(c))
        })
    }

    /// True when the point is accessed; `None` if any dimension is symbolic.
    pub fn contains(&self, point: &[i64]) -> Option<bool> {
        if point.len() != self.dims.len() {
            return Some(false);
        }
        let mut all = true;
        for (t, &i) in self.dims.iter().zip(point) {
            all &= t.contains(i)?;
        }
        Some(all)
    }

    /// Regions are disjoint when they are provably disjoint along *any*
    /// dimension (rectangular decomposition). `None` when unknowable.
    pub fn disjoint_from(&self, other: &TripletRegion) -> Option<bool> {
        if self.dims.len() != other.dims.len() {
            return Some(true);
        }
        let mut any_unknown = false;
        for (a, b) in self.dims.iter().zip(&other.dims) {
            match a.disjoint_from(b) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => any_unknown = true,
            }
        }
        if any_unknown {
            None
        } else {
            Some(false)
        }
    }

    /// Exact per-dimension intersection of constant regions. `Ok(None)` when
    /// empty in any dimension, `Err(())` when symbolic.
    pub fn intersect(&self, other: &TripletRegion) -> Result<Option<TripletRegion>, ()> {
        if self.dims.len() != other.dims.len() {
            return Ok(None);
        }
        let mut dims = Vec::with_capacity(self.dims.len());
        for (a, b) in self.dims.iter().zip(&other.dims) {
            match a.intersect(b)? {
                Some(t) => dims.push(t),
                None => return Ok(None),
            }
        }
        Ok(Some(TripletRegion::new(dims)))
    }

    /// Per-dimension hull of both regions.
    pub fn hull(&self, other: &TripletRegion) -> TripletRegion {
        if self.dims.len() != other.dims.len() {
            // Shape mismatch (e.g. linearized vs not): give up precisely.
            return TripletRegion::messy(self.dims.len().max(other.dims.len()));
        }
        TripletRegion {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(b))
                .collect(),
        }
    }

    /// True when every dimension is constant.
    pub fn is_const(&self) -> bool {
        self.dims.iter().all(Triplet::is_const)
    }

    /// Renders like `(1:100:1, 1:100:1)`.
    pub fn render(&self, name: &dyn Fn(crate::space::VarId) -> String) -> String {
        let inner: Vec<String> = self.dims.iter().map(|t| t.render(name)).collect();
        format!("({})", inner.join(", "))
    }
}

impl std::fmt::Display for TripletRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner: Vec<String> = self.dims.iter().map(|t| t.to_string()).collect();
        write!(f, "({})", inner.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Space;
    use support::Interner;

    #[test]
    fn constant_triplet_normalizes() {
        let t = Triplet::constant(8, 1, -1);
        assert_eq!(t.as_const(), Some((1, 8, 1)));
        // ub snaps to the last hit element: 2..=6 step 2 hits 2,4,6.
        let t = Triplet::constant(2, 7, 2);
        assert_eq!(t.as_const(), Some((2, 6, 2)));
    }

    #[test]
    fn count_and_contains() {
        let t = Triplet::constant(2, 6, 2);
        assert_eq!(t.count(), Some(3));
        assert_eq!(t.contains(4), Some(true));
        assert_eq!(t.contains(5), Some(false));
        assert_eq!(t.contains(8), Some(false));
        assert_eq!(t.iter().unwrap().collect::<Vec<_>>(), vec![2, 4, 6]);
    }

    #[test]
    fn point_triplet() {
        let p = Triplet::point(5);
        assert_eq!(p.count(), Some(1));
        assert_eq!(p.contains(5), Some(true));
    }

    #[test]
    fn disjoint_separated_hulls() {
        // Fig. 1: (1:100) vs (101:200) are disjoint.
        let a = Triplet::constant(1, 100, 1);
        let b = Triplet::constant(101, 200, 1);
        assert_eq!(a.disjoint_from(&b), Some(true));
    }

    #[test]
    fn disjoint_interleaved_strides() {
        let evens = Triplet::constant(0, 10, 2);
        let odds = Triplet::constant(1, 11, 2);
        assert_eq!(evens.disjoint_from(&odds), Some(true));
        let all = Triplet::constant(0, 10, 1);
        assert_eq!(evens.disjoint_from(&all), Some(false));
    }

    #[test]
    fn disjoint_same_stride_different_phase_overlapping_window() {
        let a = Triplet::constant(0, 12, 3); // 0 3 6 9 12
        let b = Triplet::constant(1, 13, 3); // 1 4 7 10 13
        assert_eq!(a.disjoint_from(&b), Some(true));
        let c = Triplet::constant(3, 9, 3);
        assert_eq!(a.disjoint_from(&c), Some(false));
    }

    #[test]
    fn symbolic_disjointness_is_unknown() {
        let a = Triplet::messy();
        let b = Triplet::constant(1, 5, 1);
        assert_eq!(a.disjoint_from(&b), None);
    }

    #[test]
    fn hull_merges_bounds_and_strides() {
        let a = Triplet::constant(0, 7, 1);
        let b = Triplet::constant(1, 8, 1);
        assert_eq!(a.hull(&b).as_const(), Some((0, 8, 1)));
        // gcd of strides and phase offset.
        let a = Triplet::constant(0, 12, 4);
        let b = Triplet::constant(2, 14, 4);
        assert_eq!(a.hull(&b).as_const(), Some((0, 14, 2)));
    }

    #[test]
    fn region_element_count_and_contains() {
        let r = TripletRegion::new(vec![
            Triplet::constant(1, 3, 1),
            Triplet::constant(1, 5, 1),
        ]);
        assert_eq!(r.element_count(), Some(15));
        assert_eq!(r.contains(&[2, 4]), Some(true));
        assert_eq!(r.contains(&[4, 4]), Some(false));
        assert_eq!(r.contains(&[2]), Some(false));
    }

    #[test]
    fn region_disjointness_needs_only_one_dimension() {
        // Fig. 1: (1:100,1:100) vs (101:200,101:200).
        let a = TripletRegion::new(vec![
            Triplet::constant(1, 100, 1),
            Triplet::constant(1, 100, 1),
        ]);
        let b = TripletRegion::new(vec![
            Triplet::constant(101, 200, 1),
            Triplet::constant(101, 200, 1),
        ]);
        assert_eq!(a.disjoint_from(&b), Some(true));
        // Overlap in both dims ⇒ not disjoint.
        let c = TripletRegion::new(vec![
            Triplet::constant(50, 150, 1),
            Triplet::constant(50, 150, 1),
        ]);
        assert_eq!(a.disjoint_from(&c), Some(false));
    }

    #[test]
    fn region_hull() {
        let a = TripletRegion::new(vec![Triplet::constant(0, 7, 1)]);
        let b = TripletRegion::new(vec![Triplet::constant(2, 6, 2)]);
        let h = a.hull(&b);
        assert_eq!(h.dims[0].as_const(), Some((0, 7, 1)));
    }

    #[test]
    fn display_matches_paper_notation() {
        let r = TripletRegion::new(vec![
            Triplet::constant(1, 100, 1),
            Triplet::constant(1, 100, 1),
        ]);
        assert_eq!(r.to_string(), "(1:100:1, 1:100:1)");
    }

    #[test]
    fn intersect_same_stride_progressions() {
        let a = Triplet::constant(0, 20, 4); // 0 4 8 12 16 20
        let b = Triplet::constant(8, 28, 4); // 8 12 ... 28
        let i = a.intersect(&b).unwrap().unwrap();
        assert_eq!(i.as_const(), Some((8, 20, 4)));
    }

    #[test]
    fn intersect_coprime_strides_via_crt() {
        let a = Triplet::constant(0, 30, 3); // multiples of 3
        let b = Triplet::constant(1, 31, 5); // 1 mod 5
        // x ≡ 0 (mod 3), x ≡ 1 (mod 5) ⇒ x ≡ 6 (mod 15); window [1, 30].
        let i = a.intersect(&b).unwrap().unwrap();
        assert_eq!(i.as_const(), Some((6, 21, 15)));
    }

    #[test]
    fn intersect_incompatible_phases_is_empty() {
        let evens = Triplet::constant(0, 100, 2);
        let odds = Triplet::constant(1, 99, 2);
        assert_eq!(evens.intersect(&odds).unwrap(), None);
    }

    #[test]
    fn intersect_disjoint_windows_is_empty() {
        let a = Triplet::constant(0, 10, 1);
        let b = Triplet::constant(20, 30, 1);
        assert_eq!(a.intersect(&b).unwrap(), None);
    }

    #[test]
    fn intersect_symbolic_is_err() {
        let a = Triplet::messy();
        let b = Triplet::constant(0, 10, 1);
        assert!(a.intersect(&b).is_err());
    }

    #[test]
    fn intersect_agrees_with_disjointness() {
        let a = Triplet::constant(0, 12, 3);
        let b = Triplet::constant(1, 13, 3);
        assert_eq!(a.disjoint_from(&b), Some(true));
        assert_eq!(a.intersect(&b).unwrap(), None);
    }

    #[test]
    fn region_intersection_per_dimension() {
        let a = TripletRegion::new(vec![
            Triplet::constant(0, 10, 1),
            Triplet::constant(0, 10, 2),
        ]);
        let b = TripletRegion::new(vec![
            Triplet::constant(5, 15, 1),
            Triplet::constant(0, 10, 1),
        ]);
        let i = a.intersect(&b).unwrap().unwrap();
        assert_eq!(i.to_string(), "(5:10:1, 0:10:2)");
        // Empty in one dimension ⇒ empty overall.
        let c = TripletRegion::new(vec![
            Triplet::constant(20, 30, 1),
            Triplet::constant(0, 10, 1),
        ]);
        assert_eq!(a.intersect(&c).unwrap(), None);
    }

    #[test]
    fn bound_classification() {
        let mut it = Interner::new();
        let mut space = Space::with_dims(2);
        let i = space.add_loop(it.intern("i"));
        let m = space.add_sym(it.intern("m"));

        assert_eq!(Bound::Const(3).classify(&space), BoundClass::Const);
        assert_eq!(
            Bound::Expr(LinExpr::var(m)).classify(&space),
            BoundClass::IVar
        );
        assert_eq!(
            Bound::Expr(LinExpr::var(i).add(&LinExpr::var(m))).classify(&space),
            BoundClass::LIndex
        );
        assert_eq!(
            Bound::Expr(LinExpr::var(space.dim_var(0).unwrap())).classify(&space),
            BoundClass::Subscr
        );
        assert_eq!(Bound::Messy.classify(&space), BoundClass::Messy);
        assert_eq!(Bound::Unprojected.classify(&space), BoundClass::Unprojected);
        assert_eq!(
            Bound::Expr(LinExpr::constant(4)).classify(&space),
            BoundClass::Const
        );
    }

    #[test]
    fn bound_class_display() {
        assert_eq!(BoundClass::LIndex.to_string(), "LINDEX");
        assert_eq!(BoundClass::Unprojected.to_string(), "UNPROJECTED");
    }

    #[test]
    fn messy_region_stays_messy() {
        let m = TripletRegion::messy(2);
        assert!(!m.is_const());
        assert_eq!(m.element_count(), None);
    }
}
