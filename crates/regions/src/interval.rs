//! The interval abstract domain `[lo, hi]` used where Fourier–Motzkin
//! gives up.
//!
//! The affine Regions machinery is exact on linear subscripts but silent on
//! everything else: `a(i*i)`, `a(idx(i))`, accumulator subscripts. This
//! domain recovers *bounded* (if approximate) regions for those accesses: a
//! per-variable lattice of integer intervals with the classic widening /
//! narrowing pair, so loop fixpoints terminate in a bounded number of steps
//! and a bounded descending pass claws back bounds widening threw away.
//!
//! `None` on a side means that side is unbounded (−∞ / +∞). Every operation
//! is an over-approximation: the result interval contains every value the
//! concrete operation can produce from values in the operands — the
//! property the proptests at the bottom pin against concrete loop
//! execution.

use crate::triplet::Bound;

/// An integer interval `[lo, hi]`; `None` means unbounded on that side.
///
/// Invariant: when both sides are finite, `lo <= hi`. The domain has no
/// bottom element — analyses that need unreachability track it outside
/// (e.g. with `Option<Interval>` per variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Greatest lower bound, `None` = −∞.
    pub lo: Option<i64>,
    /// Least upper bound, `None` = +∞.
    pub hi: Option<i64>,
}

/// Clamps an exact 128-bit result back to a bound: values outside the
/// `i64` range degrade to "unbounded" rather than silently saturating —
/// a saturated bound could exclude concrete values and break soundness.
fn clamp(v: i128) -> Option<i64> {
    i64::try_from(v).ok()
}

impl Interval {
    /// The unknown interval `(-inf, +inf)`.
    pub fn top() -> Self {
        Interval { lo: None, hi: None }
    }

    /// The singleton `[c, c]`.
    pub fn constant(c: i64) -> Self {
        Interval { lo: Some(c), hi: Some(c) }
    }

    /// `[lo, hi]`, normalized so the invariant holds.
    pub fn range(lo: i64, hi: i64) -> Self {
        Interval { lo: Some(lo.min(hi)), hi: Some(lo.max(hi)) }
    }

    /// Builds from optional bounds, normalizing an inverted finite pair.
    pub fn from_bounds(lo: Option<i64>, hi: Option<i64>) -> Self {
        match (lo, hi) {
            (Some(a), Some(b)) => Interval::range(a, b),
            _ => Interval { lo, hi },
        }
    }

    /// True when neither side is known.
    pub fn is_top(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// True when both sides are known.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_some() && self.hi.is_some()
    }

    /// The single value, when `lo == hi`.
    pub fn as_const(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// True when `v` lies inside.
    pub fn contains(&self, v: i64) -> bool {
        self.lo.is_none_or(|lo| lo <= v) && self.hi.is_none_or(|hi| v <= hi)
    }

    /// True when every value of `other` lies inside `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        let lo_ok = match (self.lo, other.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let hi_ok = match (self.hi, other.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => b <= a,
        };
        lo_ok && hi_ok
    }

    /// Least upper bound: the smallest interval containing both.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Greatest lower bound; `None` when the intersection is empty.
    pub fn meet(&self, other: &Interval) -> Option<Interval> {
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match (lo, hi) {
            (Some(a), Some(b)) if a > b => None,
            _ => Some(Interval { lo, hi }),
        }
    }

    /// Classic interval widening: a side that grew jumps straight to
    /// unbounded. Each side can widen at most once, so any ascending chain
    /// `x := x.widen(&next)` stabilizes within two strict increases.
    pub fn widen(&self, next: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, next.lo) {
                (Some(a), Some(b)) if b >= a => Some(a),
                _ => None,
            },
            hi: match (self.hi, next.hi) {
                (Some(a), Some(b)) if b <= a => Some(a),
                _ => None,
            },
        }
    }

    /// Classic narrowing: recovers a bound only where `self` is unbounded,
    /// so the descending pass refines what widening lost without ever
    /// oscillating. `self ⊇ next` is preserved downward: the result still
    /// contains `next`.
    pub fn narrow(&self, next: &Interval) -> Interval {
        Interval {
            lo: if self.lo.is_none() { next.lo } else { self.lo },
            hi: if self.hi.is_none() { next.hi } else { self.hi },
        }
    }

    /// Interval sum.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => clamp(a as i128 + b as i128),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => clamp(a as i128 + b as i128),
                _ => None,
            },
        }
    }

    /// Interval difference.
    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    /// Interval negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: self.hi.and_then(|h| clamp(-(h as i128))),
            hi: self.lo.and_then(|l| clamp(-(l as i128))),
        }
    }

    /// Interval product. Exact min/max over the corner products when both
    /// operands are fully bounded; any unbounded side degrades to top
    /// (sign reasoning on half-open operands buys nothing for subscripts).
    pub fn mul(&self, other: &Interval) -> Interval {
        let (Some(al), Some(ah), Some(bl), Some(bh)) = (self.lo, self.hi, other.lo, other.hi)
        else {
            return Interval::top();
        };
        let corners = [
            al as i128 * bl as i128,
            al as i128 * bh as i128,
            ah as i128 * bl as i128,
            ah as i128 * bh as i128,
        ];
        let lo = corners.iter().copied().min().unwrap();
        let hi = corners.iter().copied().max().unwrap();
        Interval { lo: clamp(lo), hi: clamp(hi) }
    }

    /// Multiplication by a constant.
    pub fn scale(&self, k: i64) -> Interval {
        self.mul(&Interval::constant(k))
    }

    /// Converts to a pair of triplet bounds: finite sides become `Const`,
    /// unbounded sides stay `Messy` (the display lattice has no infinity).
    pub fn to_bounds(&self) -> (Bound, Bound) {
        let side = |b: Option<i64>| match b {
            Some(c) => Bound::Const(c),
            None => Bound::Messy,
        };
        (side(self.lo), side(self.hi))
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.lo {
            Some(l) => write!(f, "[{l}, ")?,
            None => write!(f, "(-inf, ")?,
        }
        match self.hi {
            Some(h) => write!(f, "{h}]"),
            None => write!(f, "+inf)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_queries() {
        let t = Interval::top();
        assert!(t.is_top());
        assert!(t.contains(i64::MIN) && t.contains(i64::MAX));
        let c = Interval::constant(7);
        assert_eq!(c.as_const(), Some(7));
        let r = Interval::range(9, 2);
        assert_eq!((r.lo, r.hi), (Some(2), Some(9)));
        assert!(r.contains(2) && r.contains(9) && !r.contains(10));
        assert_eq!(Interval::from_bounds(None, Some(5)).lo, None);
    }

    #[test]
    fn join_and_meet() {
        let a = Interval::range(0, 10);
        let b = Interval::range(5, 20);
        assert_eq!(a.join(&b), Interval::range(0, 20));
        assert_eq!(a.meet(&b), Some(Interval::range(5, 10)));
        let c = Interval::range(30, 40);
        assert_eq!(a.meet(&c), None);
        let half = Interval::from_bounds(Some(3), None);
        assert_eq!(a.join(&half).hi, None);
        assert_eq!(a.meet(&half), Some(Interval::range(3, 10)));
    }

    #[test]
    fn widen_jumps_to_unbounded_and_narrow_recovers() {
        let a = Interval::range(0, 10);
        let grown = Interval::range(0, 11);
        let w = a.widen(&grown);
        assert_eq!(w, Interval::from_bounds(Some(0), None));
        // Stable input: widening is the identity.
        assert_eq!(w.widen(&Interval::range(0, 99)), w);
        // Narrowing refines only the unbounded side.
        let n = w.narrow(&Interval::range(0, 42));
        assert_eq!(n, Interval::range(0, 42));
        assert_eq!(n.narrow(&Interval::range(5, 6)), n);
    }

    #[test]
    fn arithmetic() {
        let a = Interval::range(2, 3);
        let b = Interval::range(-1, 4);
        assert_eq!(a.add(&b), Interval::range(1, 7));
        assert_eq!(a.sub(&b), Interval::range(-2, 4));
        assert_eq!(a.neg(), Interval::range(-3, -2));
        assert_eq!(a.mul(&b), Interval::range(-3, 12));
        assert_eq!(b.scale(-2), Interval::range(-8, 2));
        assert!(a.add(&Interval::top()).is_top());
        assert!(a.mul(&Interval::from_bounds(Some(0), None)).is_top());
    }

    #[test]
    fn overflow_degrades_to_unbounded_not_saturation() {
        let big = Interval::constant(i64::MAX);
        let sum = big.add(&Interval::constant(1));
        assert_eq!(sum.hi, None, "overflowed bound must become +inf");
        assert_eq!(sum.lo, None);
        let prod = big.mul(&Interval::constant(2));
        assert_eq!(prod.hi, None);
    }

    #[test]
    fn to_bounds_maps_infinities_to_messy() {
        let (lb, ub) = Interval::range(1, 5).to_bounds();
        assert_eq!(lb, Bound::Const(1));
        assert_eq!(ub, Bound::Const(5));
        let (lb, ub) = Interval::from_bounds(Some(0), None).to_bounds();
        assert_eq!(lb, Bound::Const(0));
        assert_eq!(ub, Bound::Messy);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::range(1, 5).to_string(), "[1, 5]");
        assert_eq!(Interval::top().to_string(), "(-inf, +inf)");
        assert_eq!(Interval::from_bounds(None, Some(3)).to_string(), "(-inf, 3]");
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        // `tag` picks which sides are unbounded (1-in-4 each side).
        (0u8..16, -1000i64..1000, -1000i64..1000).prop_map(|(tag, a, b)| {
            let lo = if tag & 3 == 0 { None } else { Some(a) };
            let hi = if tag & 12 == 0 { None } else { Some(b) };
            match (lo, hi) {
                (Some(x), Some(y)) => Interval::range(x, y),
                (lo, hi) => Interval { lo, hi },
            }
        })
    }

    proptest! {
        /// Widening terminates within the configured bound: each side can
        /// only move once (to unbounded), so any chain of widenings changes
        /// the interval at most twice, no matter the input sequence.
        #[test]
        fn widening_terminates_within_bound(seq in proptest::collection::vec(arb_interval(), 1..40)) {
            let mut x = seq[0];
            let mut changes = 0;
            for next in &seq[1..] {
                let grown = x.join(next);
                let w = x.widen(&grown);
                if w != x {
                    changes += 1;
                }
                prop_assert!(w.contains_interval(&x), "widening must not shrink");
                prop_assert!(w.contains_interval(&grown), "widening must cover the join");
                x = w;
            }
            prop_assert!(changes <= 2, "widening changed {changes} times");
        }

        /// Join is an upper bound: any member of either operand is a member
        /// of the join.
        #[test]
        fn join_is_sound(a in arb_interval(), b in arb_interval(), v in -2000i64..2000) {
            if a.contains(v) || b.contains(v) {
                prop_assert!(a.join(&b).contains(v));
            }
        }

        /// Meet soundness both ways: a member of both operands is a member
        /// of the meet; an empty meet means no common member exists.
        #[test]
        fn meet_is_sound(a in arb_interval(), b in arb_interval(), v in -2000i64..2000) {
            match a.meet(&b) {
                Some(m) => {
                    if a.contains(v) && b.contains(v) {
                        prop_assert!(m.contains(v));
                    }
                }
                None => prop_assert!(!(a.contains(v) && b.contains(v))),
            }
        }

        /// Abstract arithmetic over-approximates concrete arithmetic.
        #[test]
        fn arithmetic_is_sound(
            a in arb_interval(),
            b in arb_interval(),
            x in -1000i64..1000,
            y in -1000i64..1000,
        ) {
            if !a.contains(x) || !b.contains(y) {
                return;
            }
            prop_assert!(a.add(&b).contains(x + y));
            prop_assert!(a.sub(&b).contains(x - y));
            prop_assert!(a.neg().contains(-x));
            prop_assert!(a.mul(&b).contains(x * y));
        }

        /// Narrowing never loses members of the refining operand.
        #[test]
        fn narrow_keeps_refinement_members(a in arb_interval(), b in arb_interval(), v in -2000i64..2000) {
            if b.contains(v) {
                prop_assert!(a.narrow(&b).contains(v) || !a.contains(v));
            }
        }

        /// The widening/narrowing fixpoint loop — run exactly the way the
        /// abstract interpreter runs it — covers concrete execution of a
        /// random small counted loop `k = k0; do trips times { use k; k = k
        /// + delta }`, including a conditional increment (`taken` decides
        /// per iteration whether the add executes).
        #[test]
        fn loop_fixpoint_covers_concrete_execution(
            k0 in -50i64..50,
            delta in -7i64..7,
            trips in 1usize..40,
            taken in proptest::collection::vec((0u8..2).prop_map(|b| b == 1), 40..41),
        ) {
            // Concrete: every value k holds at the loop head.
            let mut k = k0;
            let mut seen = vec![k];
            for t in 0..trips {
                if taken[t] {
                    k += delta;
                }
                seen.push(k);
            }
            // Abstract: ascending iteration with widening after a short
            // delay, then one bounded narrowing pass. The body transfer is
            // `join(k, k + [min(0,delta), max(0,delta)])` — the conditional
            // add's abstraction.
            let step = Interval::range(0.min(delta), 0.max(delta));
            let body = |k: &Interval| k.join(&k.add(&step));
            let mut abs = Interval::constant(k0);
            for round in 0..64 {
                let next = body(&abs);
                if next == abs {
                    break;
                }
                abs = if round < 2 { next } else { abs.widen(&next) };
            }
            prop_assert_eq!(body(&abs).join(&abs), abs, "must reach a post-fixpoint");
            let narrowed = abs.narrow(&body(&abs));
            for &v in &seen {
                prop_assert!(abs.contains(v), "{} missing from {}", v, abs);
                prop_assert!(narrowed.contains(v), "{} missing after narrowing", v);
            }
        }
    }
}
