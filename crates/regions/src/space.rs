//! Variable spaces for region constraints.
//!
//! A region for a `d`-dimensional array lives in a space containing the `d`
//! *dimension variables* (`x0..x{d-1}`, one per subscript position), the
//! *loop variables* of the enclosing loop nest, and *symbolic variables* for
//! formal parameters or globals whose value is unknown at compile time
//! (e.g. the `m` bound in the paper's Fig. 1). The bound classification of
//! the paper (`CONST`, `IVAR`, `LINDEX`, `SUBSCR`) falls directly out of
//! which variable kinds a bound expression mentions.

use support::define_idx;
use support::intern::Symbol;

define_idx! {
    /// Index of a variable within a [`Space`].
    pub struct VarId;
}

/// What a space variable stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// The `i`-th subscript dimension of the array under analysis.
    Dim(u8),
    /// A loop induction variable (named for diagnostics).
    Loop(Symbol),
    /// A symbolic parameter: formal argument, global scalar, etc.
    Sym(Symbol),
}

impl VarKind {
    /// True for dimension variables.
    pub fn is_dim(self) -> bool {
        matches!(self, VarKind::Dim(_))
    }

    /// True for loop induction variables.
    pub fn is_loop(self) -> bool {
        matches!(self, VarKind::Loop(_))
    }

    /// True for symbolic parameters.
    pub fn is_sym(self) -> bool {
        matches!(self, VarKind::Sym(_))
    }
}

/// An ordered set of typed variables shared by the expressions and
/// constraints of one region computation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Space {
    vars: Vec<VarKind>,
}

impl Space {
    /// Creates an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a space with `ndims` dimension variables `x0..x{ndims-1}`.
    pub fn with_dims(ndims: u8) -> Self {
        Space { vars: (0..ndims).map(VarKind::Dim).collect() }
    }

    /// Adds a variable, returning its id. Dimension variables should be added
    /// first so [`Space::dim_var`] stays an O(1) lookup.
    pub fn add(&mut self, kind: VarKind) -> VarId {
        use support::idx::Idx;
        let id = VarId::from_usize(self.vars.len());
        self.vars.push(kind);
        id
    }

    /// Adds a loop variable.
    pub fn add_loop(&mut self, name: Symbol) -> VarId {
        self.add(VarKind::Loop(name))
    }

    /// Adds a symbolic parameter.
    pub fn add_sym(&mut self, name: Symbol) -> VarId {
        self.add(VarKind::Sym(name))
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when the space has no variables.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The kind of variable `v`.
    pub fn kind(&self, v: VarId) -> VarKind {
        use support::idx::Idx;
        self.vars[v.as_usize()]
    }

    /// The variable for dimension `dim`, if present.
    pub fn dim_var(&self, dim: u8) -> Option<VarId> {
        use support::idx::Idx;
        self.vars
            .iter()
            .position(|k| *k == VarKind::Dim(dim))
            .map(VarId::from_usize)
    }

    /// Number of dimension variables.
    pub fn ndims(&self) -> u8 {
        self.vars.iter().filter(|k| k.is_dim()).count() as u8
    }

    /// Iterates `(id, kind)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, VarKind)> + '_ {
        use support::idx::Idx;
        self.vars.iter().enumerate().map(|(i, k)| (VarId::from_usize(i), *k))
    }

    /// Ids of all loop variables.
    pub fn loop_vars(&self) -> Vec<VarId> {
        self.iter().filter(|(_, k)| k.is_loop()).map(|(v, _)| v).collect()
    }

    /// Ids of all symbolic variables.
    pub fn sym_vars(&self) -> Vec<VarId> {
        self.iter().filter(|(_, k)| k.is_sym()).map(|(v, _)| v).collect()
    }

    /// A short printable name for `v` (`x0`, `i`, `$m`), resolved against the
    /// interner that produced the symbols.
    pub fn name(&self, v: VarId, interner: &support::Interner) -> String {
        match self.kind(v) {
            VarKind::Dim(d) => format!("x{d}"),
            VarKind::Loop(s) => interner.resolve(s).to_string(),
            VarKind::Sym(s) => format!("${}", interner.resolve(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::Interner;

    #[test]
    fn with_dims_creates_dimension_vars() {
        let s = Space::with_dims(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.ndims(), 3);
        assert_eq!(s.kind(s.dim_var(2).unwrap()), VarKind::Dim(2));
    }

    #[test]
    fn add_loop_and_sym_vars() {
        let mut it = Interner::new();
        let mut s = Space::with_dims(1);
        let i = s.add_loop(it.intern("i"));
        let m = s.add_sym(it.intern("m"));
        assert!(s.kind(i).is_loop());
        assert!(s.kind(m).is_sym());
        assert_eq!(s.loop_vars(), vec![i]);
        assert_eq!(s.sym_vars(), vec![m]);
    }

    #[test]
    fn names_are_readable() {
        let mut it = Interner::new();
        let mut s = Space::with_dims(2);
        let i = s.add_loop(it.intern("j"));
        let m = s.add_sym(it.intern("m"));
        assert_eq!(s.name(s.dim_var(0).unwrap(), &it), "x0");
        assert_eq!(s.name(i, &it), "j");
        assert_eq!(s.name(m, &it), "$m");
    }

    #[test]
    fn dim_var_missing_dimension_is_none() {
        let s = Space::with_dims(1);
        assert!(s.dim_var(5).is_none());
    }
}
