//! Building regions from subscripted array references inside loop nests.
//!
//! This is where "each region is determined by simplifying linear equations
//! obtained from the bounds information of the array elements" happens: given
//! the enclosing loop nest (induction variable, bounds, step — *not*
//! normalized, so exact strides survive) and the affine subscript expression
//! of each dimension, we produce both the displayed [`TripletRegion`] and the
//! comparable [`ConvexRegion`].

use crate::constraint::{Constraint, ConstraintSystem};
use crate::convex::ConvexRegion;
use crate::fourier_motzkin::{FmStats, ImpreciseReason};
use crate::linexpr::{gcd, LinExpr};
use crate::space::{Space, VarId};
use crate::triplet::{Bound, Triplet, TripletRegion};
use support::obs::{self, Counter};

/// One loop of the enclosing nest, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// The induction variable (a `VarKind::Loop` member of the shared space).
    pub var: VarId,
    /// Lower bound expression (inclusive), affine over outer loop variables
    /// and symbolic parameters.
    pub lb: LinExpr,
    /// Upper bound expression (inclusive).
    pub ub: LinExpr,
    /// Constant step; the paper's strides come straight from here.
    pub step: i64,
}

/// A full loop nest context.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopNest {
    loops: Vec<LoopInfo>,
}

impl LoopNest {
    /// The empty nest (straight-line code).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes an inner loop.
    pub fn push(&mut self, info: LoopInfo) {
        self.loops.push(info);
    }

    /// Pops the innermost loop.
    pub fn pop(&mut self) -> Option<LoopInfo> {
        self.loops.pop()
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Looks up the nest entry for a loop variable.
    pub fn find(&self, v: VarId) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.var == v)
    }

    /// True when `e` mentions any induction variable of this nest.
    pub fn mentions_any(&self, e: &LinExpr) -> bool {
        e.vars().any(|v| self.find(v).is_some())
    }
}

/// One dimension's subscript expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subscript {
    /// Affine over loop and symbolic variables.
    Lin(LinExpr),
    /// Not linearizable (indirect indexing, nonlinear arithmetic, ...).
    Messy,
}

impl Subscript {
    /// Convenience: constant subscript.
    pub fn constant(c: i64) -> Self {
        Subscript::Lin(LinExpr::constant(c))
    }

    /// Convenience: single-variable subscript.
    pub fn var(v: VarId) -> Self {
        Subscript::Lin(LinExpr::var(v))
    }
}

/// Substitutes nest loop variables out of `expr`, replacing each variable by
/// its lower or upper bound so as to *minimize* (`want_min = true`) or
/// *maximize* the expression. Processes innermost loops first so triangular
/// bounds (inner bound mentioning an outer variable) resolve correctly.
/// Returns `None` if variables remain after `depth + 1` rounds (malformed
/// nest).
fn extreme(expr: &LinExpr, nest: &LoopNest, want_min: bool) -> Option<LinExpr> {
    let mut e = expr.clone();
    for _round in 0..=nest.depth() {
        let mut changed = false;
        // Innermost first: iterate the nest in reverse.
        for info in nest.loops().iter().rev() {
            let c = e.coeff(info.var);
            if c == 0 {
                continue;
            }
            let take_lb = (c > 0) == want_min;
            let bound = if take_lb { &info.lb } else { &info.ub };
            e = e.substitute(info.var, bound);
            changed = true;
        }
        if !changed {
            break;
        }
    }
    if nest.mentions_any(&e) {
        None
    } else {
        Some(e)
    }
}

/// Summarizes one dimension's subscript into a triplet.
fn dim_triplet(sub: &Subscript, nest: &LoopNest) -> Triplet {
    let expr = match sub {
        Subscript::Lin(e) => e,
        Subscript::Messy => return Triplet::messy(),
    };
    if let Some(c) = expr.as_constant() {
        return Triplet::point(c);
    }
    if !nest.mentions_any(expr) {
        // Purely symbolic single element: lb = ub = expr.
        return Triplet::new(
            Bound::Expr(expr.clone()),
            Bound::Expr(expr.clone()),
            Bound::Const(1),
        );
    }
    // Stride: gcd of |coeff · step| over all mentioned loop variables. The
    // accessed offsets from the minimum are non-negative combinations of the
    // per-loop strides, so the gcd triplet is a superset.
    let mut stride = 0i64;
    for (v, c) in expr.terms() {
        if let Some(info) = nest.find(v) {
            stride = gcd(stride, (c * info.step).abs());
        }
    }
    if stride == 0 {
        stride = 1;
    }
    let lo = extreme(expr, nest, true);
    let hi = extreme(expr, nest, false);
    match (lo, hi) {
        (Some(lo), Some(hi)) => match (lo.as_constant(), hi.as_constant()) {
            (Some(l), Some(h)) => Triplet::constant_with_stride(l, h, stride),
            _ => Triplet::new(
                lin_bound(lo),
                lin_bound(hi),
                Bound::Const(stride),
            ),
        },
        _ => Triplet::new(Bound::Unprojected, Bound::Unprojected, Bound::Const(stride)),
    }
}

fn lin_bound(e: LinExpr) -> Bound {
    match e.as_constant() {
        Some(c) => Bound::Const(c),
        None => Bound::Expr(e),
    }
}

impl Triplet {
    /// Like [`Triplet::constant`] but preserves a caller-computed stride
    /// (still snapping `ub` onto the progression).
    pub fn constant_with_stride(lb: i64, ub: i64, stride: i64) -> Triplet {
        let (mut lb, mut ub) = (lb, ub);
        let stride = stride.abs().max(1);
        if lb > ub {
            std::mem::swap(&mut lb, &mut ub);
        }
        let ub = lb + ((ub - lb) / stride) * stride;
        Triplet {
            lb: Bound::Const(lb),
            ub: Bound::Const(ub),
            stride: Bound::Const(if lb == ub { 1 } else { stride }),
        }
    }
}

/// Builds the convex region for a reference: `x_d = subscript_d` for every
/// linearizable dimension plus the nest's bound constraints, then projects
/// the loop variables away.
pub fn convex_for_reference(
    space: &Space,
    nest: &LoopNest,
    subs: &[Subscript],
) -> Option<ConvexRegion> {
    let mut stats = FmStats::default();
    convex_with_stats(space, nest, subs, &mut stats)
}

/// Like [`convex_for_reference`], but every give-up path records a typed
/// [`ImpreciseReason`] in `stats` (and counts a `regions.fm_bailouts`
/// event) instead of returning a bare `None` — the interval fallback keys
/// off the distinction between "budget truncated an affine answer" and
/// "this was never affine".
pub fn convex_with_stats(
    space: &Space,
    nest: &LoopNest,
    subs: &[Subscript],
    stats: &mut FmStats,
) -> Option<ConvexRegion> {
    // With the analysis budget already dry there is no point building a
    // system whose projection would only drop constraints again; skip the
    // convex companion entirely (triplets still summarize the reference).
    if support::budget::exhausted() {
        obs::incr(Counter::RegionsFmBailouts);
        stats.mark_imprecise(ImpreciseReason::Budget);
        return None;
    }
    let mut system = ConstraintSystem::new();
    let mut any_messy = false;
    for (d, sub) in subs.iter().enumerate() {
        let x = space.dim_var(d as u8)?;
        match sub {
            Subscript::Lin(e) => {
                system.push(Constraint::eq(LinExpr::var(x), e.clone()));
            }
            Subscript::Messy => any_messy = true,
        }
    }
    for info in nest.loops() {
        system.push(Constraint::ge(LinExpr::var(info.var), info.lb.clone()));
        system.push(Constraint::le(LinExpr::var(info.var), info.ub.clone()));
    }
    if any_messy {
        // A non-affine dimension is a bail-out even when the remaining
        // affine dimensions still project: the reference as a whole has no
        // exact system.
        obs::incr(Counter::RegionsFmBailouts);
        stats.mark_imprecise(ImpreciseReason::NonAffine);
        if subs.iter().all(|s| matches!(s, Subscript::Messy)) {
            return None;
        }
    }
    let region = ConvexRegion::new(space.clone(), system);
    Some(region.project_loops(stats))
}

/// Per-reference imprecision report accompanying a summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SummaryDetail {
    /// FM statistics from building the convex companion, including the
    /// typed give-up reason when any path bailed.
    pub stats: FmStats,
    /// Dimensions whose subscript was non-affine (triplet came out Messy).
    pub messy_dims: Vec<usize>,
    /// Dimensions whose bound substitution failed (Unprojected bounds —
    /// affine but symbolically unresolvable in this nest).
    pub unprojected_dims: Vec<usize>,
}

impl SummaryDetail {
    /// True when every dimension was summarized without any loss.
    pub fn is_exact(&self) -> bool {
        self.messy_dims.is_empty()
            && self.unprojected_dims.is_empty()
            && self.stats.widened == 0
            && self.stats.imprecise.is_none()
    }
}

/// Summarizes a whole reference: one triplet per dimension plus the convex
/// companion region.
pub fn summarize_reference(
    space: &Space,
    nest: &LoopNest,
    subs: &[Subscript],
) -> (TripletRegion, Option<ConvexRegion>) {
    let (region, convex, _) = summarize_reference_detailed(space, nest, subs);
    (region, convex)
}

/// [`summarize_reference`] plus the [`SummaryDetail`] describing exactly
/// which dimensions (and why) are imprecise.
pub fn summarize_reference_detailed(
    space: &Space,
    nest: &LoopNest,
    subs: &[Subscript],
) -> (TripletRegion, Option<ConvexRegion>, SummaryDetail) {
    let mut detail = SummaryDetail::default();
    let mut dims = Vec::with_capacity(subs.len());
    for (d, sub) in subs.iter().enumerate() {
        let t = dim_triplet(sub, nest);
        if matches!(sub, Subscript::Messy) {
            detail.messy_dims.push(d);
            detail.stats.mark_imprecise(ImpreciseReason::NonAffine);
        } else if t.lb == Bound::Unprojected || t.ub == Bound::Unprojected {
            detail.unprojected_dims.push(d);
            detail.stats.mark_imprecise(ImpreciseReason::Symbolic);
        }
        dims.push(t);
    }
    let convex = convex_with_stats(space, nest, subs, &mut detail.stats);
    (TripletRegion::new(dims), convex, detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::Interner;

    fn setup(ndims: u8) -> (Interner, Space) {
        (Interner::new(), Space::with_dims(ndims))
    }

    fn const_loop(var: VarId, lb: i64, ub: i64, step: i64) -> LoopInfo {
        LoopInfo {
            var,
            lb: LinExpr::constant(lb),
            ub: LinExpr::constant(ub),
            step,
        }
    }

    #[test]
    fn straight_line_constant_subscript() {
        let (_, space) = setup(1);
        let nest = LoopNest::new();
        let (t, cx) = summarize_reference(&space, &nest, &[Subscript::constant(5)]);
        assert_eq!(t.dims[0].as_const(), Some((5, 5, 1)));
        let cx = cx.unwrap();
        assert_eq!(cx.dim_bounds(0), Some((Some(5), Some(5))));
    }

    #[test]
    fn unit_stride_loop() {
        // for i in 0..=7: a[i]  →  0:7:1 (Fig. 10's first loops over aarr).
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 0, 7, 1));
        let (t, cx) = summarize_reference(&space, &nest, &[Subscript::var(i)]);
        assert_eq!(t.dims[0].as_const(), Some((0, 7, 1)));
        assert_eq!(cx.unwrap().dim_bounds(0), Some((Some(0), Some(7))));
    }

    #[test]
    fn offset_subscript() {
        // for i in 0..=7: a[i+1]  →  1:8:1 (Fig. 9's second DEF row).
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 0, 7, 1));
        let sub = Subscript::Lin(LinExpr::var(i).add(&LinExpr::constant(1)));
        let (t, _) = summarize_reference(&space, &nest, &[sub]);
        assert_eq!(t.dims[0].as_const(), Some((1, 8, 1)));
    }

    #[test]
    fn strided_loop_preserves_stride() {
        // for i in 2..=6 step 2: a[i]  →  2:6:2 (Fig. 9's strided USE row) —
        // the old Dragon normalized this away; ours must not.
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 2, 6, 2));
        let (t, _) = summarize_reference(&space, &nest, &[Subscript::var(i)]);
        assert_eq!(t.dims[0].as_const(), Some((2, 6, 2)));
    }

    #[test]
    fn coefficient_scales_stride() {
        // for i in 0..=4: a[2*i+1]  →  1:9:2.
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 0, 4, 1));
        let sub = Subscript::Lin(LinExpr::term(i, 2).add(&LinExpr::constant(1)));
        let (t, _) = summarize_reference(&space, &nest, &[sub]);
        assert_eq!(t.dims[0].as_const(), Some((1, 9, 2)));
    }

    #[test]
    fn negative_coefficient_descending_access() {
        // for i in 1..=5: a[10-i]  →  5:9:1.
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 1, 5, 1));
        let sub = Subscript::Lin(LinExpr::constant(10).sub(&LinExpr::var(i)));
        let (t, _) = summarize_reference(&space, &nest, &[sub]);
        assert_eq!(t.dims[0].as_const(), Some((5, 9, 1)));
    }

    #[test]
    fn two_dimensional_reference() {
        // do i = 1,100; do j = 1,100: A(i, j)  →  (1:100:1, 1:100:1).
        let (mut it, mut space) = setup(2);
        let i = space.add_loop(it.intern("i"));
        let j = space.add_loop(it.intern("j"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 1, 100, 1));
        nest.push(const_loop(j, 1, 100, 1));
        let (t, cx) =
            summarize_reference(&space, &nest, &[Subscript::var(i), Subscript::var(j)]);
        assert_eq!(t.to_string(), "(1:100:1, 1:100:1)");
        let cx = cx.unwrap();
        assert_eq!(cx.dim_bounds(0), Some((Some(1), Some(100))));
        assert_eq!(cx.dim_bounds(1), Some((Some(1), Some(100))));
    }

    #[test]
    fn coupled_subscript_conservative_stride() {
        // for i in 0..=3, j in 0..=3: a[2i + 4j] → offsets multiples of 2.
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let j = space.add_loop(it.intern("j"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 0, 3, 1));
        nest.push(const_loop(j, 0, 3, 1));
        let sub = Subscript::Lin(LinExpr::term(i, 2).add(&LinExpr::term(j, 4)));
        let (t, _) = summarize_reference(&space, &nest, &[sub]);
        assert_eq!(t.dims[0].as_const(), Some((0, 18, 2)));
    }

    #[test]
    fn triangular_nest_resolves_inner_bound() {
        // do i = 1,10; do j = 1,i: a[j]  →  1:10:1.
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let j = space.add_loop(it.intern("j"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 1, 10, 1));
        nest.push(LoopInfo {
            var: j,
            lb: LinExpr::constant(1),
            ub: LinExpr::var(i),
            step: 1,
        });
        let (t, _) = summarize_reference(&space, &nest, &[Subscript::var(j)]);
        assert_eq!(t.dims[0].as_const(), Some((1, 10, 1)));
    }

    #[test]
    fn symbolic_loop_bound_yields_expr_bound() {
        // do i = 1,m: a[i]  →  1:$m:1 with an IVAR upper bound.
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let m = space.add_sym(it.intern("m"));
        let mut nest = LoopNest::new();
        nest.push(LoopInfo {
            var: i,
            lb: LinExpr::constant(1),
            ub: LinExpr::var(m),
            step: 1,
        });
        let (t, _) = summarize_reference(&space, &nest, &[Subscript::var(i)]);
        assert_eq!(t.dims[0].lb.as_const(), Some(1));
        assert_eq!(t.dims[0].ub, Bound::Expr(LinExpr::var(m)));
        use crate::triplet::BoundClass;
        assert_eq!(t.dims[0].ub.classify(&space), BoundClass::IVar);
    }

    #[test]
    fn messy_subscript_is_messy() {
        let (_, space) = setup(1);
        let nest = LoopNest::new();
        let (t, cx, detail) = summarize_reference_detailed(&space, &nest, &[Subscript::Messy]);
        assert_eq!(t.dims[0], Triplet::messy());
        assert!(cx.is_none());
        assert_eq!(detail.messy_dims, vec![0]);
        assert_eq!(detail.stats.imprecise, Some(ImpreciseReason::NonAffine));
        assert!(!detail.is_exact());
    }

    #[test]
    fn exact_reference_reports_exact_detail() {
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 0, 7, 1));
        let (_, _, detail) = summarize_reference_detailed(&space, &nest, &[Subscript::var(i)]);
        assert!(detail.is_exact(), "{detail:?}");
    }

    #[test]
    fn partial_messy_reference_keeps_affine_dims_but_is_marked() {
        // a[i, idx(j)]: dim 0 summarizes exactly, dim 1 is non-affine.
        let (mut it, mut space) = setup(2);
        let i = space.add_loop(it.intern("i"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 1, 10, 1));
        let (t, cx, detail) =
            summarize_reference_detailed(&space, &nest, &[Subscript::var(i), Subscript::Messy]);
        assert_eq!(t.dims[0].as_const(), Some((1, 10, 1)));
        assert_eq!(t.dims[1], Triplet::messy());
        assert!(cx.is_some(), "affine dims still get a convex companion");
        assert_eq!(detail.messy_dims, vec![1]);
        assert_eq!(detail.stats.imprecise, Some(ImpreciseReason::NonAffine));
    }

    #[test]
    fn dry_budget_detail_is_typed_budget() {
        use support::budget::{self, BudgetConfig};
        let (mut it, mut space) = setup(1);
        let i = space.add_loop(it.intern("i"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 0, 7, 1));
        let scope = budget::enter(BudgetConfig { fm_steps: 0, ..Default::default() });
        assert!(!budget::charge_steps(1), "drain the scope");
        let (_, cx, detail) = summarize_reference_detailed(&space, &nest, &[Subscript::var(i)]);
        drop(scope);
        assert!(cx.is_none(), "dry budget skips the convex companion");
        assert_eq!(detail.stats.imprecise, Some(ImpreciseReason::Budget));
    }

    #[test]
    fn symbolic_point_access() {
        // a[m] with m a formal parameter: lb = ub = $m.
        let (mut it, mut space) = setup(1);
        let m = space.add_sym(it.intern("m"));
        let nest = LoopNest::new();
        let (t, _) = summarize_reference(&space, &nest, &[Subscript::var(m)]);
        assert_eq!(t.dims[0].lb, Bound::Expr(LinExpr::var(m)));
        assert_eq!(t.dims[0].ub, Bound::Expr(LinExpr::var(m)));
    }

    #[test]
    fn nest_push_pop() {
        let (mut it, mut space) = setup(0);
        let i = space.add_loop(it.intern("i"));
        let mut nest = LoopNest::new();
        nest.push(const_loop(i, 1, 2, 1));
        assert_eq!(nest.depth(), 1);
        assert!(nest.find(i).is_some());
        nest.pop();
        assert_eq!(nest.depth(), 0);
    }
}
