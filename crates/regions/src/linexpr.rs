//! Linear (affine) expressions `c₀ + Σ cᵢ·vᵢ` over a [`Space`](crate::Space).
//!
//! Subscript expressions, loop bounds, and region constraints are all affine
//! in practice for the programs the paper analyzes; anything non-affine is
//! classified `MESSY` upstream and never reaches this module. Coefficients
//! are `i64`; all arithmetic is checked in debug builds via the standard
//! overflow traps.

use crate::space::VarId;
use std::collections::BTreeMap;
use support::idx::Idx;

/// An affine expression: constant term plus a sparse map of coefficients.
/// Zero coefficients are never stored, so `==` is a semantic equality test.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    constant: i64,
    coeffs: BTreeMap<VarId, i64>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        LinExpr { constant: c, coeffs: BTreeMap::new() }
    }

    /// The expression `1·v`.
    pub fn var(v: VarId) -> Self {
        Self::term(v, 1)
    }

    /// The expression `coeff·v`.
    pub fn term(v: VarId, coeff: i64) -> Self {
        let mut coeffs = BTreeMap::new();
        if coeff != 0 {
            coeffs.insert(v, coeff);
        }
        LinExpr { constant: 0, coeffs }
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `v` (0 when absent).
    pub fn coeff(&self, v: VarId) -> i64 {
        self.coeffs.get(&v).copied().unwrap_or(0)
    }

    /// True when the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// `Some(c)` when the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<i64> {
        self.is_constant().then_some(self.constant)
    }

    /// True when the expression is exactly `1·v + 0`.
    pub fn as_single_var(&self) -> Option<VarId> {
        if self.constant != 0 {
            return None;
        }
        match self.coeffs.iter().next() {
            Some((&v, &c)) if self.coeffs.len() == 1 && c == 1 => Some(v),
            _ => None,
        }
    }

    /// `Some((v, a, b))` when the expression is `a·v + b` with `a ≠ 0`.
    pub fn as_affine_in_one_var(&self) -> Option<(VarId, i64, i64)> {
        match self.coeffs.iter().next() {
            Some((&v, &a)) if self.coeffs.len() == 1 => Some((v, a, self.constant)),
            _ => None,
        }
    }

    /// Variables with nonzero coefficients, ascending.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.coeffs.keys().copied()
    }

    /// `(var, coeff)` pairs with nonzero coefficients, ascending by var.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, i64)> + '_ {
        self.coeffs.iter().map(|(&v, &c)| (v, c))
    }

    /// True when `v` occurs with a nonzero coefficient.
    pub fn mentions(&self, v: VarId) -> bool {
        self.coeffs.contains_key(&v)
    }

    /// Adds `delta` to the coefficient of `v`, dropping it if it cancels.
    pub fn add_term(&mut self, v: VarId, delta: i64) {
        let entry = self.coeffs.entry(v).or_insert(0);
        *entry += delta;
        if *entry == 0 {
            self.coeffs.remove(&v);
        }
    }

    /// Adds `delta` to the constant term.
    pub fn add_constant(&mut self, delta: i64) {
        self.constant += delta;
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant += other.constant;
        for (&v, &c) in &other.coeffs {
            out.add_term(v, c);
        }
        out
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// Returns `k·self`.
    pub fn scale(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            constant: self.constant * k,
            coeffs: self.coeffs.iter().map(|(&v, &c)| (v, c * k)).collect(),
        }
    }

    /// Returns `self` with every occurrence of `v` replaced by `repl`.
    pub fn substitute(&self, v: VarId, repl: &LinExpr) -> LinExpr {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(&v);
        out.add(&repl.scale(c))
    }

    /// Evaluates under an assignment; `None` if a variable is unassigned.
    pub fn eval(&self, assign: &dyn Fn(VarId) -> Option<i64>) -> Option<i64> {
        let mut total = self.constant;
        for (&v, &c) in &self.coeffs {
            total += c * assign(v)?;
        }
        Some(total)
    }

    /// Greatest common divisor of all variable coefficients (0 for constants).
    pub fn coeff_gcd(&self) -> i64 {
        self.coeffs.values().fold(0i64, |g, &c| gcd(g, c.abs()))
    }

    /// Renders against a name resolver, e.g. `2*i + j - 3`.
    pub fn render(&self, name: &dyn Fn(VarId) -> String) -> String {
        let mut out = String::new();
        for (&v, &c) in &self.coeffs {
            if out.is_empty() {
                if c == 1 {
                    out.push_str(&name(v));
                } else if c == -1 {
                    out.push('-');
                    out.push_str(&name(v));
                } else {
                    out.push_str(&format!("{c}*{}", name(v)));
                }
            } else if c > 0 {
                if c == 1 {
                    out.push_str(&format!(" + {}", name(v)));
                } else {
                    out.push_str(&format!(" + {c}*{}", name(v)));
                }
            } else if c == -1 {
                out.push_str(&format!(" - {}", name(v)));
            } else {
                out.push_str(&format!(" - {}*{}", -c, name(v)));
            }
        }
        if out.is_empty() {
            return self.constant.to_string();
        }
        match self.constant.cmp(&0) {
            std::cmp::Ordering::Greater => out.push_str(&format!(" + {}", self.constant)),
            std::cmp::Ordering::Less => out.push_str(&format!(" - {}", -self.constant)),
            std::cmp::Ordering::Equal => {}
        }
        out
    }

    /// Renders with `v0, v1, …` variable names (debugging helper).
    pub fn render_default(&self) -> String {
        self.render(&|v: VarId| format!("v{}", v.as_usize()))
    }
}

/// Euclid's gcd on non-negative inputs; `gcd(0, x) = x`.
pub fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn constructors_and_accessors() {
        let e = LinExpr::term(v(0), 3);
        assert_eq!(e.coeff(v(0)), 3);
        assert_eq!(e.coeff(v(1)), 0);
        assert_eq!(e.constant_term(), 0);
        assert!(LinExpr::constant(5).is_constant());
        assert_eq!(LinExpr::constant(5).as_constant(), Some(5));
        assert_eq!(LinExpr::var(v(2)).as_single_var(), Some(v(2)));
    }

    #[test]
    fn zero_coefficients_are_normalized_away() {
        let mut e = LinExpr::term(v(0), 3);
        e.add_term(v(0), -3);
        assert_eq!(e, LinExpr::zero());
        assert_eq!(LinExpr::term(v(1), 0), LinExpr::zero());
    }

    #[test]
    fn add_sub_scale() {
        let a = LinExpr::term(v(0), 2).add(&LinExpr::constant(1)); // 2x + 1
        let b = LinExpr::var(v(1)).add(&LinExpr::constant(4)); // y + 4
        let sum = a.add(&b);
        assert_eq!(sum.coeff(v(0)), 2);
        assert_eq!(sum.coeff(v(1)), 1);
        assert_eq!(sum.constant_term(), 5);
        let diff = sum.sub(&b);
        assert_eq!(diff, a);
        let scaled = a.scale(-3);
        assert_eq!(scaled.coeff(v(0)), -6);
        assert_eq!(scaled.constant_term(), -3);
        assert_eq!(a.scale(0), LinExpr::zero());
    }

    #[test]
    fn substitute_replaces_variable() {
        // e = 2x + y + 1; x := 3z - 2  →  6z + y - 3
        let e = LinExpr::term(v(0), 2)
            .add(&LinExpr::var(v(1)))
            .add(&LinExpr::constant(1));
        let repl = LinExpr::term(v(2), 3).add(&LinExpr::constant(-2));
        let out = e.substitute(v(0), &repl);
        assert_eq!(out.coeff(v(0)), 0);
        assert_eq!(out.coeff(v(1)), 1);
        assert_eq!(out.coeff(v(2)), 6);
        assert_eq!(out.constant_term(), -3);
    }

    #[test]
    fn eval_under_assignment() {
        let e = LinExpr::term(v(0), 2).add(&LinExpr::constant(1));
        assert_eq!(e.eval(&|var| (var == v(0)).then_some(10)), Some(21));
        assert_eq!(e.eval(&|_| None), None);
        assert_eq!(LinExpr::constant(9).eval(&|_| None), Some(9));
    }

    #[test]
    fn affine_in_one_var() {
        let e = LinExpr::term(v(3), -2).add(&LinExpr::constant(7));
        assert_eq!(e.as_affine_in_one_var(), Some((v(3), -2, 7)));
        assert!(LinExpr::constant(7).as_affine_in_one_var().is_none());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(-12, 18), 6);
        let e = LinExpr::term(v(0), 4).add(&LinExpr::term(v(1), 6));
        assert_eq!(e.coeff_gcd(), 2);
    }

    #[test]
    fn render_is_human_readable() {
        let e = LinExpr::term(v(0), 2)
            .add(&LinExpr::term(v(1), -1))
            .add(&LinExpr::constant(-3));
        assert_eq!(e.render_default(), "2*v0 - v1 - 3");
        assert_eq!(LinExpr::zero().render_default(), "0");
        assert_eq!(LinExpr::var(v(1)).render_default(), "v1");
        let neg = LinExpr::term(v(0), -1);
        assert_eq!(neg.render_default(), "-v0");
    }
}
