//! Convex regions: the linear-constraint-based Regions method.
//!
//! "Linear-constraint-based methods group array elements into a region using
//! linear constraints determined by the subscripts of arrays ... It expresses
//! the set of array accesses as a convex region in a geometrical space."
//! A [`ConvexRegion`] pairs a variable [`Space`] (dimension variables plus
//! loop/symbolic variables) with a [`ConstraintSystem`]; loop variables are
//! eliminated by Fourier–Motzkin projection, and the two documented drawbacks
//! are faithfully present: comparison needs the FM solver (worst-case
//! exponential) and union is approximated because the exact union of two
//! convex sets is generally not convex.

use crate::constraint::{Constraint, ConstraintSystem, Rel};
use crate::fourier_motzkin::{self, FmStats, Projection};
use crate::linexpr::LinExpr;
use crate::space::{Space, VarId};
use crate::triplet::{Bound, Triplet, TripletRegion};

/// A convex polyhedral region over a typed variable space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvexRegion {
    space: Space,
    system: ConstraintSystem,
}

impl ConvexRegion {
    /// The universe region over `space` (no constraints).
    pub fn universe(space: Space) -> Self {
        ConvexRegion { space, system: ConstraintSystem::new() }
    }

    /// Builds from parts.
    pub fn new(space: Space, system: ConstraintSystem) -> Self {
        ConvexRegion { space, system }
    }

    /// The variable space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The constraint system.
    pub fn system(&self) -> &ConstraintSystem {
        &self.system
    }

    /// Adds one constraint.
    pub fn constrain(&mut self, c: Constraint) {
        self.system.push(c);
    }

    /// True when the region provably contains no rational point.
    pub fn is_empty(&self) -> bool {
        !fourier_motzkin::is_satisfiable(&self.system)
    }

    /// Eliminates every loop variable, leaving a region over dimension and
    /// symbolic variables only — the "projection" step of the Regions method.
    pub fn project_loops(&self, stats: &mut FmStats) -> ConvexRegion {
        let loops = self.space.loop_vars();
        match fourier_motzkin::eliminate_all(&self.system, &loops, stats) {
            Projection::Feasible(system) => {
                ConvexRegion { space: self.space.clone(), system }
            }
            Projection::Empty => {
                // Represent emptiness as `0 ≥ 1`.
                let mut system = ConstraintSystem::new();
                system.push(Constraint::ge0(LinExpr::constant(-1)));
                ConvexRegion { space: self.space.clone(), system }
            }
        }
    }

    /// Intersection: concatenate constraint systems (exact for convex sets).
    pub fn intersect(&self, other: &ConvexRegion) -> ConvexRegion {
        let mut system = self.system.clone();
        system.extend_from(&other.system);
        ConvexRegion { space: self.space.clone(), system }
    }

    /// True when the two regions have no common point — the side-effect
    /// independence test behind Fig. 1's "both procedures can concurrently
    /// and safely be parallelized".
    pub fn disjoint_from(&self, other: &ConvexRegion) -> bool {
        self.intersect(other).is_empty()
    }

    /// True when `self ⊆ other`, decided constraint-by-constraint: `self` is
    /// inside `other` iff for every constraint `e ≥ 0` of `other`,
    /// `self ∧ (e ≤ -1)` is unsatisfiable (integer negation).
    pub fn contains_region(&self, other: &ConvexRegion) -> bool {
        // NB: argument order — returns true when `other ⊆ self`.
        for c in self.system.constraints() {
            match c.rel {
                Rel::Ge => {
                    let neg = Constraint::ge0(
                        c.expr.scale(-1).add(&LinExpr::constant(-1)),
                    );
                    let mut probe = other.system.clone();
                    probe.push(neg);
                    if fourier_motzkin::is_satisfiable(&probe) {
                        return false;
                    }
                }
                Rel::Eq => {
                    for dir in [1, -1] {
                        let neg = Constraint::ge0(
                            c.expr.scale(dir).add(&LinExpr::constant(-1)),
                        );
                        let mut probe = other.system.clone();
                        probe.push(neg);
                        if fourier_motzkin::is_satisfiable(&probe) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Approximate union: keeps each constraint of one operand that is valid
    /// over the other operand (so the result contains both). This is the
    /// classic convex-hull over-approximation the paper mentions: "the union
    /// of regions is approximated since in some cases, it does not form a
    /// convex hull".
    pub fn union_hull(&self, other: &ConvexRegion) -> ConvexRegion {
        support::obs::incr(support::obs::Counter::RegionUnions);
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut system = ConstraintSystem::new();
        for (own, peer) in
            [(&self.system, other), (&other.system, self)]
        {
            for c in own.constraints() {
                if constraint_valid_over(c, peer) {
                    system.push(c.clone());
                }
            }
        }
        system.prune();
        ConvexRegion { space: self.space.clone(), system }
    }

    /// Integer bounds of dimension `dim` after projecting everything else.
    pub fn dim_bounds(&self, dim: u8) -> Option<(Option<i64>, Option<i64>)> {
        let v = self.space.dim_var(dim)?;
        fourier_motzkin::bounds_of(&self.system, v)
    }

    /// Extracts a triplet region over the dimension variables. Convex regions
    /// carry no stride information (the paper pairs the convex machinery with
    /// explicit stride tracking — see `summarize`), so stride is 1; a
    /// dimension whose bounds cannot be projected becomes `Unprojected`.
    pub fn to_triplets(&self) -> TripletRegion {
        let n = self.space.ndims();
        let mut dims = Vec::with_capacity(n as usize);
        for d in 0..n {
            match self.dim_bounds(d) {
                Some((Some(lo), Some(hi))) => dims.push(Triplet::constant(lo, hi, 1)),
                Some((lo, hi)) => dims.push(Triplet::new(
                    lo.map_or(Bound::Unprojected, Bound::Const),
                    hi.map_or(Bound::Unprojected, Bound::Const),
                    Bound::Const(1),
                )),
                None => dims.push(Triplet::new(
                    Bound::Unprojected,
                    Bound::Unprojected,
                    Bound::Const(1),
                )),
            }
        }
        TripletRegion::new(dims)
    }

    /// True when the given integer point (over dimension variables, other
    /// variables existentially quantified) may lie in the region. Exact when
    /// the region has no symbolic/loop variables left.
    pub fn may_contain_point(&self, point: &[i64]) -> bool {
        let mut probe = self.system.clone();
        for (d, &val) in point.iter().enumerate() {
            if let Some(v) = self.space.dim_var(d as u8) {
                probe.push(Constraint::eq(LinExpr::var(v), LinExpr::constant(val)));
            }
        }
        fourier_motzkin::is_satisfiable(&probe)
    }

    /// Renders the constraint system with readable variable names.
    pub fn render(&self, interner: &support::Interner) -> String {
        let space = self.space.clone();
        self.system.render(&move |v: VarId| space.name(v, interner))
    }
}

fn constraint_valid_over(c: &Constraint, region: &ConvexRegion) -> bool {
    match c.rel {
        Rel::Ge => {
            let neg = Constraint::ge0(c.expr.scale(-1).add(&LinExpr::constant(-1)));
            let mut probe = region.system.clone();
            probe.push(neg);
            !fourier_motzkin::is_satisfiable(&probe)
        }
        Rel::Eq => {
            for dir in [1, -1] {
                let neg =
                    Constraint::ge0(c.expr.scale(dir).add(&LinExpr::constant(-1)));
                let mut probe = region.system.clone();
                probe.push(neg);
                if fourier_motzkin::is_satisfiable(&probe) {
                    return false;
                }
            }
            true
        }
    }
}

/// Builds the box region `lb[d] ≤ x_d ≤ ub[d]` over a fresh space.
pub fn box_region(bounds: &[(i64, i64)]) -> ConvexRegion {
    let space = Space::with_dims(bounds.len() as u8);
    let mut system = ConstraintSystem::new();
    for (d, &(lo, hi)) in bounds.iter().enumerate() {
        let Some(v) = space.dim_var(d as u8) else {
            continue; // space was built from bounds.len(), so always present
        };
        system.push(Constraint::ge(LinExpr::var(v), LinExpr::constant(lo)));
        system.push(Constraint::le(LinExpr::var(v), LinExpr::constant(hi)));
    }
    ConvexRegion::new(space, system)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_region_bounds() {
        let r = box_region(&[(1, 100), (1, 100)]);
        assert_eq!(r.dim_bounds(0), Some((Some(1), Some(100))));
        assert_eq!(r.dim_bounds(1), Some((Some(1), Some(100))));
        assert!(!r.is_empty());
    }

    #[test]
    fn fig1_disjointness() {
        // DEF A(1:100,1:100) vs USE A(101:200,101:200): disjoint.
        let def = box_region(&[(1, 100), (1, 100)]);
        let user = box_region(&[(101, 200), (101, 200)]);
        assert!(def.disjoint_from(&user));
        // An overlapping pair is not disjoint.
        let mid = box_region(&[(50, 150), (50, 150)]);
        assert!(!def.disjoint_from(&mid));
    }

    #[test]
    fn containment() {
        let big = box_region(&[(0, 100)]);
        let small = box_region(&[(10, 20)]);
        assert!(big.contains_region(&small));
        assert!(!small.contains_region(&big));
        assert!(big.contains_region(&big));
    }

    #[test]
    fn union_hull_contains_both() {
        let a = box_region(&[(0, 10)]);
        let b = box_region(&[(20, 30)]);
        let u = a.union_hull(&b);
        assert!(u.contains_region(&a));
        assert!(u.contains_region(&b));
        // The hull is the interval [0, 30] — over-approximate by design.
        assert_eq!(u.dim_bounds(0), Some((Some(0), Some(30))));
        assert!(u.may_contain_point(&[15]));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = box_region(&[(0, 10)]);
        let empty = box_region(&[(5, 1)]); // lb > ub ⇒ empty
        assert!(empty.is_empty());
        let u = a.union_hull(&empty);
        assert_eq!(u.dim_bounds(0), Some((Some(0), Some(10))));
        let u2 = empty.union_hull(&a);
        assert_eq!(u2.dim_bounds(0), Some((Some(0), Some(10))));
    }

    #[test]
    fn project_loops_produces_dim_region() {
        // x0 = i, 1 ≤ i ≤ 100 over space {x0, i}.
        let mut it = support::Interner::new();
        let mut space = Space::with_dims(1);
        let i = space.add_loop(it.intern("i"));
        let x0 = space.dim_var(0).unwrap();
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(LinExpr::var(x0), LinExpr::var(i)));
        sys.push(Constraint::ge(LinExpr::var(i), LinExpr::constant(1)));
        sys.push(Constraint::le(LinExpr::var(i), LinExpr::constant(100)));
        let r = ConvexRegion::new(space, sys);
        let mut stats = FmStats::default();
        let p = r.project_loops(&mut stats);
        assert_eq!(p.dim_bounds(0), Some((Some(1), Some(100))));
        assert_eq!(stats.eliminated, 1);
    }

    #[test]
    fn to_triplets_extracts_bounds() {
        let r = box_region(&[(1, 5), (0, 7)]);
        let t = r.to_triplets();
        assert_eq!(t.dims[0].as_const(), Some((1, 5, 1)));
        assert_eq!(t.dims[1].as_const(), Some((0, 7, 1)));
    }

    #[test]
    fn triangular_region_containment_beats_boxes() {
        // Triangle: 0 ≤ x0, 0 ≤ x1, x0 + x1 ≤ 10. Point (8, 8) is outside
        // the triangle but inside its bounding box — the precision the
        // paper claims for linear constraints over triplets.
        let space = Space::with_dims(2);
        let x0 = space.dim_var(0).unwrap();
        let x1 = space.dim_var(1).unwrap();
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x0), LinExpr::constant(0)));
        sys.push(Constraint::ge(LinExpr::var(x1), LinExpr::constant(0)));
        sys.push(Constraint::le(
            LinExpr::var(x0).add(&LinExpr::var(x1)),
            LinExpr::constant(10),
        ));
        let tri = ConvexRegion::new(space, sys);
        assert!(!tri.may_contain_point(&[8, 8]));
        assert!(tri.may_contain_point(&[2, 3]));
        // The triplet extraction over-approximates to the box.
        let t = tri.to_triplets();
        assert_eq!(t.dims[0].as_const(), Some((0, 10, 1)));
        assert_eq!(t.contains(&[8, 8]), Some(true));
    }

    #[test]
    fn empty_projection_renders_empty_region() {
        let mut it = support::Interner::new();
        let mut space = Space::with_dims(1);
        let i = space.add_loop(it.intern("i"));
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(i), LinExpr::constant(5)));
        sys.push(Constraint::le(LinExpr::var(i), LinExpr::constant(1)));
        let r = ConvexRegion::new(space, sys);
        let mut stats = FmStats::default();
        let p = r.project_loops(&mut stats);
        assert!(p.is_empty());
    }

    #[test]
    fn render_uses_variable_names() {
        let it = support::Interner::new();
        let r = box_region(&[(1, 2)]);
        let s = r.render(&it);
        assert!(s.contains("x0"), "{s}");
    }
}
