//! Affine constraint systems.
//!
//! A [`Constraint`] is either `expr ≥ 0` or `expr = 0` over a shared
//! [`Space`](crate::Space). A [`ConstraintSystem`] is their conjunction —
//! exactly how the Regions method describes "the set of array accesses as a
//! convex region in a geometrical space". Equalities are kept explicit (not
//! split into two inequalities) so substitution-based elimination stays exact
//! and cheap; Fourier–Motzkin is reserved for genuine inequality projection.

use crate::linexpr::{gcd, LinExpr};
use crate::space::VarId;

/// Relation of a constraint's expression to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `expr ≥ 0`.
    Ge,
    /// `expr = 0`.
    Eq,
}

/// One affine constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Left-hand expression, compared against zero via `rel`.
    pub expr: LinExpr,
    /// The relation.
    pub rel: Rel,
}

impl Constraint {
    /// `expr ≥ 0`.
    pub fn ge0(expr: LinExpr) -> Self {
        Constraint { expr, rel: Rel::Ge }.normalized()
    }

    /// `expr = 0`.
    pub fn eq0(expr: LinExpr) -> Self {
        Constraint { expr, rel: Rel::Eq }.normalized()
    }

    /// `lhs ≥ rhs`.
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Self {
        Self::ge0(lhs.sub(&rhs))
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Self {
        Self::ge0(rhs.sub(&lhs))
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Self {
        Self::eq0(lhs.sub(&rhs))
    }

    /// Divides through by the positive gcd of the coefficients, tightening
    /// the constant for inequalities (integer semantics: `2x - 3 ≥ 0` becomes
    /// `x - 2 ≥ 0` because `x ≥ 3/2` means `x ≥ 2` over ℤ).
    pub fn normalized(mut self) -> Self {
        let g = self.expr.coeff_gcd();
        if g > 1 {
            let c = self.expr.constant_term();
            match self.rel {
                Rel::Ge => {
                    let mut scaled = LinExpr::constant(c.div_euclid(g));
                    for (v, k) in self.expr.terms() {
                        scaled.add_term(v, k / g);
                    }
                    self.expr = scaled;
                }
                Rel::Eq => {
                    // Only exact when g divides the constant; otherwise the
                    // equality is unsatisfiable over ℤ — keep it as-is and let
                    // feasibility checks handle it.
                    if c % g == 0 {
                        let mut scaled = LinExpr::constant(c / g);
                        for (v, k) in self.expr.terms() {
                            scaled.add_term(v, k / g);
                        }
                        self.expr = scaled;
                    }
                }
            }
        }
        self
    }

    /// True when the constraint holds for every assignment (`c ≥ 0` / `0 = 0`).
    pub fn is_trivially_true(&self) -> bool {
        match self.expr.as_constant() {
            Some(c) => match self.rel {
                Rel::Ge => c >= 0,
                Rel::Eq => c == 0,
            },
            None => false,
        }
    }

    /// True when the constraint holds for no assignment (`c < 0` / `c ≠ 0`
    /// with constant expr, or an integer-infeasible equality like `2x = 1`).
    pub fn is_trivially_false(&self) -> bool {
        if let Some(c) = self.expr.as_constant() {
            return match self.rel {
                Rel::Ge => c < 0,
                Rel::Eq => c != 0,
            };
        }
        if self.rel == Rel::Eq {
            let g = self.expr.coeff_gcd();
            if g > 1 && self.expr.constant_term() % g != 0 {
                return true;
            }
        }
        false
    }

    /// Evaluates the constraint under a total assignment.
    pub fn holds(&self, assign: &dyn Fn(VarId) -> Option<i64>) -> Option<bool> {
        let val = self.expr.eval(assign)?;
        Some(match self.rel {
            Rel::Ge => val >= 0,
            Rel::Eq => val == 0,
        })
    }

    /// Renders like `x0 - 2*i + 1 >= 0`.
    pub fn render(&self, name: &dyn Fn(VarId) -> String) -> String {
        let op = match self.rel {
            Rel::Ge => ">=",
            Rel::Eq => "=",
        };
        format!("{} {op} 0", self.expr.render(name))
    }
}

/// A conjunction of constraints over one space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSystem {
    constraints: Vec<Constraint>,
}

impl ConstraintSystem {
    /// Creates an empty (universally true) system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint, skipping trivially-true ones and deduplicating.
    pub fn push(&mut self, c: Constraint) {
        if c.is_trivially_true() {
            return;
        }
        if !self.constraints.contains(&c) {
            self.constraints.push(c);
        }
    }

    /// Adds every constraint of `other`.
    pub fn extend_from(&mut self, other: &ConstraintSystem) {
        for c in &other.constraints {
            self.push(c.clone());
        }
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints are present (the universe).
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// True when any member constraint is trivially false.
    pub fn has_contradiction(&self) -> bool {
        self.constraints.iter().any(Constraint::is_trivially_false)
    }

    /// Variables mentioned anywhere in the system, deduplicated ascending.
    pub fn vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> =
            self.constraints.iter().flat_map(|c| c.expr.vars()).collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// True when `v` occurs in any constraint.
    pub fn mentions(&self, v: VarId) -> bool {
        self.constraints.iter().any(|c| c.expr.mentions(v))
    }

    /// Splits constraints on `v` into (lower bounds: coeff>0 in `expr≥0` form,
    /// upper bounds: coeff<0, equalities mentioning `v`, rest).
    #[allow(clippy::type_complexity)]
    pub fn partition_on(
        &self,
        v: VarId,
    ) -> (Vec<&Constraint>, Vec<&Constraint>, Vec<&Constraint>, Vec<&Constraint>) {
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        let mut eqs = Vec::new();
        let mut rest = Vec::new();
        for c in &self.constraints {
            let coeff = c.expr.coeff(v);
            if coeff == 0 {
                rest.push(c);
            } else if c.rel == Rel::Eq {
                eqs.push(c);
            } else if coeff > 0 {
                lower.push(c);
            } else {
                upper.push(c);
            }
        }
        (lower, upper, eqs, rest)
    }

    /// Checks the whole system under a total assignment.
    pub fn holds(&self, assign: &dyn Fn(VarId) -> Option<i64>) -> Option<bool> {
        for c in &self.constraints {
            if !c.holds(assign)? {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Removes syntactic duplicates and constraints implied by an identical
    /// constraint with a looser constant (cheap dominance pruning).
    pub fn prune(&mut self) {
        // Drop c1 if some c2 has the same variable part, same relation Ge,
        // and a constant ≥ c1's (i.e. c2 is tighter or equal).
        let mut keep = vec![true; self.constraints.len()];
        for i in 0..self.constraints.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.constraints.len() {
                if i == j || !keep[j] {
                    continue;
                }
                let (a, b) = (&self.constraints[i], &self.constraints[j]);
                if a.rel != Rel::Ge || b.rel != Rel::Ge {
                    continue;
                }
                if same_linear_part(&a.expr, &b.expr)
                    && b.expr.constant_term() <= a.expr.constant_term()
                    && (b.expr.constant_term() < a.expr.constant_term() || j < i)
                {
                    // b is tighter (or an earlier duplicate): drop a.
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut idx = 0;
        self.constraints.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Renders one constraint per line.
    pub fn render(&self, name: &dyn Fn(VarId) -> String) -> String {
        self.constraints
            .iter()
            .map(|c| c.render(name))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl FromIterator<Constraint> for ConstraintSystem {
    fn from_iter<I: IntoIterator<Item = Constraint>>(iter: I) -> Self {
        let mut cs = ConstraintSystem::new();
        for c in iter {
            cs.push(c);
        }
        cs
    }
}

fn same_linear_part(a: &LinExpr, b: &LinExpr) -> bool {
    let av: Vec<_> = a.terms().collect();
    let bv: Vec<_> = b.terms().collect();
    av == bv
}

/// Convenience: gcd re-export for FM (kept here to avoid a util module).
pub(crate) fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        0
    } else {
        (a / gcd(a, b)).abs() * b.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn ge_le_eq_constructors() {
        // x ≥ 3  →  x - 3 ≥ 0
        let c = Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(3));
        assert_eq!(c.expr.coeff(v(0)), 1);
        assert_eq!(c.expr.constant_term(), -3);
        assert_eq!(c.rel, Rel::Ge);
        // x ≤ 3  →  3 - x ≥ 0
        let c = Constraint::le(LinExpr::var(v(0)), LinExpr::constant(3));
        assert_eq!(c.expr.coeff(v(0)), -1);
        assert_eq!(c.expr.constant_term(), 3);
        // x = y
        let c = Constraint::eq(LinExpr::var(v(0)), LinExpr::var(v(1)));
        assert_eq!(c.rel, Rel::Eq);
    }

    #[test]
    fn normalization_tightens_integer_bounds() {
        // 2x - 3 ≥ 0 ⇒ x ≥ 1.5 ⇒ x ≥ 2 ⇒ x - 2 ≥ 0 over ℤ.
        let c = Constraint::ge0(
            LinExpr::term(v(0), 2).add(&LinExpr::constant(-3)),
        );
        assert_eq!(c.expr.coeff(v(0)), 1);
        assert_eq!(c.expr.constant_term(), -2);
    }

    #[test]
    fn infeasible_integer_equality_detected() {
        // 2x = 1 has no integer solution.
        let c = Constraint::eq0(LinExpr::term(v(0), 2).add(&LinExpr::constant(-1)));
        assert!(c.is_trivially_false());
    }

    #[test]
    fn trivial_truth_detection() {
        assert!(Constraint::ge0(LinExpr::constant(0)).is_trivially_true());
        assert!(Constraint::ge0(LinExpr::constant(5)).is_trivially_true());
        assert!(Constraint::ge0(LinExpr::constant(-1)).is_trivially_false());
        assert!(Constraint::eq0(LinExpr::constant(0)).is_trivially_true());
        assert!(Constraint::eq0(LinExpr::constant(2)).is_trivially_false());
    }

    #[test]
    fn system_skips_trivial_and_duplicate_constraints() {
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::ge0(LinExpr::constant(1)));
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(1)));
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(1)));
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn partition_on_variable() {
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(1))); // lower
        cs.push(Constraint::le(LinExpr::var(v(0)), LinExpr::constant(9))); // upper
        cs.push(Constraint::eq(LinExpr::var(v(0)), LinExpr::var(v(1)))); // eq
        cs.push(Constraint::ge(LinExpr::var(v(2)), LinExpr::constant(0))); // rest
        let (lo, up, eqs, rest) = cs.partition_on(v(0));
        assert_eq!((lo.len(), up.len(), eqs.len(), rest.len()), (1, 1, 1, 1));
    }

    #[test]
    fn holds_checks_all_constraints() {
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(1)));
        cs.push(Constraint::le(LinExpr::var(v(0)), LinExpr::constant(5)));
        let at = |x: i64| move |var: VarId| (var == v(0)).then_some(x);
        assert_eq!(cs.holds(&at(3)), Some(true));
        assert_eq!(cs.holds(&at(0)), Some(false));
        assert_eq!(cs.holds(&at(6)), Some(false));
    }

    #[test]
    fn prune_drops_dominated_bounds() {
        let mut cs = ConstraintSystem::new();
        // x - 1 ≥ 0 (x ≥ 1) is dominated by x - 5 ≥ 0 (x ≥ 5)? No: tighter
        // means smaller constant. x - 5 ≥ 0 implies x - 1 ≥ 0, so the latter
        // is redundant.
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(1)));
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(5)));
        cs.prune();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.constraints()[0].expr.constant_term(), -5);
    }

    #[test]
    fn lcm_helper() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 3), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn render_system() {
        let mut cs = ConstraintSystem::new();
        cs.push(Constraint::ge(LinExpr::var(v(0)), LinExpr::constant(1)));
        let s = cs.render(&|var| format!("v{}", var.0));
        assert_eq!(s, "v0 - 1 >= 0");
    }
}
