//! `.rgn` rows: the tabular unit of the paper's tool.
//!
//! "We output these information to a comma separated plain file .rgn, where
//! each row maintains information about each region per access mode." One
//! [`RgnRow`] holds every column the Dragon array-analysis graph displays
//! (Tables II/III, Figs. 9/12/14): array, file, mode, references,
//! dimensions, LB/UB/Stride (source bounds, `|`-joined across dimensions),
//! element size, data type, dim sizes, total size, allocated bytes, memory
//! location (hex) and access density.

use regions::access::{AccessMode, Precision};
use support::csv::CsvWriter;
use support::Error;

/// One row of the array analysis graph.
#[derive(Debug, Clone, PartialEq)]
pub struct RgnRow {
    /// Scope: the procedure display name this row belongs to.
    pub proc: String,
    /// Array name.
    pub array: String,
    /// Object file ("the source file where this array has been accessed",
    /// shown as `verify.o`).
    pub file: String,
    /// Access mode (`USE`/`DEF`/`FORMAL`/`PASSED`).
    pub mode: AccessMode,
    /// "The number of region accesses for the selected array based on the
    /// access mode."
    pub refs: u64,
    /// Number of dimensions.
    pub dims: u8,
    /// Lower bounds per source dimension, `|`-joined.
    pub lb: String,
    /// Upper bounds per source dimension, `|`-joined.
    pub ub: String,
    /// Strides per source dimension, `|`-joined.
    pub stride: String,
    /// Element size in bytes (negative ⇒ non-contiguous F90 array).
    pub elem_size: i64,
    /// Data type display name (`int`, `double`, ...).
    pub data_type: String,
    /// Declared extent of each source dimension, `|`-joined (`64|65|65|5`).
    pub dim_size: String,
    /// Total number of elements (0 for variable-length arrays).
    pub tot_size: i64,
    /// Allocated bytes.
    pub size_bytes: i64,
    /// Static address in hex (no `0x` prefix, like the paper's `b79edfa0`).
    pub mem_loc: String,
    /// Access density: `⌊100·refs / size_bytes⌋` (the percentage the paper
    /// reports: 2 and 3 for `aarr`, 10 for `xcr` USE, 900 for `class`, 0
    /// for `u`).
    pub acc_density: i64,
    /// For interprocedurally-propagated rows: the callee whose side effect
    /// this is (rendered as `IDEF`/`IUSE` by Dragon, per Fig. 1).
    pub via: Option<String>,
    /// Source line of the (first) reference.
    pub line: u32,
    /// Smallest source line among the references folded into this row — the
    /// anchor lint findings and `dragon browse` jump to.
    pub first_line: u32,
    /// Largest source line among the references folded into this row.
    pub last_line: u32,
    /// True when the array is a global (the `@` scope in Dragon).
    pub is_global: bool,
    /// True for coindexed (remote, PGAS) accesses — the CAF extension.
    pub remote: bool,
    /// How trustworthy the bounds columns are: `exact`, `affine-approx`,
    /// `interval` (recovered by the abstract-interpretation fallback) or
    /// `unbounded`.
    pub precision: Precision,
}

impl RgnRow {
    /// Computes the access-density column. Validated against every density
    /// the paper prints: `aarr` 2 (DEF) / 3 (USE), `xcr` 10 (USE) / 2
    /// (FORMAL), `class` 900, `u` 0.
    pub fn density(refs: u64, size_bytes: i64) -> i64 {
        if size_bytes <= 0 {
            return 0;
        }
        (refs as i64 * 100) / size_bytes
    }

    /// The mode string Dragon displays: propagated rows render as
    /// `IDEF`/`IUSE` (Fig. 1's interprocedural annotations).
    pub fn display_mode(&self) -> String {
        match (&self.via, self.mode) {
            (Some(_), AccessMode::Def) => "IDEF".to_string(),
            (Some(_), AccessMode::Use) => "IUSE".to_string(),
            (_, m) => m.as_str().to_string(),
        }
    }

    /// The CSV header of a version-3 `.rgn` file.
    pub const HEADER: [&'static str; 22] = [
        "proc", "array", "file", "mode", "refs", "dims", "lb", "ub", "stride",
        "elem_size", "data_type", "dim_size", "tot_size", "size_bytes", "mem_loc",
        "acc_density", "via", "line", "first_line", "last_line", "remote",
        "precision",
    ];

    /// Serializes to one CSV row. The `is_global` flag rides on the proc
    /// column as an `@` prefix — the same symbol Dragon uses for the global
    /// scope ("The @ symbol at the top of this column indicates global
    /// arrays").
    pub fn write_csv(&self, w: &mut CsvWriter) {
        let proc = if self.is_global {
            format!("@{}", self.proc)
        } else {
            self.proc.clone()
        };
        w.write_row([
            proc.as_str(),
            self.array.as_str(),
            self.file.as_str(),
            self.mode.as_str(),
            &self.refs.to_string(),
            &self.dims.to_string(),
            self.lb.as_str(),
            self.ub.as_str(),
            self.stride.as_str(),
            &self.elem_size.to_string(),
            self.data_type.as_str(),
            self.dim_size.as_str(),
            &self.tot_size.to_string(),
            &self.size_bytes.to_string(),
            self.mem_loc.as_str(),
            &self.acc_density.to_string(),
            self.via.as_deref().unwrap_or(""),
            &self.line.to_string(),
            &self.first_line.to_string(),
            &self.last_line.to_string(),
            if self.remote { "1" } else { "0" },
            self.precision.as_str(),
        ]);
    }

    /// Parses one CSV record (without the `is_global` flag, which the
    /// reader reconstructs from the `@`-prefixed proc convention).
    pub fn parse_csv(fields: &[String]) -> Result<RgnRow, Error> {
        let expected = Self::HEADER.len();
        if fields.len() != expected {
            return Err(Error::Format(format!(
                ".rgn row has {} fields, expected {}",
                fields.len(),
                expected
            )));
        }
        let int = |i: usize| -> Result<i64, Error> {
            fields[i]
                .parse()
                .map_err(|_| Error::Format(format!("bad integer `{}` in .rgn", fields[i])))
        };
        let (proc, is_global) = match fields[0].strip_prefix('@') {
            Some(rest) => (rest.to_string(), true),
            None => (fields[0].clone(), false),
        };
        let line = int(17)? as u32;
        Ok(RgnRow {
            proc,
            array: fields[1].clone(),
            file: fields[2].clone(),
            mode: AccessMode::parse(&fields[3])
                .ok_or_else(|| Error::Format(format!("bad mode `{}`", fields[3])))?,
            refs: int(4)? as u64,
            dims: int(5)? as u8,
            lb: fields[6].clone(),
            ub: fields[7].clone(),
            stride: fields[8].clone(),
            elem_size: int(9)?,
            data_type: fields[10].clone(),
            dim_size: fields[11].clone(),
            tot_size: int(12)?,
            size_bytes: int(13)?,
            mem_loc: fields[14].clone(),
            acc_density: int(15)?,
            via: (!fields[16].is_empty()).then(|| fields[16].clone()),
            line,
            first_line: int(18)? as u32,
            last_line: int(19)? as u32,
            is_global,
            remote: fields[20] == "1",
            precision: Precision::parse(&fields[21])
                .ok_or_else(|| Error::Format(format!("bad precision `{}`", fields[21])))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RgnRow {
        RgnRow {
            proc: "verify".into(),
            array: "xcr".into(),
            file: "verify.o".into(),
            mode: AccessMode::Use,
            refs: 4,
            dims: 1,
            lb: "1".into(),
            ub: "5".into(),
            stride: "1".into(),
            elem_size: 8,
            data_type: "double".into(),
            dim_size: "5".into(),
            tot_size: 5,
            size_bytes: 40,
            mem_loc: "b79edfa0".into(),
            acc_density: 10,
            via: None,
            line: 12,
            first_line: 12,
            last_line: 17,
            is_global: false,
            remote: false,
            precision: Precision::Exact,
        }
    }

    #[test]
    fn density_matches_every_paper_value() {
        assert_eq!(RgnRow::density(2, 80), 2); // aarr DEF
        assert_eq!(RgnRow::density(3, 80), 3); // aarr USE
        assert_eq!(RgnRow::density(4, 40), 10); // xcr USE
        assert_eq!(RgnRow::density(1, 40), 2); // xcr FORMAL
        assert_eq!(RgnRow::density(9, 1), 900); // class DEF
        assert_eq!(RgnRow::density(110, 10_816_000), 0); // u USE
        assert_eq!(RgnRow::density(5, 0), 0); // VLA rule
    }

    #[test]
    fn csv_round_trip() {
        let row = sample();
        let mut w = CsvWriter::new();
        row.write_csv(&mut w);
        let parsed = support::csv::parse(w.as_str()).unwrap();
        let back = RgnRow::parse_csv(&parsed[0]).unwrap();
        assert_eq!(back, row);
        assert_eq!((back.first_line, back.last_line), (12, 17));
    }

    #[test]
    fn pre_precision_rows_are_rejected_cleanly() {
        // A version-2 record is the version-3 record minus the trailing
        // precision column; the parser must reject it with a typed error.
        let row = sample();
        let mut w = CsvWriter::new();
        row.write_csv(&mut w);
        let mut fields = support::csv::parse(w.as_str()).unwrap().remove(0);
        fields.pop();
        let err = RgnRow::parse_csv(&fields).unwrap_err().to_string();
        assert!(err.contains("fields"), "{err}");
    }

    #[test]
    fn precision_column_round_trips_every_level() {
        for p in Precision::ALL {
            let mut row = sample();
            row.precision = p;
            let mut w = CsvWriter::new();
            row.write_csv(&mut w);
            let parsed = support::csv::parse(w.as_str()).unwrap();
            let back = RgnRow::parse_csv(&parsed[0]).unwrap();
            assert_eq!(back.precision, p);
        }
        let mut w = CsvWriter::new();
        sample().write_csv(&mut w);
        let mut fields = support::csv::parse(w.as_str()).unwrap().remove(0);
        fields[21] = "mystery".into();
        assert!(RgnRow::parse_csv(&fields).is_err());
    }

    #[test]
    fn display_mode_interprocedural() {
        let mut row = sample();
        assert_eq!(row.display_mode(), "USE");
        row.via = Some("p2".into());
        assert_eq!(row.display_mode(), "IUSE");
        row.mode = AccessMode::Def;
        assert_eq!(row.display_mode(), "IDEF");
        row.via = None;
        assert_eq!(row.display_mode(), "DEF");
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        assert!(RgnRow::parse_csv(&["short".to_string()]).is_err());
        let mut w = CsvWriter::new();
        let mut row = sample();
        row.mode = AccessMode::Formal;
        row.write_csv(&mut w);
        let mut fields = support::csv::parse(w.as_str()).unwrap().remove(0);
        fields[3] = "BOGUS".into();
        assert!(RgnRow::parse_csv(&fields).is_err());
        fields[3] = "FORMAL".into();
        fields[4] = "not-a-number".into();
        assert!(RgnRow::parse_csv(&fields).is_err());
    }

    #[test]
    fn via_round_trips() {
        let mut row = sample();
        row.via = Some("p1".into());
        let mut w = CsvWriter::new();
        row.write_csv(&mut w);
        let parsed = support::csv::parse(w.as_str()).unwrap();
        let back = RgnRow::parse_csv(&parsed[0]).unwrap();
        assert_eq!(back.via.as_deref(), Some("p1"));
    }
}
