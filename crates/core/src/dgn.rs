//! `.dgn` project files.
//!
//! "Compile the application. A bunch of files will be generated that
//! includes .dgn, .cfg and .rgn files. Invoke our Dragon tool and load the
//! .dgn project." Our `.dgn` is a small CSV document describing the
//! program: one `proc` record per procedure (name, display name, file,
//! line) and one `call` record per call-graph edge — everything the Dragon
//! call-graph view (Fig. 11) needs without re-running the compiler.

use ipa::callgraph::display_name;
use ipa::CallGraph;
use support::csv::{parse, CsvWriter};
use support::persist::{append_text_checksum, verify_text_checksum};
use support::Error;
use whirl::Program;

/// One procedure record in a project.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DgnProc {
    /// Source-level name.
    pub name: String,
    /// Dragon display name (`MAIN__` for entries).
    pub display: String,
    /// Source file.
    pub file: String,
    /// Header line.
    pub line: u32,
}

/// One call edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DgnCall {
    /// Caller procedure name.
    pub caller: String,
    /// Callee procedure name.
    pub callee: String,
    /// Call-site line.
    pub line: u32,
}

/// A loaded `.dgn` project.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DgnProject {
    /// Procedures, in call-graph pre-order.
    pub procs: Vec<DgnProc>,
    /// Call edges.
    pub calls: Vec<DgnCall>,
}

impl DgnProject {
    /// Builds the project description from an analyzed program.
    pub fn from_program(program: &Program, cg: &CallGraph) -> Self {
        let mut procs = Vec::new();
        for id in cg.pre_order() {
            let p = program.procedure(id);
            procs.push(DgnProc {
                name: program.name_of(p.name).to_string(),
                display: display_name(program, p),
                file: program.name_of(p.file).to_string(),
                line: p.linenum,
            });
        }
        let mut calls = Vec::new();
        for id in cg.pre_order() {
            for site in cg.calls(id) {
                calls.push(DgnCall {
                    caller: program.name_of(program.procedure(site.caller).name).to_string(),
                    callee: program.name_of(program.procedure(site.callee).name).to_string(),
                    line: site.line,
                });
            }
        }
        DgnProject { procs, calls }
    }

    /// Serializes to the `.dgn` text format, finished with a `#checksum`
    /// trailer line so truncation and in-place corruption are detectable.
    pub fn write(&self) -> String {
        let mut w = CsvWriter::new();
        w.write_row(["dgn", "1"]);
        for p in &self.procs {
            w.write_row(["proc", &p.name, &p.display, &p.file, &p.line.to_string()]);
        }
        for c in &self.calls {
            w.write_row(["call", &c.caller, &c.callee, &c.line.to_string()]);
        }
        let mut doc = w.finish();
        append_text_checksum(&mut doc);
        doc
    }

    /// Parses a `.dgn` document, verifying the `#checksum` trailer when one
    /// is present (files from older tool versions carry none).
    pub fn read(doc: &str) -> Result<Self, Error> {
        let doc = verify_text_checksum(doc)?;
        let records = parse(doc)?;
        let mut it = records.into_iter();
        match it.next() {
            Some(h) if h.first().map(String::as_str) == Some("dgn") => {}
            _ => return Err(Error::Format("not a .dgn project file".to_string())),
        }
        let mut out = DgnProject::default();
        for rec in it {
            match rec.first().map(String::as_str) {
                Some("proc") if rec.len() == 5 => out.procs.push(DgnProc {
                    name: rec[1].clone(),
                    display: rec[2].clone(),
                    file: rec[3].clone(),
                    line: rec[4]
                        .parse()
                        .map_err(|_| Error::Format("bad proc line number".to_string()))?,
                }),
                Some("call") if rec.len() == 4 => out.calls.push(DgnCall {
                    caller: rec[1].clone(),
                    callee: rec[2].clone(),
                    line: rec[3]
                        .parse()
                        .map_err(|_| Error::Format("bad call line number".to_string()))?,
                }),
                Some("") | None => {}
                other => {
                    return Err(Error::Format(format!("unknown .dgn record {other:?}")))
                }
            }
        }
        Ok(out)
    }

    /// Graphviz DOT of the loaded project's call graph.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph callgraph {\n  node [shape=box];\n");
        for p in &self.procs {
            out.push_str(&format!("  \"{}\" [label=\"{}\"];\n", p.name, p.display));
        }
        for c in &self.calls {
            out.push_str(&format!("  \"{}\" -> \"{}\";\n", c.caller, c.callee));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn project() -> DgnProject {
        let fig1 = workloads::fig1::source();
        let p = compile_to_h(
            &[SourceFile::new(&fig1.name, &fig1.text, Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        DgnProject::from_program(&p, &cg)
    }

    #[test]
    fn captures_procs_and_calls() {
        let prj = project();
        assert_eq!(prj.procs.len(), 3);
        assert_eq!(prj.calls.len(), 2);
        assert!(prj.procs.iter().any(|p| p.name == "add"));
        assert!(prj.calls.iter().any(|c| c.caller == "add" && c.callee == "p1"));
    }

    #[test]
    fn round_trips_through_text() {
        let prj = project();
        let doc = prj.write();
        let back = DgnProject::read(&doc).unwrap();
        assert_eq!(back, prj);
    }

    #[test]
    fn rejects_non_dgn_documents() {
        assert!(DgnProject::read("rgn,1\n").is_err());
        assert!(DgnProject::read("").is_err());
        assert!(DgnProject::read("dgn,1\nbogus,record\n").is_err());
    }

    #[test]
    fn dot_contains_every_edge() {
        let prj = project();
        let dot = prj.to_dot();
        assert_eq!(dot.matches("->").count(), prj.calls.len());
    }
}
