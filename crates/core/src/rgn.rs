//! `.rgn` file writing and parsing.
//!
//! The compiler side writes the comma-separated `.rgn` file; the Dragon side
//! "will later [process it] by our array analysis graph". Files start with a
//! header row so they are self-describing.

use crate::row::RgnRow;
use support::csv::{parse, CsvWriter};
use support::persist::{append_text_checksum, verify_text_checksum};
use support::Error;

/// Serializes rows into a `.rgn` document (header + one row per region per
/// access mode), finished with a `#checksum` trailer line so truncation and
/// in-place corruption are detectable on read.
pub fn write_rgn(rows: &[RgnRow]) -> String {
    let mut w = CsvWriter::new();
    w.write_row(RgnRow::HEADER);
    for row in rows {
        row.write_csv(&mut w);
    }
    let mut doc = w.finish();
    append_text_checksum(&mut doc);
    doc
}

/// Parses a `.rgn` document back into rows, verifying the header and (when
/// present) the `#checksum` trailer. Files from older tool versions carry no
/// trailer and still parse.
pub fn read_rgn(doc: &str) -> Result<Vec<RgnRow>, Error> {
    let doc = verify_text_checksum(doc)?;
    let records = parse(doc)?;
    let mut it = records.into_iter();
    let header = it
        .next()
        .ok_or_else(|| Error::Format("empty .rgn file".to_string()))?;
    if header != RgnRow::HEADER {
        return Err(Error::Format(format!(
            "unexpected .rgn header: {header:?}"
        )));
    }
    let mut rows = Vec::new();
    for record in it {
        if record.iter().all(String::is_empty) {
            continue;
        }
        rows.push(RgnRow::parse_csv(&record)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regions::access::AccessMode;

    fn sample_rows() -> Vec<RgnRow> {
        vec![
            RgnRow {
                proc: "MAIN__".into(),
                array: "aarr".into(),
                file: "matrix.o".into(),
                mode: AccessMode::Def,
                refs: 2,
                dims: 1,
                lb: "0".into(),
                ub: "7".into(),
                stride: "1".into(),
                elem_size: 4,
                data_type: "int".into(),
                dim_size: "20".into(),
                tot_size: 20,
                size_bytes: 80,
                mem_loc: "55599870".into(),
                acc_density: 2,
                via: None,
                line: 5,
                is_global: true,
                remote: false,
            },
            RgnRow {
                proc: "add".into(),
                array: "a".into(),
                file: "fig1.o".into(),
                mode: AccessMode::Use,
                refs: 1,
                dims: 2,
                lb: "101|101".into(),
                ub: "200|200".into(),
                stride: "1|1".into(),
                elem_size: 4,
                data_type: "int".into(),
                dim_size: "200|200".into(),
                tot_size: 40_000,
                size_bytes: 160_000,
                mem_loc: "55599900".into(),
                acc_density: 0,
                via: Some("p2".into()),
                line: 6,
                is_global: true,
                remote: false,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let rows = sample_rows();
        let doc = write_rgn(&rows);
        let back = read_rgn(&doc).unwrap();
        assert_eq!(back, rows);
        // Global rows carry the Dragon `@` marker in the serialized form.
        assert!(doc.contains("@MAIN__"));
    }

    #[test]
    fn header_is_checked() {
        assert!(read_rgn("not,a,header\n1,2,3\n").is_err());
        assert!(read_rgn("").is_err());
    }

    #[test]
    fn header_only_file_is_empty() {
        let doc = write_rgn(&[]);
        assert_eq!(read_rgn(&doc).unwrap(), Vec::<RgnRow>::new());
    }
}
