//! `.rgn` file writing and parsing.
//!
//! The compiler side writes the comma-separated `.rgn` file; the Dragon side
//! "will later [process it] by our array analysis graph". Files start with a
//! header row so they are self-describing.

use crate::row::RgnRow;
use support::csv::{parse, CsvWriter};
use support::persist::{append_text_checksum, verify_text_checksum};
use support::Error;

/// The `.rgn` format version this writer emits, recorded as a leading
/// `#version` record. Version 2 added the `first_line`/`last_line` columns;
/// version 3 added the `precision` column. Pre-3 documents are rejected
/// with a typed error (the session cache quarantines them and recomputes)
/// rather than being misread as having exact bounds.
pub const RGN_VERSION: u32 = 3;

/// Serializes rows into a `.rgn` document (version record + header + one row
/// per region per access mode), finished with a `#checksum` trailer line so
/// truncation and in-place corruption are detectable on read.
pub fn write_rgn(rows: &[RgnRow]) -> String {
    let mut w = CsvWriter::new();
    w.write_row(["#version", &RGN_VERSION.to_string()]);
    w.write_row(RgnRow::HEADER);
    for row in rows {
        row.write_csv(&mut w);
    }
    let mut doc = w.finish();
    append_text_checksum(&mut doc);
    doc
}

/// Parses a `.rgn` document back into rows, verifying the version record,
/// the header and (when present) the `#checksum` trailer. Documents from
/// other schema versions — older files without the `precision` column as
/// well as unknown future versions — are rejected with a typed error, never
/// misread: a pre-3 row would otherwise silently parse as exact bounds.
pub fn read_rgn(doc: &str) -> Result<Vec<RgnRow>, Error> {
    let doc = verify_text_checksum(doc)?;
    let records = parse(doc)?;
    let mut it = records.into_iter().peekable();
    let version = match it.peek() {
        Some(rec) if rec.first().is_some_and(|f| f == "#version") => {
            let rec = it.next().unwrap_or_default();
            let v: u32 = rec
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| Error::Format("malformed .rgn #version record".into()))?;
            v
        }
        _ => 1, // legacy files predate the version record
    };
    if version > RGN_VERSION {
        return Err(Error::Format(format!(
            ".rgn version {version} is newer than supported version {RGN_VERSION}"
        )));
    }
    if version < RGN_VERSION {
        return Err(Error::Format(format!(
            ".rgn version {version} predates the `precision` column (version \
             {RGN_VERSION}); regenerate the analysis"
        )));
    }
    let header = it
        .next()
        .ok_or_else(|| Error::Format("empty .rgn file".to_string()))?;
    if header != RgnRow::HEADER {
        return Err(Error::Format(format!(
            "unexpected .rgn header: {header:?}"
        )));
    }
    let mut rows = Vec::new();
    for record in it {
        if record.iter().all(String::is_empty) {
            continue;
        }
        rows.push(RgnRow::parse_csv(&record)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regions::access::{AccessMode, Precision};

    fn sample_rows() -> Vec<RgnRow> {
        vec![
            RgnRow {
                proc: "MAIN__".into(),
                array: "aarr".into(),
                file: "matrix.o".into(),
                mode: AccessMode::Def,
                refs: 2,
                dims: 1,
                lb: "0".into(),
                ub: "7".into(),
                stride: "1".into(),
                elem_size: 4,
                data_type: "int".into(),
                dim_size: "20".into(),
                tot_size: 20,
                size_bytes: 80,
                mem_loc: "55599870".into(),
                acc_density: 2,
                via: None,
                line: 5,
                first_line: 5,
                last_line: 8,
                is_global: true,
                remote: false,
                precision: Precision::Exact,
            },
            RgnRow {
                proc: "add".into(),
                array: "a".into(),
                file: "fig1.o".into(),
                mode: AccessMode::Use,
                refs: 1,
                dims: 2,
                lb: "101|101".into(),
                ub: "200|200".into(),
                stride: "1|1".into(),
                elem_size: 4,
                data_type: "int".into(),
                dim_size: "200|200".into(),
                tot_size: 40_000,
                size_bytes: 160_000,
                mem_loc: "55599900".into(),
                acc_density: 0,
                via: Some("p2".into()),
                line: 6,
                first_line: 6,
                last_line: 6,
                is_global: true,
                remote: false,
                precision: Precision::Interval,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let rows = sample_rows();
        let doc = write_rgn(&rows);
        let back = read_rgn(&doc).unwrap();
        assert_eq!(back, rows);
        // Global rows carry the Dragon `@` marker in the serialized form.
        assert!(doc.contains("@MAIN__"));
        // The document is self-describing: a version record leads.
        assert!(doc.starts_with("#version,3\n"), "{doc}");
    }

    #[test]
    fn header_is_checked() {
        assert!(read_rgn("not,a,header\n1,2,3\n").is_err());
        assert!(read_rgn("").is_err());
    }

    #[test]
    fn pre_precision_versions_are_quarantined() {
        // A v1 file (no version record) and a v2 file (versioned, no
        // precision column) must both come back as typed schema errors.
        let mut w = CsvWriter::new();
        w.write_row([
            "proc", "array", "file", "mode", "refs", "dims", "lb", "ub", "stride",
            "elem_size", "data_type", "dim_size", "tot_size", "size_bytes",
            "mem_loc", "acc_density", "via", "line", "remote",
        ]);
        w.write_row([
            "@MAIN__", "aarr", "matrix.o", "DEF", "2", "1", "0", "7", "1", "4",
            "int", "20", "20", "80", "55599870", "2", "", "5", "0",
        ]);
        let err = read_rgn(&w.finish()).unwrap_err().to_string();
        assert!(err.contains("predates"), "{err}");

        let mut w = CsvWriter::new();
        w.write_row(["#version", "2"]);
        w.write_row([
            "proc", "array", "file", "mode", "refs", "dims", "lb", "ub", "stride",
            "elem_size", "data_type", "dim_size", "tot_size", "size_bytes",
            "mem_loc", "acc_density", "via", "line", "first_line", "last_line",
            "remote",
        ]);
        let err = read_rgn(&w.finish()).unwrap_err().to_string();
        assert!(err.contains("predates"), "{err}");
    }

    #[test]
    fn future_versions_are_rejected() {
        let doc = "#version,99\nanything\n";
        let err = read_rgn(doc).unwrap_err().to_string();
        assert!(err.contains("newer than supported"), "{err}");
        assert!(read_rgn("#version,abc\n").is_err());
    }

    #[test]
    fn header_only_file_is_empty() {
        let doc = write_rgn(&[]);
        assert_eq!(read_rgn(&doc).unwrap(), Vec::<RgnRow>::new());
    }
}
