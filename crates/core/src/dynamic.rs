//! Dynamic array region information — the paper's future-work item, built
//! on the WHIRL interpreter.
//!
//! "We also work on enhancing our tool and OpenUH to provide dynamic array
//! region information, in order to better understand the actual array
//! access patterns." Executing the program records, per
//! (procedure, array, read/write), the hull of the *actually touched*
//! region — and doubles as a whole-pipeline validator: every dynamic access
//! must fall inside the statically reported regions.

use ipa::AccessRecord;
use regions::access::AccessMode;
use regions::linexpr::gcd;
use std::collections::BTreeMap;
use support::idx::Idx;
use support::Result;
use whirl::interp::{AccessSink, DynMode, Interp, Limits};
use whirl::{ProcId, Program, StIdx};

/// The dynamic hull of one (procedure, array, mode) group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynRegion {
    /// Per-dimension minimum touched index (zero-based H order).
    pub min: Vec<i64>,
    /// Per-dimension maximum touched index.
    pub max: Vec<i64>,
    /// Per-dimension gcd of offsets from `min` (0 ⇒ single value; the
    /// dynamic stride estimate).
    pub stride: Vec<i64>,
    /// Number of element accesses folded in.
    pub count: u64,
}

impl DynRegion {
    fn new(idx: &[i64]) -> Self {
        DynRegion {
            min: idx.to_vec(),
            max: idx.to_vec(),
            stride: vec![0; idx.len()],
            count: 1,
        }
    }

    fn fold(&mut self, idx: &[i64]) {
        self.count += 1;
        let dims = self.min.len().min(idx.len());
        for (d, &i) in idx.iter().enumerate().take(dims) {
            if i < self.min[d] {
                // Re-anchor: strides are offsets from the (new) min.
                let shift = self.min[d] - i;
                self.stride[d] = gcd(self.stride[d], shift);
                self.min[d] = i;
            } else {
                self.stride[d] = gcd(self.stride[d], i - self.min[d]);
            }
            self.max[d] = self.max[d].max(i);
        }
    }

    /// Renders like a triplet region (stride 0 prints as 1).
    pub fn render(&self) -> String {
        let parts: Vec<String> = (0..self.min.len())
            .map(|d| {
                format!("{}:{}:{}", self.min[d], self.max[d], self.stride[d].max(1))
            })
            .collect();
        format!("({})", parts.join(", "))
    }
}

/// The dynamic summary: an [`AccessSink`] that folds every event.
#[derive(Debug, Default)]
pub struct DynamicSummary {
    groups: BTreeMap<(ProcId, StIdx, DynMode), DynRegion>,
    /// Total element accesses observed.
    pub total_accesses: u64,
}

impl AccessSink for DynamicSummary {
    fn access(&mut self, proc: ProcId, array: StIdx, mode: DynMode, idx: &[i64], _line: u32) {
        self.total_accesses += 1;
        self.groups
            .entry((proc, array, mode))
            .and_modify(|r| r.fold(idx))
            .or_insert_with(|| DynRegion::new(idx));
    }
}

impl DynamicSummary {
    /// All groups.
    pub fn groups(&self) -> impl Iterator<Item = (&(ProcId, StIdx, DynMode), &DynRegion)> {
        self.groups.iter()
    }

    /// Lookup.
    pub fn get(&self, proc: ProcId, array: StIdx, mode: DynMode) -> Option<&DynRegion> {
        self.groups.get(&(proc, array, mode))
    }
}

/// Executes `entry` and returns the dynamic summary.
pub fn run_dynamic(program: &Program, entry: &str, limits: Limits) -> Result<DynamicSummary> {
    let mut interp = Interp::new(program, DynamicSummary::default(), limits);
    interp.run(entry)?;
    Ok(interp.into_sink())
}

/// One static-coverage violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The procedure whose summary failed to cover.
    pub proc: ProcId,
    /// The array.
    pub array: StIdx,
    /// Read or write.
    pub mode: DynMode,
    /// Human-readable description.
    pub detail: String,
}

/// Checks that every dynamic hull lies inside the static summary of its
/// procedure: for each dimension, the static records' combined bounds must
/// enclose the dynamic min/max. Symbolic static bounds count as covering
/// (the static analysis was conservative there).
pub fn validate_against_static(
    program: &Program,
    ipa: &ipa::IpaResult,
    dynamic: &DynamicSummary,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (&(proc, array, mode), dyn_region) in dynamic.groups() {
        let want = match mode {
            DynMode::Read => AccessMode::Use,
            DynMode::Write => AccessMode::Def,
        };
        let summary = ipa.summary(proc);
        let records: Vec<&AccessRecord> = summary
            .accesses
            .iter()
            .filter(|r| r.array == array && r.mode == want && r.from_call.is_none())
            .collect();
        if records.is_empty() {
            out.push(Violation {
                proc,
                array,
                mode,
                detail: format!(
                    "dynamic {} of `{}` in `{}` has no static record at all",
                    match mode {
                        DynMode::Read => "read",
                        DynMode::Write => "write",
                    },
                    program.name_of(program.symbols.get(array).name),
                    program.name_of(program.procedure(proc).name),
                ),
            });
            continue;
        }
        let ndims = dyn_region.min.len();
        for d in 0..ndims {
            // Static combined bounds for dimension d: None = unbounded
            // (symbolic), covering everything.
            let mut lo: Option<i64> = None;
            let mut hi: Option<i64> = None;
            let mut unbounded_lo = false;
            let mut unbounded_hi = false;
            for rec in &records {
                let Some(t) = rec.region.dims.get(d) else { continue };
                match t.lb.as_const() {
                    Some(c) => lo = Some(lo.map_or(c, |x: i64| x.min(c))),
                    None => unbounded_lo = true,
                }
                match t.ub.as_const() {
                    Some(c) => hi = Some(hi.map_or(c, |x: i64| x.max(c))),
                    None => unbounded_hi = true,
                }
            }
            if !unbounded_lo {
                if let Some(lo) = lo {
                    if dyn_region.min[d] < lo {
                        out.push(Violation {
                            proc,
                            array,
                            mode,
                            detail: format!(
                                "dim {d}: dynamic min {} below static lb {}",
                                dyn_region.min[d], lo
                            ),
                        });
                    }
                }
            }
            if !unbounded_hi {
                if let Some(hi) = hi {
                    if dyn_region.max[d] > hi {
                        out.push(Violation {
                            proc,
                            array,
                            mode,
                            detail: format!(
                                "dim {d}: dynamic max {} above static ub {}",
                                dyn_region.max[d], hi
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// A rendered dynamic-region report, in Dragon table spirit.
pub fn render_report(program: &Program, dynamic: &DynamicSummary) -> String {
    let mut out = String::from("proc | array | mode | region (dynamic) | accesses\n");
    for (&(proc, array, mode), region) in dynamic.groups() {
        out.push_str(&format!(
            "{} | {} | {} | {} | {}\n",
            program.name_of(program.procedure(proc).name),
            program.name_of(program.symbols.get(array).name),
            match mode {
                DynMode::Read => "READ",
                DynMode::Write => "WRITE",
            },
            region.render(),
            region.count
        ));
    }
    out
}

/// Convenience: execute + validate in one call, panicking on violations
/// (used by tests and the validation example).
pub fn check_analysis(analysis: &crate::Analysis, entry: &str, limits: Limits) -> Result<DynamicSummary> {
    let dynamic = run_dynamic(&analysis.program, entry, limits)?;
    let violations = validate_against_static(&analysis.program, &analysis.ipa, &dynamic);
    if !violations.is_empty() {
        let mut msg = String::from("static summary failed to cover dynamic accesses:\n");
        for v in violations.iter().take(10) {
            msg.push_str(&format!(
                "  {} / {} ({:?}): {}\n",
                v.proc.as_usize(),
                program_name(analysis, v.array),
                v.mode,
                v.detail
            ));
        }
        return Err(support::Error::Analysis(msg));
    }
    Ok(dynamic)
}

fn program_name(analysis: &crate::Analysis, st: StIdx) -> String {
    analysis
        .program
        .name_of(analysis.program.symbols.get(st).name)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analysis, AnalysisOptions};

    fn analyze(srcs: Vec<workloads::GenSource>) -> Analysis {
        Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap()
    }

    #[test]
    fn matrix_dynamic_regions_match_fig9() {
        let a = analyze(vec![workloads::fig10::source()]);
        let dynamic =
            run_dynamic(&a.program, "main", Limits::default()).unwrap();
        let main = a.program.find_procedure("main").unwrap();
        let aarr = a
            .program
            .symbols
            .find(a.program.interner.get("aarr").unwrap())
            .unwrap();
        let writes = dynamic.get(main, aarr, DynMode::Write).unwrap();
        // DEF hull: (0:7) ∪ (1:8) = 0..8, 16 writes.
        assert_eq!((writes.min[0], writes.max[0]), (0, 8));
        assert_eq!(writes.count, 16);
        let reads = dynamic.get(main, aarr, DynMode::Read).unwrap();
        // USE hull: two reads per i in 0..=7 plus the strided loop: 0..7.
        assert_eq!((reads.min[0], reads.max[0]), (0, 7));
        assert_eq!(reads.count, 16 + 3);
    }

    #[test]
    fn matrix_execution_computes_correct_values() {
        let a = analyze(vec![workloads::fig10::source()]);
        let mut interp = whirl::interp::Interp::new(
            &a.program,
            whirl::interp::NullSink,
            Limits::default(),
        );
        interp.run("main").unwrap();
        let aarr = a
            .program
            .symbols
            .find(a.program.interner.get("aarr").unwrap())
            .unwrap();
        // aarr[i] = i, then aarr[i+1] = 2*aarr[i]: 0,1,2,... then doubling
        // cascade: aarr = [0, 0, 0, ...]? Walk it: loop1 sets aarr[i]=i for
        // 0..=7. loop2: aarr[i+1] = aarr[i]+aarr[i] for i=0..=7:
        // aarr[1]=0, aarr[2]=0, ... all zeros after the cascade.
        for i in 1..=8 {
            assert_eq!(interp.peek(aarr, &[i]), Some(0.0), "aarr[{i}]");
        }
        assert_eq!(interp.peek(aarr, &[0]), Some(0.0));
        assert_eq!(interp.peek(aarr, &[9]), Some(0.0), "untouched tail");
    }

    #[test]
    fn static_covers_dynamic_for_matrix() {
        let a = analyze(vec![workloads::fig10::source()]);
        let dynamic = check_analysis(&a, "main", Limits::default()).unwrap();
        assert!(dynamic.total_accesses > 0);
    }

    #[test]
    fn static_covers_dynamic_for_tiny_lu() {
        let srcs =
            workloads::mini_lu::sources_scaled(workloads::mini_lu::LuConfig::tiny());
        let a = analyze(srcs);
        let dynamic = check_analysis(&a, "applu", Limits::default()).unwrap();
        assert!(dynamic.total_accesses > 1000, "{}", dynamic.total_accesses);
    }

    #[test]
    fn rhs_dynamic_region_matches_static_shape() {
        let srcs =
            workloads::mini_lu::sources_scaled(workloads::mini_lu::LuConfig::tiny());
        let a = analyze(srcs);
        let dynamic = run_dynamic(&a.program, "applu", Limits::default()).unwrap();
        let rhs = a.program.find_procedure("rhs").unwrap();
        let u = a
            .program
            .symbols
            .find(a.program.interner.get("u").unwrap())
            .unwrap();
        let reads = dynamic.get(rhs, u, DynMode::Read).unwrap();
        // H order (reversed source dims): last-dim planes 0..3, k 0..9,
        // j 0..4, i 0..2.
        assert_eq!(reads.min, vec![0, 0, 0, 0]);
        assert_eq!(reads.max, vec![3, 9, 4, 2]);
    }

    #[test]
    fn dynamic_stride_detected() {
        let a = analyze(vec![workloads::GenSource::fortran(
            "s.f",
            "program main\n  real a(20)\n  common /g/ a\n  integer i\n  do i = 2, 10, 2\n    a(i) = 1.0\n  end do\nend\n",
        )]);
        let dynamic = run_dynamic(&a.program, "main", Limits::default()).unwrap();
        let main = a.program.find_procedure("main").unwrap();
        let arr = a
            .program
            .symbols
            .find(a.program.interner.get("a").unwrap())
            .unwrap();
        let writes = dynamic.get(main, arr, DynMode::Write).unwrap();
        assert_eq!(writes.stride, vec![2], "dynamic stride gcd");
        assert_eq!(writes.render(), "(1:9:2)");
    }

    #[test]
    fn fuel_limit_aborts_runaway() {
        let a = analyze(vec![workloads::GenSource::fortran(
            "s.f",
            "program main\n  integer i\n  do i = 1, 1000000\n    i = i\n  end do\nend\n",
        )]);
        let err = run_dynamic(&a.program, "main", Limits { fuel: 1000, max_depth: 8 });
        assert!(err.is_err());
    }

    #[test]
    fn recursion_hits_depth_limit() {
        let a = analyze(vec![workloads::GenSource::fortran(
            "r.f",
            "program main\n  call r\nend\nsubroutine r\n  call r\nend\n",
        )]);
        let err = run_dynamic(&a.program, "main", Limits { fuel: 1_000_000, max_depth: 16 })
            .unwrap_err();
        assert!(err.to_string().contains("call depth"), "{err}");
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let a = analyze(vec![workloads::GenSource::fortran(
            "s.f",
            "program main\n  real a(5)\n  common /g/ a\n  integer i\n  do i = 1, 9\n    a(i) = 1.0\n  end do\nend\n",
        )]);
        let err = run_dynamic(&a.program, "main", Limits::default()).unwrap_err();
        assert!(err.to_string().contains("out-of-bounds"), "{err}");
    }

    #[test]
    fn render_report_lists_groups() {
        let a = analyze(vec![workloads::fig10::source()]);
        let dynamic = run_dynamic(&a.program, "main", Limits::default()).unwrap();
        let report = render_report(&a.program, &dynamic);
        assert!(report.contains("aarr"));
        assert!(report.contains("WRITE"));
        assert!(report.contains("READ"));
    }
}
