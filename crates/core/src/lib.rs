//! `araa` — the paper's core contribution: interprocedural array-region
//! analysis extraction (Algorithm 1) and the `.rgn`/`.dgn`/`.cfg` exports.
//!
//! "OpenUH IPA optimization phase was extended in a way that merges the
//! array region analysis module with the WHIRL-Tree in order to extract the
//! array information interprocedurally and store them in a plain file."
//!
//! Pipeline (see [`driver::Analysis::analyze`] for one-shot runs and
//! [`session::AnalysisSession`] for incremental re-analysis):
//!
//! 1. [`frontend`] compiles Fortran/C sources to H WHIRL with a static data
//!    layout;
//! 2. [`ipa`] builds the call graph, gathers per-procedure summaries (IPL)
//!    and propagates them (IPA);
//! 3. [`extract`] walks the call graph pre-order (Algorithm 1), converting
//!    each summarized region into a [`row::RgnRow`] with source-language
//!    bounds, reference counts, array attributes and the access density
//!    `AD(array, mode) = references / size_bytes` (displayed as a truncated
//!    percentage);
//! 4. [`rgn`]/[`dgn`]/[`cfg`](mod@cfg) serialize the artifacts the Dragon tool loads.

pub mod cfg;
pub mod dgn;
pub mod driver;
pub mod dynamic;
pub mod extract;
pub mod rgn;
pub mod row;
pub mod session;

pub use driver::{Analysis, AnalysisOptions, AnalysisOptionsBuilder, Degradation};
pub use extract::{extract_rows, extract_rows_isolated, ExtractOptions};
pub use row::RgnRow;
pub use session::{AnalysisDelta, AnalysisSession, CacheStats, SessionStore, VerifyReport};
