//! Per-procedure control-flow graphs (the `.cfg` export).
//!
//! Dragon's feature list includes "control flow graphs for each procedure";
//! OpenUH's `CFG IPL` module "was previously added at the high levels of
//! WHIRL ... to export control flow analysis results". We build a
//! basic-block CFG from the structured H WHIRL tree: straight-line
//! statements group into blocks, `DO_LOOP` contributes header/body/exit with
//! a back edge, `IF` contributes a branch and a join.

use support::idx::IndexVec;
use whirl::{Opr, Procedure, WnId};

support::define_idx! {
    /// A basic block id.
    pub struct BlockId;
}

/// One basic block.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// Statement nodes in the block, in order.
    pub stmts: Vec<WnId>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// A display label (`entry`, `loop hdr`, ...).
    pub label: String,
}

/// A control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    blocks: IndexVec<BlockId, BasicBlock>,
    entry: BlockId,
    exit: BlockId,
}

impl Cfg {
    /// Builds the CFG of one procedure.
    pub fn build(proc: &Procedure) -> Cfg {
        let mut b = Builder { tree: &proc.tree, blocks: IndexVec::new() };
        let entry = b.new_block("entry");
        let exit_placeholder = None::<BlockId>;
        let mut last = entry;
        if let Some(root) = proc.tree.root() {
            if let Some(&body) = proc.tree.node(root).kids.last() {
                last = b.walk_block(body, entry);
            }
        }
        let exit = b.new_block("exit");
        b.blocks[last].succs.push(exit);
        let _ = exit_placeholder;
        Cfg { blocks: b.blocks, entry, exit }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The exit block.
    pub fn exit(&self) -> BlockId {
        self.exit
    }

    /// Block lookup.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id]
    }

    /// All edges `(from, to)`.
    pub fn edges(&self) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        for (id, blk) in self.blocks.iter_enumerated() {
            for &s in &blk.succs {
                out.push((id, s));
            }
        }
        out
    }

    /// True when the graph contains a cycle (a loop).
    pub fn has_cycle(&self) -> bool {
        let n = self.blocks.len();
        let mut state = vec![0u8; n];
        fn dfs(cfg: &Cfg, id: BlockId, state: &mut [u8]) -> bool {
            use support::idx::Idx;
            match state[id.as_usize()] {
                1 => return true,
                2 => return false,
                _ => {}
            }
            state[id.as_usize()] = 1;
            for &s in &cfg.blocks[id].succs {
                if dfs(cfg, s, state) {
                    return true;
                }
            }
            state[id.as_usize()] = 2;
            false
        }
        dfs(self, self.entry, &mut state)
    }

    /// Graphviz DOT rendering.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = format!("digraph cfg_{name} {{\n  node [shape=box];\n");
        for (id, blk) in self.blocks.iter_enumerated() {
            out.push_str(&format!(
                "  b{} [label=\"{} ({} stmts)\"];\n",
                id.0,
                blk.label,
                blk.stmts.len()
            ));
        }
        for (from, to) in self.edges() {
            out.push_str(&format!("  b{} -> b{};\n", from.0, to.0));
        }
        out.push_str("}\n");
        out
    }
}

struct Builder<'a> {
    tree: &'a whirl::WhirlTree,
    blocks: IndexVec<BlockId, BasicBlock>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self, label: &str) -> BlockId {
        self.blocks.push(BasicBlock { label: label.to_string(), ..Default::default() })
    }

    /// Walks the statements of a WHIRL `Block`, starting in `current`;
    /// returns the block control falls out of.
    fn walk_block(&mut self, block: WnId, mut current: BlockId) -> BlockId {
        let kids = self.tree.node(block).kids.clone();
        for stmt in kids {
            current = self.walk_stmt(stmt, current);
        }
        current
    }

    fn walk_stmt(&mut self, stmt: WnId, current: BlockId) -> BlockId {
        match self.tree.node(stmt).operator {
            Opr::DoLoop => {
                let header = self.new_block("loop hdr");
                self.blocks[header].stmts.push(stmt);
                self.blocks[current].succs.push(header);
                let body_entry = self.new_block("loop body");
                self.blocks[header].succs.push(body_entry);
                let body = self.tree.node(stmt).kids[3];
                let body_end = self.walk_block(body, body_entry);
                // Back edge and exit.
                self.blocks[body_end].succs.push(header);
                let after = self.new_block("loop exit");
                self.blocks[header].succs.push(after);
                after
            }
            Opr::If => {
                self.blocks[current].stmts.push(stmt);
                let then_entry = self.new_block("then");
                let else_entry = self.new_block("else");
                self.blocks[current].succs.push(then_entry);
                self.blocks[current].succs.push(else_entry);
                let node = self.tree.node(stmt);
                let (t, e) = (node.kids[1], node.kids[2]);
                let t_end = self.walk_block(t, then_entry);
                let e_end = self.walk_block(e, else_entry);
                let join = self.new_block("join");
                self.blocks[t_end].succs.push(join);
                self.blocks[e_end].succs.push(join);
                join
            }
            _ => {
                self.blocks[current].stmts.push(stmt);
                current
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn cfg_of(src: &str) -> Cfg {
        let p = compile_to_h(&[SourceFile::new("t.f", src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap();
        let id = p.find_procedure("s").unwrap();
        Cfg::build(p.procedure(id))
    }

    #[test]
    fn straight_line_is_two_blocks_one_edge() {
        let cfg = cfg_of("subroutine s\n  integer i\n  i = 1\n  i = 2\nend\n");
        assert_eq!(cfg.block_count(), 2); // entry + exit
        assert_eq!(cfg.edges().len(), 1);
        assert!(!cfg.has_cycle());
        assert_eq!(cfg.block(cfg.entry()).stmts.len(), 2);
    }

    #[test]
    fn loop_introduces_cycle() {
        let cfg = cfg_of(
            "subroutine s\n  real a(5)\n  integer i\n  do i = 1, 5\n    a(i) = 0.0\n  end do\nend\n",
        );
        assert!(cfg.has_cycle());
        // entry, header, body, loop-exit, exit.
        assert_eq!(cfg.block_count(), 5);
    }

    #[test]
    fn if_produces_branch_and_join() {
        let cfg = cfg_of(
            "subroutine s\n  integer i\n  if (i .le. 2) then\n    i = 1\n  else\n    i = 2\n  end if\nend\n",
        );
        assert!(!cfg.has_cycle());
        // entry, then, else, join, exit.
        assert_eq!(cfg.block_count(), 5);
        // The entry block branches two ways.
        assert_eq!(cfg.block(cfg.entry()).succs.len(), 2);
    }

    #[test]
    fn nested_loops_nest_cycles() {
        let cfg = cfg_of(
            "\
subroutine s
  real a(5, 5)
  integer i, j
  do i = 1, 5
    do j = 1, 5
      a(i, j) = 0.0
    end do
  end do
end
",
        );
        assert!(cfg.has_cycle());
        assert!(cfg.block_count() >= 7);
    }

    #[test]
    fn dot_render() {
        let cfg = cfg_of("subroutine s\n  integer i\n  i = 1\nend\n");
        let dot = cfg.to_dot("s");
        assert!(dot.starts_with("digraph cfg_s {"));
        assert!(dot.contains("entry"));
        assert!(dot.contains("exit"));
    }

    #[test]
    fn exit_is_reachable() {
        let cfg = cfg_of("subroutine s\n  integer i\n  do i = 1, 3\n    i = i\n  end do\nend\n");
        let edges = cfg.edges();
        assert!(edges.iter().any(|&(_, to)| to == cfg.exit()));
    }
}
