//! Algorithm 1: array-analysis extraction.
//!
//! "We first traverse the call graph cg (pre-order) in which each node
//! (ipan) consists of: procedure which the node represents, symbol table
//! index information and file header information from which the array
//! regions information can be obtained per each source file based on the
//! access mode. ... We iterate each region to extract the bounds information
//! represented by [LB, UB, Stride]. Then, we iterate the WHIRL tree ... We
//! check whether the operator of the wn is an OPR_ARRAY."
//!
//! This module turns an [`ipa::IpaResult`] into the `.rgn` rows the Dragon
//! tool consumes, converting the compiler-level regions (row-major,
//! zero-based) back into source-language bounds — the adjustment the paper
//! performs "to make our tool aware of the application's source code
//! language, and to fulfill our goal of showing the actual bounds".

use crate::row::RgnRow;
use ipa::callgraph::display_name;
use ipa::{AccessRecord, CallGraph, IpaResult};
use regions::access::AccessMode;
use regions::space::Space;
use regions::triplet::{Bound, Triplet};
use std::collections::BTreeMap;
use support::idx::Idx;
use whirl::lower::source_dim;
use whirl::{ProcId, Program, StClass, StIdx};

/// Extraction options.
#[derive(Debug, Clone, Copy)]
pub struct ExtractOptions {
    /// Include interprocedurally-propagated rows (`from_call` records).
    pub include_propagated: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions { include_propagated: true }
    }
}

/// Runs Algorithm 1 over an analyzed program, producing one row per region
/// per access mode, in call-graph pre-order.
pub fn extract_rows(
    program: &Program,
    cg: &CallGraph,
    ipa: &IpaResult,
    opts: ExtractOptions,
) -> Vec<RgnRow> {
    let formal_addr = resolve_formal_addresses(program, cg);
    let mut rows = Vec::new();
    for proc_id in cg.pre_order() {
        rows.extend(extract_proc_rows(
            program,
            proc_id,
            ipa.summary(proc_id),
            opts,
            &formal_addr,
        ));
    }
    rows
}

/// Like [`extract_rows`], but with per-procedure panic containment: a
/// failure while building one procedure's rows drops only that procedure
/// (reported in the failure list), never the whole table.
pub fn extract_rows_isolated(
    program: &Program,
    cg: &CallGraph,
    ipa: &IpaResult,
    opts: ExtractOptions,
) -> (Vec<RgnRow>, Vec<(Option<ProcId>, String)>) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut failures: Vec<(Option<ProcId>, String)> = Vec::new();
    let formal_addr = match catch_unwind(AssertUnwindSafe(|| {
        resolve_formal_addresses(program, cg)
    })) {
        Ok(m) => m,
        Err(payload) => {
            // Addresses degrade to 0; the rows themselves are unaffected.
            failures.push((None, ipa::isolate::panic_message(payload.as_ref())));
            BTreeMap::new()
        }
    };
    let mut rows = Vec::new();
    for proc_id in cg.pre_order() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            extract_proc_rows(program, proc_id, ipa.summary(proc_id), opts, &formal_addr)
        }));
        match result {
            Ok(proc_rows) => rows.extend(proc_rows),
            Err(payload) => {
                failures
                    .push((Some(proc_id), ipa::isolate::panic_message(payload.as_ref())));
            }
        }
    }
    (rows, failures)
}

/// Builds the rows of one procedure's scope. Crate-visible so the
/// incremental session can re-extract exactly the affected procedures.
pub(crate) fn extract_proc_rows(
    program: &Program,
    proc_id: ProcId,
    summary: &ipa::ProcSummary,
    opts: ExtractOptions,
    formal_addr: &BTreeMap<StIdx, u64>,
) -> Vec<RgnRow> {
    support::faultpoint::hit("extract::rows");
    // References column: total per (array, mode, via, locality) within
    // this scope — remote (coindexed) accesses count separately from
    // local ones so the PGAS view stays meaningful.
    let mut ref_totals: BTreeMap<(StIdx, AccessMode, Option<ProcId>, bool), u64> =
        BTreeMap::new();
    // Line range per group: the span of source lines the references cover,
    // so each row can anchor tools (lint, browse) to first and last sighting.
    let mut line_spans: BTreeMap<(StIdx, AccessMode, Option<ProcId>, bool), (u32, u32)> =
        BTreeMap::new();
    for rec in &summary.accesses {
        let key = (rec.array, rec.mode, rec.from_call, rec.remote);
        *ref_totals.entry(key).or_insert(0) += 1;
        line_spans
            .entry(key)
            .and_modify(|(lo, hi)| {
                *lo = (*lo).min(rec.line);
                *hi = (*hi).max(rec.line);
            })
            .or_insert((rec.line, rec.line));
    }
    let mut rows = Vec::new();
    for rec in &summary.accesses {
        if rec.from_call.is_some() && !opts.include_propagated {
            continue;
        }
        let key = (rec.array, rec.mode, rec.from_call, rec.remote);
        let refs = ref_totals[&key];
        let span = line_spans[&key];
        rows.push(build_row(program, proc_id, rec, refs, span, formal_addr));
    }
    rows
}

/// Maps each formal array symbol to a display address: when every call site
/// binds the same actual array, the formal shows the actual's address (the
/// paper's Fig. 12 shows `xcr`'s rows in `verify` carrying the caller
/// array's address `b79edfa0`). Ambiguous or unbound formals show 0.
pub(crate) fn resolve_formal_addresses(
    program: &Program,
    cg: &CallGraph,
) -> BTreeMap<StIdx, u64> {
    let mut bindings: BTreeMap<StIdx, Option<u64>> = BTreeMap::new();
    for caller in (0..cg.size()).map(ProcId::from_usize) {
        for site in cg.calls(caller) {
            let callee = program.procedure(site.callee);
            for (pos, &formal) in callee.formals.iter().enumerate() {
                let Some(actual) = site.array_actuals.get(pos).copied().flatten() else {
                    continue;
                };
                let mut addr = program.symbols.get(actual).address;
                if addr == 0 {
                    // The actual is itself a formal: follow one level.
                    addr = *bindings
                        .get(&actual)
                        .and_then(|o| o.as_ref())
                        .unwrap_or(&0);
                }
                match bindings.get(&formal) {
                    None => {
                        bindings.insert(formal, Some(addr));
                    }
                    Some(Some(prev)) if *prev != addr => {
                        bindings.insert(formal, None); // ambiguous
                    }
                    _ => {}
                }
            }
        }
    }
    bindings
        .into_iter()
        .filter_map(|(st, a)| a.map(|a| (st, a)))
        .collect()
}

fn build_row(
    program: &Program,
    proc_id: ProcId,
    rec: &AccessRecord,
    refs: u64,
    (first_line, last_line): (u32, u32),
    formal_addr: &BTreeMap<StIdx, u64>,
) -> RgnRow {
    let proc = program.procedure(proc_id);
    let entry = program.symbols.get(rec.array);
    let ty = entry.ty;
    let array = program.name_of(entry.name).to_string();
    let lang = proc.lang;

    // File column: local rows name this procedure's object file; propagated
    // rows name the callee's (that is where the access physically is).
    let file = match rec.from_call {
        Some(callee) => program.procedure(callee).object_file(&program.interner),
        None => proc.object_file(&program.interner),
    };

    let declared = program.types.dim_bounds(ty);
    let n = rec.region.ndims();
    // Map H-order (row-major, zero-based) triplets back to source order and
    // source bounds.
    let mut lb_parts = vec![String::new(); n];
    let mut ub_parts = vec![String::new(); n];
    let mut stride_parts = vec![String::new(); n];
    for (hd, trip) in rec.region.dims.iter().enumerate() {
        let sd = source_dim(lang, n, hd);
        let shift = declared.get(sd).map(|b| b.lower_in(lang)).unwrap_or(0);
        let (lb, ub, stride) = shift_triplet(trip, shift);
        lb_parts[sd] = render_bound(&lb, &rec.space, program);
        ub_parts[sd] = render_bound(&ub, &rec.space, program);
        stride_parts[sd] = render_bound(&stride, &rec.space, program);
    }

    let size_bytes = program.types.size_bytes(ty);
    let mem_loc = if entry.class == StClass::Formal {
        formal_addr.get(&rec.array).copied().unwrap_or(0)
    } else {
        entry.address
    };

    RgnRow {
        proc: display_name(program, proc),
        array,
        file,
        mode: rec.mode,
        refs,
        dims: n as u8,
        lb: lb_parts.join("|"),
        ub: ub_parts.join("|"),
        stride: stride_parts.join("|"),
        elem_size: program.types.element_size(ty),
        data_type: program.types.elem_type(ty).display_name().to_string(),
        dim_size: program
            .types
            .dim_sizes(ty)
            .iter()
            .map(i64::to_string)
            .collect::<Vec<_>>()
            .join("|"),
        tot_size: program.types.total_elements(ty),
        size_bytes,
        mem_loc: format!("{mem_loc:x}"),
        acc_density: RgnRow::density(refs, size_bytes),
        via: rec
            .from_call
            .map(|c| program.name_of(program.procedure(c).name).to_string()),
        line: rec.line,
        first_line,
        last_line,
        is_global: entry.class == StClass::Global,
        remote: rec.remote,
        precision: rec.precision,
    }
}

/// Adds the declared lower bound back onto a zero-based triplet.
fn shift_triplet(t: &Triplet, shift: i64) -> (Bound, Bound, Bound) {
    let shift_bound = |b: &Bound| match b {
        Bound::Const(c) => Bound::Const(c + shift),
        Bound::Expr(e) => {
            let mut e = e.clone();
            e.add_constant(shift);
            match e.as_constant() {
                Some(c) => Bound::Const(c),
                None => Bound::Expr(e),
            }
        }
        other => other.clone(),
    };
    (shift_bound(&t.lb), shift_bound(&t.ub), t.stride.clone())
}

fn render_bound(b: &Bound, space: &Space, program: &Program) -> String {
    match b {
        Bound::Const(c) => c.to_string(),
        Bound::Expr(e) => e.render(&|v| space.name(v, &program.interner)),
        Bound::Messy => "MESSY".to_string(),
        Bound::Unprojected => "UNPROJECTED".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    use whirl::Lang;

    fn analyze_c(src: &str) -> (Program, Vec<RgnRow>) {
        let p = compile_to_h(&[SourceFile::new("matrix.c", src, Lang::C)], DEFAULT_LAYOUT_BASE)
            .unwrap();
        let (cg, r) = ipa::analyze(&p);
        let rows = extract_rows(&p, &cg, &r, ExtractOptions::default());
        (p, rows)
    }

    fn analyze_f(name: &str, src: &str) -> (Program, Vec<RgnRow>) {
        let p = compile_to_h(&[SourceFile::new(name, src, Lang::Fortran)], DEFAULT_LAYOUT_BASE)
            .unwrap();
        let (cg, r) = ipa::analyze(&p);
        let rows = extract_rows(&p, &cg, &r, ExtractOptions::default());
        (p, rows)
    }

    #[test]
    fn fig9_rows_regenerated() {
        let matrix = workloads::fig10::source();
        let (_p, rows) = analyze_c(&matrix.text);
        let aarr: Vec<&RgnRow> = rows.iter().filter(|r| r.array == "aarr").collect();
        // 2 DEF rows + 3 USE rows.
        assert_eq!(aarr.len(), 5, "{aarr:#?}");
        let fmt = |r: &RgnRow| {
            format!(
                "{} {} {}:{}:{} e{} {} d{} t{} b{} ad{}",
                r.mode, r.refs, r.lb, r.ub, r.stride, r.elem_size, r.data_type,
                r.dim_size, r.tot_size, r.size_bytes, r.acc_density
            )
        };
        let lines: Vec<String> = aarr.iter().map(|r| fmt(r)).collect();
        // Fig. 9's exact rows.
        assert!(lines.contains(&"DEF 2 0:7:1 e4 int d20 t20 b80 ad2".to_string()), "{lines:#?}");
        assert!(lines.contains(&"DEF 2 1:8:1 e4 int d20 t20 b80 ad2".to_string()), "{lines:#?}");
        assert!(lines.contains(&"USE 3 2:6:2 e4 int d20 t20 b80 ad3".to_string()), "{lines:#?}");
        assert_eq!(
            lines.iter().filter(|l| *l == "USE 3 0:7:1 e4 int d20 t20 b80 ad3").count(),
            2,
            "{lines:#?}"
        );
        // File and memory location columns.
        assert!(aarr.iter().all(|r| r.file == "matrix.o"));
        assert!(aarr.iter().all(|r| r.mem_loc == format!("{DEFAULT_LAYOUT_BASE:x}")));
        assert!(aarr.iter().all(|r| r.is_global));
    }

    #[test]
    fn fortran_bounds_shown_in_source_terms() {
        let (_p, rows) = analyze_f(
            "s.f",
            "\
subroutine s
  double precision a(4, 9)
  common /c/ a
  integer i, j
  do i = 1, 4
    do j = 2, 8
      a(i, j) = 0.0
    end do
  end do
end
",
        );
        let def = rows
            .iter()
            .find(|r| r.array == "a" && r.mode == AccessMode::Def)
            .unwrap();
        // Source order (i-dim first), source bounds (1-based).
        assert_eq!(def.lb, "1|2");
        assert_eq!(def.ub, "4|8");
        assert_eq!(def.stride, "1|1");
        assert_eq!(def.dim_size, "4|9");
        assert_eq!(def.dims, 2);
    }

    #[test]
    fn fig1_propagated_rows_show_source_bounds_and_via() {
        let fig1 = workloads::fig1::source();
        let (_p, rows) = analyze_f(&fig1.name, &fig1.text);
        let add_rows: Vec<&RgnRow> =
            rows.iter().filter(|r| r.proc == "add" && r.via.is_some()).collect();
        assert_eq!(add_rows.len(), 2);
        let idef = add_rows.iter().find(|r| r.mode == AccessMode::Def).unwrap();
        assert_eq!(idef.display_mode(), "IDEF");
        assert_eq!((idef.lb.as_str(), idef.ub.as_str()), ("1|1", "100|100"));
        assert_eq!(idef.via.as_deref(), Some("p1"));
        assert_eq!(idef.file, "fig1.o", "propagated row names the callee's file");
        let iuse = add_rows.iter().find(|r| r.mode == AccessMode::Use).unwrap();
        assert_eq!((iuse.lb.as_str(), iuse.ub.as_str()), ("101|101", "200|200"));
    }

    #[test]
    fn formal_rows_resolve_unique_actual_address() {
        let (p, rows) = analyze_f(
            "v.f",
            "\
program main
  double precision xcr(5)
  call verify(xcr)
end
subroutine verify(xcr)
  double precision xcr(5)
  double precision t
  integer m
  do m = 1, 5
    t = xcr(m)
  end do
end
",
        );
        let formal = rows
            .iter()
            .find(|r| r.proc == "verify" && r.mode == AccessMode::Formal)
            .unwrap();
        // The formal displays the actual's (main's local xcr) address.
        let sym = p.interner.get("xcr").unwrap();
        let actual_st = p
            .symbols
            .iter()
            .find(|(_, e)| e.name == sym && e.class == StClass::Local)
            .map(|(i, _)| i)
            .unwrap();
        let expect = format!("{:x}", p.symbols.get(actual_st).address);
        assert_eq!(formal.mem_loc, expect);
        assert_ne!(formal.mem_loc, "0");
        // The USE rows in verify share it.
        let uses: Vec<&RgnRow> = rows
            .iter()
            .filter(|r| r.proc == "verify" && r.mode == AccessMode::Use)
            .collect();
        assert!(!uses.is_empty());
        assert!(uses.iter().all(|r| r.mem_loc == expect));
    }

    #[test]
    fn symbolic_upper_bound_renders_variable_name() {
        let (_p, rows) = analyze_f(
            "s.f",
            "\
subroutine s(n)
  double precision a(100)
  common /c/ a
  integer n, i
  do i = 1, n
    a(i) = 0.0
  end do
end
",
        );
        let def = rows
            .iter()
            .find(|r| r.array == "a" && r.mode == AccessMode::Def)
            .unwrap();
        assert_eq!(def.lb, "1");
        assert_eq!(def.ub, "$n", "zero-based n-1 shifts back to n");
    }

    #[test]
    fn propagation_can_be_disabled() {
        let fig1 = workloads::fig1::source();
        let p = compile_to_h(
            &[SourceFile::new(&fig1.name, &fig1.text, Lang::Fortran)],
            DEFAULT_LAYOUT_BASE,
        )
        .unwrap();
        let (cg, r) = ipa::analyze(&p);
        let rows =
            extract_rows(&p, &cg, &r, ExtractOptions { include_propagated: false });
        assert!(rows.iter().all(|row| row.via.is_none()));
    }

    #[test]
    fn line_span_covers_first_and_last_reference() {
        // aarr USE references sit on three lines (8, 8, 12 in matrix.c);
        // the row's span must run from the first to the last sighting.
        let matrix = workloads::fig10::source();
        let (_p, rows) = analyze_c(&matrix.text);
        let uses: Vec<&RgnRow> = rows
            .iter()
            .filter(|r| r.array == "aarr" && r.mode == AccessMode::Use)
            .collect();
        assert!(!uses.is_empty());
        let span = (uses[0].first_line, uses[0].last_line);
        assert!(span.0 <= span.1);
        assert!(uses.iter().all(|r| (r.first_line, r.last_line) == span));
        // The span is shared per (array, mode): it covers every USE line,
        // so it must extend beyond any single row's own anchor line.
        assert!(uses.iter().all(|r| span.0 <= r.line && r.line <= span.1));
        assert!(span.0 < span.1, "uses span multiple source lines: {span:?}");
        // Single-line groups collapse to a point span.
        let defs: Vec<&RgnRow> = rows
            .iter()
            .filter(|r| r.array == "aarr" && r.mode == AccessMode::Def)
            .collect();
        assert!(defs.iter().all(|r| r.first_line <= r.last_line));
    }

    #[test]
    fn rows_emitted_in_call_graph_pre_order() {
        let (p, rows) = analyze_f(
            "o.f",
            "\
program main
  real a(5)
  common /c/ a
  a(1) = 0.0
  call leaf
end
subroutine leaf
  real a(5)
  common /c/ a
  a(2) = 0.0
end
",
        );
        let _ = p;
        let first_main = rows.iter().position(|r| r.proc == "MAIN__").unwrap();
        let first_leaf = rows.iter().position(|r| r.proc == "leaf").unwrap();
        assert!(first_main < first_leaf);
    }
}
