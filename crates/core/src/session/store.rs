//! On-disk persistence for [`AnalysisSession`]: the crash-safe cache under
//! `--cache-dir`.
//!
//! # Layout
//!
//! ```text
//! <cache-dir>/
//!   LOCK              advisory lock (owner pid; stale locks taken over)
//!   manifest.araa     container: sources + per-procedure entry index
//!   e<checksum>.araa  immutable content-addressed per-procedure entries
//!   quarantine/       rejected files, renamed aside — never deleted blind
//! ```
//!
//! Every file is a [`support::persist`] container (magic, format version,
//! kind, toolchain+options fingerprint, payload, checksum footer) written
//! through [`atomic_write`]. Entry files are *content-addressed*: named by
//! the FNV-1a checksum of their full container bytes and never modified in
//! place. A save writes any new entry files first, then atomically renames
//! the new manifest over the old one, then garbage-collects entries the new
//! manifest no longer references. A crash at any instant therefore leaves
//! either the old manifest with all of its entries, or the new manifest
//! with all of its entries — never a mix.
//!
//! # Load = prime, `update` = recompute
//!
//! [`AnalysisSession::load`] does no analysis. It re-parses the manifest's
//! stored sources (deterministic — the rebuilt `Program` is bit-identical
//! to the one the cache was saved against), validates every per-procedure
//! entry (fingerprint, container checksum, manifest binding), and installs
//! a session state holding the validated subset. The next
//! [`AnalysisSession::update`] then runs the ordinary incremental
//! machinery: procedures with a validated entry are verified cache hits,
//! anything rejected is simply *dirty* and recomputed cold — exactly the
//! affected procedures, nothing else. Warm-from-disk results are thereby
//! byte-identical to cold runs by construction, because both go through the
//! same (oracle-tested) update path.
//!
//! Any rejected file is moved into `quarantine/` (suffixed with the failure
//! class) and recorded as a cache [`Degradation`] retrievable via
//! [`AnalysisSession::cache_incidents`] — corruption degrades precision of
//! nothing and costs only recomputation, and the evidence stays on disk.

use super::{file_key, raw_name, AnalysisSession, SessionState};
use crate::driver::{Analysis, AnalysisOptions, Degradation};
use crate::row::RgnRow;
use frontend::{parse_source_with_recovery, SourceFile};
use ipa::callgraph::CallGraph;
use ipa::{IpaResult, ProcSummary};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::Duration;
use support::faultpoint;
use support::hash::{fnv1a, StableHasher};
use support::idx::Idx;
use support::persist::{
    atomic_write, quarantine_file, quarantine_suffix, read_container, read_container_loose,
    read_file_raw, toolchain_fingerprint, write_container, ByteReader, ByteWriter, DirLock,
    Persist,
};
use support::{Error, Result};
use whirl::hash::{budget_salt, proc_fingerprint};
use whirl::ProcId;

/// Manifest file name inside a cache directory.
pub const MANIFEST_FILE: &str = "manifest.araa";
/// Stats-snapshot file name inside a cache directory (see
/// [`SessionStore::stats`]).
pub const STATS_FILE: &str = "stats.araa";
/// Container kind tag of the manifest.
const KIND_MANIFEST: &str = "araa-session-manifest";
/// Container kind tag of per-procedure entries.
const KIND_ENTRY: &str = "araa-session-entry";
/// Container kind tag of the stats snapshot.
const KIND_STATS: &str = "araa-session-stats";
/// How long a session waits for a live lock holder before degrading to
/// cache-less operation.
const LOCK_WAIT: Duration = Duration::from_secs(5);

fn entry_name(checksum: u64) -> String {
    format!("e{checksum:016x}.araa")
}

fn is_entry_name(name: &str) -> bool {
    name.len() == 22 && name.starts_with('e') && name.ends_with(".araa")
}

fn cache_incident(detail: String) -> Degradation {
    Degradation { proc: "(cache)".to_string(), stage: "cache".to_string(), detail }
}

// ---------------------------------------------------------------------------
// Codec for the core-owned persisted types
// ---------------------------------------------------------------------------

impl Persist for Degradation {
    fn save(&self, w: &mut ByteWriter) {
        w.str(&self.proc);
        w.str(&self.stage);
        w.str(&self.detail);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Degradation { proc: r.str()?, stage: r.str()?, detail: r.str()? })
    }
}

impl Persist for RgnRow {
    fn save(&self, w: &mut ByteWriter) {
        w.str(&self.proc);
        w.str(&self.array);
        w.str(&self.file);
        self.mode.save(w);
        w.u64(self.refs);
        w.u8(self.dims);
        w.str(&self.lb);
        w.str(&self.ub);
        w.str(&self.stride);
        w.i64(self.elem_size);
        w.str(&self.data_type);
        w.str(&self.dim_size);
        w.i64(self.tot_size);
        w.i64(self.size_bytes);
        w.str(&self.mem_loc);
        w.i64(self.acc_density);
        self.via.save(w);
        w.u32(self.line);
        w.u32(self.first_line);
        w.u32(self.last_line);
        w.bool(self.is_global);
        w.bool(self.remote);
        self.precision.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(RgnRow {
            proc: r.str()?,
            array: r.str()?,
            file: r.str()?,
            mode: Persist::load(r)?,
            refs: r.u64()?,
            dims: r.u8()?,
            lb: r.str()?,
            ub: r.str()?,
            stride: r.str()?,
            elem_size: r.i64()?,
            data_type: r.str()?,
            dim_size: r.str()?,
            tot_size: r.i64()?,
            size_bytes: r.i64()?,
            mem_loc: r.str()?,
            acc_density: r.i64()?,
            via: Persist::load(r)?,
            line: r.u32()?,
            first_line: r.u32()?,
            last_line: r.u32()?,
            is_global: r.bool()?,
            remote: r.bool()?,
            precision: Persist::load(r)?,
        })
    }
}

/// One manifest line: procedure name, its content fingerprint, and the
/// checksum (= file name) of its entry container.
struct ManifestEntry {
    proc: String,
    fp: u64,
    checksum: u64,
}

impl Persist for ManifestEntry {
    fn save(&self, w: &mut ByteWriter) {
        w.str(&self.proc);
        w.u64(self.fp);
        w.u64(self.checksum);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(ManifestEntry { proc: r.str()?, fp: r.u64()?, checksum: r.u64()? })
    }
}

/// The manifest payload: everything needed to rebuild a session state given
/// the per-procedure entry files.
struct Manifest {
    sources: Vec<SourceFile>,
    entries: Vec<ManifestEntry>,
    extract_env: Option<u64>,
    recursion_cut: bool,
    prop_degr: Vec<Degradation>,
    degradations: Vec<Degradation>,
}

impl Persist for Manifest {
    fn save(&self, w: &mut ByteWriter) {
        self.sources.save(w);
        self.entries.save(w);
        self.extract_env.save(w);
        w.bool(self.recursion_cut);
        self.prop_degr.save(w);
        self.degradations.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Manifest {
            sources: Vec::load(r)?,
            entries: Vec::load(r)?,
            extract_env: Persist::load(r)?,
            recursion_cut: r.bool()?,
            prop_degr: Vec::load(r)?,
            degradations: Vec::load(r)?,
        })
    }
}

/// One per-procedure cache entry: everything [`SessionState`] holds for a
/// single procedure.
struct Entry {
    local: ProcSummary,
    propagated: ProcSummary,
    rows: Vec<RgnRow>,
    ipl_fail: Option<(String, String)>,
    extract_fail: Option<String>,
}

impl Persist for Entry {
    fn save(&self, w: &mut ByteWriter) {
        self.local.save(w);
        self.propagated.save(w);
        self.rows.save(w);
        self.ipl_fail.save(w);
        self.extract_fail.save(w);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(Entry {
            local: Persist::load(r)?,
            propagated: Persist::load(r)?,
            rows: Vec::load(r)?,
            ipl_fail: Persist::load(r)?,
            extract_fail: Persist::load(r)?,
        })
    }
}

fn decode<T: Persist>(payload: &[u8]) -> Result<T> {
    let mut r = ByteReader::new(payload);
    let v = T::load(&mut r)?;
    r.finish()?;
    Ok(v)
}

// ---------------------------------------------------------------------------
// SessionStore
// ---------------------------------------------------------------------------

/// Handle to one on-disk session cache directory. Carries the directory
/// path and the toolchain+options fingerprint every container in it must
/// match. Cheap to clone; all operations take the directory's advisory
/// lock for their duration.
#[derive(Debug, Clone)]
pub struct SessionStore {
    dir: PathBuf,
    fingerprint: u64,
}

/// What [`SessionStore::stats`] reports.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// A manifest file is present.
    pub manifest: bool,
    /// Procedures indexed by the manifest (0 when absent or unreadable).
    pub procedures: usize,
    /// Source files recorded in the manifest.
    pub sources: usize,
    /// Entry files on disk.
    pub entry_files: usize,
    /// Total bytes across manifest + entry files.
    pub bytes: u64,
    /// Files sitting in `quarantine/`.
    pub quarantined: usize,
    /// These stats were served from the snapshot persisted at the last
    /// save, not from a live directory scan. Not persisted — set by
    /// [`SessionStore::stats`].
    pub from_snapshot: bool,
}

impl Persist for CacheStats {
    fn save(&self, w: &mut ByteWriter) {
        w.bool(self.manifest);
        w.usize(self.procedures);
        w.usize(self.sources);
        w.usize(self.entry_files);
        w.u64(self.bytes);
        w.usize(self.quarantined);
    }
    fn load(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(CacheStats {
            manifest: r.bool()?,
            procedures: r.usize()?,
            sources: r.usize()?,
            entry_files: r.usize()?,
            bytes: r.u64()?,
            quarantined: r.usize()?,
            from_snapshot: false,
        })
    }
}

/// What [`SessionStore::verify`] reports.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Files that validated completely (manifest binding included).
    pub ok: usize,
    /// Entry files on disk that no manifest entry references. Harmless —
    /// a crash between manifest commit and garbage collection leaves
    /// these; the next save sweeps them.
    pub orphans: usize,
    /// Human-readable descriptions of everything that failed validation.
    pub problems: Vec<String>,
}

impl VerifyReport {
    /// True when nothing failed validation.
    pub fn clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// The toolchain+options fingerprint stamped into every container this
/// store writes. Thread count is deliberately excluded: results are
/// deterministic across `threads` (tested), so caches are shareable.
fn store_fingerprint(opts: &AnalysisOptions) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(toolchain_fingerprint());
    h.write_u64(opts.layout_base);
    h.write_u8(u8::from(opts.include_propagated));
    h.write_u64(budget_salt(&opts.budget));
    h.finish()
}

impl SessionStore {
    /// A store rooted at `dir` for sessions running with `opts`.
    pub fn new(dir: impl Into<PathBuf>, opts: &AnalysisOptions) -> Self {
        SessionStore { dir: dir.into(), fingerprint: store_fingerprint(opts) }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fingerprint containers in this store must carry.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn lock(&self) -> Result<DirLock> {
        DirLock::acquire(&self.dir, LOCK_WAIT)
    }

    /// What is in the cache. Served from the stats snapshot persisted at
    /// the last save when one is present *and* still bound to the current
    /// manifest (the snapshot records the manifest container's checksum;
    /// any manifest change invalidates it); otherwise falls back to a live
    /// directory scan. Takes the lock either way so reads are not torn by
    /// a concurrent save.
    pub fn stats(&self) -> Result<CacheStats> {
        let _lock = self.lock()?;
        let stats = match self.read_stats_snapshot() {
            Some(snap) => snap,
            None => self.live_stats()?,
        };
        // Reconcile the live registry with what the store actually holds:
        // the gauge is otherwise only written at save time, so a process
        // that never saved (or a drain that flushed elsewhere) would keep
        // reporting a stale entry count.
        support::obs::set_gauge(
            support::obs::Gauge::StoreEntries,
            stats.entry_files as u64,
        );
        Ok(stats)
    }

    /// The stats snapshot, if present, valid, and bound to the manifest
    /// currently on disk. `None` (never an error) on any mismatch — the
    /// caller then scans live.
    fn read_stats_snapshot(&self) -> Option<CacheStats> {
        let bytes = std::fs::read(self.dir.join(STATS_FILE)).ok()?;
        let payload = read_container(&bytes, KIND_STATS, self.fingerprint).ok()?;
        let mut r = ByteReader::new(&payload);
        let manifest_checksum = r.u64().ok()?;
        let mut stats = CacheStats::load(&mut r).ok()?;
        r.finish().ok()?;
        // Staleness guard: the snapshot describes one specific manifest.
        let manifest_bytes = std::fs::read(self.dir.join(MANIFEST_FILE)).ok()?;
        if fnv1a(&manifest_bytes) != manifest_checksum {
            return None;
        }
        stats.from_snapshot = true;
        Some(stats)
    }

    /// Counts what is on disk by scanning the directory. Caller holds the
    /// lock.
    fn live_stats(&self) -> Result<CacheStats> {
        let mut stats = CacheStats::default();
        let mpath = self.dir.join(MANIFEST_FILE);
        if let Ok(bytes) = std::fs::read(&mpath) {
            stats.manifest = true;
            stats.bytes += bytes.len() as u64;
            if let Ok((kind, _, payload)) = read_container_loose(&bytes) {
                if kind == KIND_MANIFEST {
                    if let Ok(m) = decode::<Manifest>(&payload) {
                        stats.procedures = m.entries.len();
                        stats.sources = m.sources.len();
                    }
                }
            }
        }
        for entry in self.entry_files()? {
            stats.entry_files += 1;
            stats.bytes += std::fs::metadata(&entry).map(|m| m.len()).unwrap_or(0);
        }
        if let Ok(rd) = std::fs::read_dir(self.dir.join("quarantine")) {
            stats.quarantined = rd.count();
        }
        Ok(stats)
    }

    /// Validates every file: manifest structure, per-entry container
    /// integrity, the manifest↔entry checksum binding, and the
    /// fingerprint match against this store's options. Read-only — nothing
    /// is quarantined or deleted (loading does that); the report is for
    /// inspection.
    pub fn verify(&self) -> Result<VerifyReport> {
        let _lock = self.lock()?;
        let mut report = VerifyReport::default();
        let mpath = self.dir.join(MANIFEST_FILE);
        let mut referenced: BTreeMap<String, u64> = BTreeMap::new();
        match std::fs::read(&mpath) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                report.problems.push("no manifest (cache is empty or was cleared)".to_string());
            }
            Err(e) => report.problems.push(format!("manifest unreadable: {e}")),
            Ok(bytes) => match read_container_loose(&bytes) {
                Err(cerr) => report.problems.push(format!("manifest: {cerr}")),
                Ok((kind, fp, payload)) if kind == KIND_MANIFEST => {
                    if fp != self.fingerprint {
                        report.problems.push(format!(
                            "manifest fingerprint {fp:016x} does not match these \
                             options/toolchain ({:016x}); a load would quarantine it",
                            self.fingerprint
                        ));
                    }
                    match decode::<Manifest>(&payload) {
                        Ok(m) => {
                            report.ok += 1;
                            for e in &m.entries {
                                referenced.insert(entry_name(e.checksum), e.checksum);
                            }
                        }
                        Err(e) => report.problems.push(format!("manifest payload: {e}")),
                    }
                }
                Ok((kind, _, _)) => {
                    report.problems.push(format!("manifest has kind `{kind}`"));
                }
            },
        }
        for path in self.entry_files()? {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let Ok(bytes) = std::fs::read(&path) else {
                report.problems.push(format!("{name}: unreadable"));
                continue;
            };
            match read_container_loose(&bytes) {
                Err(cerr) => report.problems.push(format!("{name}: {cerr}")),
                Ok((kind, fp, _)) => {
                    if kind != KIND_ENTRY {
                        report.problems.push(format!("{name}: unexpected kind `{kind}`"));
                    } else if fp != self.fingerprint {
                        report.problems.push(format!(
                            "{name}: fingerprint {fp:016x} does not match these options"
                        ));
                    } else {
                        match referenced.get(&name) {
                            None => report.orphans += 1,
                            Some(&sum) if fnv1a(&bytes) != sum => report
                                .problems
                                .push(format!("{name}: contents do not match manifest record")),
                            Some(_) => report.ok += 1,
                        }
                    }
                }
            }
        }
        for name in referenced.keys() {
            if !self.dir.join(name).exists() {
                report.problems.push(format!("{name}: referenced by manifest but missing"));
            }
        }
        Ok(report)
    }

    /// Deletes the manifest, every entry file, and the quarantine
    /// directory. Returns how many files were removed. The explicit
    /// destructive operation — loading never does this.
    pub fn clear(&self) -> Result<usize> {
        let _lock = self.lock()?;
        let mut removed = 0usize;
        let mpath = self.dir.join(MANIFEST_FILE);
        if std::fs::remove_file(&mpath).is_ok() {
            removed += 1;
        }
        if std::fs::remove_file(self.dir.join(STATS_FILE)).is_ok() {
            removed += 1;
        }
        for path in self.entry_files()? {
            if std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        let qdir = self.dir.join("quarantine");
        if let Ok(rd) = std::fs::read_dir(&qdir) {
            removed += rd.filter(|e| e.is_ok()).count();
            let _ = std::fs::remove_dir_all(&qdir);
        }
        Ok(removed)
    }

    fn entry_files(&self) -> Result<Vec<PathBuf>> {
        let rd = match std::fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Error::io(format!("reading {}", self.dir.display()), e)),
        };
        let mut out: Vec<PathBuf> = rd
            .flatten()
            .filter(|e| {
                e.file_name().to_str().map(is_entry_name).unwrap_or(false)
            })
            .map(|e| e.path())
            .collect();
        out.sort();
        Ok(out)
    }

    /// Writes `state` to disk under the crash-safe protocol: entry files
    /// first (content-addressed, immutable, skipped when already present),
    /// then the manifest via atomic rename, then garbage collection of
    /// entries the new manifest no longer references. Faultpoints
    /// `persist::entry_write`, `persist::pre_manifest`,
    /// `persist::post_manifest` and `persist::gc` (plus the ones inside
    /// [`atomic_write`]) simulate a crash at each stage.
    fn save_state(&self, state: &SessionState) -> Result<()> {
        let _span = support::obs::span("store.save");
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| Error::io(format!("creating {}", self.dir.display()), e))?;
        let _lock = self.lock()?;
        let n = state.fps.len();
        let mut entries = Vec::with_capacity(n);
        let mut referenced = BTreeSet::new();
        for i in 0..n {
            let mut w = ByteWriter::new();
            state.local[i].save(&mut w);
            state.analysis.ipa.summaries[i].save(&mut w);
            let rows = &state.analysis.rows[state.proc_rows[i].clone()];
            w.usize(rows.len());
            for row in rows {
                row.save(&mut w);
            }
            state.ipl_fail[i].save(&mut w);
            state.extract_fail[i].save(&mut w);
            let container = write_container(KIND_ENTRY, self.fingerprint, &w.into_bytes());
            let checksum = fnv1a(&container);
            let name = entry_name(checksum);
            faultpoint::hit("persist::entry_write");
            let path = self.dir.join(&name);
            if referenced.insert(name) && !path.exists() {
                atomic_write(&path, &container)?;
            }
            entries.push(ManifestEntry {
                proc: raw_name(&state.analysis.program, ProcId::from_usize(i)),
                fp: state.fps[i],
                checksum,
            });
        }
        let manifest = Manifest {
            sources: state.sources.clone(),
            entries,
            extract_env: state.extract_env,
            recursion_cut: state.analysis.ipa.recursion_cut,
            prop_degr: state.prop_degr.clone(),
            degradations: state.analysis.degradations.clone(),
        };
        let mut w = ByteWriter::new();
        manifest.save(&mut w);
        let container = write_container(KIND_MANIFEST, self.fingerprint, &w.into_bytes());
        faultpoint::hit("persist::pre_manifest");
        atomic_write(&self.dir.join(MANIFEST_FILE), &container)?;
        faultpoint::hit("persist::post_manifest");
        // GC entries the committed manifest no longer references. A crash
        // anywhere in here leaves only unreferenced litter, swept next save.
        faultpoint::hit("persist::gc");
        for path in self.entry_files()? {
            let keep = path
                .file_name()
                .and_then(|f| f.to_str())
                .map(|f| referenced.contains(f))
                .unwrap_or(true);
            if !keep {
                let _ = std::fs::remove_file(&path);
            }
        }
        support::obs::set_gauge(
            support::obs::Gauge::StoreEntries,
            referenced.len() as u64,
        );
        // Best-effort stats snapshot, bound to the manifest just committed
        // so `stats` can skip the directory scan. Written last: a crash
        // before this point simply leaves the next `stats` call on the
        // live-scan path (or an older snapshot that fails its binding).
        let _ = self.write_stats_snapshot(&container);
        Ok(())
    }

    /// Writes the [`STATS_FILE`] snapshot describing the directory as it
    /// stands after a save, keyed to `manifest_container` (the committed
    /// manifest's bytes).
    fn write_stats_snapshot(&self, manifest_container: &[u8]) -> Result<()> {
        let stats = self.live_stats()?;
        let mut w = ByteWriter::new();
        w.u64(fnv1a(manifest_container));
        stats.save(&mut w);
        let container = write_container(KIND_STATS, self.fingerprint, &w.into_bytes());
        atomic_write(&self.dir.join(STATS_FILE), &container)
    }
}

// ---------------------------------------------------------------------------
// Session integration
// ---------------------------------------------------------------------------

impl AnalysisSession {
    /// Like [`AnalysisSession::new`], with an on-disk cache attached at
    /// `dir`. Call [`load`](Self::load) to warm-start from whatever the
    /// directory holds, and [`persist`](Self::persist) after updates to
    /// save the current state.
    pub fn with_cache_dir(opts: AnalysisOptions, dir: impl Into<PathBuf>) -> Self {
        let mut s = AnalysisSession::new(opts);
        s.store = Some(SessionStore::new(dir, &s.opts));
        s
    }

    /// The attached store, if the session was created with a cache dir.
    pub fn store(&self) -> Option<&SessionStore> {
        self.store.as_ref()
    }

    /// Cache incidents recorded by [`load`](Self::load) and
    /// [`persist`](Self::persist): quarantined files, lock timeouts, write
    /// failures. These are deliberately kept out of
    /// [`Analysis::degradations`] — cache trouble never changes analysis
    /// *results* (only how much had to be recomputed), so warm and cold
    /// results stay comparable — but callers should surface them with the
    /// same severity as degradations.
    pub fn cache_incidents(&self) -> &[Degradation] {
        &self.cache_incidents
    }

    /// Warm-starts the session from the attached cache directory. Returns
    /// `true` when a state was installed (possibly partial: procedures
    /// whose entries failed validation are left cold and will be
    /// recomputed by the next [`update`](Self::update)). Returns `false` —
    /// never an error — when there is no store, no manifest, or the
    /// manifest was rejected; rejected files are quarantined and recorded
    /// in [`cache_incidents`](Self::cache_incidents).
    ///
    /// Call [`update`](Self::update) with the current sources afterwards;
    /// until then [`analysis`](Self::analysis) reflects the persisted
    /// snapshot (and may be incomplete if entries were quarantined).
    pub fn load(&mut self) -> bool {
        let Some(store) = self.store.clone() else { return false };
        let mut incidents = Vec::new();
        let loaded = self.load_inner(&store, &mut incidents);
        self.cache_incidents.extend(incidents);
        loaded
    }

    fn load_inner(&mut self, store: &SessionStore, incidents: &mut Vec<Degradation>) -> bool {
        if !store.dir.exists() {
            return false;
        }
        let _span = support::obs::span("store.load");
        let _lock = match store.lock() {
            Ok(l) => l,
            Err(e) => {
                incidents.push(cache_incident(format!("{e}; proceeding without cache")));
                return false;
            }
        };
        let mpath = store.dir.join(MANIFEST_FILE);
        let bytes = match read_file_raw(&mpath) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return false,
            Err(e) => {
                incidents.push(cache_incident(format!("manifest unreadable: {e}")));
                return false;
            }
            Ok(b) => b,
        };
        let manifest = match read_container(&bytes, KIND_MANIFEST, store.fingerprint)
            .map_err(Error::from)
            .and_then(|payload| decode::<Manifest>(&payload))
        {
            Ok(m) => m,
            Err(e) => {
                let suffix = match read_container(&bytes, KIND_MANIFEST, store.fingerprint) {
                    Err(ref cerr) => quarantine_suffix(cerr),
                    Ok(_) => "malformed",
                };
                let dest = quarantine_file(&mpath, suffix)
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|qe| format!("(quarantine failed: {qe})"));
                incidents.push(cache_incident(format!(
                    "manifest rejected ({e}); moved to {dest}; starting cold"
                )));
                return false;
            }
        };

        // Rebuild the program from the stored sources. Parsing and assembly
        // are deterministic, so this is bit-identical to the program the
        // cache was saved against; if it no longer assembles (toolchain
        // drift should be caught by the fingerprint first), start cold.
        let parsed: Vec<_> =
            manifest.sources.iter().map(parse_source_with_recovery).collect();
        let (program, _diags) = match frontend::assemble_to_h_with_recovery(
            parsed.clone(),
            self.opts.layout_base,
        ) {
            Ok(out) => out,
            Err(e) => {
                incidents.push(cache_incident(format!(
                    "cached sources no longer assemble ({e}); starting cold"
                )));
                return false;
            }
        };
        let cg = CallGraph::build(&program);
        let n = cg.size();
        let fps: Vec<u64> = (0..n)
            .map(|i| proc_fingerprint(&program, ProcId::from_usize(i), self.salt))
            .collect();
        let by_name: BTreeMap<&str, &ManifestEntry> =
            manifest.entries.iter().map(|e| (e.proc.as_str(), e)).collect();

        let mut local: Vec<ProcSummary> = (0..n).map(|_| ProcSummary::default()).collect();
        let mut propagated: Vec<ProcSummary> =
            (0..n).map(|_| ProcSummary::default()).collect();
        let mut per_rows: Vec<Vec<RgnRow>> = (0..n).map(|_| Vec::new()).collect();
        let mut ipl_fail: Vec<Option<(String, String)>> = (0..n).map(|_| None).collect();
        let mut extract_fail: Vec<Option<String>> = (0..n).map(|_| None).collect();
        let mut valid = vec![false; n];
        for i in 0..n {
            let name = raw_name(&program, ProcId::from_usize(i));
            // The span records only when the procedure actually primes;
            // every reject path cancels it and bumps the reject counter
            // instead, so warm-from-disk traces distinguish the two.
            let mut prime_span = support::obs::span_arg("store.prime", || name.clone());
            let Some(me) = by_name.get(name.as_str()) else {
                prime_span.cancel();
                support::obs::incr(support::obs::Counter::StoreRejected);
                incidents.push(cache_incident(format!(
                    "no cache entry for `{name}`; recomputing it"
                )));
                continue;
            };
            if me.fp != fps[i] {
                prime_span.cancel();
                support::obs::incr(support::obs::Counter::StoreRejected);
                incidents.push(cache_incident(format!(
                    "cache entry for `{name}` is stale; recomputing it"
                )));
                continue;
            }
            let path = store.dir.join(entry_name(me.checksum));
            let bytes = match read_file_raw(&path) {
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    prime_span.cancel();
                    support::obs::incr(support::obs::Counter::StoreRejected);
                    incidents.push(cache_incident(format!(
                        "cache entry for `{name}` is missing; recomputing it"
                    )));
                    continue;
                }
                Err(e) => {
                    prime_span.cancel();
                    support::obs::incr(support::obs::Counter::StoreRejected);
                    incidents.push(cache_incident(format!(
                        "cache entry for `{name}` unreadable ({e}); recomputing it"
                    )));
                    continue;
                }
                Ok(b) => b,
            };
            // Bind the file to the manifest record, then validate and
            // decode the container.
            let entry = if fnv1a(&bytes) != me.checksum {
                Err((Error::Format("contents do not match manifest record".into()), "checksum"))
            } else {
                match read_container(&bytes, KIND_ENTRY, store.fingerprint) {
                    Err(cerr) => {
                        let suffix = quarantine_suffix(&cerr);
                        Err((Error::from(cerr), suffix))
                    }
                    Ok(payload) => decode::<Entry>(&payload).map_err(|e| (e, "malformed")),
                }
            };
            match entry {
                Ok(entry) => {
                    local[i] = entry.local;
                    propagated[i] = entry.propagated;
                    per_rows[i] = entry.rows;
                    ipl_fail[i] = entry.ipl_fail;
                    extract_fail[i] = entry.extract_fail;
                    valid[i] = true;
                    support::obs::incr(support::obs::Counter::StorePrimed);
                }
                Err((e, suffix)) => {
                    prime_span.cancel();
                    support::obs::incr(support::obs::Counter::StoreRejected);
                    let dest = quarantine_file(&path, suffix)
                        .map(|p| p.display().to_string())
                        .unwrap_or_else(|qe| format!("(quarantine failed: {qe})"));
                    incidents.push(cache_incident(format!(
                        "cache entry for `{name}` rejected ({e}); moved to {dest}; \
                         recomputing it"
                    )));
                }
            }
        }

        // Assemble the row table in emission (call-graph pre-)order.
        let mut rows: Vec<RgnRow> = Vec::new();
        let mut proc_rows: Vec<std::ops::Range<usize>> = vec![0..0; n];
        for pid in cg.pre_order() {
            let i = pid.as_usize();
            let start = rows.len();
            rows.append(&mut per_rows[i]);
            proc_rows[i] = start..rows.len();
        }
        let all_valid = valid.iter().all(|&v| v);
        let by_hash = (0..n)
            .filter(|&i| valid[i])
            .map(|i| (fps[i], ProcId::from_usize(i)))
            .collect();
        // Only a fully-validated state may satisfy the identical-input fast
        // path; a partial one must force the next update through the full
        // classify-and-recompute machinery.
        let file_keys = if all_valid {
            manifest.sources.iter().map(file_key).collect()
        } else {
            Vec::new()
        };
        // Prime the parse cache: the next update reuses these parses for
        // unchanged files.
        for (s, p) in manifest.sources.iter().zip(parsed) {
            self.file_cache.insert(file_key(s), p);
        }
        let state = SessionState {
            analysis: Analysis {
                program,
                callgraph: cg,
                ipa: IpaResult {
                    index_facts: ipa::validated_index_facts(&propagated),
                    summaries: propagated,
                    recursion_cut: manifest.recursion_cut,
                },
                rows,
                degradations: manifest.degradations,
            },
            local,
            by_hash,
            ipl_fail,
            prop_degr: manifest.prop_degr,
            fps,
            proc_rows,
            extract_fail,
            extract_env: manifest.extract_env,
            file_keys,
            sources: manifest.sources,
            // Loaded states were re-derived just now, under no budget of
            // their own; tainted states are never persisted in the first
            // place (see `persist`).
            tainted: false,
        };
        if let Some(old) = self.state.replace(state) {
            if let Some(tx) = &self.graveyard {
                if let Err(back) = tx.send(old) {
                    self.graveyard = None;
                    drop(back.0);
                }
            }
        }
        true
    }

    /// Saves the current state to the attached cache directory. Returns
    /// `true` on success; `false` (with a recorded cache incident) when
    /// there is no store, no state yet, or the save failed. Persistence is
    /// best-effort by design: a full disk or a held lock costs the next
    /// run its warm start, never this run its results.
    pub fn persist(&mut self) -> bool {
        let Some(store) = self.store.clone() else { return false };
        let Some(state) = &self.state else { return false };
        // Memory-exhausted results are environmentally widened; writing
        // them out would replace a good on-disk state with conservative
        // junk that outlives the exhaustion.
        if state.tainted {
            return false;
        }
        match store.save_state(state) {
            Ok(()) => true,
            Err(e) => {
                self.cache_incidents
                    .push(cache_incident(format!("cache save failed: {e}")));
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::budget::BudgetConfig;

    #[test]
    fn entry_names_are_stable_and_recognizable() {
        let name = entry_name(0xdead_beef_0123_4567);
        assert_eq!(name, "edeadbeef01234567.araa");
        assert!(is_entry_name(&name));
        assert!(!is_entry_name("manifest.araa"));
        assert!(!is_entry_name("edead.araa"));
        assert!(!is_entry_name("quarantine"));
    }

    #[test]
    fn fingerprint_depends_on_options_not_threads() {
        let a = store_fingerprint(&AnalysisOptions::default());
        let b = store_fingerprint(&AnalysisOptions::builder().threads(8).build());
        assert_eq!(a, b, "thread count must not split the cache");
        let c = store_fingerprint(&AnalysisOptions::builder().include_propagated(false).build());
        assert_ne!(a, c);
        let d = store_fingerprint(
            &AnalysisOptions::builder().budget(BudgetConfig::tiny()).build(),
        );
        assert_ne!(a, d);
        let e = store_fingerprint(&AnalysisOptions::builder().layout_base(0x1000).build());
        assert_ne!(a, e);
    }
}
