//! Incremental analysis sessions: re-analyze only what an edit touched.
//!
//! [`AnalysisSession`] is a long-lived handle that owns the last compiled
//! [`Program`], its call graph, and a content-addressed cache of
//! per-procedure summaries keyed by a stable hash of (procedure IR,
//! [`BudgetConfig`](support::budget::BudgetConfig)). Each
//! [`AnalysisSession::update`] call:
//!
//! 1. re-parses only the source files whose text changed (per-file parse
//!    cache keyed by a content hash of name + language + text);
//! 2. fingerprints every procedure of the re-assembled program
//!    ([`whirl::hash::proc_fingerprint`]) and classifies it *clean* (cache
//!    hit, verified structurally by [`whirl::hash::procs_correspond`] and
//!    rebased onto the new symbol tables) or *dirty* (new or edited);
//! 3. recomputes IPL summaries only for dirty procedures, fanned over the
//!    same parallel workers as a cold run;
//! 4. invalidates propagated summaries only for call-graph *ancestors* of
//!    dirty procedures (a procedure's propagated summary depends exactly on
//!    its call-graph descendants) and re-runs bottom-up propagation over
//!    that affected set, reusing rebased cached summaries everywhere else;
//! 5. re-extracts `.rgn` rows only for procedures whose summaries or
//!    extraction environment (addresses, file names, type columns) changed.
//!
//! Every reuse is verified, never assumed: a fingerprint collision fails
//! structural verification and degrades to a cache miss; a summary that
//! mentions a symbol the verifier could not re-identify fails its rebase
//! and is recomputed. A cold start (the first `update`, or
//! [`Analysis::analyze`]) runs every step with an all-dirty mask, which is
//! byte-for-byte the non-incremental pipeline.

pub mod store;

pub use store::{CacheStats, SessionStore, VerifyReport};

use crate::driver::{Analysis, AnalysisOptions, Degradation};
use crate::extract::{extract_proc_rows, resolve_formal_addresses, ExtractOptions};
use crate::row::RgnRow;
use frontend::{ParsedSource, SourceFile};
use ipa::callgraph::CallGraph;
use ipa::isolate::{panic_message, summarize_subset_isolated};
use ipa::propagate::propagate_subset;
use ipa::rebase::rebase_summary;
use ipa::{IpaResult, ProcSummary};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use support::budget;
use support::hash::StableHasher;
use support::idx::Idx;
use support::Result;
use whirl::hash::{
    budget_salt, global_symbol_map, proc_fingerprint, procs_correspond, SymbolMaps,
};
use whirl::{Lang, ProcId, Program};

/// What one [`AnalysisSession::update`] actually did: which procedures were
/// re-analyzed, what came from the cache, and how the row table changed.
#[derive(Debug, Clone, Default)]
pub struct AnalysisDelta {
    /// Procedures whose IPL summary was recomputed (new or edited), by name.
    pub summaries_recomputed: Vec<String>,
    /// Procedures whose propagated summary was recomputed (the dirty set
    /// plus its call-graph ancestors), by name.
    pub propagation_recomputed: Vec<String>,
    /// Procedures whose cached summary was verified and reused.
    pub summary_cache_hits: usize,
    /// Procedures summarized from scratch (no verified cache entry).
    pub summary_cache_misses: usize,
    /// Source files that had to be re-parsed.
    pub files_reparsed: usize,
    /// Source files served from the parse cache.
    pub files_cached: usize,
    /// `.rgn` rows carried over verbatim from the previous update.
    pub rows_reused: usize,
    /// `.rgn` rows rebuilt by re-running extraction.
    pub rows_recomputed: usize,
    /// Rows present now but not in the previous table.
    pub rows_added: usize,
    /// Rows present previously but gone now.
    pub rows_removed: usize,
    /// Rows whose identity (procedure, array, mode, via, line) persists but
    /// whose content changed.
    pub rows_changed: usize,
    /// The refreshed analysis' degradation list (same as
    /// [`Analysis::degradations`]).
    pub degradations: Vec<Degradation>,
}

/// Everything retained between updates.
struct SessionState {
    analysis: Analysis,
    /// Pre-propagation (local) summaries, one per procedure.
    local: Vec<ProcSummary>,
    /// Fingerprint → procedure: the content-addressed cache index.
    by_hash: BTreeMap<u64, ProcId>,
    /// Contained IPL failure per procedure (stage, detail), replayed for
    /// clean procedures so degradation reports stay stable across updates.
    ipl_fail: Vec<Option<(String, String)>>,
    /// Propagation-stage degradations still in force (cached propagated
    /// summaries keep their widened shape until recomputed).
    prop_degr: Vec<Degradation>,
    /// Per-procedure fingerprints, parallel to the program's procedures
    /// (reused for procedures whose file the parse cache served verbatim).
    fps: Vec<u64>,
    /// Each procedure's row slice within `analysis.rows` (rows are emitted
    /// in call-graph pre-order, so every procedure's rows are contiguous).
    proc_rows: Vec<std::ops::Range<usize>>,
    /// Contained extraction failure per procedure.
    extract_fail: Vec<Option<String>>,
    /// Hash of the whole extraction environment — symbol names, classes,
    /// addresses (including resolved formals), type columns, procedure
    /// metadata. `None` when it could not be computed — never reused.
    extract_env: Option<u64>,
    /// Ordered content keys of the source set this state was built from.
    file_keys: Vec<u64>,
    /// Built while the effective memory budget was exhausted: the answer
    /// is sound but environmentally widened. Served once, never reused by
    /// the fast path, never persisted; the next update recomputes cold.
    tainted: bool,
    /// The source set itself, retained so the state can be persisted (the
    /// on-disk cache stores sources and re-derives the program from them).
    sources: Vec<SourceFile>,
}

/// A verified cache hit: the old procedure it corresponds to, the symbol
/// translation maps that rebase its cached summaries, and whether those maps
/// are a total identity (in which case cached summaries can be *moved*
/// instead of rebased).
struct CleanProc {
    old: ProcId,
    maps: SymbolMaps,
    identity: bool,
}

/// Long-lived incremental analysis handle. See the module docs for the
/// update algorithm and [`AnalysisDelta`] for what each update reports.
///
/// ```
/// use araa::{AnalysisOptions, AnalysisSession};
///
/// let mut session = AnalysisSession::new(AnalysisOptions::default());
/// let delta = session.update(&workloads::mini_lu::sources()).unwrap();
/// assert_eq!(delta.summary_cache_hits, 0); // cold start
///
/// // Same sources again: everything is served from the cache.
/// let delta = session.update(&workloads::mini_lu::sources()).unwrap();
/// assert_eq!(delta.summary_cache_misses, 0);
/// assert!(delta.summaries_recomputed.is_empty());
/// assert!(session.analysis().is_some());
/// ```
pub struct AnalysisSession {
    opts: AnalysisOptions,
    salt: u64,
    file_cache: BTreeMap<u64, ParsedSource>,
    state: Option<SessionState>,
    /// Hands displaced states to a long-lived dropper thread: deallocating
    /// an entire program (trees, symbol tables, row table) costs about as
    /// much as a warm update itself, so it happens off the critical path.
    /// `None` once the thread is gone (its handle is never joined — it owns
    /// nothing but garbage).
    graveyard: Option<std::sync::mpsc::Sender<SessionState>>,
    /// On-disk cache attached via [`with_cache_dir`](Self::with_cache_dir).
    store: Option<SessionStore>,
    /// Incidents recorded by [`load`](Self::load) / [`persist`](Self::persist):
    /// quarantined files, lock timeouts, failed saves.
    cache_incidents: Vec<Degradation>,
}

impl AnalysisSession {
    /// Creates an empty session. The options are fixed for the session's
    /// lifetime (they are part of every cache key).
    pub fn new(opts: AnalysisOptions) -> Self {
        let (tx, rx) = std::sync::mpsc::channel::<SessionState>();
        let spawned = std::thread::Builder::new()
            .name("araa-session-dropper".to_string())
            .spawn(move || while rx.recv().is_ok() {})
            .is_ok();
        AnalysisSession {
            salt: budget_salt(&opts.budget),
            opts,
            file_cache: BTreeMap::new(),
            state: None,
            graveyard: spawned.then_some(tx),
            store: None,
            cache_incidents: Vec::new(),
        }
    }

    /// The options this session analyzes with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.opts
    }

    /// The analysis produced by the most recent successful [`update`](Self::update).
    pub fn analysis(&self) -> Option<&Analysis> {
        self.state.as_ref().map(|s| &s.analysis)
    }

    /// Consumes the session, yielding the last analysis.
    pub fn into_analysis(self) -> Option<Analysis> {
        self.state.map(|s| s.analysis)
    }

    /// Re-analyzes `sources`, recomputing only what changed since the last
    /// update. The first call is a cold start (everything is "changed").
    /// On error (nothing parseable at all) the previous state is kept
    /// untouched.
    pub fn update<I>(&mut self, sources: I) -> Result<AnalysisDelta>
    where
        I: IntoIterator,
        I::Item: Into<SourceFile>,
    {
        let sources: Vec<SourceFile> = sources.into_iter().map(Into::into).collect();
        let mut delta = AnalysisDelta::default();
        let keys: Vec<u64> = sources.iter().map(file_key).collect();
        let _update_span = support::obs::span("session.update");

        // Fast path: the exact source set of the last update (same files,
        // same order, same text) reassembles to a bit-identical program, so
        // the retained state already *is* the answer.
        if let Some(p) = &self.state {
            if keys == p.file_keys && !p.tainted {
                delta.files_cached = sources.len();
                delta.summary_cache_hits = p.analysis.program.procedure_count();
                delta.rows_reused = p.analysis.rows.len();
                delta.degradations = p.analysis.degradations.clone();
                record_update_obs(
                    &delta,
                    0,
                    0,
                    p.analysis.program.procedure_count() as u64,
                    p.analysis.rows.len() as u64,
                );
                return Ok(delta);
            }
        }

        // A previous update that ran out of memory budget left widened
        // summaries and possibly truncated parses behind. Sound to serve,
        // wrong to build on: drop the state *and* the parse cache it
        // poisoned so this update recomputes from scratch.
        if self.state.as_ref().is_some_and(|p| p.tainted) {
            if let Some(old) = self.state.take() {
                if let Some(tx) = &self.graveyard {
                    if let Err(back) = tx.send(old) {
                        self.graveyard = None;
                        drop(back.0);
                    }
                }
            }
            self.file_cache.clear();
        }

        // Memory budget for this update (`None` = unlimited): charged at
        // the same checkpoints as the step budgets, so every phase below
        // widens instead of allocating past the ceiling. Worker threads
        // re-enter the same budget via `support::memory::current()`.
        let mem = self.opts.mem_budget_mb.map(support::memory::MemoryBudget::mb);
        let _mem_scope = mem.clone().map(support::memory::enter);

        // 1. Parse, reusing cached per-file parses for unchanged text.
        let parse_span = support::obs::span("session.parse");
        let mut parsed = Vec::with_capacity(sources.len());
        let mut next_cache = BTreeMap::new();
        // File name → served-from-cache, ambiguous duplicates demoted.
        let mut hit_names: BTreeMap<&str, bool> = BTreeMap::new();
        for (s, &key) in sources.iter().zip(&keys) {
            // Move the cached parse out (the cache is rebuilt below anyway)
            // so a hit costs one clone, same as a miss.
            let (p, hit) = match self.file_cache.remove(&key) {
                Some(hit) => {
                    delta.files_cached += 1;
                    (hit, true)
                }
                None => {
                    delta.files_reparsed += 1;
                    (frontend::parse_source_with_recovery(s), false)
                }
            };
            hit_names
                .entry(s.name.as_str())
                .and_modify(|h| *h = false)
                .or_insert(hit);
            next_cache.insert(key, p.clone());
            parsed.push(p);
        }
        let (program, diags) =
            match frontend::assemble_to_h_with_recovery(parsed, self.opts.layout_base) {
                Ok(out) => out,
                Err(e) => {
                    // Keep the parses (they are valid) so the next attempt's
                    // cache is no worse than before this failed one — unless
                    // the effective memory budget is exhausted: then they may
                    // be budget-truncated, and caching them would replay this
                    // failure even after the caller raises the budget. Drop
                    // everything so the retry reparses cold.
                    let mem_exhausted = mem
                        .clone()
                        .or_else(support::memory::current)
                        .is_some_and(|b| b.exhausted());
                    if mem_exhausted {
                        self.file_cache.clear();
                    } else {
                        self.file_cache.extend(next_cache);
                    }
                    return Err(e);
                }
            };
        // Commit the parse cache only once assembly succeeded, evicting
        // entries for files no longer in the source set.
        self.file_cache = next_cache;
        drop(parse_span);
        let mut degradations: Vec<Degradation> =
            diags.iter().map(Degradation::from_frontend).collect();

        let cg = CallGraph::build(&program);
        let n = cg.size();
        // Own the previous state: clean procedures *move* their cached
        // summaries and rows out instead of cloning. Nothing after this
        // point returns early, so a dropped `prev` is always replaced.
        let mut prev = self.state.take();

        // 2. Fingerprint and classify every procedure.
        let classify_span = support::obs::span("session.classify");
        let (global_map, proc_map, old_by_name) = match &prev {
            Some(p) => (
                global_symbol_map(&p.analysis.program, &program),
                old_to_new_procs(&p.analysis.program, &program),
                procs_by_name(&p.analysis.program),
            ),
            None => (SymbolMaps::default(), BTreeMap::new(), BTreeMap::new()),
        };
        // The fingerprint of a procedure from a cache-hit file is unchanged
        // from last update (the fingerprint only reads that file's tree plus
        // symbol data the verifier re-checks anyway), so reuse it. A stale
        // reuse can only cause a spurious hash hit, which structural
        // verification then rejects — correctness never rides on this.
        let fps: Vec<u64> = (0..n)
            .map(|i| {
                let id = ProcId::from_usize(i);
                if let Some(p) = &prev {
                    let proc = program.procedure(id);
                    let fname = program.interner.resolve(proc.file);
                    if hit_names.get(fname).copied().unwrap_or(false) {
                        if let Some(&old_id) =
                            old_by_name.get(program.name_of(proc.name))
                        {
                            let op = p.analysis.program.procedure(old_id);
                            if p.analysis.program.interner.resolve(op.file) == fname {
                                return p.fps[old_id.as_usize()];
                            }
                        }
                    }
                }
                proc_fingerprint(&program, id, self.salt)
            })
            .collect();
        // When nothing shifted — same procedures in the same slots, every
        // shared symbol mapping to itself — a verified-clean procedure's
        // cached summaries are already in the new program's terms and can be
        // moved wholesale (`rebase_summary` would be the identity).
        let procs_identity = match &prev {
            Some(p) => {
                p.analysis.program.procedure_count() == n
                    && proc_map.len() == n
                    && proc_map.iter().all(|(o, nw)| o == nw)
            }
            None => false,
        };
        let global_identity = identity_maps(&global_map);
        let mut clean: Vec<Option<CleanProc>> = (0..n).map(|_| None).collect();
        let mut locals: Vec<Option<ProcSummary>> = (0..n).map(|_| None).collect();
        let mut dirty: Vec<ProcId> = Vec::new();
        let mut cache_rejects = 0u64;
        let mut cache_rebases = 0u64;
        for (i, &fp) in fps.iter().enumerate() {
            let id = ProcId::from_usize(i);
            // Whether a fingerprint candidate existed at all: a candidate
            // that falls through to the dirty set is a *reject* (hash hit,
            // failed verification or rebase), not a plain recompute.
            let mut had_candidate = false;
            if let Some(p) = prev.as_mut() {
                if let Some(&old_id) = p.by_hash.get(&fp) {
                    had_candidate = true;
                    // A hash hit is only trusted after full structural
                    // verification, which also yields the rebasing maps.
                    if let Some(mut maps) =
                        procs_correspond(&p.analysis.program, old_id, &program, id)
                    {
                        // Identity maps on an identity program layout: move
                        // the cached summary; rebasing would copy it term by
                        // term only to reproduce it exactly.
                        let identity =
                            procs_identity && global_identity && identity_maps(&maps);
                        let local = if identity {
                            Some(std::mem::take(&mut p.local[old_id.as_usize()]))
                        } else if maps.merge(&global_map) {
                            rebase_summary(&p.local[old_id.as_usize()], &maps, &proc_map)
                        } else {
                            None
                        };
                        if let Some(local) = local {
                            clean[i] = Some(CleanProc { old: old_id, maps, identity });
                            locals[i] = Some(local);
                            delta.summary_cache_hits += 1;
                            if !identity {
                                cache_rebases += 1;
                            }
                            continue;
                        }
                    }
                }
            }
            if had_candidate {
                cache_rejects += 1;
            }
            delta.summary_cache_misses += 1;
            dirty.push(id);
        }
        drop(classify_span);

        // 3. Recompute IPL only for the dirty set, on the usual workers.
        let ipl_span = support::obs::span("session.ipl");
        let mut ipl_fail: Vec<Option<(String, String)>> = (0..n).map(|_| None).collect();
        for (id, summary, failure) in
            summarize_subset_isolated(&program, &dirty, self.opts.threads, self.opts.budget)
        {
            let i = id.as_usize();
            locals[i] = Some(summary);
            ipl_fail[i] = failure.map(|f| (f.stage.to_string(), f.detail));
        }
        if let Some(p) = prev.as_ref() {
            // Clean procedures replay their recorded IPL incident (if any):
            // the reused summary is the degraded one, so the report must
            // keep saying so.
            for (i, c) in clean.iter().enumerate() {
                if let Some(c) = c {
                    ipl_fail[i] = p.ipl_fail[c.old.as_usize()].clone();
                }
            }
        }
        let locals: Vec<ProcSummary> =
            locals.into_iter().map(Option::unwrap_or_default).collect();
        delta.summaries_recomputed =
            dirty.iter().map(|&id| raw_name(&program, id)).collect();
        for (i, f) in ipl_fail.iter().enumerate() {
            if let Some((stage, detail)) = f {
                degradations.push(Degradation {
                    proc: raw_name(&program, ProcId::from_usize(i)),
                    stage: stage.clone(),
                    detail: detail.clone(),
                });
            }
        }

        drop(ipl_span);
        // 4. Propagation is invalidated for ancestors of dirty procedures;
        // everyone else reuses a rebased cached propagated summary. A
        // summary that fails its rebase joins the recompute set (and so do
        // its ancestors) — looped until the set is stable.
        let prop_span = support::obs::span("session.propagate");
        let mut seeds = dirty.clone();
        let mut prop_rebased: Vec<Option<ProcSummary>> = (0..n).map(|_| None).collect();
        let mut affected = cg.ancestor_closure(seeds.iter().copied());
        loop {
            let mut grew = false;
            for i in 0..n {
                if affected[i] || prop_rebased[i].is_some() {
                    continue;
                }
                let rebased = match (&clean[i], prev.as_mut()) {
                    (Some(c), Some(p)) if c.identity => Some(std::mem::take(
                        &mut p.analysis.ipa.summaries[c.old.as_usize()],
                    )),
                    (Some(c), Some(p)) => rebase_summary(
                        &p.analysis.ipa.summaries[c.old.as_usize()],
                        &c.maps,
                        &proc_map,
                    ),
                    _ => None,
                };
                match rebased {
                    Some(s) => prop_rebased[i] = Some(s),
                    None => {
                        seeds.push(ProcId::from_usize(i));
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
            affected = cg.ancestor_closure(seeds.iter().copied());
        }
        delta.propagation_recomputed = (0..n)
            .filter(|&i| affected[i])
            .map(|i| raw_name(&program, ProcId::from_usize(i)))
            .collect();

        // Affected slots start from local summaries; everything else holds
        // its full (rebased) propagated summary, exactly the
        // `propagate_subset` contract. With an all-true mask this is the
        // cold pipeline.
        let mut summaries: Vec<ProcSummary> = Vec::with_capacity(n);
        for i in 0..n {
            if affected[i] {
                summaries.push(locals[i].clone());
            } else {
                match prop_rebased[i].take() {
                    Some(s) => summaries.push(s),
                    // Unreachable by construction (the loop above only exits
                    // once every unaffected slot is rebased); a local
                    // summary is still a sound stand-in.
                    None => summaries.push(locals[i].clone()),
                }
            }
        }
        let scope = budget::enter(self.opts.budget);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut s = summaries;
            let cut = propagate_subset(&program, &cg, &mut s, &affected);
            (s, cut)
        }));
        let exhausted = budget::exhaustion();
        drop(scope);
        let mut prop_degr: Vec<Degradation> = match (prev.as_ref(), affected.iter().all(|&a| a))
        {
            // Partial recompute: degradations attached to still-cached
            // propagated summaries remain in force.
            (Some(p), false) => p.prop_degr.clone(),
            // Full recompute (or cold start): this run is authoritative.
            _ => Vec::new(),
        };
        let ipa = match outcome {
            Ok((summaries, recursion_cut)) => {
                if let Some(label) = exhausted {
                    push_unique(&mut prop_degr, Degradation {
                        proc: "(propagation)".to_string(),
                        stage: "budget".to_string(),
                        detail: format!(
                            "{label} budget exhausted; some propagated regions widened"
                        ),
                    });
                }
                IpaResult { index_facts: ipa::validated_index_facts(&summaries), summaries, recursion_cut }
            }
            Err(payload) => {
                push_unique(&mut prop_degr, Degradation {
                    proc: "(propagation)".to_string(),
                    stage: "ipa".to_string(),
                    detail: panic_message(payload.as_ref()),
                });
                IpaResult {
                    index_facts: ipa::validated_index_facts(&locals),
                    summaries: locals.clone(),
                    recursion_cut: cg.is_recursive(),
                }
            }
        };
        degradations.extend(prop_degr.iter().cloned());
        drop(prop_span);

        let extract_span = support::obs::span("session.extract");
        // 5. Row extraction, per procedure: reuse rows verbatim when the
        // summary was reused *and* the extraction environment (addresses,
        // object files, type columns) hashed identically to last update's.
        let exopts = ExtractOptions { include_propagated: self.opts.include_propagated };
        let mut layout_failure: Option<String> = None;
        let formal_addr = match catch_unwind(AssertUnwindSafe(|| {
            resolve_formal_addresses(&program, &cg)
        })) {
            Ok(m) => m,
            Err(payload) => {
                layout_failure = Some(panic_message(payload.as_ref()));
                BTreeMap::new()
            }
        };
        let extract_env: Option<u64> =
            catch_unwind(AssertUnwindSafe(|| extract_env_hash(&program, &formal_addr)))
                .ok();
        let env_matches = match (&prev, extract_env) {
            (Some(p), Some(e)) => p.extract_env == Some(e),
            _ => false,
        };
        let order = cg.pre_order();
        let mut rows: Vec<RgnRow> = Vec::new();
        let mut proc_rows: Vec<std::ops::Range<usize>> = vec![0..0; n];
        let mut extract_fail: Vec<Option<String>> = (0..n).map(|_| None).collect();
        let mut reused_procs = vec![false; n];
        for &pid in &order {
            let i = pid.as_usize();
            let start = rows.len();
            let reused = match (&clean[i], prev.as_ref()) {
                (Some(c), Some(p)) if env_matches && !affected[i] => {
                    let old = c.old.as_usize();
                    rows.extend_from_slice(&p.analysis.rows[p.proc_rows[old].clone()]);
                    extract_fail[i] = p.extract_fail[old].clone();
                    true
                }
                _ => false,
            };
            if reused {
                reused_procs[i] = true;
                delta.rows_reused += rows.len() - start;
            } else {
                let _span =
                    support::obs::span_arg("extract.rows", || raw_name(&program, pid));
                match catch_unwind(AssertUnwindSafe(|| {
                    extract_proc_rows(&program, pid, &ipa.summaries[i], exopts, &formal_addr)
                })) {
                    Ok(r) => {
                        delta.rows_recomputed += r.len();
                        rows.extend(r);
                    }
                    Err(payload) => {
                        extract_fail[i] = Some(panic_message(payload.as_ref()))
                    }
                }
            }
            proc_rows[i] = start..rows.len();
        }
        if let Some(detail) = layout_failure {
            degradations.push(Degradation {
                proc: "(layout)".to_string(),
                stage: "extract".to_string(),
                detail,
            });
        }
        for &pid in &order {
            if let Some(detail) = &extract_fail[pid.as_usize()] {
                degradations.push(Degradation {
                    proc: raw_name(&program, pid),
                    stage: "extract".to_string(),
                    detail: detail.clone(),
                });
            }
        }

        drop(extract_span);
        let _diff_span = support::obs::span("session.diff");
        // 6. Diff the row table against the previous update and commit. The
        // diff key starts with the procedure name and reused spans are
        // verbatim copies, so those procedures contribute nothing — diff
        // only the spans of procedures that were actually re-extracted (and
        // of old procedures with no reused counterpart).
        match prev.as_ref() {
            Some(p) => {
                let consumed: std::collections::BTreeSet<usize> = (0..n)
                    .filter(|&i| reused_procs[i])
                    .filter_map(|i| clean[i].as_ref().map(|c| c.old.as_usize()))
                    .collect();
                let old_sub: Vec<&RgnRow> = (0..p.proc_rows.len())
                    .filter(|i| !consumed.contains(i))
                    .flat_map(|i| p.analysis.rows[p.proc_rows[i].clone()].iter())
                    .collect();
                let new_sub: Vec<&RgnRow> = (0..n)
                    .filter(|&i| !reused_procs[i])
                    .flat_map(|i| rows[proc_rows[i].clone()].iter())
                    .collect();
                diff_rows(&old_sub, &new_sub, &mut delta);
            }
            None => delta.rows_added = rows.len(),
        }
        // The effective budget may be the session's own (`mem`) or an
        // ambient scope entered by the caller (e.g. a serve request): both
        // widen at the same checkpoints, so exhaustion of either must show
        // up as a structured degradation — and taint the retained state so
        // nothing widened-by-circumstance is ever reused or persisted.
        let effective_mem = mem.clone().or_else(support::memory::current);
        let tainted = effective_mem.as_ref().is_some_and(|b| b.exhausted());
        if let Some(b) = effective_mem.filter(|b| b.exhausted()) {
            degradations.push(Degradation {
                proc: "(session)".to_string(),
                stage: "memory".to_string(),
                detail: format!(
                    "memory budget of {} MiB exhausted; results widened conservatively",
                    b.limit_bytes() >> 20
                ),
            });
        }
        // Observability accounting only for the session-owned budget; an
        // ambient budget's owner (the serve layer) bills it itself.
        if let Some(b) = &mem {
            support::obs::add(support::obs::Counter::MemBytesCharged, b.charged_bytes());
            if b.exhausted() {
                support::obs::incr(support::obs::Counter::MemExhausted);
            }
        }
        delta.degradations = degradations.clone();
        record_update_obs(&delta, cache_rejects, cache_rebases, n as u64, rows.len() as u64);
        let by_hash = fps
            .iter()
            .enumerate()
            .map(|(i, &fp)| (fp, ProcId::from_usize(i)))
            .collect();
        self.state = Some(SessionState {
            analysis: Analysis { program, callgraph: cg, ipa, rows, degradations },
            local: locals,
            by_hash,
            fps,
            ipl_fail,
            prop_degr,
            proc_rows,
            extract_fail,
            extract_env,
            file_keys: keys,
            sources,
            tainted,
        });
        // Ship the displaced state to the dropper thread; if that fails
        // (thread gone, or it never spawned) just drop inline.
        if let Some(p) = prev.take() {
            if let Some(tx) = &self.graveyard {
                if let Err(back) = tx.send(p) {
                    self.graveyard = None;
                    drop(back.0);
                }
            }
        }
        Ok(delta)
    }
}

/// Publishes one update's delta to the observability layer. The cache
/// counters obey the tested invariant
/// `cache.hits + cache.recomputes == session.procedures` (rejects are a
/// subset of recomputes: a hash hit whose verification or rebase failed).
fn record_update_obs(delta: &AnalysisDelta, rejects: u64, rebases: u64, procs: u64, rows: u64) {
    use support::obs::{self, Counter, Gauge};
    obs::add(Counter::CacheHits, delta.summary_cache_hits as u64);
    obs::add(Counter::CacheRecomputes, delta.summary_cache_misses as u64);
    obs::add(Counter::CacheRejects, rejects);
    obs::add(Counter::CacheRebases, rebases);
    obs::add(Counter::FilesReparsed, delta.files_reparsed as u64);
    obs::add(Counter::FilesCached, delta.files_cached as u64);
    obs::add(Counter::RowsReused, delta.rows_reused as u64);
    obs::add(Counter::RowsRecomputed, delta.rows_recomputed as u64);
    obs::add(Counter::DegradeEvents, delta.degradations.len() as u64);
    obs::set_gauge(Gauge::SessionProcedures, procs);
    obs::set_gauge(Gauge::SessionRows, rows);
    obs::set_gauge(Gauge::SessionDegradations, delta.degradations.len() as u64);
}

/// Content key of one source file for the parse cache.
fn file_key(s: &SourceFile) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&s.name);
    h.write_u8(match s.lang {
        Lang::C => 0,
        Lang::Fortran => 1,
    });
    h.write_str(&s.text);
    h.finish()
}

/// Old `ProcId` → new `ProcId`, matched by procedure name (names are unique
/// per program — duplicates are degraded away during recovery).
fn old_to_new_procs(old: &Program, new: &Program) -> BTreeMap<ProcId, ProcId> {
    let mut map = BTreeMap::new();
    for (old_id, proc) in old.procedures.iter_enumerated() {
        if let Some(new_id) = new.find_procedure(old.name_of(proc.name)) {
            map.insert(old_id, new_id);
        }
    }
    map
}

/// Procedure name → `ProcId` for every procedure of `p`.
fn procs_by_name(p: &Program) -> BTreeMap<String, ProcId> {
    p.procedures
        .iter_enumerated()
        .map(|(id, proc)| (p.name_of(proc.name).to_string(), id))
        .collect()
}

/// Whether every entry of `maps` maps a symbol to itself.
fn identity_maps(maps: &SymbolMaps) -> bool {
    maps.st.iter().all(|(o, n)| o == n) && maps.sym.iter().all(|(o, n)| o == n)
}

/// The procedure's raw (undecorated) name, as degradation reports use it.
pub(crate) fn raw_name(program: &Program, id: ProcId) -> String {
    program.name_of(program.procedure(id).name).to_string()
}

fn push_unique(list: &mut Vec<Degradation>, d: Degradation) {
    if !list.contains(&d) {
        list.push(d);
    }
}

/// Hashes everything row extraction reads *besides* the summaries
/// themselves: per-procedure metadata (display name, object file, language)
/// and the whole symbol table — names, classes, addresses (including
/// resolved formal addresses) and the type-table columns. Row reuse
/// requires this environment unchanged *and* the procedure's summary to be
/// a verified rebase of the cached one, so together the two conditions
/// cover every input of [`extract_proc_rows`]. A layout-shifting edit
/// changes this hash and disables row reuse for that one update —
/// conservative, never unsound.
fn extract_env_hash(program: &Program, formal_addr: &BTreeMap<whirl::StIdx, u64>) -> u64 {
    let mut h = StableHasher::new();
    for (_, proc) in program.procedures.iter_enumerated() {
        h.write_str(&ipa::callgraph::display_name(program, proc));
        h.write_str(&proc.object_file(&program.interner));
        h.write_u8(match proc.lang {
            Lang::C => 0,
            Lang::Fortran => 1,
        });
    }
    for (st, entry) in program.symbols.iter() {
        h.write_str(program.name_of(entry.name));
        h.write_u8(entry.class as u8);
        h.write_u64(entry.address);
        match formal_addr.get(&st) {
            Some(&a) => {
                h.write_u8(1);
                h.write_u64(a);
            }
            None => h.write_u8(0),
        }
        let ty = entry.ty;
        h.write_i64(program.types.element_size(ty));
        h.write_str(program.types.elem_type(ty).display_name());
        h.write_i64(program.types.total_elements(ty));
        h.write_i64(program.types.size_bytes(ty));
        for d in program.types.dim_sizes(ty) {
            h.write_i64(d);
        }
        for b in program.types.dim_bounds(ty) {
            match b {
                whirl::DimBound::Const { lb, ub } => {
                    h.write_u8(0);
                    h.write_i64(lb);
                    h.write_i64(ub);
                }
                whirl::DimBound::Runtime => h.write_u8(1),
            }
        }
    }
    h.finish()
}

/// Counts row-table differences between two updates. Rows are identified by
/// (procedure, array, mode, via, line); a key present on both sides with
/// different content counts as *changed*, everything else as added/removed.
fn diff_rows(old: &[&RgnRow], new: &[&RgnRow], delta: &mut AnalysisDelta) {
    // The common warm case — nothing moved — short-circuits the grouping.
    if old == new {
        return;
    }
    type Key<'a> = (&'a str, &'a str, u8, Option<&'a str>, u32);
    fn key(r: &RgnRow) -> Key<'_> {
        (&r.proc, &r.array, r.mode as u8, r.via.as_deref(), r.line)
    }
    let mut old_map: BTreeMap<Key, Vec<&RgnRow>> = BTreeMap::new();
    for &r in old {
        old_map.entry(key(r)).or_default().push(r);
    }
    let mut new_map: BTreeMap<Key, Vec<&RgnRow>> = BTreeMap::new();
    for &r in new {
        new_map.entry(key(r)).or_default().push(r);
    }
    for (k, o) in &old_map {
        match new_map.get(k) {
            None => delta.rows_removed += o.len(),
            Some(nv) => {
                // Multiset intersection; per-key groups are tiny (the key
                // includes the source line), so quadratic matching is fine.
                let mut used = vec![false; nv.len()];
                let mut inter = 0usize;
                for r in o {
                    if let Some(j) =
                        nv.iter().enumerate().position(|(j, n)| !used[j] && *n == *r)
                    {
                        used[j] = true;
                        inter += 1;
                    }
                }
                let matched = o.len().min(nv.len());
                delta.rows_changed += matched - inter.min(matched);
                if nv.len() > o.len() {
                    delta.rows_added += nv.len() - o.len();
                } else {
                    delta.rows_removed += o.len() - nv.len();
                }
            }
        }
    }
    for (k, nv) in &new_map {
        if !old_map.contains_key(k) {
            delta.rows_added += nv.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAIN_F: &str = "\
program main
  real a(20)
  common /g/ a
  integer i
  do i = 1, 10
    a(i) = 0.0
  end do
  call mid
end
";
    const MID_F: &str = "\
subroutine mid
  real a(20)
  common /g/ a
  a(11) = 1.0
  call leaf
end
";
    const LEAF_F: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 20
    a(i) = 2.0
  end do
end
";
    const LEAF_F_EDITED: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 18
    a(i) = 2.0
  end do
end
";

    fn files(leaf: &str) -> Vec<SourceFile> {
        vec![
            SourceFile::new("main.f", MAIN_F, Lang::Fortran),
            SourceFile::new("mid.f", MID_F, Lang::Fortran),
            SourceFile::new("leaf.f", leaf, Lang::Fortran),
        ]
    }

    #[test]
    fn identical_update_is_fully_cached() {
        let mut s = AnalysisSession::new(AnalysisOptions::default());
        let cold = s.update(&files(LEAF_F)).unwrap();
        assert_eq!(cold.summary_cache_hits, 0);
        assert_eq!(cold.summary_cache_misses, 3);
        assert_eq!(cold.files_reparsed, 3);
        let warm = s.update(&files(LEAF_F)).unwrap();
        assert_eq!(warm.summary_cache_hits, 3);
        assert_eq!(warm.summary_cache_misses, 0);
        assert_eq!(warm.files_cached, 3);
        assert!(warm.summaries_recomputed.is_empty());
        assert!(warm.propagation_recomputed.is_empty());
        assert_eq!(warm.rows_recomputed, 0);
        assert_eq!(warm.rows_added + warm.rows_removed + warm.rows_changed, 0);
        assert!(warm.rows_reused > 0);
    }

    #[test]
    fn reordered_sources_stay_fully_cached() {
        // Same files, different order: every content key survives but the
        // ordered key list differs, so this skips the identical-input fast
        // path and exercises the full verify-and-rebase machinery across a
        // program whose procedure and symbol indices all shifted.
        let mut s = AnalysisSession::new(AnalysisOptions::default());
        s.update(&files(LEAF_F)).unwrap();
        let mut reversed = files(LEAF_F);
        reversed.reverse();
        let warm = s.update(&reversed).unwrap();
        assert_eq!(warm.summary_cache_hits, 3);
        assert_eq!(warm.summary_cache_misses, 0);
        assert_eq!(warm.files_cached, 3);
        assert!(warm.summaries_recomputed.is_empty());
        assert!(warm.propagation_recomputed.is_empty(), "{warm:?}");
        let cold = Analysis::analyze(&reversed, AnalysisOptions::default()).unwrap();
        assert_eq!(s.analysis().unwrap().rows, cold.rows);
    }

    #[test]
    fn leaf_edit_dirties_only_its_ancestor_chain() {
        let mut s = AnalysisSession::new(AnalysisOptions::default());
        s.update(&files(LEAF_F)).unwrap();
        let d = s.update(&files(LEAF_F_EDITED)).unwrap();
        assert_eq!(d.summaries_recomputed, vec!["leaf".to_string()]);
        // Everyone transitively calls leaf here, so propagation touches all.
        let mut prop = d.propagation_recomputed.clone();
        prop.sort();
        assert_eq!(prop, ["leaf", "main", "mid"]);
        assert_eq!(d.summary_cache_hits, 2);
        assert_eq!(d.files_reparsed, 1);
        assert_eq!(d.files_cached, 2);
    }

    #[test]
    fn warm_rows_match_cold_rows_after_edit() {
        let mut s = AnalysisSession::new(AnalysisOptions::default());
        s.update(&files(LEAF_F)).unwrap();
        s.update(&files(LEAF_F_EDITED)).unwrap();
        let cold = Analysis::analyze(&files(LEAF_F_EDITED), AnalysisOptions::default())
            .unwrap();
        let warm = s.analysis().unwrap();
        assert_eq!(warm.rows, cold.rows);
        assert_eq!(warm.degradations, cold.degradations);
    }

    #[test]
    fn failed_update_keeps_previous_state() {
        let mut s = AnalysisSession::new(AnalysisOptions::default());
        s.update(&files(LEAF_F)).unwrap();
        let rows_before = s.analysis().unwrap().rows.len();
        let err = s.update(&[SourceFile::new("bad.f", "subroutine\n", Lang::Fortran)]);
        assert!(err.is_err());
        assert_eq!(s.analysis().unwrap().rows.len(), rows_before);
        // And the session still works afterwards.
        let d = s.update(&files(LEAF_F)).unwrap();
        assert_eq!(d.summary_cache_misses, 0);
    }

    #[test]
    fn row_diff_counts_adds_removes_changes() {
        let mut s = AnalysisSession::new(AnalysisOptions::default());
        s.update(&files(LEAF_F)).unwrap();
        let d = s.update(&files(LEAF_F_EDITED)).unwrap();
        // The leaf edit shrinks its DEF region: same row identity, new
        // bounds — a change, not an add/remove pair.
        assert!(d.rows_changed > 0, "{d:?}");
    }
}
