//! End-to-end driver: sources → compiled program → IPA → `.rgn`/`.dgn`/`.cfg`.
//!
//! Mirrors the paper's usage recipe: "Modify the Makefile of the application
//! to use the OpenUH compiler with interprocedural array analysis
//! (-IPA:array_section:array_summary) ... as well as the (-dragon) flag.
//! Compile the application. A bunch of files will be generated that includes
//! .dgn, .cfg and .rgn files."

use crate::cfg::Cfg;
use crate::dgn::DgnProject;
use crate::row::RgnRow;
use crate::session::AnalysisSession;
use frontend::{SourceFile, DEFAULT_LAYOUT_BASE};
use ipa::{CallGraph, IpaResult};
use support::budget::BudgetConfig;
use support::{Error, Result};
use whirl::Program;

/// Analysis knobs — the `-IPA:array_section` / `-dragon` flag family.
///
/// Construct via [`AnalysisOptions::builder`] (or [`Default`]); the struct
/// is `#[non_exhaustive]` so new knobs can be added without breaking
/// downstream construction sites.
///
/// ```
/// use araa::AnalysisOptions;
///
/// let opts = AnalysisOptions::builder()
///     .threads(4)
///     .include_propagated(false)
///     .build();
/// assert_eq!(opts.threads, 4);
/// assert!(!opts.include_propagated);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Base address for the static data layout (`Mem_Loc` column).
    pub layout_base: u64,
    /// Include interprocedurally-propagated rows.
    pub include_propagated: bool,
    /// Worker threads for the IPL phase (1 = serial).
    pub threads: usize,
    /// Resource budgets bounding each per-procedure analysis. Exhaustion
    /// widens regions conservatively instead of failing.
    pub budget: BudgetConfig,
    /// Allocation ceiling for one update, in mebibytes (`None` =
    /// unlimited). Charged at the same checkpoints as `budget`; exhaustion
    /// widens the remaining regions conservatively and records a
    /// `memory`-stage [`Degradation`]. Accounting only moves when a
    /// counting global allocator is installed (the `dragon` binary does).
    pub mem_budget_mb: Option<u64>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            layout_base: DEFAULT_LAYOUT_BASE,
            include_propagated: true,
            threads: 1,
            budget: BudgetConfig::default(),
            mem_budget_mb: None,
        }
    }
}

impl AnalysisOptions {
    /// Starts a builder seeded with the defaults.
    pub fn builder() -> AnalysisOptionsBuilder {
        AnalysisOptionsBuilder { opts: AnalysisOptions::default() }
    }
}

/// Builder for [`AnalysisOptions`]. Every knob defaults to
/// [`AnalysisOptions::default`]; set only what you need and [`build`](Self::build).
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptionsBuilder {
    opts: AnalysisOptions,
}

impl AnalysisOptionsBuilder {
    /// Worker threads for the IPL phase (1 = serial).
    pub fn threads(mut self, n: usize) -> Self {
        self.opts.threads = n;
        self
    }

    /// Base address for the static data layout (`Mem_Loc` column).
    pub fn layout_base(mut self, base: u64) -> Self {
        self.opts.layout_base = base;
        self
    }

    /// Whether interprocedurally-propagated rows are extracted.
    pub fn include_propagated(mut self, yes: bool) -> Self {
        self.opts.include_propagated = yes;
        self
    }

    /// Resource budgets bounding each per-procedure analysis.
    pub fn budget(mut self, budget: BudgetConfig) -> Self {
        self.opts.budget = budget;
        self
    }

    /// Allocation ceiling for one update, in mebibytes (`None` = unlimited).
    pub fn mem_budget_mb(mut self, mb: Option<u64>) -> Self {
        self.opts.mem_budget_mb = mb;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> AnalysisOptions {
        self.opts
    }
}

/// One contained failure: a pipeline stage could not complete for one
/// procedure (or one cross-cutting pass) and a conservative substitute was
/// used instead. The analysis result is still sound — just less precise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The affected procedure's display name, or a `(...)`-wrapped pass
    /// name for failures not attributable to one procedure.
    pub proc: String,
    /// The stage that degraded: `parse`, `sema`, `ipl`, `budget`,
    /// `memory`, `ipa`, `extract`, or `lint`.
    pub stage: String,
    /// Human-readable cause.
    pub detail: String,
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.stage, self.proc, self.detail)
    }
}

impl Degradation {
    pub(crate) fn from_frontend(e: &Error) -> Degradation {
        match e {
            Error::Degraded { proc, stage, detail } => Degradation {
                proc: proc.clone(),
                stage: stage.clone(),
                detail: detail.clone(),
            },
            Error::Lex { .. } | Error::Parse { .. } => Degradation {
                proc: "(frontend)".to_string(),
                stage: "parse".to_string(),
                detail: e.to_string(),
            },
            _ => Degradation {
                proc: "(frontend)".to_string(),
                stage: "sema".to_string(),
                detail: e.to_string(),
            },
        }
    }
}

/// Everything the compiler side produces for Dragon.
///
/// ```
/// use araa::{Analysis, AnalysisOptions};
///
/// // Analyze the paper's matrix.c and check a Fig. 9 row.
/// let analysis = Analysis::analyze(
///     &[workloads::fig10::source()],
///     AnalysisOptions::default(),
/// )
/// .unwrap();
/// let strided = analysis
///     .rows
///     .iter()
///     .find(|r| r.stride == "2")
///     .expect("the strided USE row");
/// assert_eq!((strided.lb.as_str(), strided.ub.as_str()), ("2", "6"));
/// assert_eq!(strided.acc_density, 3);
/// ```
#[derive(Debug)]
pub struct Analysis {
    /// The compiled program (H WHIRL, laid out).
    pub program: Program,
    /// The call graph.
    pub callgraph: CallGraph,
    /// Per-procedure summaries after propagation.
    pub ipa: IpaResult,
    /// The extracted `.rgn` rows.
    pub rows: Vec<RgnRow>,
    /// Every failure contained during the run, in pipeline order. Empty for
    /// a clean run; non-empty means some results are conservative
    /// approximations (see each entry's stage and detail).
    pub degradations: Vec<Degradation>,
}

impl Analysis {
    /// Runs the whole pipeline on any iterable of sources — owned or
    /// borrowed [`SourceFile`]s, or generated workload sources
    /// ([`workloads::GenSource`]).
    ///
    /// Every stage is fault-isolated per procedure: a parse error drops one
    /// statement or unit, a panic or budget exhaustion in IPL degrades one
    /// procedure's summary to a conservative whole-array approximation, a
    /// propagation failure falls back to unpropagated local summaries, and
    /// an extraction failure drops one procedure's rows. Each incident is
    /// recorded in [`Analysis::degradations`]. `Err` is reserved for total
    /// failures (nothing parseable at all).
    ///
    /// This is a one-shot cold start of an [`AnalysisSession`]; keep the
    /// session itself when you expect to re-analyze edited sources.
    pub fn analyze<I>(sources: I, opts: AnalysisOptions) -> Result<Analysis>
    where
        I: IntoIterator,
        I::Item: Into<SourceFile>,
    {
        let mut session = AnalysisSession::new(opts);
        session.update(sources)?;
        session
            .into_analysis()
            .ok_or_else(|| Error::Analysis("analysis session kept no result".to_string()))
    }

    /// Runs the pipeline on a slice of source files.
    #[deprecated(since = "0.2.0", note = "use `Analysis::analyze`")]
    pub fn run(sources: &[SourceFile], opts: AnalysisOptions) -> Result<Analysis> {
        Self::analyze(sources, opts)
    }

    /// True when any stage degraded during the run.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// A human-readable degradation report, one line per incident
    /// (`[stage] proc: detail`). Empty string for a clean run.
    pub fn degradation_report(&self) -> String {
        let mut out = String::new();
        for d in &self.degradations {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Convenience: analyze generated workloads.
    #[deprecated(since = "0.2.0", note = "use `Analysis::analyze`")]
    pub fn run_generated(
        sources: &[workloads::GenSource],
        opts: AnalysisOptions,
    ) -> Result<Analysis> {
        Self::analyze(sources, opts)
    }

    /// The `.rgn` document.
    pub fn rgn_document(&self) -> String {
        crate::rgn::write_rgn(&self.rows)
    }

    /// The `.dgn` project document.
    pub fn dgn_document(&self) -> String {
        DgnProject::from_program(&self.program, &self.callgraph).write()
    }

    /// The `.cfg` document: concatenated DOT CFGs, one per procedure,
    /// finished with a `#checksum` trailer (`#` is a DOT comment).
    pub fn cfg_document(&self) -> String {
        let mut out = String::new();
        for proc in self.program.procedures.iter() {
            let name = self.program.name_of(proc.name);
            out.push_str(&Cfg::build(proc).to_dot(name));
            out.push('\n');
        }
        support::persist::append_text_checksum(&mut out);
        out
    }

    /// Writes `<stem>.rgn`, `<stem>.dgn` and `<stem>.cfg` under `dir`.
    ///
    /// Each file is written atomically (temp file + fsync + rename): a crash
    /// or full disk mid-write leaves either the previous artifact or the new
    /// one, never a truncated hybrid that a later Dragon load would choke on.
    pub fn write_project(&self, dir: &std::path::Path, stem: &str) -> Result<()> {
        let _span = support::obs::span("write.project");
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
        for (ext, doc) in [
            ("rgn", self.rgn_document()),
            ("dgn", self.dgn_document()),
            ("cfg", self.cfg_document()),
        ] {
            let path = dir.join(format!("{stem}.{ext}"));
            support::persist::atomic_write(&path, doc.as_bytes())?;
        }
        Ok(())
    }

    /// Rows for one procedure scope (by display name).
    pub fn rows_for_proc(&self, display: &str) -> Vec<&RgnRow> {
        self.rows.iter().filter(|r| r.proc == display).collect()
    }

    /// Rows for the `@` global scope.
    pub fn global_rows(&self) -> Vec<&RgnRow> {
        self.rows.iter().filter(|r| r.is_global).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regions::access::AccessMode;

    fn analyze_mini_lu() -> Analysis {
        Analysis::analyze(&workloads::mini_lu::sources(), AnalysisOptions::default())
            .unwrap()
    }

    #[test]
    fn mini_lu_compiles_and_has_24_procedures() {
        let a = analyze_mini_lu();
        assert_eq!(a.program.procedure_count(), 24);
        assert_eq!(a.callgraph.size(), 24);
    }

    #[test]
    fn table2_xcr_rows() {
        let a = analyze_mini_lu();
        let verify_rows = a.rows_for_proc("verify");
        let xcr_use: Vec<_> = verify_rows
            .iter()
            .filter(|r| r.array == "xcr" && r.mode == AccessMode::Use)
            .collect();
        // Fig. 12: four USE rows, refs 4, region 1:5, 40 bytes, AD 10.
        assert_eq!(xcr_use.len(), 4, "{xcr_use:#?}");
        for r in &xcr_use {
            assert_eq!(r.refs, 4);
            assert_eq!((r.lb.as_str(), r.ub.as_str(), r.stride.as_str()), ("1", "5", "1"));
            assert_eq!(r.elem_size, 8);
            assert_eq!(r.data_type, "double");
            assert_eq!(r.dim_size, "5");
            assert_eq!(r.tot_size, 5);
            assert_eq!(r.size_bytes, 40);
            assert_eq!(r.acc_density, 10);
            assert_eq!(r.file, "verify.o");
        }
        // Table II: the FORMAL row with AD 2.
        let formal = verify_rows
            .iter()
            .find(|r| r.array == "xcr" && r.mode == AccessMode::Formal)
            .unwrap();
        assert_eq!(formal.refs, 1);
        assert_eq!(formal.acc_density, 2);
        assert_eq!((formal.lb.as_str(), formal.ub.as_str()), ("1", "5"));
        // Both xcr and xce resolve to caller addresses; distinct arrays get
        // distinct locations (b79edfa0 vs b79ef7e0 in the paper).
        let xce_use = verify_rows
            .iter()
            .find(|r| r.array == "xce" && r.mode == AccessMode::Use)
            .unwrap();
        assert_ne!(xcr_use[0].mem_loc, "0");
        assert_ne!(xce_use.mem_loc, "0");
        assert_ne!(xcr_use[0].mem_loc, xce_use.mem_loc);
    }

    #[test]
    fn table3_u_rows() {
        let a = analyze_mini_lu();
        let rhs_rows = a.rows_for_proc("rhs");
        let u_use: Vec<_> = rhs_rows
            .iter()
            .filter(|r| r.array == "u" && r.mode == AccessMode::Use)
            .collect();
        assert_eq!(u_use.len(), workloads::mini_lu::U_USE_REFS);
        for r in &u_use {
            // Fig. 14 / Table III constants.
            assert_eq!(r.refs, 110);
            assert_eq!(r.dims, 4);
            assert_eq!(r.elem_size, 8);
            assert_eq!(r.data_type, "double");
            assert_eq!(r.dim_size, "64|65|65|5");
            assert_eq!(r.tot_size, 1_352_000);
            assert_eq!(r.size_bytes, 10_816_000);
            assert_eq!(r.acc_density, 0);
            assert_eq!(r.file, "rhs.o");
            assert!(r.is_global);
            // Every row covers (1:3, 1:5, 1:10, c:c) with c in 1..=4.
            assert!(r.lb.starts_with("1|1|1|"), "{r:?}");
            assert!(r.ub.starts_with("3|5|10|"), "{r:?}");
        }
        // The separately-accessed last dimension spans 1..=4 overall.
        let mut last_dims: Vec<&str> =
            u_use.iter().map(|r| r.ub.rsplit('|').next().unwrap()).collect();
        last_dims.sort_unstable();
        last_dims.dedup();
        assert_eq!(last_dims, ["1", "2", "3", "4"]);
    }

    #[test]
    fn class_hotspot_row() {
        let a = analyze_mini_lu();
        let class_def = a
            .rows
            .iter()
            .find(|r| r.array == "class" && r.mode == AccessMode::Def)
            .unwrap();
        // Fig. 12 row 9: char, elem 1, dims 1, 1:1, refs 9, AD 900.
        assert_eq!(class_def.refs, 9);
        assert_eq!(class_def.data_type, "char");
        assert_eq!(class_def.elem_size, 1);
        assert_eq!(class_def.size_bytes, 1);
        assert_eq!(class_def.acc_density, 900);
        assert_eq!((class_def.lb.as_str(), class_def.ub.as_str()), ("1", "1"));
    }

    #[test]
    fn project_files_round_trip_on_disk() {
        let a = Analysis::analyze(
            &[workloads::fig10::source()],
            AnalysisOptions::default(),
        )
        .unwrap();
        let dir = support::testdir::TestDir::new("project");
        a.write_project(dir.path(), "matrix").unwrap();
        let rgn = std::fs::read_to_string(dir.join("matrix.rgn")).unwrap();
        let rows = crate::rgn::read_rgn(&rgn).unwrap();
        assert_eq!(rows.len(), a.rows.len());
        let dgn = std::fs::read_to_string(dir.join("matrix.dgn")).unwrap();
        assert!(DgnProject::read(&dgn).is_ok());
        let cfg = std::fs::read_to_string(dir.join("matrix.cfg")).unwrap();
        assert!(cfg.contains("digraph"));
        // No temp-file litter: atomic writes cleaned up after themselves.
        let names: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 3, "{names:?}");
    }

    #[test]
    fn parallel_threads_match_serial() {
        let srcs = workloads::mini_lu::sources();
        let serial = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
        let parallel = Analysis::analyze(
            &srcs,
            AnalysisOptions::builder().threads(4).build(),
        )
        .unwrap();
        assert_eq!(serial.rows.len(), parallel.rows.len());
        assert_eq!(serial.rows, parallel.rows);
    }

    #[test]
    fn clean_run_has_no_degradations() {
        let a = analyze_mini_lu();
        assert!(!a.degraded(), "{}", a.degradation_report());
        assert!(a.degradation_report().is_empty());
    }

    #[test]
    fn broken_procedure_degrades_not_fails() {
        // One unit has a syntax error; the other two must still produce
        // rows, and the incident must be reported.
        let src = "\
program main
  real a(10)
  common /c/ a
  call fill
end
subroutine fill
  real a(10)
  common /c/ a
  integer i
  do i = 1, 10
    a(i) = 0.0
  end do
end
subroutine broken
  integer i
  i = = 1
end
";
        let a = Analysis::analyze(
            &[SourceFile::new("mix.f", src, whirl::Lang::Fortran)],
            AnalysisOptions::default(),
        )
        .unwrap();
        assert!(a.degraded());
        assert!(a.degradations.iter().any(|d| d.stage == "parse"), "{:?}", a.degradations);
        assert!(a.rows.iter().any(|r| r.proc == "fill"), "fill still has rows");
    }

    #[test]
    fn tiny_budget_degrades_not_fails() {
        let a = Analysis::analyze(
            &workloads::mini_lu::sources(),
            AnalysisOptions::builder()
                .budget(support::budget::BudgetConfig::tiny())
                .build(),
        )
        .unwrap();
        // Every procedure still has a summary and the run completes; any
        // exhaustion shows up as budget degradations, never as an error.
        assert_eq!(a.program.procedure_count(), 24);
        assert!(a.degradations.iter().all(|d| d.stage == "budget"), "{:?}", a.degradations);
    }

    #[test]
    fn totally_bad_source_still_fails() {
        let err = Analysis::analyze(
            &[SourceFile::new("bad.f", "subroutine\n", whirl::Lang::Fortran)],
            AnalysisOptions::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_analyze() {
        let via_shim =
            Analysis::run_generated(&[workloads::fig10::source()], AnalysisOptions::default())
                .unwrap();
        let direct =
            Analysis::analyze(&[workloads::fig10::source()], AnalysisOptions::default())
                .unwrap();
        assert_eq!(via_shim.rows, direct.rows);
        let files = [SourceFile::new(
            "t.f",
            "subroutine s\n  real a(5)\n  common /c/ a\n  a(3) = 1.0\nend\n",
            whirl::Lang::Fortran,
        )];
        let a = Analysis::run(&files, AnalysisOptions::default()).unwrap();
        assert!(!a.rows.is_empty());
    }

    #[test]
    fn degradation_report_format() {
        let d = Degradation {
            proc: "lu_factor".to_string(),
            stage: "ipl".to_string(),
            detail: "worker panicked".to_string(),
        };
        assert_eq!(d.to_string(), "[ipl] lu_factor: worker panicked");
    }

    #[test]
    fn write_project_reports_dir_creation_context() {
        // Satellite: dir-creation failure surfaces the path in the error.
        let a = Analysis::analyze(
            &[workloads::fig10::source()],
            AnalysisOptions::default(),
        )
        .unwrap();
        let dir = support::testdir::TestDir::new("not-a-dir");
        let file = dir.join("blocker");
        std::fs::write(&file, b"x").unwrap();
        let err = a.write_project(&file.join("sub"), "matrix").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("creating"), "{msg}");
        assert!(msg.contains("blocker"), "{msg}");
    }

    #[test]
    fn global_scope_filter() {
        let a = analyze_mini_lu();
        let globals = a.global_rows();
        assert!(globals.iter().all(|r| r.is_global));
        assert!(globals.iter().any(|r| r.array == "u"));
        assert!(!globals.iter().any(|r| r.array == "xcr"), "xcr is a formal/local");
    }
}
