//! End-to-end driver: sources → compiled program → IPA → `.rgn`/`.dgn`/`.cfg`.
//!
//! Mirrors the paper's usage recipe: "Modify the Makefile of the application
//! to use the OpenUH compiler with interprocedural array analysis
//! (-IPA:array_section:array_summary) ... as well as the (-dragon) flag.
//! Compile the application. A bunch of files will be generated that includes
//! .dgn, .cfg and .rgn files."

use crate::cfg::Cfg;
use crate::dgn::DgnProject;
use crate::extract::{extract_rows, ExtractOptions};
use crate::row::RgnRow;
use frontend::{SourceFile, DEFAULT_LAYOUT_BASE};
use ipa::{CallGraph, IpaResult};
use support::{Error, Result};
use whirl::Program;

/// Analysis knobs — the `-IPA:array_section` / `-dragon` flag family.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Base address for the static data layout (`Mem_Loc` column).
    pub layout_base: u64,
    /// Include interprocedurally-propagated rows.
    pub include_propagated: bool,
    /// Worker threads for the IPL phase (1 = serial).
    pub threads: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            layout_base: DEFAULT_LAYOUT_BASE,
            include_propagated: true,
            threads: 1,
        }
    }
}

/// Everything the compiler side produces for Dragon.
///
/// ```
/// use araa::{Analysis, AnalysisOptions};
///
/// // Analyze the paper's matrix.c and check a Fig. 9 row.
/// let analysis = Analysis::run_generated(
///     &[workloads::fig10::source()],
///     AnalysisOptions::default(),
/// )
/// .unwrap();
/// let strided = analysis
///     .rows
///     .iter()
///     .find(|r| r.stride == "2")
///     .expect("the strided USE row");
/// assert_eq!((strided.lb.as_str(), strided.ub.as_str()), ("2", "6"));
/// assert_eq!(strided.acc_density, 3);
/// ```
#[derive(Debug)]
pub struct Analysis {
    /// The compiled program (H WHIRL, laid out).
    pub program: Program,
    /// The call graph.
    pub callgraph: CallGraph,
    /// Per-procedure summaries after propagation.
    pub ipa: IpaResult,
    /// The extracted `.rgn` rows.
    pub rows: Vec<RgnRow>,
}

impl Analysis {
    /// Runs the whole pipeline on a set of sources.
    pub fn run(sources: &[SourceFile], opts: AnalysisOptions) -> Result<Analysis> {
        let program = frontend::compile_to_h(sources, opts.layout_base)?;
        let (callgraph, ipa) = if opts.threads > 1 {
            ipa::parallel::analyze_parallel(&program, opts.threads)
        } else {
            ipa::analyze(&program)
        };
        let rows = extract_rows(
            &program,
            &callgraph,
            &ipa,
            ExtractOptions { include_propagated: opts.include_propagated },
        );
        Ok(Analysis { program, callgraph, ipa, rows })
    }

    /// Convenience: analyze generated workloads.
    pub fn run_generated(
        sources: &[workloads::GenSource],
        opts: AnalysisOptions,
    ) -> Result<Analysis> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|g| {
                SourceFile::new(
                    &g.name,
                    &g.text,
                    if g.fortran { whirl::Lang::Fortran } else { whirl::Lang::C },
                )
            })
            .collect();
        Self::run(&files, opts)
    }

    /// The `.rgn` document.
    pub fn rgn_document(&self) -> String {
        crate::rgn::write_rgn(&self.rows)
    }

    /// The `.dgn` project document.
    pub fn dgn_document(&self) -> String {
        DgnProject::from_program(&self.program, &self.callgraph).write()
    }

    /// The `.cfg` document: concatenated DOT CFGs, one per procedure.
    pub fn cfg_document(&self) -> String {
        let mut out = String::new();
        for proc in self.program.procedures.iter() {
            let name = self.program.name_of(proc.name);
            out.push_str(&Cfg::build(proc).to_dot(name));
            out.push('\n');
        }
        out
    }

    /// Writes `<stem>.rgn`, `<stem>.dgn` and `<stem>.cfg` under `dir`.
    pub fn write_project(&self, dir: &std::path::Path, stem: &str) -> Result<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::io(format!("creating {}", dir.display()), e))?;
        for (ext, doc) in [
            ("rgn", self.rgn_document()),
            ("dgn", self.dgn_document()),
            ("cfg", self.cfg_document()),
        ] {
            let path = dir.join(format!("{stem}.{ext}"));
            std::fs::write(&path, doc)
                .map_err(|e| Error::io(format!("writing {}", path.display()), e))?;
        }
        Ok(())
    }

    /// Rows for one procedure scope (by display name).
    pub fn rows_for_proc(&self, display: &str) -> Vec<&RgnRow> {
        self.rows.iter().filter(|r| r.proc == display).collect()
    }

    /// Rows for the `@` global scope.
    pub fn global_rows(&self) -> Vec<&RgnRow> {
        self.rows.iter().filter(|r| r.is_global).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regions::access::AccessMode;

    fn analyze_mini_lu() -> Analysis {
        Analysis::run_generated(&workloads::mini_lu::sources(), AnalysisOptions::default())
            .unwrap()
    }

    #[test]
    fn mini_lu_compiles_and_has_24_procedures() {
        let a = analyze_mini_lu();
        assert_eq!(a.program.procedure_count(), 24);
        assert_eq!(a.callgraph.size(), 24);
    }

    #[test]
    fn table2_xcr_rows() {
        let a = analyze_mini_lu();
        let verify_rows = a.rows_for_proc("verify");
        let xcr_use: Vec<_> = verify_rows
            .iter()
            .filter(|r| r.array == "xcr" && r.mode == AccessMode::Use)
            .collect();
        // Fig. 12: four USE rows, refs 4, region 1:5, 40 bytes, AD 10.
        assert_eq!(xcr_use.len(), 4, "{xcr_use:#?}");
        for r in &xcr_use {
            assert_eq!(r.refs, 4);
            assert_eq!((r.lb.as_str(), r.ub.as_str(), r.stride.as_str()), ("1", "5", "1"));
            assert_eq!(r.elem_size, 8);
            assert_eq!(r.data_type, "double");
            assert_eq!(r.dim_size, "5");
            assert_eq!(r.tot_size, 5);
            assert_eq!(r.size_bytes, 40);
            assert_eq!(r.acc_density, 10);
            assert_eq!(r.file, "verify.o");
        }
        // Table II: the FORMAL row with AD 2.
        let formal = verify_rows
            .iter()
            .find(|r| r.array == "xcr" && r.mode == AccessMode::Formal)
            .unwrap();
        assert_eq!(formal.refs, 1);
        assert_eq!(formal.acc_density, 2);
        assert_eq!((formal.lb.as_str(), formal.ub.as_str()), ("1", "5"));
        // Both xcr and xce resolve to caller addresses; distinct arrays get
        // distinct locations (b79edfa0 vs b79ef7e0 in the paper).
        let xce_use = verify_rows
            .iter()
            .find(|r| r.array == "xce" && r.mode == AccessMode::Use)
            .unwrap();
        assert_ne!(xcr_use[0].mem_loc, "0");
        assert_ne!(xce_use.mem_loc, "0");
        assert_ne!(xcr_use[0].mem_loc, xce_use.mem_loc);
    }

    #[test]
    fn table3_u_rows() {
        let a = analyze_mini_lu();
        let rhs_rows = a.rows_for_proc("rhs");
        let u_use: Vec<_> = rhs_rows
            .iter()
            .filter(|r| r.array == "u" && r.mode == AccessMode::Use)
            .collect();
        assert_eq!(u_use.len(), workloads::mini_lu::U_USE_REFS);
        for r in &u_use {
            // Fig. 14 / Table III constants.
            assert_eq!(r.refs, 110);
            assert_eq!(r.dims, 4);
            assert_eq!(r.elem_size, 8);
            assert_eq!(r.data_type, "double");
            assert_eq!(r.dim_size, "64|65|65|5");
            assert_eq!(r.tot_size, 1_352_000);
            assert_eq!(r.size_bytes, 10_816_000);
            assert_eq!(r.acc_density, 0);
            assert_eq!(r.file, "rhs.o");
            assert!(r.is_global);
            // Every row covers (1:3, 1:5, 1:10, c:c) with c in 1..=4.
            assert!(r.lb.starts_with("1|1|1|"), "{r:?}");
            assert!(r.ub.starts_with("3|5|10|"), "{r:?}");
        }
        // The separately-accessed last dimension spans 1..=4 overall.
        let mut last_dims: Vec<&str> =
            u_use.iter().map(|r| r.ub.rsplit('|').next().unwrap()).collect();
        last_dims.sort_unstable();
        last_dims.dedup();
        assert_eq!(last_dims, ["1", "2", "3", "4"]);
    }

    #[test]
    fn class_hotspot_row() {
        let a = analyze_mini_lu();
        let class_def = a
            .rows
            .iter()
            .find(|r| r.array == "class" && r.mode == AccessMode::Def)
            .unwrap();
        // Fig. 12 row 9: char, elem 1, dims 1, 1:1, refs 9, AD 900.
        assert_eq!(class_def.refs, 9);
        assert_eq!(class_def.data_type, "char");
        assert_eq!(class_def.elem_size, 1);
        assert_eq!(class_def.size_bytes, 1);
        assert_eq!(class_def.acc_density, 900);
        assert_eq!((class_def.lb.as_str(), class_def.ub.as_str()), ("1", "1"));
    }

    #[test]
    fn project_files_round_trip_on_disk() {
        let a = Analysis::run_generated(
            &[workloads::fig10::source()],
            AnalysisOptions::default(),
        )
        .unwrap();
        let dir = std::env::temp_dir().join("araa_test_project");
        a.write_project(&dir, "matrix").unwrap();
        let rgn = std::fs::read_to_string(dir.join("matrix.rgn")).unwrap();
        let rows = crate::rgn::read_rgn(&rgn).unwrap();
        assert_eq!(rows.len(), a.rows.len());
        let dgn = std::fs::read_to_string(dir.join("matrix.dgn")).unwrap();
        assert!(DgnProject::read(&dgn).is_ok());
        let cfg = std::fs::read_to_string(dir.join("matrix.cfg")).unwrap();
        assert!(cfg.contains("digraph"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_threads_match_serial() {
        let srcs = workloads::mini_lu::sources();
        let serial = Analysis::run_generated(&srcs, AnalysisOptions::default()).unwrap();
        let parallel = Analysis::run_generated(
            &srcs,
            AnalysisOptions { threads: 4, ..Default::default() },
        )
        .unwrap();
        assert_eq!(serial.rows.len(), parallel.rows.len());
        assert_eq!(serial.rows, parallel.rows);
    }

    #[test]
    fn global_scope_filter() {
        let a = analyze_mini_lu();
        let globals = a.global_rows();
        assert!(globals.iter().all(|r| r.is_global));
        assert!(globals.iter().any(|r| r.array == "u"));
        assert!(!globals.iter().any(|r| r.array == "xcr"), "xcr is a formal/local");
    }
}
