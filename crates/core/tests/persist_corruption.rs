//! Corruption corpus for everything the tool writes: `.rgn` and `.dgn`
//! artifacts and the binary session-cache containers. Exhaustive single-byte
//! flips and truncations, garbage appends, and arbitrary byte soup — nothing
//! may panic, detectable damage must be rejected, and a session pointed at a
//! mangled cache must degrade (quarantine + recompute), never produce wrong
//! rows.

use araa::dgn::DgnProject;
use araa::rgn::read_rgn;
use araa::{Analysis, AnalysisOptions, AnalysisSession};
use proptest::prelude::*;
use support::testdir::TestDir;
use workloads::GenSource;

const PROG_F: &str = "\
program main
  real a(20)
  common /g/ a
  integer i
  do i = 1, 10
    a(i) = 0.0
  end do
  call leaf
end
";
const LEAF_F: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  a(11) = 1.0
end
";

fn sources() -> Vec<GenSource> {
    vec![GenSource::fortran("main.f", PROG_F), GenSource::fortran("leaf.f", LEAF_F)]
}

fn analysis() -> Analysis {
    Analysis::analyze(&sources(), AnalysisOptions::default()).expect("analyze")
}

// ---------------------------------------------------------------------------
// Text artifacts (.rgn / .dgn)
// ---------------------------------------------------------------------------

#[test]
fn rgn_every_single_byte_flip_is_rejected() {
    let doc = analysis().rgn_document();
    let bytes = doc.as_bytes();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x20, 0x80] {
            let mut mutated = bytes.to_vec();
            mutated[at] ^= mask;
            // A flip that breaks UTF-8 can't even become a document —
            // that counts as detected.
            let Ok(text) = std::str::from_utf8(&mutated) else { continue };
            assert!(
                read_rgn(text).is_err(),
                "flip {mask:#04x} at byte {at} was silently accepted"
            );
        }
    }
}

#[test]
fn dgn_every_single_byte_flip_is_rejected() {
    let a = analysis();
    let doc = DgnProject::from_program(&a.program, &a.callgraph).write();
    let bytes = doc.as_bytes();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x20, 0x80] {
            let mut mutated = bytes.to_vec();
            mutated[at] ^= mask;
            let Ok(text) = std::str::from_utf8(&mutated) else { continue };
            assert!(
                DgnProject::read(text).is_err(),
                "flip {mask:#04x} at byte {at} was silently accepted"
            );
        }
    }
}

#[test]
fn rgn_and_dgn_truncations_never_panic() {
    let a = analysis();
    let rgn = a.rgn_document();
    let dgn = DgnProject::from_program(&a.program, &a.callgraph).write();
    for doc in [&rgn, &dgn] {
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            // Truncated documents either fail or (when the cut removed the
            // whole trailer line cleanly) parse a prefix — never panic.
            let _ = read_rgn(&doc[..cut]);
            let _ = DgnProject::read(&doc[..cut]);
        }
    }
}

#[test]
fn garbage_appended_to_artifacts_is_rejected() {
    let a = analysis();
    let rgn = a.rgn_document();
    let dgn = DgnProject::from_program(&a.program, &a.callgraph).write();
    for junk in ["x", "a,b,c\n", "#checksum,0000000000000000\n", "\n\n\n"] {
        assert!(read_rgn(&format!("{rgn}{junk}")).is_err(), "append {junk:?}");
        assert!(DgnProject::read(&format!("{dgn}{junk}")).is_err(), "append {junk:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rgn_reader_never_panics_on_soup(doc in "\\PC*") {
        let _ = read_rgn(&doc);
    }

    #[test]
    fn dgn_reader_never_panics_on_soup(doc in "\\PC*") {
        let _ = DgnProject::read(&doc);
    }
}

// ---------------------------------------------------------------------------
// Binary cache containers
// ---------------------------------------------------------------------------

/// Seeds one cache dir and returns (manifest bytes, one entry's bytes and
/// name, cold-oracle rows).
fn seeded_cache_bytes() -> (Vec<u8>, Vec<u8>, String, Vec<araa::RgnRow>) {
    let dir = TestDir::new("corrupt-seed");
    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    s.update(&sources()).expect("update");
    assert!(s.persist());
    let oracle = s.into_analysis().expect("analysis").rows;
    let manifest = std::fs::read(dir.join("manifest.araa")).expect("manifest");
    let entry = std::fs::read_dir(dir.path())
        .expect("dir")
        .flatten()
        .find(|e| {
            let n = e.file_name();
            let n = n.to_string_lossy();
            n.starts_with('e') && n.ends_with(".araa")
        })
        .expect("an entry file");
    let name = entry.file_name().to_string_lossy().into_owned();
    let bytes = std::fs::read(entry.path()).expect("entry");
    (manifest, bytes, name, oracle)
}

/// Loads a session over a cache dir holding `manifest` and `entry`, then
/// updates and checks the rows against the oracle. The cache may be arbitrarily
/// mangled; the *analysis* must come out right regardless.
fn load_update_and_check(
    manifest: &[u8],
    entry: &[u8],
    entry_name: &str,
    oracle: &[araa::RgnRow],
) {
    let dir = TestDir::new("corrupt-case");
    std::fs::write(dir.join("manifest.araa"), manifest).expect("write manifest");
    std::fs::write(dir.join(entry_name), entry).expect("write entry");
    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    s.load();
    s.update(&sources()).expect("update");
    assert_eq!(s.analysis().expect("analysis").rows, oracle);
}

#[test]
fn manifest_byte_flips_degrade_never_lie() {
    let (manifest, entry, name, oracle) = seeded_cache_bytes();
    // Every 7th position covers header, kind, fingerprint, payload and
    // footer regions without an O(n·analysis) blowup.
    for at in (0..manifest.len()).step_by(7) {
        let mut m = manifest.clone();
        m[at] ^= 0x10;
        load_update_and_check(&m, &entry, &name, &oracle);
    }
}

#[test]
fn entry_byte_flips_degrade_never_lie() {
    let (manifest, entry, name, oracle) = seeded_cache_bytes();
    for at in (0..entry.len()).step_by(7) {
        let mut e = entry.clone();
        e[at] ^= 0x10;
        load_update_and_check(&manifest, &e, &name, &oracle);
    }
}

#[test]
fn cache_truncations_and_appends_degrade_never_lie() {
    let (manifest, entry, name, oracle) = seeded_cache_bytes();
    for frac in [0, 1, 2, 3] {
        let cut = manifest.len() * frac / 4;
        load_update_and_check(&manifest[..cut], &entry, &name, &oracle);
        let cut = entry.len() * frac / 4;
        load_update_and_check(&manifest, &entry[..cut], &name, &oracle);
    }
    let mut appended = manifest.clone();
    appended.extend_from_slice(b"junk");
    load_update_and_check(&appended, &entry, &name, &oracle);
    let mut appended = entry.clone();
    appended.extend_from_slice(&[0u8; 16]);
    load_update_and_check(&manifest, &appended, &name, &oracle);
}

// ---------------------------------------------------------------------------
// Pre-`precision` schema fixtures (version skew, not corruption)
// ---------------------------------------------------------------------------

#[test]
fn rgn_pre_precision_schema_is_rejected_with_version_error() {
    // A well-formed version-2 document — old header without the trailing
    // `precision` column, valid checksum trailer. Nothing about it is
    // corrupt; it is merely from before the interval pass existed. Reading
    // it as if every row were exact would be a silent precision lie, so the
    // reader must reject it on the version record alone.
    let mut w = support::csv::CsvWriter::new();
    w.write_row(["#version", "2"]);
    let old_header: Vec<&str> =
        araa::RgnRow::HEADER.iter().copied().filter(|c| *c != "precision").collect();
    w.write_row(old_header.iter().copied());
    let mut doc = w.finish();
    support::persist::append_text_checksum(&mut doc);

    let err = read_rgn(&doc).expect_err("pre-precision schema must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("version 2"), "{msg}");
    assert!(msg.contains("precision"), "{msg}");

    // Unknown *future* versions are refused symmetrically.
    let future = doc.replace("#version,2", "#version,99");
    assert!(read_rgn(&future).is_err(), "future versions must not parse");
}

#[test]
fn old_version_cache_container_quarantines_and_recomputes() {
    let (manifest, entry, name, oracle) = seeded_cache_bytes();

    // Rewind the manifest's format version to 2 (pre-`precision` payload
    // layout) and re-seal the FNV footer so the container is structurally
    // pristine — the *only* thing wrong with it is its age. This is what a
    // cache directory written by the previous release looks like.
    let mut old = manifest.clone();
    old[8..12].copy_from_slice(&2u32.to_le_bytes());
    let body_len = old.len() - 8;
    let sum = support::hash::fnv1a(&old[..body_len]);
    old[body_len..].copy_from_slice(&sum.to_le_bytes());
    assert!(
        matches!(
            support::persist::read_container_loose(&old),
            Err(support::persist::ContainerError::BadVersion(2))
        ),
        "the re-sealed fixture must classify as version skew, not corruption"
    );

    // A session over the stale cache must quarantine the manifest
    // (classified as a version reject, never deleted blind) and recompute
    // the right rows.
    let dir = TestDir::new("corrupt-old-version");
    std::fs::write(dir.join("manifest.araa"), &old).expect("write manifest");
    std::fs::write(dir.join(&name), &entry).expect("write entry");
    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    s.load();
    s.update(&sources()).expect("update");
    assert_eq!(s.analysis().expect("analysis").rows, oracle);
    let quarantined: Vec<String> = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir must exist")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        quarantined.iter().any(|n| n.contains("version")),
        "stale entry must be quarantined with the version suffix: {quarantined:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cache_loader_never_breaks_on_soup(
        mbytes in proptest::collection::vec(0u8..=255u8, 0..256),
        ebytes in proptest::collection::vec(0u8..=255u8, 0..256),
    ) {
        let dir = TestDir::new("corrupt-soup");
        std::fs::write(dir.join("manifest.araa"), &mbytes).expect("write");
        std::fs::write(dir.join("e0123456789abcdef.araa"), &ebytes).expect("write");
        let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
        s.load();
        s.update(&sources()).expect("update");
        let oracle = Analysis::analyze(&sources(), AnalysisOptions::default())
            .expect("cold")
            .rows;
        prop_assert_eq!(&s.analysis().expect("analysis").rows, &oracle);
    }
}
