//! Concurrent-session robustness: two threads driving sessions against
//! the *same* on-disk store, contending on the `DirLock` — with and
//! without a crash injected in the middle of one thread's commit.
//!
//! The store's contract under contention is strict: operations may wait
//! (or, at worst, skip a persist and record an incident), but the store
//! never corrupts, never loses the last committed state, and a session
//! warmed afterwards is byte-identical to a cold run.

use araa::{Analysis, AnalysisOptions, AnalysisSession, SessionStore};
use std::sync::{Arc, Barrier, Mutex};
use support::testdir::TestDir;
use workloads::GenSource;

/// Serializes the tests in this binary: the fault-injection registry is
/// process-global, so an armed point must never leak into the plain
/// contention test running on a sibling thread.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

const MAIN_F: &str = "\
program main
  real a(20)
  common /g/ a
  integer i
  do i = 1, 10
    a(i) = 0.0
  end do
  call mid
end
";
const MID_F: &str = "\
subroutine mid
  real a(20)
  common /g/ a
  a(11) = 1.0
  call leaf
end
";
const LEAF_F: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 20
    a(i) = 2.0
  end do
end
";
const LEAF_F_EDITED: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 18
    a(i) = 2.0
  end do
end
";

fn files(leaf: &str) -> Vec<GenSource> {
    vec![
        GenSource::fortran("main.f", MAIN_F),
        GenSource::fortran("mid.f", MID_F),
        GenSource::fortran("leaf.f", leaf),
    ]
}

fn cold(sources: &[GenSource]) -> Analysis {
    Analysis::analyze(sources, AnalysisOptions::default()).expect("cold run")
}

fn assert_store_healthy(dir: &std::path::Path) {
    let report = SessionStore::new(dir, &AnalysisOptions::default())
        .verify()
        .expect("verify runs");
    assert!(report.clean(), "store corrupted: {:?}", report.problems);
    let quarantine: Vec<_> = std::fs::read_dir(dir.join("quarantine"))
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .collect();
    assert!(quarantine.is_empty(), "contention must not forge corruption: {quarantine:?}");
}

/// Two threads hammer the same store with interleaved load/update/persist
/// cycles on *different* source versions. Whatever interleaving the lock
/// arbitration produces, the store stays structurally sound and a fresh
/// warm session agrees with a cold oracle.
#[test]
fn two_threads_one_store_stay_consistent() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|p| p.into_inner());
    let dir = TestDir::new("sess-concurrent");
    let barrier = Arc::new(Barrier::new(2));

    let spawn_driver = |leaf: &'static str| {
        let path = dir.path().to_path_buf();
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            for _ in 0..3 {
                barrier.wait();
                let mut s =
                    AnalysisSession::with_cache_dir(AnalysisOptions::default(), &path);
                s.load();
                let sources = files(leaf);
                s.update(&sources).expect("update must succeed under contention");
                // A lock timeout may skip this persist (recorded as an
                // incident); it must never corrupt the store.
                s.persist();
            }
        })
    };

    let a = spawn_driver(LEAF_F);
    let b = spawn_driver(LEAF_F_EDITED);
    a.join().expect("thread A");
    b.join().expect("thread B");

    assert_store_healthy(dir.path());

    // Whichever version won the last commit, a warm session brought to a
    // known version matches the cold oracle exactly.
    let sources = files(LEAF_F);
    let mut warm = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    warm.load();
    warm.update(&sources).expect("warm update");
    let oracle = cold(&sources);
    let analysis = warm.analysis().expect("analysis");
    assert_eq!(analysis.rows, oracle.rows);
    assert_eq!(analysis.degradations, oracle.degradations);
}

#[cfg(feature = "fault-injection")]
mod faulty {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use support::faultpoint;

    /// One session dies mid-commit (after its entry files, before the
    /// manifest swap) while a second session contends for the same lock.
    /// The crash must be invisible to the survivor beyond losing the
    /// uncommitted delta: the old manifest still governs, the orphaned
    /// entries are swept by the next save, and the final state matches a
    /// cold run.
    #[test]
    fn mid_commit_crash_under_contention_leaves_store_recoverable() {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|p| p.into_inner());
        let dir = TestDir::new("sess-concurrent-fault");

        // Seed a committed v1 so the crash has prior state to protect.
        let mut seed =
            AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
        seed.update(&files(LEAF_F)).expect("seed update");
        assert!(seed.persist(), "seed persist: {:?}", seed.cache_incidents());
        drop(seed);

        faultpoint::arm("persist::pre_manifest", 1);
        let barrier = Arc::new(Barrier::new(2));
        let crasher = {
            let path = dir.path().to_path_buf();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut s =
                    AnalysisSession::with_cache_dir(AnalysisOptions::default(), &path);
                s.load();
                s.update(&files(LEAF_F_EDITED)).expect("update");
                // The armed point fires inside this commit; unwinding
                // releases the DirLock like a process death would.
                catch_unwind(AssertUnwindSafe(|| s.persist()))
            })
        };

        // The contender reads the store while the crasher commits and
        // dies, taking and releasing the same lock.
        barrier.wait();
        let mut contender =
            AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
        for _ in 0..5 {
            contender.load();
        }

        let crashed = crasher.join().expect("crasher thread");
        faultpoint::disarm_all();
        assert!(crashed.is_err(), "the armed faultpoint must fire in the crasher");

        // The survivor carries the store to v2 cleanly.
        contender.load();
        contender.update(&files(LEAF_F_EDITED)).expect("contender update");
        assert!(
            contender.persist(),
            "post-crash persist must succeed: {:?}",
            contender.cache_incidents()
        );

        assert_store_healthy(dir.path());
        let oracle = cold(&files(LEAF_F_EDITED));
        let mut warm =
            AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
        assert!(warm.load(), "manifest intact after mid-commit crash");
        warm.update(&files(LEAF_F_EDITED)).expect("warm update");
        let analysis = warm.analysis().expect("analysis");
        assert_eq!(analysis.rows, oracle.rows);
        assert_eq!(analysis.degradations, oracle.degradations);
    }
}
