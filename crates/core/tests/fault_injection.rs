//! Fault-injection tests of the pipeline's per-procedure isolation.
//!
//! Each test arms one named faultpoint (see `support::faultpoint`) so that
//! a pipeline stage panics mid-analysis, then asserts the contract of the
//! robustness work: the run still returns `Ok`, the failure shows up as a
//! structured degradation, and every *other* procedure still produces rows.
//!
//! Run with `cargo test -p araa --features fault-injection`.
#![cfg(feature = "fault-injection")]

use araa::{Analysis, AnalysisOptions};
use std::sync::Mutex;
use support::faultpoint;

/// The faultpoint registry is process-global and cargo runs tests on
/// multiple threads, so each test holds this lock while a point is armed.
static ARMED: Mutex<()> = Mutex::new(());

fn run_with_fault(point: &str, nth: u64, opts: AnalysisOptions) -> Analysis {
    let _guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::arm(point, nth);
    let result = Analysis::analyze(&workloads::mini_lu::sources(), opts);
    faultpoint::disarm_all();
    result.unwrap_or_else(|e| panic!("fault at {point} must degrade, not fail: {e}"))
}

/// Distinct procedures that produced at least one row.
fn procs_with_rows(a: &Analysis) -> usize {
    let mut names: Vec<&str> = a.rows.iter().map(|r| r.proc.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    names.len()
}

fn baseline() -> (usize, usize) {
    let a = Analysis::analyze(&workloads::mini_lu::sources(), AnalysisOptions::default())
        .expect("clean baseline");
    assert!(!a.degraded());
    (a.rows.len(), procs_with_rows(&a))
}

#[test]
fn panic_in_one_ipl_summary_spares_the_rest() {
    let (_, baseline_procs) = baseline();
    let a = run_with_fault("ipl::summarize", 1, AnalysisOptions::default());
    assert!(a.degraded(), "injected panic must surface as a degradation");
    assert!(
        a.degradations.iter().any(|d| d.stage == "ipl"),
        "expected an ipl-stage degradation: {:?}",
        a.degradations
    );
    assert!(
        a.degradations.iter().all(|d| d.detail.contains("fault injected")),
        "degradation detail should carry the panic message: {:?}",
        a.degradations
    );
    // The faulted procedure got a conservative summary, so rows survive for
    // at least every other procedure.
    assert!(
        procs_with_rows(&a) >= baseline_procs - 1,
        "one fault must not take out other procedures' rows"
    );
    assert!(!a.degradation_report().is_empty());
}

#[test]
fn panic_in_parallel_ipl_is_contained_too() {
    let (_, baseline_procs) = baseline();
    let opts = AnalysisOptions::builder().threads(4).build();
    let a = run_with_fault("ipl::summarize", 3, opts);
    assert!(a.degradations.iter().any(|d| d.stage == "ipl"));
    assert!(procs_with_rows(&a) >= baseline_procs - 1);
}

#[test]
fn panic_during_propagation_falls_back_to_local_summaries() {
    let a = run_with_fault("ipa::translate", 1, AnalysisOptions::default());
    assert!(
        a.degradations.iter().any(|d| d.stage == "ipa"),
        "expected an ipa-stage degradation: {:?}",
        a.degradations
    );
    // Local (non-propagated) summaries still yield rows for every procedure.
    let (_, baseline_procs) = baseline();
    assert_eq!(procs_with_rows(&a), baseline_procs);
}

#[test]
fn panic_inside_fourier_motzkin_degrades_one_procedure() {
    let (_, baseline_procs) = baseline();
    let a = run_with_fault("fm::eliminate", 1, AnalysisOptions::default());
    assert!(a.degraded());
    assert!(procs_with_rows(&a) >= baseline_procs - 1);
}

#[test]
fn panic_while_extracting_rows_keeps_other_procedures_rows() {
    let (baseline_rows, _) = baseline();
    let a = run_with_fault("extract::rows", 1, AnalysisOptions::default());
    assert!(
        a.degradations.iter().any(|d| d.stage == "extract"),
        "expected an extract-stage degradation: {:?}",
        a.degradations
    );
    assert!(!a.rows.is_empty(), "other procedures' rows must survive");
    assert!(a.rows.len() < baseline_rows, "the faulted procedure's rows are gone");
}

#[test]
fn unarmed_faultpoints_change_nothing() {
    let _guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    let a = Analysis::analyze(&workloads::mini_lu::sources(), AnalysisOptions::default())
        .expect("clean run");
    assert!(!a.degraded());
}

/// Drives `ipa::parallel::summarize_all_parallel` directly: a worker panic
/// must degrade exactly the faulted procedure's summary to the conservative
/// whole-array fallback, leaving every other summary untouched.
#[test]
fn parallel_worker_panic_degrades_one_summary_in_place() {
    use frontend::{compile_to_h, SourceFile, DEFAULT_LAYOUT_BASE};
    let _guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    let srcs: Vec<SourceFile> =
        workloads::mini_lu::sources().iter().map(SourceFile::from).collect();
    let program = compile_to_h(&srcs, DEFAULT_LAYOUT_BASE).expect("mini_lu compiles");
    let clean = ipa::parallel::summarize_all_parallel(&program, 4);
    faultpoint::arm("ipl::summarize", 2);
    let faulted = ipa::parallel::summarize_all_parallel(&program, 4);
    faultpoint::disarm_all();
    assert_eq!(faulted.len(), program.procedure_count());
    let differing: Vec<usize> = clean
        .iter()
        .zip(&faulted)
        .enumerate()
        .filter(|(_, (c, f))| {
            c.accesses.len() != f.accesses.len()
                || c.accesses.iter().zip(&f.accesses).any(|(a, b)| {
                    a.array != b.array
                        || a.mode != b.mode
                        || a.region != b.region
                        || a.approx != b.approx
                })
        })
        .map(|(i, _)| i)
        .collect();
    assert_eq!(differing.len(), 1, "exactly one summary degrades: {differing:?}");
    assert!(
        faulted[differing[0]].accesses.iter().all(|r| r.approx),
        "the faulted summary is the approximate whole-array fallback"
    );
}

const SESS_MAIN: &str = "\
program main
  real a(20)
  common /g/ a
  integer i
  do i = 1, 10
    a(i) = 0.0
  end do
  call leaf
end
";

const SESS_LEAF: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 11, 20
    a(i) = 2.0
  end do
end
";

/// A panic during a *warm* incremental update must degrade that update the
/// same way a cold run would — and the session must recover on the next
/// clean update instead of caching the contained failure forever.
#[test]
fn session_warm_update_contains_faults_and_recovers() {
    use araa::AnalysisSession;
    use frontend::SourceFile;
    use whirl::Lang;
    let _guard = ARMED.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    let files = |leaf: &str| {
        vec![
            SourceFile::new("main.f", SESS_MAIN, Lang::Fortran),
            SourceFile::new("leaf.f", leaf, Lang::Fortran),
        ]
    };
    let mut session = AnalysisSession::new(AnalysisOptions::default());
    session.update(files(SESS_LEAF)).expect("cold update");
    let edited = SESS_LEAF.replace("do i = 11, 20", "do i = 11, 18");
    faultpoint::arm("ipl::summarize", 1);
    let warm = session.update(files(&edited));
    faultpoint::disarm_all();
    let warm = warm.expect("faulted warm update must degrade, not fail");
    assert!(
        warm.degradations.iter().any(|d| d.stage == "ipl"),
        "expected a contained ipl degradation: {:?}",
        warm.degradations
    );
    assert!(session.analysis().is_some_and(Analysis::degraded));
    // Reverting the edit dirties `leaf` again (its conservative summary was
    // cached under the *edited* fingerprint), so it recomputes cleanly.
    let recovered = session.update(files(SESS_LEAF)).expect("recovery update");
    assert!(recovered.degradations.is_empty(), "{:?}", recovered.degradations);
    assert!(session.analysis().is_some_and(|a| !a.degraded()));
}
