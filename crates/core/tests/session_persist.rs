//! End-to-end tests of the on-disk session cache: round-trips, warm-from-disk
//! equivalence with cold runs, corruption quarantine, the lock protocol, and
//! crash consistency at every registered persistence faultpoint.

use araa::{Analysis, AnalysisOptions, AnalysisSession, SessionStore};
use support::testdir::TestDir;
use workloads::GenSource;

const MAIN_F: &str = "\
program main
  real a(20)
  common /g/ a
  integer i
  do i = 1, 10
    a(i) = 0.0
  end do
  call mid
end
";
const MID_F: &str = "\
subroutine mid
  real a(20)
  common /g/ a
  a(11) = 1.0
  call leaf
end
";
const LEAF_F: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 20
    a(i) = 2.0
  end do
end
";
const LEAF_F_EDITED: &str = "\
subroutine leaf
  real a(20)
  common /g/ a
  integer i
  do i = 12, 18
    a(i) = 2.0
  end do
end
";

fn files(leaf: &str) -> Vec<GenSource> {
    vec![
        GenSource::fortran("main.f", MAIN_F),
        GenSource::fortran("mid.f", MID_F),
        GenSource::fortran("leaf.f", leaf),
    ]
}

fn cold(sources: &[GenSource]) -> Analysis {
    Analysis::analyze(sources, AnalysisOptions::default()).expect("cold run")
}

/// Paths of the content-addressed entry files currently in `dir`.
fn entry_paths(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out: Vec<_> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .flatten()
        .filter(|e| {
            let n = e.file_name();
            let n = n.to_string_lossy();
            n.starts_with('e') && n.ends_with(".araa") && n.len() == 22
        })
        .map(|e| e.path())
        .collect();
    out.sort();
    out
}

fn flip_byte(path: &std::path::Path, offset_from_mid: i64) {
    let mut bytes = std::fs::read(path).expect("readable");
    let at = (bytes.len() as i64 / 2 + offset_from_mid)
        .clamp(0, bytes.len() as i64 - 1) as usize;
    bytes[at] ^= 0x20;
    std::fs::write(path, bytes).expect("writable");
}

fn seed(dir: &std::path::Path, sources: &[GenSource]) -> Analysis {
    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir);
    s.update(sources).expect("seed update");
    assert!(s.persist(), "seed persist: {:?}", s.cache_incidents());
    assert!(s.cache_incidents().is_empty(), "{:?}", s.cache_incidents());
    s.into_analysis().expect("seeded analysis")
}

#[test]
fn persist_and_reload_round_trip() {
    let dir = TestDir::new("persist-roundtrip");
    let sources = files(LEAF_F);
    let seeded = seed(dir.path(), &sources);

    let mut warm = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(warm.load(), "manifest present, load must succeed");
    assert!(warm.cache_incidents().is_empty(), "{:?}", warm.cache_incidents());
    let delta = warm.update(&sources).expect("warm update");
    assert_eq!(delta.summary_cache_misses, 0, "{delta:?}");
    assert!(delta.summaries_recomputed.is_empty(), "{delta:?}");
    assert_eq!(delta.rows_recomputed, 0, "{delta:?}");
    let a = warm.analysis().expect("analysis");
    assert_eq!(a.rows, seeded.rows);
    assert_eq!(a.degradations, seeded.degradations);
    let oracle = cold(&sources);
    assert_eq!(a.rows, oracle.rows, "warm-from-disk must be byte-identical to cold");
    assert_eq!(a.degradations, oracle.degradations);
}

#[test]
fn warm_from_disk_matches_cold_after_edit() {
    let dir = TestDir::new("persist-edit");
    seed(dir.path(), &files(LEAF_F));

    let edited = files(LEAF_F_EDITED);
    let mut warm = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(warm.load());
    let delta = warm.update(&edited).expect("warm update");
    assert_eq!(delta.summaries_recomputed, vec!["leaf".to_string()], "{delta:?}");
    assert_eq!(delta.summary_cache_hits, 2, "{delta:?}");
    let oracle = cold(&edited);
    let a = warm.analysis().expect("analysis");
    assert_eq!(a.rows, oracle.rows);
    assert_eq!(a.degradations, oracle.degradations);
    // And the refreshed state persists over the old one.
    assert!(warm.persist());
    let mut again = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(again.load());
    let d2 = again.update(&edited).expect("second warm update");
    assert_eq!(d2.summary_cache_misses, 0, "{d2:?}");
    assert_eq!(again.analysis().expect("analysis").rows, oracle.rows);
}

#[test]
fn warm_from_disk_mini_lu_identical() {
    let dir = TestDir::new("persist-minilu");
    let sources = workloads::mini_lu::sources();
    seed(dir.path(), &sources);

    let mut warm = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(warm.load());
    let delta = warm.update(&sources).expect("warm update");
    assert_eq!(delta.summary_cache_misses, 0, "{delta:?}");
    let oracle = cold(&sources);
    let a = warm.analysis().expect("analysis");
    assert_eq!(a.rows, oracle.rows);
    assert_eq!(a.degradations, oracle.degradations);
}

#[test]
fn sessions_without_cache_dir_are_unaffected() {
    let mut s = AnalysisSession::new(AnalysisOptions::default());
    assert!(!s.load());
    s.update(&files(LEAF_F)).expect("update");
    assert!(!s.persist());
    assert!(s.store().is_none());
    assert!(s.cache_incidents().is_empty());
}

#[test]
fn empty_cache_dir_loads_cold_without_incident() {
    let dir = TestDir::new("persist-empty");
    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(!s.load(), "nothing to load");
    assert!(s.cache_incidents().is_empty(), "{:?}", s.cache_incidents());
}

#[test]
fn corrupt_entry_is_quarantined_and_recomputed() {
    let dir = TestDir::new("persist-badentry");
    let sources = files(LEAF_F);
    seed(dir.path(), &sources);
    let entries = entry_paths(dir.path());
    assert_eq!(entries.len(), 3, "one entry per procedure");
    flip_byte(&entries[1], 0);

    let mut warm = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(warm.load(), "partial load still succeeds");
    assert!(
        !warm.cache_incidents().is_empty(),
        "corruption must be reported"
    );
    assert!(
        warm.cache_incidents().iter().any(|d| d.stage == "cache"
            && d.detail.contains("rejected")
            && d.detail.contains("quarantine")),
        "{:?}",
        warm.cache_incidents()
    );
    assert!(!entries[1].exists(), "rejected entry must be moved aside, not left");
    let quarantined: Vec<_> = std::fs::read_dir(dir.path().join("quarantine"))
        .expect("quarantine dir exists")
        .flatten()
        .collect();
    assert_eq!(quarantined.len(), 1, "the evidence is preserved");

    let delta = warm.update(&sources).expect("warm update");
    assert_eq!(delta.summary_cache_misses, 1, "exactly the corrupt procedure: {delta:?}");
    assert_eq!(delta.summary_cache_hits, 2, "{delta:?}");
    let oracle = cold(&sources);
    let a = warm.analysis().expect("analysis");
    assert_eq!(a.rows, oracle.rows);
    assert_eq!(a.degradations, oracle.degradations);
}

#[test]
fn corrupt_manifest_quarantines_and_starts_cold() {
    let dir = TestDir::new("persist-badmanifest");
    let sources = files(LEAF_F);
    seed(dir.path(), &sources);
    let mpath = dir.path().join("manifest.araa");
    flip_byte(&mpath, 3);

    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(!s.load(), "rejected manifest means cold start");
    assert!(!mpath.exists(), "rejected manifest must be moved aside");
    assert!(
        s.cache_incidents().iter().any(|d| d.detail.contains("manifest rejected")),
        "{:?}",
        s.cache_incidents()
    );
    let a = s.update(&sources).expect("cold update still works");
    assert!(a.summary_cache_misses > 0);
    let oracle = cold(&sources);
    assert_eq!(s.analysis().expect("analysis").rows, oracle.rows);
    // Re-persisting over the quarantined wreck works.
    assert!(s.persist());
    let mut again = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(again.load());
}

#[test]
fn truncated_manifest_is_rejected_cleanly() {
    let dir = TestDir::new("persist-truncmanifest");
    let sources = files(LEAF_F);
    seed(dir.path(), &sources);
    let mpath = dir.path().join("manifest.araa");
    let bytes = std::fs::read(&mpath).expect("readable");
    std::fs::write(&mpath, &bytes[..bytes.len() / 3]).expect("writable");

    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(!s.load());
    assert!(!mpath.exists());
    let oracle = cold(&sources);
    s.update(&sources).expect("cold update");
    assert_eq!(s.analysis().expect("analysis").rows, oracle.rows);
}

#[test]
fn different_options_quarantine_the_manifest() {
    let dir = TestDir::new("persist-fingerprint");
    seed(dir.path(), &files(LEAF_F));

    let opts = AnalysisOptions::builder().include_propagated(false).build();
    let mut s = AnalysisSession::with_cache_dir(opts, dir.path());
    assert!(!s.load(), "other options' cache must not be reused");
    assert!(
        s.cache_incidents().iter().any(|d| d.detail.contains("fingerprint")),
        "{:?}",
        s.cache_incidents()
    );
}

#[test]
fn stale_lock_is_taken_over() {
    let dir = TestDir::new("persist-stalelock");
    let sources = files(LEAF_F);
    seed(dir.path(), &sources);
    // A lock left behind by a crashed process (a pid far beyond pid_max).
    std::fs::write(dir.path().join("LOCK"), "4000000000\n").expect("plant stale lock");

    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(s.load(), "stale lock must be broken, not waited on");
    assert!(s.cache_incidents().is_empty(), "{:?}", s.cache_incidents());
    let delta = s.update(&sources).expect("warm update");
    assert_eq!(delta.summary_cache_misses, 0, "{delta:?}");
}

#[test]
fn two_sessions_share_a_cache_dir_without_cross_talk() {
    let dir = TestDir::new("persist-shared");
    let v1 = files(LEAF_F);
    let v2 = files(LEAF_F_EDITED);

    // Session A seeds the cache with v1.
    let mut a = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    a.update(&v1).expect("A update");
    assert!(a.persist());

    // Session B (a different session, same dir) warms from A's state and
    // moves the cache to v2.
    let mut b = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(b.load());
    let db = b.update(&v2).expect("B update");
    assert_eq!(db.summaries_recomputed, vec!["leaf".to_string()], "{db:?}");
    assert!(b.persist());

    // A new session now sees exactly B's state; nothing was quarantined.
    let mut c = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(c.load());
    assert!(c.cache_incidents().is_empty(), "{:?}", c.cache_incidents());
    let dc = c.update(&v2).expect("C update");
    assert_eq!(dc.summary_cache_misses, 0, "{dc:?}");
    assert_eq!(c.analysis().expect("analysis").rows, cold(&v2).rows);
    assert!(!dir.path().join("quarantine").exists(), "no file was ever rejected");
}

#[test]
fn store_stats_verify_and_clear() {
    let dir = TestDir::new("persist-store-ops");
    let sources = files(LEAF_F);
    seed(dir.path(), &sources);
    let store = SessionStore::new(dir.path(), &AnalysisOptions::default());

    let stats = store.stats().expect("stats");
    assert!(stats.manifest);
    assert_eq!(stats.procedures, 3);
    assert_eq!(stats.sources, 3);
    assert_eq!(stats.entry_files, 3);
    assert!(stats.bytes > 0);
    assert_eq!(stats.quarantined, 0);

    let report = store.verify().expect("verify");
    assert!(report.clean(), "{:?}", report.problems);
    assert_eq!(report.ok, 4, "manifest + 3 entries");
    assert_eq!(report.orphans, 0);

    // Corruption shows up in verify without destroying anything.
    flip_byte(&entry_paths(dir.path())[0], 1);
    let report = store.verify().expect("verify");
    assert!(!report.clean());
    assert_eq!(entry_paths(dir.path()).len(), 3, "verify is read-only");

    let removed = store.clear().expect("clear");
    assert_eq!(removed, 5, "manifest + stats snapshot + 3 entries");
    let stats = store.stats().expect("stats");
    assert!(!stats.manifest);
    assert_eq!(stats.entry_files, 0);
    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(!s.load(), "cleared cache is a clean cold start");
    assert!(s.cache_incidents().is_empty(), "{:?}", s.cache_incidents());
}

#[test]
fn gc_drops_entries_the_new_manifest_does_not_reference() {
    let dir = TestDir::new("persist-gc");
    let v1 = files(LEAF_F);
    let v2 = files(LEAF_F_EDITED);
    seed(dir.path(), &v1);
    let before = entry_paths(dir.path());
    assert_eq!(before.len(), 3);

    let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
    assert!(s.load());
    s.update(&v2).expect("update");
    assert!(s.persist());
    let after = entry_paths(dir.path());
    assert_eq!(after.len(), 3, "old leaf entry collected, new one written");
    assert_ne!(before, after);
    let store = SessionStore::new(dir.path(), &AnalysisOptions::default());
    let report = store.verify().expect("verify");
    assert!(report.clean(), "{:?}", report.problems);
    assert_eq!(report.orphans, 0);
}

// ---------------------------------------------------------------------------
// Fault injection (crash consistency). These arm the process-global
// faultpoint registry, so they serialize on a mutex.
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod crashes {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;
    use support::faultpoint;
    use support::persist::{READ_FAULTPOINTS, WRITE_FAULTPOINTS};

    static SERIAL: Mutex<()> = Mutex::new(());

    /// Every faultpoint a save can crash at: the four inside
    /// `atomic_write` plus the four in `SessionStore`'s commit protocol.
    const SAVE_FAULTPOINTS: &[&str] = &[
        "persist::torn_write",
        "persist::pre_sync",
        "persist::pre_rename",
        "persist::post_rename",
        "persist::entry_write",
        "persist::pre_manifest",
        "persist::post_manifest",
        "persist::gc",
    ];

    #[test]
    fn save_faultpoint_list_matches_the_registered_ones() {
        for fp in WRITE_FAULTPOINTS {
            assert!(SAVE_FAULTPOINTS.contains(fp), "untested write faultpoint {fp}");
        }
    }

    /// Kills a save at `point` (the `nth` hit) and asserts the cache is
    /// afterwards *fully old or fully new*: a fresh session loads without
    /// quarantining anything and reproduces the cold analysis of whichever
    /// source set survives.
    fn crash_save_then_recover(dir: &std::path::Path, point: &str, nth: u64) {
        let v2 = files(LEAF_F_EDITED);
        let mut s = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir);
        s.load();
        s.update(&v2).expect("update");
        faultpoint::arm(point, nth);
        let crashed = catch_unwind(AssertUnwindSafe(|| s.persist()));
        faultpoint::disarm_all();
        assert!(crashed.is_err(), "{point}:{nth} must fire during persist");
        drop(s);

        // Nothing on disk may be corrupt: old-or-new, never torn.
        let store = SessionStore::new(dir, &AnalysisOptions::default());
        let report = store.verify().expect("verify");
        let torn: Vec<_> = report
            .problems
            .iter()
            .filter(|p| !p.contains("no manifest"))
            .collect();
        assert!(torn.is_empty(), "{point}:{nth} left a torn cache: {torn:?}");

        let mut r = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir);
        r.load();
        assert!(
            !r.cache_incidents().iter().any(|d| d.detail.contains("quarantine")),
            "{point}:{nth} forced a quarantine: {:?}",
            r.cache_incidents()
        );
        let oracle = cold(&v2);
        r.update(&v2).expect("recovery update");
        assert_eq!(
            r.analysis().expect("analysis").rows,
            oracle.rows,
            "{point}:{nth} corrupted the recovered analysis"
        );
        // The wreck fully recovers: the next persist leaves a clean cache.
        assert!(r.persist(), "{:?}", r.cache_incidents());
        let report = store.verify().expect("verify");
        assert!(report.clean(), "{point}:{nth}: {:?}", report.problems);
    }

    #[test]
    fn crash_at_every_write_faultpoint_leaves_old_or_new_cache() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        for point in SAVE_FAULTPOINTS {
            // First hit, over a seeded (old) cache.
            let dir = TestDir::new("crash-seeded");
            seed(dir.path(), &files(LEAF_F));
            crash_save_then_recover(dir.path(), point, 1);

            // First hit, into an empty cache dir (no old state to fall
            // back to: recovery must be a clean cold start).
            let dir = TestDir::new("crash-cold");
            crash_save_then_recover(dir.path(), point, 1);

            // A later hit, so earlier stages complete first (e.g. the
            // manifest's write, not an entry's). Only meaningful for
            // points that fire more than once per save — the manifest
            // stages fire exactly once.
            if !point.contains("manifest") && *point != "persist::gc" {
                let dir = TestDir::new("crash-later");
                seed(dir.path(), &files(LEAF_F));
                crash_save_then_recover(dir.path(), point, 2);
            }
        }
    }

    #[test]
    fn short_read_and_bit_flip_quarantine_and_recompute() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        for &point in READ_FAULTPOINTS {
            // Fault the manifest read: cold start, nothing breaks.
            let sources = files(LEAF_F);
            let oracle = cold(&sources);
            let dir = TestDir::new("readfault-manifest");
            seed(dir.path(), &sources);
            faultpoint::arm(point, 1);
            let mut s =
                AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
            let loaded = s.load();
            faultpoint::disarm_all();
            assert!(!loaded, "{point}: mangled manifest must not load");
            assert!(!s.cache_incidents().is_empty(), "{point}");
            s.update(&sources).expect("cold update");
            assert_eq!(s.analysis().expect("analysis").rows, oracle.rows, "{point}");

            // Fault an entry read: that procedure recomputes, rest hit.
            let dir = TestDir::new("readfault-entry");
            seed(dir.path(), &sources);
            faultpoint::arm(point, 2);
            let mut s =
                AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir.path());
            let loaded = s.load();
            faultpoint::disarm_all();
            assert!(loaded, "{point}: one bad entry must not sink the load");
            assert!(
                s.cache_incidents().iter().any(|d| d.detail.contains("recomputing")),
                "{point}: {:?}",
                s.cache_incidents()
            );
            let delta = s.update(&sources).expect("warm update");
            assert_eq!(delta.summary_cache_misses, 1, "{point}: {delta:?}");
            assert_eq!(s.analysis().expect("analysis").rows, oracle.rows, "{point}");
        }
    }
}
