//! Oracle test for the incremental [`AnalysisSession`]: after every
//! scripted edit the warm session must produce artifacts byte-identical to
//! a cold run over the same sources, while recomputing summaries only for
//! the edited procedures and re-propagating only within their call-graph
//! ancestor chains.

use araa::{Analysis, AnalysisOptions, AnalysisSession};
use support::idx::Idx;
use workloads::GenSource;

fn edit(sources: &mut [GenSource], file: &str, from: &str, to: &str) {
    let s = sources.iter_mut().find(|s| s.name == file).expect("file exists");
    assert!(s.text.contains(from), "{file} must contain {from:?}");
    s.text = s.text.replace(from, to);
}

fn cold(sources: &[GenSource]) -> Analysis {
    Analysis::analyze(sources, AnalysisOptions::default()).expect("cold run")
}

/// Names of `procs` plus every transitive caller, per `a`'s call graph.
fn ancestor_names(a: &Analysis, procs: &[&str]) -> Vec<String> {
    let seeds: Vec<_> = procs
        .iter()
        .map(|p| a.program.find_procedure(p).expect("edited procedure exists"))
        .collect();
    let mask = a.callgraph.ancestor_closure(seeds);
    a.program
        .procedures
        .iter_enumerated()
        .filter(|(id, _)| mask[id.as_usize()])
        .map(|(_, p)| a.program.name_of(p.name).to_string())
        .collect()
}

#[test]
fn scripted_edits_match_cold_runs_and_bound_the_recompute_set() {
    let mut sources = workloads::mini_lu::sources();
    let n_files = sources.len();
    let mut session = AnalysisSession::new(AnalysisOptions::default());

    let first = session.update(sources.clone()).expect("cold update");
    assert_eq!(first.summary_cache_hits, 0, "nothing to hit on a cold start");
    assert!(first.summary_cache_misses > 0);
    {
        let warm = session.analysis().expect("session keeps its analysis");
        let oracle = cold(&sources);
        assert_eq!(warm.rows, oracle.rows, "cold-start session must equal a cold run");
    }

    // Each step edits exactly one procedure's body: a deep leaf of the ssor
    // iteration (blts), the Case-2 host (rhs), a mid-chain callee (jacld),
    // and finally a revert of the first edit (whose original summary was
    // evicted, so it must recompute — not resurrect stale state).
    let script = [
        ("blts.f", "blts", "do i = 2, 32", "do i = 2, 30"),
        ("rhs.f", "rhs", "do k = 1, 10", "do k = 1, 8"),
        ("jacld.f", "jacld", "d(i, j, 2, 2) = u(i, j, k, 2)", "d(i, j, 2, 2) = u(i, j, k, 5)"),
        ("blts.f", "blts", "do i = 2, 30", "do i = 2, 32"),
    ];
    for (file, proc, from, to) in script {
        edit(&mut sources, file, from, to);
        let delta = session.update(sources.clone()).expect("warm update");
        let oracle = cold(&sources);
        let warm = session.analysis().expect("session keeps its analysis");

        // The oracle property: a warm update is indistinguishable from a
        // cold run in every exported artifact.
        assert_eq!(warm.rows, oracle.rows, "rows diverge after editing {file}");
        assert_eq!(warm.rgn_document(), oracle.rgn_document(), "{file}: .rgn diverges");
        assert_eq!(warm.dgn_document(), oracle.dgn_document(), "{file}: .dgn diverges");
        assert_eq!(warm.cfg_document(), oracle.cfg_document(), "{file}: .cfg diverges");
        assert!(warm.degradations.is_empty(), "{:?}", warm.degradations);

        // Only the edited procedure's summary recomputes; everything else
        // is a verified cache hit.
        assert_eq!(
            delta.summaries_recomputed,
            vec![proc.to_string()],
            "editing {file} must dirty exactly `{proc}`"
        );
        assert_eq!(delta.summary_cache_hits, workloads::mini_lu::PROC_NAMES.len() - 1);
        assert_eq!(delta.summary_cache_misses, 1);

        // Propagation re-runs only inside the edited proc's ancestor chain.
        let allowed = ancestor_names(warm, &[proc]);
        assert!(!delta.propagation_recomputed.is_empty());
        for p in &delta.propagation_recomputed {
            assert!(
                allowed.contains(p),
                "`{p}` re-propagated but is not `{proc}` or one of its callers ({allowed:?})"
            );
        }

        // Only the edited file re-parses; row extraction reuses the rest.
        assert_eq!(delta.files_reparsed, 1, "{file} alone changed");
        assert_eq!(delta.files_cached, n_files - 1);
        assert!(delta.rows_reused > 0, "untouched procedures' rows are reused");
    }
}

#[test]
fn update_with_new_procedure_recomputes_its_callers_only() {
    let mut sources = workloads::mini_lu::sources();
    let mut session = AnalysisSession::new(AnalysisOptions::default());
    session.update(sources.clone()).expect("cold update");

    // Grow `pintgr` a callee it never had; the new procedure has no cached
    // summary and `pintgr` itself changes, but the ssor chain is untouched.
    edit(
        &mut sources,
        "pintgr.f",
        "end subroutine pintgr",
        "  call pextra\nend subroutine pintgr",
    );
    sources.push(GenSource::fortran(
        "pextra.f",
        "subroutine pextra\n  double precision w(8)\n  common /cpex/ w\n  w(1) = 0.0\nend subroutine pextra\n",
    ));
    let delta = session.update(sources.clone()).expect("warm update");
    let warm = session.analysis().expect("analysis");
    let oracle = cold(&sources);
    assert_eq!(warm.rows, oracle.rows);

    let mut recomputed = delta.summaries_recomputed.clone();
    recomputed.sort();
    assert_eq!(recomputed, ["pextra", "pintgr"]);
    assert!(!delta.propagation_recomputed.contains(&"ssor".to_string()));
    assert!(!delta.propagation_recomputed.contains(&"rhs".to_string()));
}
