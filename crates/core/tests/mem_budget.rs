//! End-to-end memory-budget tests: this test binary installs the counting
//! global allocator (like the `dragon` binary does), so `support::memory`
//! accounting actually moves and exhaustion can be driven by real
//! allocations rather than `force_exhaust`.

use araa::{Analysis, AnalysisOptions, AnalysisSession};
use std::alloc::System;
use support::memory::{self, MemoryBudget};
use support::obs::alloc::CountingAllocator;
use workloads::fig10;

#[global_allocator]
static ALLOC: CountingAllocator<System> = CountingAllocator::new(System);

#[test]
fn allocator_accounting_moves() {
    let before = support::obs::alloc::allocated_bytes();
    let v: Vec<u8> = vec![7; 1 << 20];
    let after = support::obs::alloc::allocated_bytes();
    assert!(after - before >= 1 << 20, "1 MiB allocation must be counted");
    drop(v);
}

#[test]
fn unlimited_analysis_is_unaffected() {
    let opts = AnalysisOptions::builder().mem_budget_mb(None).build();
    let analysis = Analysis::analyze(&[fig10::source()], opts).expect("analyze");
    assert!(
        !analysis.degradations.iter().any(|d| d.stage == "memory"),
        "no memory degradation without a budget: {:?}",
        analysis.degradations
    );
}

#[test]
fn generous_budget_never_trips() {
    // 4 GiB of churn headroom: a few-procedure analysis stays far below.
    let opts = AnalysisOptions::builder().mem_budget_mb(Some(4096)).build();
    let analysis = Analysis::analyze(&[fig10::source()], opts).expect("analyze");
    assert!(
        !analysis.degradations.iter().any(|d| d.stage == "memory"),
        "generous budget must not trip: {:?}",
        analysis.degradations
    );
}

#[test]
fn zero_budget_degrades_but_still_answers() {
    // A 0 MiB ceiling exhausts at the first checkpoint. The analysis must
    // still return a (heavily widened) result with a structured
    // memory-stage degradation — degrade, don't die.
    let opts = AnalysisOptions::builder().mem_budget_mb(Some(0)).build();
    let mut session = AnalysisSession::new(opts);
    let delta = session.update([fig10::source()]).expect("update must succeed");
    let mem_degr: Vec<_> =
        delta.degradations.iter().filter(|d| d.stage == "memory").collect();
    assert!(
        !mem_degr.is_empty(),
        "0 MiB budget must record a memory degradation: {:?}",
        delta.degradations
    );
    assert!(
        mem_degr[0].detail.contains("memory budget"),
        "detail names the cause: {}",
        mem_degr[0].detail
    );
    let analysis = session.analysis().expect("state retained");
    assert!(
        analysis.program.procedure_count() > 0,
        "program survives exhaustion"
    );
}

#[test]
fn ambient_exhaustion_degrades_and_is_never_reused() {
    // The budget comes from an *ambient* scope (the way `dragon serve`
    // bounds a request), not from the session's own options. Exhaustion
    // must still surface as a memory-stage degradation — and the poisoned
    // state must not satisfy the identical-input fast path afterwards.
    let mut session = AnalysisSession::new(AnalysisOptions::default());
    {
        let _scope = memory::enter(MemoryBudget::mb(0));
        let delta = session.update([fig10::source()]).expect("update must succeed");
        assert!(
            delta.degradations.iter().any(|d| d.stage == "memory"),
            "ambient exhaustion must be recorded: {:?}",
            delta.degradations
        );
    }
    // Same sources, sane budget: the widened state is discarded and the
    // recomputation comes back clean.
    let delta = session.update([fig10::source()]).expect("update must succeed");
    assert_eq!(
        delta.summary_cache_hits, 0,
        "tainted state must not serve the fast path"
    );
    assert!(
        !delta.degradations.iter().any(|d| d.stage == "memory"),
        "recomputed without a budget, no memory degradation: {:?}",
        delta.degradations
    );
}

#[test]
fn exhausted_failure_does_not_poison_the_parse_cache() {
    // A single-unit program whose parse is truncated by a 0 MiB budget can
    // fail assembly outright (recovery keeps no units, so there is no
    // degraded result to taint). That hard failure must not keep the
    // truncated parse in the file cache, or the identical retry with
    // headroom replays the budget-starved error forever.
    let src = workloads::GenSource::fortran(
        "single.f",
        "subroutine one(n)\n  double precision a(50)\n  integer i, n\n  \
         do i = 1, n\n    a(i) = i * 1.0\n  end do\nend subroutine one\n",
    );
    let mut session = AnalysisSession::new(AnalysisOptions::default());
    let failed = {
        let _scope = memory::enter(MemoryBudget::mb(0));
        session.update([src.clone()])
    };
    if failed.is_ok() {
        // If recovery managed to keep the unit the taint path covers reuse;
        // this test only pins the hard-failure path.
        return;
    }
    let delta = session.update([src]).expect("retry with headroom must succeed");
    assert_eq!(delta.files_reparsed, 1, "truncated parse must not be cached");
    assert!(
        !delta.degradations.iter().any(|d| d.stage == "memory"),
        "clean recomputation: {:?}",
        delta.degradations
    );
}

#[test]
fn scope_charges_are_observed_by_checkpoints() {
    let budget = MemoryBudget::mb(1);
    let scope = memory::enter(budget.clone());
    assert!(memory::checkpoint(), "fresh budget has headroom");
    let hog: Vec<u8> = vec![0u8; 2 << 20];
    assert!(!memory::checkpoint(), "2 MiB of churn crosses a 1 MiB ceiling");
    assert!(budget.exhausted());
    assert!(budget.charged_bytes() >= 2 << 20, "delta was charged");
    drop(hog);
    drop(scope);
    assert!(memory::checkpoint(), "no scope → unlimited");
}

#[test]
fn step_budget_checkpoints_consult_memory() {
    use support::budget;

    let mem = MemoryBudget::bytes(64 * 1024);
    let _mem_scope = memory::enter(mem.clone());
    let _budget_scope = budget::enter(Default::default());
    assert!(budget::charge_steps(1), "headroom at first");
    let hog: Vec<u8> = vec![0u8; 256 * 1024];
    assert!(
        !budget::charge_steps(1),
        "memory exhaustion denies step charges at the shared checkpoint"
    );
    assert_eq!(budget::exhaustion(), Some("memory"), "labelled as memory");
    drop(hog);
}
