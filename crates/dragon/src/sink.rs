//! Structured diagnostics sink for the `dragon` binary.
//!
//! Every user-facing diagnostic flows through [`emit`] / [`fatal`] instead
//! of raw `eprintln!`: the sink renders the human line(s) to stderr *and*
//! keeps a structured record, so the `--strict`/exit-code policy and the
//! machine-readable stream cannot drift apart. [`exit_code`] is the single
//! place that maps what was reported to a process exit status, and
//! [`records_jsonl`] replays everything reported as JSONL `diag` lines for
//! inclusion in the metrics artifact.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// How bad a diagnostic is. Ordering matters: the sink tracks the maximum
/// severity reported so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational — does not change the exit code.
    Note,
    /// The run completed but with degraded results or a cache incident
    /// (exit 1, or 2 under `--strict`).
    Degraded,
    /// The run failed outright (exit 2).
    Fatal,
}

impl Severity {
    /// Stable name used in the JSONL records.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Degraded => "degraded",
            Severity::Fatal => "fatal",
        }
    }
}

/// One reported diagnostic, as recorded.
#[derive(Debug, Clone)]
pub struct DiagRecord {
    /// Severity it was reported at.
    pub severity: Severity,
    /// Short machine-stable code, dot-namespaced (e.g. `cache.incident`).
    pub code: &'static str,
    /// The human message (may span multiple lines).
    pub message: String,
}

static MAX_SEVERITY: AtomicU8 = AtomicU8::new(0);
static RECORDS: Mutex<Vec<DiagRecord>> = Mutex::new(Vec::new());

fn records() -> std::sync::MutexGuard<'static, Vec<DiagRecord>> {
    RECORDS.lock().unwrap_or_else(|p| p.into_inner())
}

fn raise(sev: Severity) {
    MAX_SEVERITY.fetch_max(sev as u8, Ordering::Relaxed);
}

/// Reports a diagnostic: prints `dragon: <message>` to stderr (extra lines
/// verbatim, as callers indent them themselves) and records it.
pub fn emit(severity: Severity, code: &'static str, message: impl Into<String>) {
    let message = message.into();
    eprintln!("dragon: {}", message.trim_end_matches('\n'));
    raise(severity);
    records().push(DiagRecord { severity, code, message });
}

/// Reports a fatal diagnostic and exits with status 2. Failure runs do
/// not get observability artifacts — there is no trustworthy end state to
/// export.
pub fn fatal(code: &'static str, message: impl Into<String>) -> ! {
    emit(Severity::Fatal, code, message);
    std::process::exit(2);
}

/// True once anything at [`Severity::Degraded`] or worse was reported.
pub fn degraded() -> bool {
    MAX_SEVERITY.load(Ordering::Relaxed) >= Severity::Degraded as u8
}

/// The exit status implied by everything reported so far: 0 when clean,
/// 1 when degraded, 2 when degraded under `--strict`. (Fatal paths never
/// reach this — [`fatal`] exits directly.)
pub fn exit_code(strict: bool) -> i32 {
    if !degraded() {
        0
    } else if strict {
        2
    } else {
        1
    }
}

/// Everything reported so far, one JSONL `diag` line per record, in
/// report order. Appended to the metrics document before its trailer.
pub fn records_jsonl() -> String {
    let mut out = String::new();
    for r in records().iter() {
        out.push_str(&format!(
            "{{\"type\":\"diag\",\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\"}}\n",
            r.severity.name(),
            support::obs::json_escape(r.code),
            support::obs::json_escape(&r.message)
        ));
    }
    out
}

/// A snapshot of the recorded diagnostics (for tests and reporting).
pub fn snapshot() -> Vec<DiagRecord> {
    records().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global, so one test exercises the whole
    // lifecycle (parallel tests would race on MAX_SEVERITY otherwise).
    #[test]
    fn severity_records_and_exit_code() {
        assert_eq!(exit_code(false), 0);
        emit(Severity::Note, "test.note", "just saying");
        assert!(!degraded());
        assert_eq!(exit_code(true), 0);
        emit(Severity::Degraded, "test.degraded", "line one\n  line two");
        assert!(degraded());
        assert_eq!(exit_code(false), 1);
        assert_eq!(exit_code(true), 2);
        let jsonl = records_jsonl();
        assert!(jsonl.contains("\"severity\":\"note\""));
        assert!(jsonl.contains("\"code\":\"test.degraded\""));
        assert!(jsonl.contains("line one\\n  line two"));
        assert_eq!(snapshot().len(), 2);
    }
}
