//! The advisor: turning analysis rows into the paper's three optimizations.
//!
//! 1. **Arrays defined inefficiently** — "our tool shows that the user can
//!    redefine array aarr to be (int `aarr[8]`) instead of (int `aarr[20]`)
//!    since the remaining elements have not been used anywhere";
//! 2. **Reduce data movement** — "`#pragma acc region for copyin(aarr[2:7])`
//!    can be inserted right before the last for loop" /
//!    "`!$acc region copyin(u(1:3,1:5,1:10,1:4))` instead of
//!    `!$acc region copyin(u)`";
//! 3. **Auto-parallelization** — loop fusion with one `!$omp parallel do`
//!    (Case 1) and independent call pairs (Fig. 1).

use crate::project::Project;
use araa::{Analysis, RgnRow};
use lint::facts;
use regions::access::AccessMode;
use std::collections::BTreeMap;

/// Which modes the shrink advice considers "used".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShrinkBasis {
    /// USE rows only — the paper's reading (`aarr[8]` despite the
    /// `DEF (1:8)` row; the store to index 8 is dead).
    UseOnly,
    /// USE ∪ DEF — the conservative hull.
    UseAndDef,
}

/// One recommendation.
#[derive(Debug, Clone, PartialEq)]
pub enum Advice {
    /// Re-declare an array with a smaller extent.
    ShrinkArray {
        /// Array name.
        array: String,
        /// Declared extents per dimension.
        declared: Vec<i64>,
        /// Accessed hull per dimension (inclusive source bounds).
        used: Vec<(i64, i64)>,
        /// The suggested declaration.
        suggestion: String,
    },
    /// Insert a sub-array `copyin` before the accessing loop.
    SubArrayCopyin {
        /// Array name.
        array: String,
        /// Procedure scope.
        proc: String,
        /// The directive text.
        directive: String,
        /// Declared bytes.
        whole_bytes: i64,
        /// Bytes of the accessed region.
        accessed_bytes: i64,
    },
    /// Merge loops re-reading the same region, under one `!$omp parallel do`.
    LoopFusion {
        /// Array name.
        array: String,
        /// Procedure scope.
        proc: String,
        /// The identical region re-read.
        region: String,
        /// Source lines of the repeated reads.
        lines: Vec<u32>,
    },
    /// Two calls with disjoint side effects can run concurrently.
    ParallelCalls {
        /// The enclosing procedure.
        caller: String,
        /// First callee.
        callee_a: String,
        /// Second callee.
        callee_b: String,
    },
    /// A loop with no loop-carried dependence: insert `!$omp parallel do`
    /// (with the reduction/private clauses the scalar analysis derived).
    OmpParallelDo {
        /// Procedure containing the loop.
        proc: String,
        /// Loop-header source line.
        line: u32,
        /// The complete directive text.
        directive: String,
    },
    /// Remote (coindexed) element accesses inside a loop: aggregate the
    /// region into one bulk one-sided transfer — "the user \[can\] optimize
    /// communication ... in PGAS context".
    BulkCommunication {
        /// The coarray.
        array: String,
        /// Procedure scope.
        proc: String,
        /// Direction: true = remote read (get), false = remote write (put).
        get: bool,
        /// The remotely accessed region (source bounds).
        region: String,
        /// Element accesses that would collapse into one transfer.
        refs: u64,
    },
}

/// Language guess per procedure from the project's file names.
fn proc_is_fortran(project: &Project, proc: &str) -> bool {
    project
        .dgn
        .procs
        .iter()
        .find(|p| p.display == proc || p.name == proc)
        .map(|p| !p.file.ends_with(".c"))
        .unwrap_or(true)
}

/// Advice 1: arrays whose accessed hull is strictly smaller than their
/// declaration.
///
/// The hull-vs-declared scan lives in [`lint::facts`]: the lint engine's
/// `DST-03` (dead store) and this advice are two readings of the same
/// usage fact, so the advisor consumes those facts instead of keeping its
/// own copy of the scan.
pub fn shrink_advice(project: &Project, basis: ShrinkBasis) -> Vec<Advice> {
    let basis = match basis {
        ShrinkBasis::UseOnly => facts::UseBasis::UseOnly,
        ShrinkBasis::UseAndDef => facts::UseBasis::UseAndDef,
    };
    facts::usage_facts(&project.rows, basis)
        .into_iter()
        .filter(|fact| fact.shrinkable())
        .map(|fact| Advice::ShrinkArray {
            suggestion: fact.suggestion(),
            array: fact.array,
            declared: fact.declared,
            used: fact.used,
        })
        .collect()
}

/// Maximum line gap between two USE rows considered part of the same loop
/// for [`copyin_advice`]'s clustering.
const CLUSTER_GAP: u32 = 2;

/// Advice 2: sub-array `copyin` directives. The paper inserts the directive
/// "right before the last for loop", i.e. the clause names the region of
/// *that loop*, not the whole procedure — so USE rows are clustered by
/// source-line proximity (one cluster ≈ one loop nest) and each cluster
/// whose hull is smaller than the declaration yields a directive.
pub fn copyin_advice(project: &Project) -> Vec<Advice> {
    let mut per_scope: BTreeMap<(String, String), Vec<&RgnRow>> = BTreeMap::new();
    for row in &project.rows {
        if row.mode == AccessMode::Use && row.via.is_none() {
            per_scope
                .entry((row.proc.clone(), row.array.clone()))
                .or_default()
                .push(row);
        }
    }
    let mut out = Vec::new();
    for ((proc, array), mut rows) in per_scope {
        rows.sort_by_key(|r| r.line);
        let mut clusters: Vec<Vec<&RgnRow>> = Vec::new();
        for row in rows {
            match clusters.last_mut() {
                Some(cluster)
                    if cluster.last().is_some_and(|prev| {
                        row.line.saturating_sub(prev.line) <= CLUSTER_GAP
                    }) =>
                {
                    cluster.push(row)
                }
                _ => clusters.push(vec![row]),
            }
        }
        for cluster in clusters {
            if let Some(advice) = cluster_copyin(project, &proc, &array, &cluster) {
                if !out.contains(&advice) {
                    out.push(advice);
                }
            }
        }
    }
    out
}

fn cluster_copyin(
    project: &Project,
    proc: &str,
    array: &str,
    rows: &[&RgnRow],
) -> Option<Advice> {
    let used = facts::hull(rows)?;
    let declared = facts::parse_bounds(&rows[0].dim_size)?;
    if declared.len() != used.len() {
        return None;
    }
    let accessed_elems: i64 = used.iter().map(|&(lo, hi)| hi - lo + 1).product();
    let whole_elems: i64 = declared.iter().product();
    if accessed_elems >= whole_elems || whole_elems == 0 {
        return None;
    }
    let elem = rows[0].elem_size.abs();
    let fortran = proc_is_fortran(project, proc);
    let directive = if fortran {
        let dims: Vec<String> = used.iter().map(|&(lo, hi)| format!("{lo}:{hi}")).collect();
        format!("!$acc region copyin({array}({}))", dims.join(","))
    } else {
        // PGI C sub-array syntax with an exclusive upper bound — the
        // paper's `copyin(aarr[2:7])` for the section {2,4,6}.
        let dims: Vec<String> =
            used.iter().map(|&(lo, hi)| format!("[{lo}:{}]", hi + 1)).collect();
        format!("#pragma acc region for copyin({array}{})", dims.concat())
    };
    Some(Advice::SubArrayCopyin {
        array: array.to_string(),
        proc: proc.to_string(),
        directive,
        whole_bytes: whole_elems * elem,
        accessed_bytes: accessed_elems * elem,
    })
}

/// Advice 3a: loop fusion — an array re-read over the identical region at
/// several source lines within one procedure (Case 1's `xcr`).
pub fn fusion_advice(project: &Project) -> Vec<Advice> {
    let mut groups: BTreeMap<(String, String, String), Vec<u32>> = BTreeMap::new();
    for row in &project.rows {
        if row.mode == AccessMode::Use && row.via.is_none() {
            let region = format!("{}:{}:{}", row.lb, row.ub, row.stride);
            groups
                .entry((row.proc.clone(), row.array.clone(), region))
                .or_default()
                .push(row.line);
        }
    }
    let mut out = Vec::new();
    for ((proc, array, region), mut lines) in groups {
        lines.sort_unstable();
        lines.dedup();
        if lines.len() >= 2 {
            out.push(Advice::LoopFusion { array, proc, region, lines });
        }
    }
    out
}

/// Advice 3c: loops with no loop-carried dependence — the auto-
/// parallelization pillar ("identify auto-parallelization opportunities
/// adeptly"). Each parallelizable top-level loop gets a ready-to-paste
/// `!$omp parallel do` with the derived `reduction`/`private` clauses.
pub fn omp_advice(analysis: &Analysis) -> Vec<Advice> {
    let mut out = Vec::new();
    for (proc_id, proc) in analysis.program.procedures.iter_enumerated() {
        for verdict in ipa::analyze_proc_loops_with_facts(
            &analysis.program,
            proc_id,
            &analysis.ipa.index_facts,
        ) {
            if !verdict.parallelizable {
                continue;
            }
            let mut clauses = String::new();
            for (st, class) in &verdict.scalars {
                let name = analysis
                    .program
                    .name_of(analysis.program.symbols.get(*st).name);
                match class {
                    ipa::ScalarUse::Reduction => {
                        clauses.push_str(&format!(" reduction(+:{name})"))
                    }
                    ipa::ScalarUse::Privatizable => {
                        clauses.push_str(&format!(" private({name})"))
                    }
                }
            }
            out.push(Advice::OmpParallelDo {
                proc: analysis.program.name_of(proc.name).to_string(),
                line: verdict.line,
                directive: format!("!$omp parallel do{clauses}"),
            });
        }
    }
    out
}

/// Advice 4 (PGAS extension): element-wise remote accesses that should be
/// aggregated into bulk one-sided transfers.
pub fn communication_advice(project: &Project) -> Vec<Advice> {
    let mut out = Vec::new();
    for row in &project.rows {
        if !row.remote || row.via.is_some() || !row.mode.moves_data() {
            continue;
        }
        out.push(Advice::BulkCommunication {
            array: row.array.clone(),
            proc: row.proc.clone(),
            get: row.mode == AccessMode::Use,
            region: format!("{}:{}:{}", row.lb, row.ub, row.stride),
            refs: row.refs,
        });
    }
    out.dedup();
    out
}

/// Advice 3b: independent call pairs (needs the full analysis, not just the
/// project rows).
pub fn parallel_call_advice(analysis: &Analysis) -> Vec<Advice> {
    ipa::find_parallel_pairs(&analysis.program, &analysis.callgraph, &analysis.ipa)
        .into_iter()
        .map(|pair| {
            let name = |id| {
                analysis
                    .program
                    .name_of(analysis.program.procedure(id).name)
                    .to_string()
            };
            Advice::ParallelCalls {
                caller: name(pair.caller),
                callee_a: name(pair.callee_a),
                callee_b: name(pair.callee_b),
            }
        })
        .collect()
}

/// Runs every advisor.
pub fn advise(analysis: &Analysis, project: &Project) -> Vec<Advice> {
    let mut out = shrink_advice(project, ShrinkBasis::UseOnly);
    out.extend(copyin_advice(project));
    out.extend(fusion_advice(project));
    out.extend(parallel_call_advice(analysis));
    out.extend(omp_advice(analysis));
    out.extend(communication_advice(project));
    out
}

/// Renders advice as human-readable lines.
pub fn render(advice: &[Advice]) -> String {
    let mut out = String::new();
    for a in advice {
        match a {
            Advice::ShrinkArray { array, declared, used, suggestion } => {
                out.push_str(&format!(
                    "shrink: `{array}` declared {declared:?} but only {used:?} is used — redefine as `{suggestion}`\n"
                ));
            }
            Advice::SubArrayCopyin { array, proc, directive, whole_bytes, accessed_bytes } => {
                out.push_str(&format!(
                    "offload: in `{proc}`, port {accessed_bytes} of {whole_bytes} bytes of `{array}`: insert `{directive}`\n"
                ));
            }
            Advice::LoopFusion { array, proc, region, lines } => {
                out.push_str(&format!(
                    "fusion: in `{proc}`, `{array}` region {region} is re-read at lines {lines:?} — merge the loops under one `!$omp parallel do`\n"
                ));
            }
            Advice::ParallelCalls { caller, callee_a, callee_b } => {
                out.push_str(&format!(
                    "parallel: in `{caller}`, calls to `{callee_a}` and `{callee_b}` touch disjoint regions and can run concurrently\n"
                ));
            }
            Advice::OmpParallelDo { proc, line, directive } => {
                out.push_str(&format!(
                    "openmp: in `{proc}`, the loop at line {line} has no loop-carried dependence — insert `{directive}`\n"
                ));
            }
            Advice::BulkCommunication { array, proc, get, region, refs } => {
                let verb = if *get { "get" } else { "put" };
                out.push_str(&format!(
                    "communication: in `{proc}`, {refs} element-wise remote {verb}(s) on `{array}` cover region {region} — aggregate into one bulk {verb}\n"
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use araa::AnalysisOptions;

    fn project_of(srcs: Vec<workloads::GenSource>) -> (Analysis, Project) {
        let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
        let project = Project::from_generated(&analysis, &srcs);
        (analysis, project)
    }

    #[test]
    fn fig10_shrink_matches_paper() {
        let (_a, p) = project_of(vec![workloads::fig10::source()]);
        let advice = shrink_advice(&p, ShrinkBasis::UseOnly);
        assert_eq!(advice.len(), 1, "{advice:#?}");
        match &advice[0] {
            Advice::ShrinkArray { array, suggestion, used, .. } => {
                assert_eq!(array, "aarr");
                // Paper: "redefine aarr to be (int aarr[8])".
                assert_eq!(suggestion, "aarr[8]");
                assert_eq!(used, &vec![(0, 7)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn use_and_def_basis_is_conservative() {
        let (_a, p) = project_of(vec![workloads::fig10::source()]);
        let advice = shrink_advice(&p, ShrinkBasis::UseAndDef);
        match &advice[0] {
            Advice::ShrinkArray { suggestion, used, .. } => {
                // DEF (1:8) extends the hull to index 8.
                assert_eq!(used, &vec![(0, 8)]);
                assert_eq!(suggestion, "aarr[9]");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fig10_copyin_matches_paper() {
        let (_a, p) = project_of(vec![workloads::fig10::source()]);
        let advice = copyin_advice(&p);
        let aarr: Vec<String> = advice
            .iter()
            .filter_map(|a| match a {
                Advice::SubArrayCopyin { array, directive, .. } if array == "aarr" => {
                    Some(directive.clone())
                }
                _ => None,
            })
            .collect();
        // The last loop's cluster yields the paper's exact directive:
        // "#pragma acc region for copyin(aarr[2:7])".
        assert!(
            aarr.contains(&"#pragma acc region for copyin(aarr[2:7])".to_string()),
            "{aarr:#?}"
        );
        // The earlier loops form their own cluster over 0..=7 / 1..=8.
        assert!(aarr.iter().any(|d| d.contains("aarr[0:")), "{aarr:#?}");
    }

    #[test]
    fn lu_copyin_matches_case2() {
        let (_a, p) = project_of(workloads::mini_lu::sources());
        let advice = copyin_advice(&p);
        let u = advice
            .iter()
            .find_map(|a| match a {
                Advice::SubArrayCopyin { array, proc, directive, whole_bytes, accessed_bytes }
                    if array == "u" && proc == "rhs" =>
                {
                    Some((directive.clone(), *whole_bytes, *accessed_bytes))
                }
                _ => None,
            })
            .expect("copyin advice for u in rhs");
        // Paper: "!$acc region copyin(U(1:3, 1:5, 1:10, 1:4))".
        assert_eq!(u.0, "!$acc region copyin(u(1:3,1:5,1:10,1:4))");
        assert_eq!(u.1, 10_816_000);
        assert_eq!(u.2, 3 * 5 * 10 * 4 * 8);
    }

    #[test]
    fn lu_fusion_detects_xcr_reuse() {
        let (_a, p) = project_of(workloads::mini_lu::sources());
        let advice = fusion_advice(&p);
        let xcr = advice
            .iter()
            .find_map(|a| match a {
                Advice::LoopFusion { array, proc, lines, .. }
                    if array == "xcr" && proc == "verify" =>
                {
                    Some(lines.clone())
                }
                _ => None,
            })
            .expect("fusion advice for xcr");
        assert_eq!(xcr.len(), 2, "two distinct loops re-read xcr: {xcr:?}");
    }

    #[test]
    fn fig1_parallel_calls_detected() {
        let (a, p) = project_of(vec![workloads::fig1::source()]);
        let advice = parallel_call_advice(&a);
        assert_eq!(advice.len(), 1);
        match &advice[0] {
            Advice::ParallelCalls { caller, callee_a, callee_b } => {
                assert_eq!(caller, "add");
                assert_eq!(callee_a, "p1");
                assert_eq!(callee_b, "p2");
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = p;
    }

    #[test]
    fn render_is_readable() {
        let (a, p) = project_of(vec![workloads::fig1::source()]);
        let text = render(&advise(&a, &p));
        assert!(text.contains("parallel: in `add`"), "{text}");
    }

    /// LEGACY ORACLE — verbatim copy of the hull-vs-declared scan the
    /// advisor carried before it was folded into `lint::facts`. Kept only
    /// to prove the refactor changed nothing; the production path is
    /// [`shrink_advice`].
    fn legacy_shrink_advice(project: &Project, basis: ShrinkBasis) -> Vec<Advice> {
        fn parse_bounds(s: &str) -> Option<Vec<i64>> {
            s.split('|').map(|p| p.trim().parse::<i64>().ok()).collect()
        }
        fn hull(rows: &[&RgnRow]) -> Option<Vec<(i64, i64)>> {
            let mut acc: Option<Vec<(i64, i64)>> = None;
            for row in rows {
                let (Some(lbs), Some(ubs)) = (parse_bounds(&row.lb), parse_bounds(&row.ub))
                else {
                    continue;
                };
                if lbs.len() != ubs.len() {
                    continue;
                }
                match &mut acc {
                    None => acc = Some(lbs.into_iter().zip(ubs).collect()),
                    Some(h) => {
                        if h.len() != lbs.len() {
                            continue;
                        }
                        for (d, (lo, hi)) in h.iter_mut().enumerate() {
                            *lo = (*lo).min(lbs[d]);
                            *hi = (*hi).max(ubs[d]);
                        }
                    }
                }
            }
            acc
        }
        let mut per_array: BTreeMap<String, Vec<&RgnRow>> = BTreeMap::new();
        for row in &project.rows {
            let counts = match basis {
                ShrinkBasis::UseOnly => row.mode == AccessMode::Use,
                ShrinkBasis::UseAndDef => row.mode.moves_data(),
            };
            if counts {
                per_array.entry(row.array.clone()).or_default().push(row);
            }
        }
        let mut out = Vec::new();
        for (array, rows) in per_array {
            let Some(used) = hull(&rows) else { continue };
            let Some(declared) = parse_bounds(&rows[0].dim_size) else { continue };
            if declared.len() != used.len() {
                continue;
            }
            let zero_based = used.iter().any(|&(lo, _)| lo == 0);
            let decl_lb = if zero_based { 0 } else { 1 };
            let shrinkable = used
                .iter()
                .zip(&declared)
                .any(|(&(_, hi), &ext)| hi < decl_lb + ext - 1);
            if !shrinkable {
                continue;
            }
            let suggestion = if zero_based {
                let exts: Vec<String> =
                    used.iter().map(|&(_, hi)| format!("[{}]", hi + 1)).collect();
                format!("{array}{}", exts.concat())
            } else {
                let dims: Vec<String> =
                    used.iter().map(|&(lo, hi)| format!("{lo}:{hi}")).collect();
                format!("{array}({})", dims.join(", "))
            };
            out.push(Advice::ShrinkArray { array, declared, used, suggestion });
        }
        out
    }

    #[test]
    fn shrink_advice_matches_legacy_scan_on_every_workload() {
        // The `lint::facts`-backed shrink advice must reproduce the old
        // private scan byte-for-byte on every workload and on both bases.
        let corpora: Vec<(&str, Vec<workloads::GenSource>)> = vec![
            ("fig1", vec![workloads::fig1::source()]),
            ("fig10", vec![workloads::fig10::source()]),
            ("mini_lu", workloads::mini_lu::sources()),
            ("stencil", vec![workloads::stencil::source()]),
            ("caf", vec![workloads::caf::source()]),
            ("synthetic", vec![workloads::synthetic::generate(&Default::default())]),
        ];
        for (name, srcs) in corpora {
            let (_a, p) = project_of(srcs);
            for basis in [ShrinkBasis::UseOnly, ShrinkBasis::UseAndDef] {
                let new = shrink_advice(&p, basis);
                let old = legacy_shrink_advice(&p, basis);
                assert_eq!(new, old, "{name} with {basis:?} diverged from the legacy scan");
            }
        }
    }
}
