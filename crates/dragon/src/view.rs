//! The array analysis graph view (Figs. 6, 12, 14).
//!
//! Renders the tabular structure Dragon displays: one row per region per
//! access mode with the full column set, a find feature that highlights
//! matches ("All accesses to Array aarr will be highlighted in green"), and
//! the per-dimension expansion visible in Fig. 14 (multi-dimensional rows
//! repeated once per dimension).

use crate::project::Project;
use araa::RgnRow;
use support::table::Table;

/// View options.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct ViewOptions {
    /// Highlight rows whose array name equals this (the find box).
    pub find: Option<String>,
    /// Expand multi-dimensional rows into one display row per dimension
    /// (Fig. 14's layout).
    pub expand_dims: bool,
    /// Emit ANSI color for highlights.
    pub color: bool,
}


/// The column headers of the array analysis graph (Fig. 6's layout, plus
/// the PGAS `Remote` extension column).
pub const COLUMNS: [&str; 17] = [
    "Array", "File", "Mode", "References", "Dimensions", "LB", "UB", "Stride",
    "Element_Size", "Data_Type", "Dim_Size", "Tot_Size", "Size_bytes", "Mem_Loc",
    "Acc_density", "Via", "Remote",
];

fn push_row(table: &mut Table, row: &RgnRow, lb: &str, ub: &str, stride: &str, hl: bool) {
    let cells = [
        row.array.clone(),
        row.file.clone(),
        row.display_mode(),
        row.refs.to_string(),
        row.dims.to_string(),
        lb.to_string(),
        ub.to_string(),
        stride.to_string(),
        row.elem_size.to_string(),
        row.data_type.clone(),
        row.dim_size.clone(),
        row.tot_size.to_string(),
        row.size_bytes.to_string(),
        row.mem_loc.clone(),
        row.acc_density.to_string(),
        row.via.clone().unwrap_or_default(),
        if row.remote { "yes".to_string() } else { String::new() },
    ];
    if hl {
        table.add_highlighted_row(cells);
    } else {
        table.add_row(cells);
    }
}

/// Builds the table for one scope.
pub fn scope_table(project: &Project, scope: &str, opts: &ViewOptions) -> Table {
    let mut table = Table::new(COLUMNS);
    for row in project.rows_for_scope(scope) {
        let hl = opts
            .find
            .as_deref()
            .is_some_and(|f| row.array.eq_ignore_ascii_case(f));
        if opts.expand_dims && row.dims > 1 {
            let lbs: Vec<&str> = row.lb.split('|').collect();
            let ubs: Vec<&str> = row.ub.split('|').collect();
            let strides: Vec<&str> = row.stride.split('|').collect();
            for d in 0..row.dims as usize {
                push_row(
                    &mut table,
                    row,
                    lbs.get(d).copied().unwrap_or(""),
                    ubs.get(d).copied().unwrap_or(""),
                    strides.get(d).copied().unwrap_or(""),
                    hl,
                );
            }
        } else {
            push_row(&mut table, row, &row.lb, &row.ub, &row.stride, hl);
        }
    }
    table
}

/// Renders the scope table as text.
pub fn render_scope(project: &Project, scope: &str, opts: &ViewOptions) -> String {
    let mut out = format!("Procedure/Scope: {scope}\n");
    out.push_str(&scope_table(project, scope, opts).render(opts.color));
    out
}

/// Renders the left-hand procedure list.
pub fn render_procedure_list(project: &Project) -> String {
    let mut out = String::new();
    for scope in project.scopes() {
        if scope == "@" {
            out.push_str("@\n");
        } else {
            out.push_str(&format!("|-{scope}\n"));
        }
    }
    out
}

/// The find feature: rows (any scope) whose array matches, with their scope.
pub fn find_array<'p>(project: &'p Project, name: &str) -> Vec<&'p RgnRow> {
    project
        .rows
        .iter()
        .filter(|r| r.array.eq_ignore_ascii_case(name))
        .collect()
}

/// The hotspot list: the paper defines access density precisely so the user
/// can "identify the hotspot arrays in the program in terms of memory
/// allocation and frequency of accesses". Returns the top `n` rows by
/// access density (ties broken by reference count), deduplicated per
/// (scope, array, mode, via).
pub fn hotspots(project: &Project, n: usize) -> Vec<&RgnRow> {
    let mut seen = std::collections::BTreeSet::new();
    let mut rows: Vec<&RgnRow> = project
        .rows
        .iter()
        .filter(|r| {
            seen.insert((r.proc.clone(), r.array.clone(), r.mode, r.via.clone()))
        })
        .collect();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.acc_density), std::cmp::Reverse(r.refs)));
    rows.truncate(n);
    rows
}

/// Renders the hotspot list as a small table.
pub fn render_hotspots(project: &Project, n: usize) -> String {
    let mut table =
        Table::new(["Array", "Scope", "Mode", "References", "Size_bytes", "Acc_density"]);
    for r in hotspots(project, n) {
        table.add_row([
            r.array.clone(),
            r.proc.clone(),
            r.display_mode(),
            r.refs.to_string(),
            r.size_bytes.to_string(),
            r.acc_density.to_string(),
        ]);
    }
    table.render(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use araa::{Analysis, AnalysisOptions};

    fn lu_project() -> Project {
        let srcs = workloads::mini_lu::sources();
        let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
        Project::from_generated(&analysis, &srcs)
    }

    #[test]
    fn verify_scope_shows_xcr_rows() {
        let p = lu_project();
        let out = render_scope(&p, "verify", &ViewOptions::default());
        assert!(out.contains("xcr"), "{out}");
        assert!(out.contains("FORMAL"), "{out}");
        assert!(out.contains("verify.o"), "{out}");
        assert!(out.contains("double"), "{out}");
    }

    #[test]
    fn find_highlights_matches() {
        let p = lu_project();
        let opts = ViewOptions { find: Some("xcr".into()), ..Default::default() };
        let out = render_scope(&p, "verify", &opts);
        assert!(out.contains(">xcr"), "gutter marker expected:\n{out}");
    }

    #[test]
    fn find_array_spans_scopes() {
        let p = lu_project();
        let hits = find_array(&p, "u");
        assert!(!hits.is_empty());
        let mut scopes: Vec<&str> = hits.iter().map(|r| r.proc.as_str()).collect();
        scopes.sort();
        scopes.dedup();
        assert!(scopes.len() > 1, "u is accessed in several procedures");
    }

    #[test]
    fn expand_dims_repeats_multidim_rows() {
        let p = lu_project();
        let base = scope_table(&p, "rhs", &ViewOptions::default());
        let expanded = scope_table(
            &p,
            "rhs",
            &ViewOptions { expand_dims: true, ..Default::default() },
        );
        assert!(expanded.row_count() > base.row_count());
    }

    #[test]
    fn procedure_list_has_24_entries_plus_at() {
        let p = lu_project();
        let list = render_procedure_list(&p);
        assert_eq!(list.lines().count(), 25);
        assert!(list.starts_with("@\n"));
        assert!(list.contains("|-MAIN__"));
        assert!(list.contains("|-verify"));
    }

    #[test]
    fn at_scope_renders_u() {
        let p = lu_project();
        let out = render_scope(&p, "@", &ViewOptions::default());
        assert!(out.contains("10816000"), "u's Size_bytes column:\n{out}");
    }

    #[test]
    fn hotspots_ranked_by_density() {
        let p = lu_project();
        let top = hotspots(&p, 3);
        assert_eq!(top.len(), 3);
        // Fig. 12's class row (AD 900) leads.
        assert_eq!(top[0].array, "class");
        assert_eq!(top[0].acc_density, 900);
        // Densities are non-increasing.
        assert!(top.windows(2).all(|w| w[0].acc_density >= w[1].acc_density));
        let rendered = render_hotspots(&p, 3);
        assert!(rendered.contains("class"), "{rendered}");
    }

    #[test]
    fn propagated_rows_render_interprocedural_modes() {
        let srcs = vec![workloads::fig1::source()];
        let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
        let p = Project::from_generated(&analysis, &srcs);
        let out = render_scope(&p, "add", &ViewOptions::default());
        assert!(out.contains("IDEF"), "{out}");
        assert!(out.contains("IUSE"), "{out}");
    }
}
