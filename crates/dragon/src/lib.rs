//! Dragon — the interactive array-analysis tool, terminal edition.
//!
//! "Dragon is an updated OpenUH compiler-based software tool ... an
//! interactive system with a powerful GUI providing a range of information
//! about the structure of source program in a graphical browseable form."
//! Our reproduction keeps every *information* feature — the array analysis
//! graph with all its columns, the call graph, per-procedure control-flow
//! graphs, source browsing with access highlighting, find and grep — and
//! renders them as text/DOT instead of Qt widgets.
//!
//! - [`project`] — loading `.dgn`/`.rgn` bundles (or in-memory analyses);
//! - [`view`] — the tabular array analysis graph (Figs. 6/12/14), find,
//!   per-dimension expansion;
//! - [`browse`] — source highlighting and grep (Figs. 7/13);
//! - [`advisor`] — the paper's three optimization guides: array shrinking,
//!   sub-array `copyin` directives, loop fusion, and parallelizable call
//!   pairs;
//! - [`sink`] — the structured diagnostics sink the binary routes all
//!   stderr reporting through;
//! - [`serve`] — the long-lived analysis daemon (`dragon serve`) and its
//!   retrying client, speaking line-delimited JSON-RPC over a Unix socket.

pub mod advisor;
pub mod browse;
pub mod project;
pub mod serve;
pub mod sink;
pub mod view;

pub use advisor::{advise, Advice, ShrinkBasis};
pub use project::Project;
pub use view::{render_procedure_list, render_scope, ViewOptions};
