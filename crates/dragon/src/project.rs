//! Dragon projects: the `.dgn` + `.rgn` (+ sources) bundle the tool loads.
//!
//! "Invoke our Dragon tool and load the .dgn project." A [`Project`] can be
//! built directly from an in-memory [`araa::Analysis`] (the common path in
//! examples and tests) or loaded from the files a previous run wrote.

use araa::dgn::DgnProject;
use araa::{Analysis, RgnRow};
use std::collections::BTreeMap;
use std::path::Path;
use support::{Error, Result};

/// A loaded Dragon project.
#[derive(Debug, Default)]
pub struct Project {
    /// Call-graph / procedure metadata.
    pub dgn: DgnProject,
    /// All analysis rows.
    pub rows: Vec<RgnRow>,
    /// Source texts by file name (for the browsing view).
    pub sources: BTreeMap<String, String>,
}

impl Project {
    /// Builds a project from a completed analysis plus the original sources.
    pub fn from_analysis(analysis: &Analysis, sources: &[(String, String)]) -> Self {
        let dgn = DgnProject::from_program(&analysis.program, &analysis.callgraph);
        Project {
            dgn,
            rows: analysis.rows.clone(),
            sources: sources.iter().cloned().collect(),
        }
    }

    /// Convenience for generated workloads.
    pub fn from_generated(
        analysis: &Analysis,
        sources: &[workloads::GenSource],
    ) -> Self {
        let srcs: Vec<(String, String)> =
            sources.iter().map(|g| (g.name.clone(), g.text.clone())).collect();
        Self::from_analysis(analysis, &srcs)
    }

    /// Loads `<stem>.dgn` and `<stem>.rgn` from a directory written by
    /// [`araa::Analysis::write_project`].
    pub fn load(dir: &Path, stem: &str) -> Result<Self> {
        let read = |ext: &str| -> Result<String> {
            let path = dir.join(format!("{stem}.{ext}"));
            std::fs::read_to_string(&path)
                .map_err(|e| Error::io(format!("reading {}", path.display()), e))
        };
        let dgn = DgnProject::read(&read("dgn")?)?;
        let rows = araa::rgn::read_rgn(&read("rgn")?)?;
        Ok(Project { dgn, rows, sources: BTreeMap::new() })
    }

    /// Registers a source text for browsing.
    pub fn add_source(&mut self, file: impl Into<String>, text: impl Into<String>) {
        self.sources.insert(file.into(), text.into());
    }

    /// The procedure list for the left column, pre-order, `@` first —
    /// "For each program, a procedure list is generated and displayed in the
    /// most-left column of the table. The @ symbol ... indicates global
    /// arrays."
    pub fn scopes(&self) -> Vec<String> {
        let mut out = vec!["@".to_string()];
        out.extend(self.dgn.procs.iter().map(|p| p.display.clone()));
        out
    }

    /// Rows for a scope: `@` selects global-array rows program-wide; a
    /// procedure name selects that procedure's rows.
    pub fn rows_for_scope(&self, scope: &str) -> Vec<&RgnRow> {
        if scope == "@" {
            self.rows.iter().filter(|r| r.is_global).collect()
        } else {
            self.rows.iter().filter(|r| r.proc == scope).collect()
        }
    }

    /// All distinct array names in the project.
    pub fn array_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.rows.iter().map(|r| r.array.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use araa::AnalysisOptions;

    fn fig10_project() -> Project {
        let srcs = vec![workloads::fig10::source()];
        let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
        Project::from_generated(&analysis, &srcs)
    }

    #[test]
    fn scopes_start_with_at() {
        let p = fig10_project();
        let scopes = p.scopes();
        assert_eq!(scopes[0], "@");
        assert!(scopes.contains(&"MAIN__".to_string()));
    }

    #[test]
    fn at_scope_selects_globals() {
        let p = fig10_project();
        let rows = p.rows_for_scope("@");
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.is_global));
        assert!(rows.iter().all(|r| r.array == "aarr"));
    }

    #[test]
    fn proc_scope_selects_by_display_name() {
        let p = fig10_project();
        let rows = p.rows_for_scope("MAIN__");
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn sources_are_browsable() {
        let p = fig10_project();
        assert!(p.sources.contains_key("matrix.c"));
    }

    #[test]
    fn array_names_deduplicated() {
        let p = fig10_project();
        assert_eq!(p.array_names(), vec!["aarr".to_string()]);
    }

    #[test]
    fn disk_round_trip() {
        let srcs = vec![workloads::fig10::source()];
        let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
        // A unique per-process directory: concurrent test runs (or parallel
        // test binaries) must not race each other on a shared fixed path.
        let dir = support::testdir::TestDir::new("dragon-project");
        analysis.write_project(dir.path(), "matrix").unwrap();
        let p = Project::load(dir.path(), "matrix").unwrap();
        assert_eq!(p.rows.len(), analysis.rows.len());
        assert_eq!(p.dgn.procs.len(), 1);
    }

    #[test]
    fn load_missing_project_errors() {
        let err = Project::load(Path::new("/nonexistent"), "x");
        assert!(err.is_err());
    }
}
