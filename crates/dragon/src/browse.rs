//! Source browsing: highlighting and grep (Fig. 7).
//!
//! "This GUI provides features such as: syntax highlighting as well as find
//! /UNIX-like grep feature. Moreover, the developer has the ability to
//! distinctly visualize the source code in order to refer to any particular
//! global array or an array parameter of a procedure."

use crate::project::Project;

/// One grep/browse hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceHit {
    /// File name.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The line text.
    pub text: String,
}

/// Greps every registered source for `pattern` (plain substring,
/// case-insensitive) — the tool's "UNIX-like grep feature".
pub fn grep(project: &Project, pattern: &str) -> Vec<SourceHit> {
    let needle = pattern.to_lowercase();
    let mut hits = Vec::new();
    for (file, text) in &project.sources {
        for (i, line) in text.lines().enumerate() {
            if line.to_lowercase().contains(&needle) {
                hits.push(SourceHit {
                    file: file.clone(),
                    line: (i + 1) as u32,
                    text: line.to_string(),
                });
            }
        }
    }
    hits
}

/// Greps for statements mentioning an array as an identifier (so `u` does
/// not match `u000ijk`) — "the user can grep any array to display all the
/// statements in which the array has been accessed".
pub fn grep_array(project: &Project, array: &str) -> Vec<SourceHit> {
    let needle = array.to_lowercase();
    let mut hits = Vec::new();
    for (file, text) in &project.sources {
        for (i, line) in text.lines().enumerate() {
            if line_mentions_ident(&line.to_lowercase(), &needle) {
                hits.push(SourceHit {
                    file: file.clone(),
                    line: (i + 1) as u32,
                    text: line.to_string(),
                });
            }
        }
    }
    hits
}

fn line_mentions_ident(line: &str, ident: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(ident) {
        let begin = start + pos;
        let end = begin + ident.len();
        let before_ok = begin == 0 || !is_ident_char(bytes[begin - 1]);
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = begin + 1;
    }
    false
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Renders a source file with the lines that access `array` marked — the
/// browse view behind Fig. 7/13. With `color`, markers are ANSI green;
/// otherwise a `>` gutter is used.
pub fn render_source_with_highlights(
    project: &Project,
    file: &str,
    array: &str,
    color: bool,
) -> Option<String> {
    const GREEN: &str = "\x1b[32m";
    const RESET: &str = "\x1b[0m";
    let text = project.sources.get(file)?;
    let needle = array.to_lowercase();
    let mut out = String::new();
    for (i, line) in text.lines().enumerate() {
        let hit = line_mentions_ident(&line.to_lowercase(), &needle);
        if hit && color {
            out.push_str(&format!("{GREEN}{:>5} | {line}{RESET}\n", i + 1));
        } else if hit {
            out.push_str(&format!(">{:>4} | {line}\n", i + 1));
        } else {
            out.push_str(&format!("{:>5} | {line}\n", i + 1));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use araa::{Analysis, AnalysisOptions};
    use crate::project::Project;

    fn lu_project() -> Project {
        let srcs = workloads::mini_lu::sources();
        let analysis = Analysis::analyze(&srcs, AnalysisOptions::default()).unwrap();
        Project::from_generated(&analysis, &srcs)
    }

    #[test]
    fn grep_finds_substring_hits() {
        let p = lu_project();
        let hits = grep(&p, "xcrmax");
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.file == "verify.f"));
        assert!(hits[0].line > 0);
    }

    #[test]
    fn grep_array_respects_identifier_boundaries() {
        let p = lu_project();
        let hits = grep_array(&p, "u");
        assert!(!hits.is_empty());
        // `u000ijk(m)` lines in exact.f must not match bare `u`.
        assert!(
            hits.iter().all(|h| !h.text.contains("u000ijk") || h.text.contains("u(")),
            "{hits:#?}"
        );
    }

    #[test]
    fn grep_is_case_insensitive() {
        let p = lu_project();
        let lower = grep(&p, "xcr");
        let upper = grep(&p, "XCR");
        assert_eq!(lower.len(), upper.len());
    }

    #[test]
    fn highlight_marks_access_lines() {
        let p = lu_project();
        let out = render_source_with_highlights(&p, "verify.f", "xcr", false).unwrap();
        assert!(out.contains(">"), "{out}");
        let marked: Vec<&str> = out.lines().filter(|l| l.starts_with('>')).collect();
        assert!(marked.iter().all(|l| l.to_lowercase().contains("xcr")));
        assert!(marked.len() >= 3, "formal + uses: {marked:#?}");
    }

    #[test]
    fn highlight_color_mode_uses_ansi() {
        let p = lu_project();
        let out = render_source_with_highlights(&p, "verify.f", "xcr", true).unwrap();
        assert!(out.contains("\x1b[32m"));
    }

    #[test]
    fn missing_file_is_none() {
        let p = lu_project();
        assert!(render_source_with_highlights(&p, "nope.f", "u", false).is_none());
    }

    #[test]
    fn ident_boundary_logic() {
        assert!(line_mentions_ident("u(i, j) = 0", "u"));
        assert!(!line_mentions_ident("u000ijk(m) = 0", "u"));
        assert!(line_mentions_ident("call foo(u)", "u"));
        assert!(!line_mentions_ident("sum = sum + 1", "u"));
    }
}
