//! The `dragon` command-line tool.
//!
//! ```text
//! dragon analyze <src...> --out DIR --stem NAME   compile + write .rgn/.dgn/.cfg
//! dragon view <scope> [--find ARRAY] <src...>     render the array analysis graph
//! dragon callgraph <src...>                       DOT call graph (Fig. 11)
//! dragon advise <src...>                          optimization advice
//! dragon demo <fig1|matrix|lu>                    run a built-in paper workload
//! dragon dynamic <entry> <src...>                 execute + dynamic region report
//! dragon hotspots <src...> [--top N]              highest access densities
//! dragon cache <stats|verify|clear> --cache-dir D inspect/scrub a cache dir
//! ```
//!
//! Source language is inferred from the extension (`.c` → C, else Fortran).
//!
//! `--cache-dir DIR` attaches a persistent analysis cache to any analyzing
//! command: results are loaded from `DIR` when valid (per-procedure, each
//! entry checksummed and fingerprinted) and saved back after the run.
//! Corrupt or stale cache files are quarantined and reported, never trusted;
//! `--no-cache` ignores the cache entirely for one run.
//!
//! Exit codes: `0` — clean analysis; `1` — the analysis completed but some
//! procedures degraded to conservative approximations, or a cache file had
//! to be quarantined (a report goes to stderr); `2` — the analysis failed
//! outright or the invocation was bad. With `--strict`, degradation is
//! promoted to failure (exit `2`).

use araa::{Analysis, AnalysisOptions, AnalysisSession, SessionStore};
use dragon::view::ViewOptions;
use dragon::{advisor, render_procedure_list, render_scope, Project};
use frontend::SourceFile;
use std::sync::atomic::{AtomicBool, Ordering};
use whirl::Lang;

/// Set when the analysis degraded; turns exit 0 into exit 1.
static DEGRADED: AtomicBool = AtomicBool::new(false);

fn usage() -> ! {
    eprintln!(
        "usage: dragon [--strict] [--cache-dir DIR] [--no-cache] <command> [options] [sources...]\n\
         \x20 analyze <src...> [--out DIR] [--stem NAME]\n\
         \x20 view <scope> <src...> [--find ARRAY] [--expand-dims]\n\
         \x20 callgraph <src...>\n\
         \x20 advise <src...>\n\
         \x20 demo <fig1|matrix|lu>\n\
         \x20 dynamic <entry> <src...>\n\
         \x20 hotspots <src...> [--top N]\n\
         \x20 cache <stats|verify|clear>   (requires --cache-dir)\n\
         \x20 --strict: treat degraded analysis as failure (exit 2)\n\
         \x20 --cache-dir DIR: load/save a persistent analysis cache\n\
         \x20 --no-cache: ignore --cache-dir for this run"
    );
    std::process::exit(2);
}

fn read_sources(paths: &[String]) -> Vec<(SourceFile, workloads::GenSource)> {
    let mut out = Vec::new();
    for p in paths {
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dragon: cannot read {p}: {e}");
                std::process::exit(2);
            }
        };
        let lang = if p.ends_with(".c") { Lang::C } else { Lang::Fortran };
        let name = std::path::Path::new(p)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.clone());
        out.push((
            SourceFile::new(&name, &text, lang),
            workloads::GenSource {
                name,
                text,
                fortran: lang == Lang::Fortran,
            },
        ));
    }
    out
}

/// Runs the pipeline, through a persistent cache when one is attached.
/// Returns the analysis plus any cache incidents (quarantined files, lock
/// timeouts) — the analysis itself is never affected by cache trouble, only
/// how much of it had to be recomputed.
fn run_analysis(
    gens: &[workloads::GenSource],
    cache_dir: Option<&str>,
) -> support::Result<(Analysis, Vec<araa::Degradation>)> {
    match cache_dir {
        Some(dir) => {
            let mut session = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir);
            session.load();
            session.update(gens)?;
            session.persist();
            let incidents = session.cache_incidents().to_vec();
            let analysis = session.into_analysis().ok_or_else(|| {
                support::Error::Analysis("analysis session kept no result".to_string())
            })?;
            Ok((analysis, incidents))
        }
        None => Ok((Analysis::analyze(gens, AnalysisOptions::default())?, Vec::new())),
    }
}

fn analyze(
    gens: &[workloads::GenSource],
    strict: bool,
    cache_dir: Option<&str>,
) -> (Analysis, Project) {
    match run_analysis(gens, cache_dir) {
        Ok((a, cache_incidents)) => {
            if !cache_incidents.is_empty() {
                eprintln!(
                    "dragon: {} cache incident(s) (results are unaffected; \
                     the affected procedures were recomputed):",
                    cache_incidents.len()
                );
                for d in &cache_incidents {
                    eprintln!("  {d}");
                }
            }
            if a.degraded() {
                eprintln!(
                    "dragon: analysis degraded ({} issue(s)):",
                    a.degradations.len()
                );
                for d in &a.degradations {
                    eprintln!("  {d}");
                }
            }
            if a.degraded() || !cache_incidents.is_empty() {
                if strict {
                    eprintln!("dragon: --strict: treating degraded analysis as failure");
                    std::process::exit(2);
                }
                DEGRADED.store(true, Ordering::Relaxed);
            }
            let project = Project::from_generated(&a, gens);
            (a, project)
        }
        Err(e) => {
            // Point at the offending source line when the error carries a
            // position (we do not know which file; show the first match).
            if let Some(pos) = frontend::diag::error_pos(&e) {
                for g in gens {
                    if g.text.lines().nth(pos.line.saturating_sub(1) as usize).is_some() {
                        eprint!("dragon: {}", frontend::diag::render(&g.name, &g.text, &e));
                        std::process::exit(2);
                    }
                }
            }
            eprintln!("dragon: {e}");
            std::process::exit(2);
        }
    }
}

fn demo_sources(which: &str) -> Vec<workloads::GenSource> {
    match which {
        "fig1" => vec![workloads::fig1::source()],
        "matrix" => vec![workloads::fig10::source()],
        "lu" => workloads::mini_lu::sources(),
        other => {
            eprintln!("dragon: unknown demo `{other}` (try fig1, matrix, lu)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut strict = false;
    let mut no_cache = false;
    let mut cache_dir: Option<String> = None;
    let mut args: Vec<String> = Vec::with_capacity(raw.len());
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => cache_dir = Some(it.next().unwrap_or_else(|| usage())),
            _ => args.push(a),
        }
    }
    let store_dir = cache_dir.clone();
    if no_cache {
        cache_dir = None;
    }
    let cache_dir = cache_dir.as_deref();
    let Some(cmd) = args.first() else { usage() };

    match cmd.as_str() {
        "analyze" => {
            let mut out_dir = ".".to_string();
            let mut stem = "project".to_string();
            let mut srcs = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => out_dir = it.next().cloned().unwrap_or_else(|| usage()),
                    "--stem" => stem = it.next().cloned().unwrap_or_else(|| usage()),
                    other => srcs.push(other.to_string()),
                }
            }
            if srcs.is_empty() {
                usage();
            }
            let pairs = read_sources(&srcs);
            let gens: Vec<_> = pairs.into_iter().map(|(_, g)| g).collect();
            let (analysis, _) = analyze(&gens, strict, cache_dir);
            if let Err(e) =
                analysis.write_project(std::path::Path::new(&out_dir), &stem)
            {
                eprintln!("dragon: {e}");
                std::process::exit(2);
            }
            println!(
                "wrote {out_dir}/{stem}.rgn, .dgn, .cfg ({} rows, {} procedures)",
                analysis.rows.len(),
                analysis.program.procedure_count()
            );
        }
        "view" => {
            let Some(scope) = args.get(1) else { usage() };
            let mut find = None;
            let mut expand = false;
            let mut srcs = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--find" => find = it.next().cloned(),
                    "--expand-dims" => expand = true,
                    other => srcs.push(other.to_string()),
                }
            }
            let gens: Vec<_> =
                read_sources(&srcs).into_iter().map(|(_, g)| g).collect();
            let (_, project) = analyze(&gens, strict, cache_dir);
            print!("{}", render_procedure_list(&project));
            let opts = ViewOptions { find, expand_dims: expand, color: true };
            print!("{}", render_scope(&project, scope, &opts));
        }
        "callgraph" => {
            let gens: Vec<_> =
                read_sources(&args[1..]).into_iter().map(|(_, g)| g).collect();
            let (analysis, _) = analyze(&gens, strict, cache_dir);
            print!("{}", analysis.callgraph.to_dot(&analysis.program));
        }
        "advise" => {
            let gens: Vec<_> =
                read_sources(&args[1..]).into_iter().map(|(_, g)| g).collect();
            let (analysis, project) = analyze(&gens, strict, cache_dir);
            print!("{}", advisor::render(&advisor::advise(&analysis, &project)));
        }
        "demo" => {
            let Some(which) = args.get(1) else { usage() };
            let gens = demo_sources(which);
            let (analysis, project) = analyze(&gens, strict, cache_dir);
            println!("== procedures ==");
            print!("{}", render_procedure_list(&project));
            println!("\n== array analysis graph (@ scope) ==");
            print!("{}", render_scope(&project, "@", &ViewOptions::default()));
            println!("\n== advice ==");
            print!("{}", advisor::render(&advisor::advise(&analysis, &project)));
        }
        "hotspots" => {
            let mut top = 10usize;
            let mut srcs = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => {
                        top = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    other => srcs.push(other.to_string()),
                }
            }
            let gens: Vec<_> =
                read_sources(&srcs).into_iter().map(|(_, g)| g).collect();
            let (_, project) = analyze(&gens, strict, cache_dir);
            print!("{}", dragon::view::render_hotspots(&project, top));
        }
        "dynamic" => {
            let Some(entry) = args.get(1) else { usage() };
            let gens: Vec<_> =
                read_sources(&args[2..]).into_iter().map(|(_, g)| g).collect();
            let (analysis, _) = analyze(&gens, strict, cache_dir);
            match araa::dynamic::run_dynamic(
                &analysis.program,
                entry,
                whirl::interp::Limits::default(),
            ) {
                Ok(dynamic) => {
                    print!("{}", araa::dynamic::render_report(&analysis.program, &dynamic));
                    let violations = araa::dynamic::validate_against_static(
                        &analysis.program,
                        &analysis.ipa,
                        &dynamic,
                    );
                    println!(
                        "\n{} element accesses; static-covers-dynamic violations: {}",
                        dynamic.total_accesses,
                        violations.len()
                    );
                    for v in violations {
                        println!("  VIOLATION: {}", v.detail);
                    }
                }
                Err(e) => {
                    eprintln!("dragon: execution failed: {e}");
                    std::process::exit(2);
                }
            }
        }
        "cache" => {
            let Some(op) = args.get(1) else { usage() };
            let Some(dir) = store_dir.as_deref() else {
                eprintln!("dragon: cache {op} requires --cache-dir DIR");
                std::process::exit(2);
            };
            let store = SessionStore::new(dir, &AnalysisOptions::default());
            match op.as_str() {
                "stats" => match store.stats() {
                    Ok(s) => {
                        println!("cache directory: {dir}");
                        println!("manifest:        {}", if s.manifest { "present" } else { "absent" });
                        println!("procedures:      {}", s.procedures);
                        println!("sources:         {}", s.sources);
                        println!("entry files:     {}", s.entry_files);
                        println!("total bytes:     {}", s.bytes);
                        println!("quarantined:     {}", s.quarantined);
                    }
                    Err(e) => {
                        eprintln!("dragon: cache stats: {e}");
                        std::process::exit(2);
                    }
                },
                "verify" => match store.verify() {
                    Ok(r) => {
                        println!(
                            "{} file(s) valid, {} orphan entr{} (unreferenced, swept on next save)",
                            r.ok,
                            r.orphans,
                            if r.orphans == 1 { "y" } else { "ies" }
                        );
                        if !r.clean() {
                            eprintln!("dragon: {} problem(s):", r.problems.len());
                            for p in &r.problems {
                                eprintln!("  {p}");
                            }
                            std::process::exit(if strict { 2 } else { 1 });
                        }
                    }
                    Err(e) => {
                        eprintln!("dragon: cache verify: {e}");
                        std::process::exit(2);
                    }
                },
                "clear" => match store.clear() {
                    Ok(n) => println!("removed {n} file(s) from {dir}"),
                    Err(e) => {
                        eprintln!("dragon: cache clear: {e}");
                        std::process::exit(2);
                    }
                },
                _ => usage(),
            }
        }
        _ => usage(),
    }
    std::process::exit(i32::from(DEGRADED.load(Ordering::Relaxed)));
}
