//! The `dragon` command-line tool.
//!
//! ```text
//! dragon analyze <src...> --out DIR --stem NAME   compile + write .rgn/.dgn/.cfg
//! dragon view <scope> [--find ARRAY] <src...>     render the array analysis graph
//! dragon callgraph <src...>                       DOT call graph (Fig. 11)
//! dragon advise <src...>                          optimization advice
//! dragon demo <fig1|matrix|lu>                    run a built-in paper workload
//! dragon dynamic <entry> <src...>                 execute + dynamic region report
//! dragon hotspots <src...> [--top N]              highest access densities
//! dragon lint <src...> [--sarif FILE] [--threads N]  array-safety findings
//! dragon cache <stats|verify|clear> --cache-dir D inspect/scrub a cache dir
//! ```
//!
//! Source language is inferred from the extension (`.c` → C, else Fortran).
//!
//! `--cache-dir DIR` attaches a persistent analysis cache to any analyzing
//! command: results are loaded from `DIR` when valid (per-procedure, each
//! entry checksummed and fingerprinted) and saved back after the run.
//! Corrupt or stale cache files are quarantined and reported, never trusted;
//! `--no-cache` ignores the cache entirely for one run.
//!
//! Exit codes: `0` — clean analysis; `1` — the analysis completed but some
//! procedures degraded to conservative approximations, or a cache file had
//! to be quarantined (a report goes to stderr); `2` — the analysis failed
//! outright or the invocation was bad. With `--strict`, degradation is
//! promoted to failure (exit `2`). `dragon lint` additionally exits `1`
//! when it reports any *definite* finding (possible-only findings exit
//! `0`), and `2` for definite findings under `--strict`.

use araa::{Analysis, AnalysisOptions, AnalysisSession, SessionStore};
use dragon::sink::{self, Severity};
use dragon::view::ViewOptions;
use dragon::{advisor, render_procedure_list, render_scope, Project};
use frontend::SourceFile;
use std::path::Path;
use support::obs::{self, ClockKind, Collector};
use whirl::Lang;

/// Every allocation the binary makes is counted, so spans in `--trace-out`
/// traces carry real allocation estimates instead of zeros.
#[global_allocator]
static ALLOC: obs::alloc::CountingAllocator<std::alloc::System> =
    obs::alloc::CountingAllocator::new(std::alloc::System);

fn usage() -> ! {
    eprintln!(
        "usage: dragon [--strict] [--cache-dir DIR] [--no-cache]\n\
         \x20             [--trace-out DIR] [--metrics FILE] <command> [options] [sources...]\n\
         \x20 analyze <src...> [--out DIR] [--stem NAME]\n\
         \x20 view <scope> <src...> [--find ARRAY] [--expand-dims]\n\
         \x20 callgraph <src...>\n\
         \x20 advise <src...>\n\
         \x20 demo <fig1|matrix|lu>\n\
         \x20 dynamic <entry> <src...>\n\
         \x20 hotspots <src...> [--top N]\n\
         \x20 lint <src...> [--sarif FILE] [--threads N]\n\
         \x20 profile <src...> [--top N]\n\
         \x20 cache <stats|verify|clear>   (requires --cache-dir)\n\
         \x20 serve --socket PATH [--cache-root DIR] [--workers N]\n\
         \x20       [--queue-depth N] [--deadline-ms N] [--persist-debounce-ms N]\n\
         \x20       [--max-connections N] [--max-frame-bytes N] [--io-timeout-ms N]\n\
         \x20       [--heartbeat-grace-ms N] [--circuit-threshold N]\n\
         \x20       [--circuit-cooldown-ms N] [--slow-threshold-ms N]\n\
         \x20       [--log-capacity N]\n\
         \x20       [--metrics-interval-ms N --metrics-snapshot FILE]\n\
         \x20 client --socket PATH <op|ping> [--project NAME] [--deadline-ms N]\n\
         \x20        [--retries N] [--timeout-ms N] [--trace ID] [--format F]\n\
         \x20        [--limit N] [--top N] [sources...]\n\
         \x20        (ping = health probe with a one-line summary;\n\
         \x20         ops: analyze reanalyze lint query-rgn stats health\n\
         \x20         shutdown metrics query-log profile)\n\
         \x20 top --socket PATH [--interval-ms N] [--iterations N|--once]\n\
         \x20     [--top N]   (live daemon dashboard: rps, per-op p50/p95/p99,\n\
         \x20     worker heartbeats, hottest procedures)\n\
         \x20 --strict: treat degraded analysis as failure (exit 2)\n\
         \x20 --cache-dir DIR: load/save a persistent analysis cache\n\
         \x20 --no-cache: ignore --cache-dir for this run\n\
         \x20 --timeout SECS: wall-clock deadline; analysis degrades (exit 1)\n\
         \x20                 instead of running past it\n\
         \x20 --mem-budget-mb MB: allocation-churn budget; analysis degrades\n\
         \x20                 (exit 1) instead of allocating past it; for\n\
         \x20                 serve/client it sets the per-request default\n\
         \x20 --trace-out DIR: write trace.json (Chrome trace) + metrics.jsonl\n\
         \x20 --metrics FILE: write the JSONL metrics stream to FILE"
    );
    std::process::exit(2);
}

fn read_sources(paths: &[String]) -> Vec<(SourceFile, workloads::GenSource)> {
    let mut out = Vec::new();
    for p in paths {
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => sink::fatal("io.read", format!("cannot read {p}: {e}")),
        };
        let lang = if p.ends_with(".c") { Lang::C } else { Lang::Fortran };
        let name = std::path::Path::new(p)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.clone());
        out.push((
            SourceFile::new(&name, &text, lang),
            workloads::GenSource {
                name,
                text,
                fortran: lang == Lang::Fortran,
            },
        ));
    }
    out
}

/// Runs the pipeline, through a persistent cache when one is attached.
/// Returns the analysis plus any cache incidents (quarantined files, lock
/// timeouts) — the analysis itself is never affected by cache trouble, only
/// how much of it had to be recomputed.
fn run_analysis(
    gens: &[workloads::GenSource],
    cache_dir: Option<&str>,
) -> support::Result<(Analysis, Vec<araa::Degradation>)> {
    match cache_dir {
        Some(dir) => {
            let mut session = AnalysisSession::with_cache_dir(AnalysisOptions::default(), dir);
            session.load();
            session.update(gens)?;
            session.persist();
            let incidents = session.cache_incidents().to_vec();
            let analysis = session.into_analysis().ok_or_else(|| {
                support::Error::Analysis("analysis session kept no result".to_string())
            })?;
            Ok((analysis, incidents))
        }
        None => Ok((Analysis::analyze(gens, AnalysisOptions::default())?, Vec::new())),
    }
}

fn analyze(
    gens: &[workloads::GenSource],
    strict: bool,
    cache_dir: Option<&str>,
) -> (Analysis, Project) {
    match run_analysis(gens, cache_dir) {
        Ok((a, cache_incidents)) => {
            if !cache_incidents.is_empty() {
                let mut msg = format!(
                    "{} cache incident(s) (results are unaffected; \
                     the affected procedures were recomputed):",
                    cache_incidents.len()
                );
                for d in &cache_incidents {
                    msg.push_str(&format!("\n  {d}"));
                }
                sink::emit(Severity::Degraded, "cache.incident", msg);
            }
            if a.degraded() {
                let mut msg =
                    format!("analysis degraded ({} issue(s)):", a.degradations.len());
                for d in &a.degradations {
                    msg.push_str(&format!("\n  {d}"));
                }
                sink::emit(Severity::Degraded, "analysis.degraded", msg);
            }
            if sink::degraded() && strict {
                sink::fatal("strict", "--strict: treating degraded analysis as failure");
            }
            let project = Project::from_generated(&a, gens);
            (a, project)
        }
        Err(e) => {
            // Point at the offending source line when the error carries a
            // position (we do not know which file; show the first match).
            if let Some(pos) = frontend::diag::error_pos(&e) {
                for g in gens {
                    if g.text.lines().nth(pos.line.saturating_sub(1) as usize).is_some() {
                        sink::fatal(
                            "analysis.error",
                            frontend::diag::render(&g.name, &g.text, &e),
                        );
                    }
                }
            }
            sink::fatal("analysis.error", format!("{e}"));
        }
    }
}

/// Runs the lint engine, through the persistent per-procedure lint cache
/// when a cache dir is attached. Lint-cache trouble is quarantined and
/// reported but never changes findings — the run just re-lints more.
fn run_lint(
    analysis: &Analysis,
    threads: usize,
    cache_dir: Option<&str>,
) -> lint::LintReport {
    let opts = lint::LintOptions { threads };
    match cache_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let (mut cache, incidents) = lint::LintCache::load(dir);
            for inc in &incidents {
                sink::emit(Severity::Degraded, "lint.cache", inc.clone());
            }
            let report = lint::run_with_cache(analysis, &opts, &mut cache);
            if let Err(e) = cache.save(dir) {
                sink::emit(
                    Severity::Degraded,
                    "lint.cache",
                    format!("could not save lint cache: {e}"),
                );
            }
            report
        }
        None => lint::run(analysis, &opts),
    }
}

/// Renders and writes the SARIF artifact (checksummed, atomic). Emission
/// failure — including an armed `lint::sarif` faultpoint — degrades the
/// run; the findings already printed are unaffected.
fn write_sarif(report: &lint::LintReport, path: &str) {
    let rendered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        lint::sarif::to_sarif(report, env!("CARGO_PKG_VERSION"))
    }));
    match rendered {
        Ok(mut doc) => {
            support::persist::append_text_checksum(&mut doc);
            if let Err(e) = support::persist::atomic_write(
                std::path::Path::new(path),
                doc.as_bytes(),
            ) {
                sink::emit(
                    Severity::Degraded,
                    "lint.sarif",
                    format!("cannot write {path}: {e}"),
                );
            } else {
                println!("wrote SARIF to {path}");
            }
        }
        Err(_) => sink::emit(
            Severity::Degraded,
            "lint.sarif",
            "SARIF emission failed; the findings above are unaffected".to_string(),
        ),
    }
}

fn demo_sources(which: &str) -> Vec<workloads::GenSource> {
    match which {
        "fig1" => vec![workloads::fig1::source()],
        "matrix" => vec![workloads::fig10::source()],
        "lu" => workloads::mini_lu::sources(),
        other => sink::fatal("cli.demo", format!("unknown demo `{other}` (try fig1, matrix, lu)")),
    }
}

/// Renders the self-profiling report: per-procedure ranking (heaviest
/// first) plus per-phase totals, from the collector's [`obs::Snapshot`].
fn render_profile(snap: &obs::Snapshot, top: usize) -> String {
    let fmt_units = |v: u64| match snap.clock {
        ClockKind::Monotonic => format!("{:.3} ms", v as f64 / 1e6),
        ClockKind::Logical => format!("{v} ticks"),
    };
    let fmt_bytes = |v: u64| {
        if v >= 1 << 20 {
            format!("{:.1} MB", v as f64 / (1u64 << 20) as f64)
        } else if v >= 1 << 10 {
            format!("{:.1} KB", v as f64 / 1024.0)
        } else {
            format!("{v} B")
        }
    };
    let mut out = String::new();
    out.push_str("== hot procedures ==\n");
    if snap.procs.is_empty() {
        out.push_str("(no per-procedure spans recorded)\n");
    } else {
        let mut t = support::table::Table::new(["procedure", "time", "alloc", "spans", "source"]);
        for p in snap.procs.iter().take(top) {
            let source = match (p.primed, p.recomputed) {
                (true, true) => "primed+recomputed",
                (true, false) => "primed",
                (false, true) => "recomputed",
                (false, false) => "-",
            };
            t.add_row([
                p.proc.clone(),
                fmt_units(p.total),
                fmt_bytes(p.alloc),
                format!("{}", p.spans),
                source.to_string(),
            ]);
        }
        out.push_str(&t.render(false));
    }
    out.push_str("\n== counters ==\n");
    let nonzero: Vec<_> = snap.counters.iter().filter(|(_, v)| *v > 0).collect();
    if nonzero.is_empty() {
        out.push_str("(no counters incremented)\n");
    } else {
        let mut t = support::table::Table::new(["counter", "value"]);
        for (name, v) in nonzero {
            t.add_row([name.to_string(), format!("{v}")]);
        }
        out.push_str(&t.render(false));
    }
    out.push_str("\n== phase totals ==\n");
    let mut spans: Vec<&obs::SpanAgg> = snap.spans.iter().collect();
    spans.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(b.name)));
    let mut t = support::table::Table::new(["span", "count", "time", "alloc"]);
    for s in spans {
        t.add_row([
            s.name.to_string(),
            format!("{}", s.count),
            fmt_units(s.total),
            fmt_bytes(s.alloc),
        ]);
    }
    out.push_str(&t.render(false));
    out
}

/// The metrics JSONL document: collector body + structured diagnostics,
/// sealed with the `#checksum` trailer.
fn metrics_document(collector: &Collector) -> String {
    let mut doc = collector.metrics_jsonl_body();
    doc.push_str(&sink::records_jsonl());
    support::persist::append_text_checksum(&mut doc);
    doc
}

/// Writes the observability artifacts at the end of an observed run. A
/// write failure degrades the run (exit 1) rather than failing it — the
/// analysis itself succeeded.
fn write_obs_artifacts(
    collector: &Collector,
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
) {
    let mut targets: Vec<(std::path::PathBuf, String)> = Vec::new();
    if let Some(dir) = trace_out {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            sink::emit(
                Severity::Degraded,
                "obs.write",
                format!("cannot create trace dir {}: {e}", dir.display()),
            );
            return;
        }
        targets.push((dir.join("trace.json"), collector.chrome_trace_json()));
        targets.push((dir.join("metrics.jsonl"), metrics_document(collector)));
    }
    if let Some(file) = metrics_out {
        targets.push((std::path::PathBuf::from(file), metrics_document(collector)));
    }
    for (path, doc) in targets {
        if let Err(e) = support::persist::atomic_write(&path, doc.as_bytes()) {
            sink::emit(
                Severity::Degraded,
                "obs.write",
                format!("cannot write {}: {e}", path.display()),
            );
        }
    }
}

/// One-line daemon liveness summary from a `health` result, for
/// `dragon client ping`.
fn render_ping(result: &support::json::Value) -> String {
    use support::json::Value;
    let u64_of = |k: &str| result.get(k).and_then(Value::as_u64).unwrap_or(0);
    let workers = result.get("workers").and_then(Value::as_arr).map_or(0, <[Value]>::len);
    let max_beat = result
        .get("workers")
        .and_then(Value::as_arr)
        .map(|ws| {
            ws.iter()
                .filter_map(|w| w.get("heartbeat_age_ms").and_then(Value::as_u64))
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    let circuits = result
        .get("open_circuits")
        .and_then(Value::as_arr)
        .map_or(0, <[Value]>::len);
    let budget = match result.get("mem_budget_mb").and_then(Value::as_u64) {
        Some(mb) => format!("{mb} MiB"),
        None => "unlimited".to_string(),
    };
    format!(
        "daemon ok: uptime {} ms, {} worker(s) (max heartbeat age {} ms, \
         {} replacement(s)), {} open circuit(s), {} session(s), \
         mem high-water {} bytes (budget {})",
        u64_of("uptime_ms"),
        workers,
        max_beat,
        u64_of("worker_replacements"),
        circuits,
        u64_of("sessions"),
        u64_of("mem_high_water_bytes"),
        budget,
    )
}

/// Formats a latency in clock units: milliseconds under the monotonic
/// clock (units are nanoseconds), raw ticks under the logical clock.
fn fmt_units(units: u64, logical: bool) -> String {
    if logical {
        format!("{units}t")
    } else if units >= 1_000_000 {
        format!("{}.{}ms", units / 1_000_000, (units % 1_000_000) / 100_000)
    } else {
        format!("{}us", units / 1_000)
    }
}

/// One refresh of the `dragon top` dashboard: daemon summary line, per-op
/// latency table, worker heartbeats, and hottest procedures.
fn render_top(
    metrics: &support::json::Value,
    health: &support::json::Value,
    profile: &support::json::Value,
    rps: Option<f64>,
) -> String {
    use support::json::Value;
    use support::table::Table;
    let u64_of = |v: &Value, k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    let logical = metrics.get("clock").and_then(Value::as_str) == Some("logical");
    let mut out = format!(
        "dragon top — uptime {} ms | rps {} | workers {} | sessions {} | \
         queue {} | open circuits {} | mem high-water {} B | invalid {}\n",
        u64_of(metrics, "uptime_ms"),
        match rps {
            Some(r) => format!("{r:.1}"),
            None => "-".to_string(),
        },
        u64_of(metrics, "workers"),
        u64_of(metrics, "sessions"),
        u64_of(metrics, "queue_depth"),
        u64_of(metrics, "open_circuits"),
        u64_of(metrics, "mem_high_water_bytes"),
        u64_of(metrics, "invalid_requests"),
    );
    let mut ops_table =
        Table::new(["op", "count", "ok", "degr", "shed", "deadl", "err", "p50", "p95", "p99"]);
    if let Some(ops) = metrics.get("ops").and_then(Value::as_obj) {
        for (name, op) in ops {
            let count = u64_of(op, "count");
            if count == 0 {
                continue;
            }
            let oc = |k: &str| {
                op.get("outcomes").and_then(|o| o.get(k)).and_then(Value::as_u64).unwrap_or(0)
            };
            let (ok, degr, shed, deadl) =
                (oc("ok"), oc("degraded"), oc("shed"), oc("deadline-expired"));
            let err = count.saturating_sub(ok + degr + shed + deadl);
            let lat = |k: &str| {
                let units =
                    op.get("latency").and_then(|l| l.get(k)).and_then(Value::as_u64).unwrap_or(0);
                fmt_units(units, logical)
            };
            ops_table.add_row([
                name.clone(),
                count.to_string(),
                ok.to_string(),
                degr.to_string(),
                shed.to_string(),
                deadl.to_string(),
                err.to_string(),
                lat("p50_units"),
                lat("p95_units"),
                lat("p99_units"),
            ]);
        }
    }
    if ops_table.row_count() > 0 {
        out.push('\n');
        out.push_str(&ops_table.render(false));
    }
    if let Some(workers) = health.get("workers").and_then(Value::as_arr) {
        let beats: Vec<String> = workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                format!(
                    "w{i} gen {} beat {} ms{}",
                    u64_of(w, "generation"),
                    u64_of(w, "heartbeat_age_ms"),
                    if w.get("busy").and_then(Value::as_bool) == Some(true) {
                        " busy"
                    } else {
                        ""
                    }
                )
            })
            .collect();
        out.push_str(&format!("\nworkers: {}\n", beats.join(" | ")));
    }
    // Hottest procedures across projects, ranked by aggregated span time.
    let mut hot: Vec<(String, String, u64, u64)> = Vec::new();
    if let Some(projects) = profile.get("projects").and_then(Value::as_arr) {
        for p in projects {
            let project =
                p.get("project").and_then(Value::as_str).unwrap_or("?").to_string();
            if let Some(procs) = p.get("procs").and_then(Value::as_arr) {
                for pr in procs {
                    hot.push((
                        project.clone(),
                        pr.get("proc").and_then(Value::as_str).unwrap_or("?").to_string(),
                        u64_of(pr, "total_units"),
                        u64_of(pr, "spans"),
                    ));
                }
            }
        }
    }
    hot.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (&a.0, &a.1).cmp(&(&b.0, &b.1))));
    if !hot.is_empty() {
        let mut t = Table::new(["project", "proc", "time", "spans"]);
        for (project, proc_name, units, spans) in hot.into_iter().take(10) {
            t.add_row([
                project,
                proc_name,
                fmt_units(units, logical),
                spans.to_string(),
            ]);
        }
        out.push('\n');
        out.push_str("hottest procedures (sampled spans)\n");
        out.push_str(&t.render(false));
    }
    out
}

/// `dragon top`: a refreshing dashboard over the daemon's `metrics`,
/// `health`, and `profile` ops. Exits after `--iterations N` refreshes
/// (`--once` = 1); runs until interrupted otherwise.
fn run_top(
    copts: &dragon::serve::ClientOptions,
    interval_ms: u64,
    iterations: Option<u64>,
    top_n: u64,
) {
    use std::io::IsTerminal;
    use support::json::Value;
    let call_op = |op: &'static str, extra: Vec<(&'static str, Value)>| -> Option<Value> {
        let mut fields = vec![("id", Value::int(1)), ("op", Value::str(op))];
        fields.extend(extra);
        match dragon::serve::call(copts, &support::json::obj(fields)) {
            Ok(resp) if resp.get("ok").and_then(Value::as_bool) == Some(true) => {
                resp.get("result").cloned()
            }
            Ok(resp) => {
                let msg = resp
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Value::as_str)
                    .unwrap_or("request failed");
                eprintln!("dragon top: {op}: {msg}");
                None
            }
            Err(e) => {
                eprintln!("dragon top: {op}: {e}");
                None
            }
        }
    };
    let clear = std::io::stdout().is_terminal() && iterations != Some(1);
    let mut prev: Option<(u64, std::time::Instant)> = None;
    let mut done = 0u64;
    loop {
        let Some(metrics) = call_op("metrics", vec![]) else {
            std::process::exit(1);
        };
        let health = call_op("health", vec![]).unwrap_or(Value::Null);
        let profile =
            call_op("profile", vec![("top", Value::int(top_n))]).unwrap_or(Value::Null);
        let total = metrics.get("requests_total").and_then(Value::as_u64).unwrap_or(0);
        let now = std::time::Instant::now();
        let rps = prev.map(|(t0, at)| {
            let dt = now.duration_since(at).as_secs_f64().max(1e-9);
            (total.saturating_sub(t0)) as f64 / dt
        });
        prev = Some((total, now));
        if clear {
            // ANSI clear + home keeps the dashboard in place across refreshes.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(&metrics, &health, &profile, rps));
        use std::io::Write;
        let _ = std::io::stdout().flush();
        done += 1;
        if iterations.is_some_and(|n| done >= n) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut strict = false;
    let mut no_cache = false;
    let mut cache_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut timeout_secs: Option<f64> = None;
    let mut mem_budget_mb: Option<u64> = None;
    let mut args: Vec<String> = Vec::with_capacity(raw.len());
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => cache_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics" => metrics_out = Some(it.next().unwrap_or_else(|| usage())),
            "--timeout" => {
                timeout_secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| *s > 0.0)
                    .or_else(|| usage())
            }
            "--mem-budget-mb" => {
                mem_budget_mb =
                    it.next().and_then(|v| v.parse().ok()).or_else(|| usage())
            }
            _ => args.push(a),
        }
    }
    let store_dir = cache_dir.clone();
    if no_cache {
        cache_dir = None;
    }
    let cache_dir = cache_dir.as_deref();
    let Some(cmd) = args.first() else { usage() };

    // Observation is on when any export was requested or the command is
    // itself a profiling report. ARAA_OBS_CLOCK=logical swaps in the
    // deterministic clock (tests compare artifact bytes across runs).
    let collector = if trace_out.is_some() || metrics_out.is_some() || cmd == "profile" {
        let clock = match std::env::var("ARAA_OBS_CLOCK").ok().as_deref() {
            Some("logical") => ClockKind::Logical,
            _ => ClockKind::Monotonic,
        };
        let c = Collector::new(clock);
        obs::install_global(c.clone());
        Some(c)
    } else {
        None
    };

    // `--timeout` installs a wall-clock deadline for the whole command.
    // Budget checkpoints observe it (worker threads inherit it), so a
    // stuck solve degrades conservatively instead of hanging; the expiry
    // itself is reported as a degradation below (exit 1, never a hang).
    let deadline_token = timeout_secs.map(|s| {
        support::deadline::DeadlineToken::after(std::time::Duration::from_secs_f64(s))
    });
    let _deadline_scope = deadline_token.clone().map(support::deadline::enter);

    // `--mem-budget-mb` bounds the whole command's allocation churn the
    // same way (budget checkpoints observe the scope; workers inherit it).
    // For `serve` the flag is a per-request default instead — a daemon-
    // lifetime scope would conflate every request's charges.
    let cli_mem_budget = if cmd == "serve" {
        None
    } else {
        mem_budget_mb.map(support::memory::MemoryBudget::mb)
    };
    let _mem_scope = cli_mem_budget.clone().map(support::memory::enter);

    match cmd.as_str() {
        "analyze" => {
            let mut out_dir = ".".to_string();
            let mut stem = "project".to_string();
            let mut srcs = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => out_dir = it.next().cloned().unwrap_or_else(|| usage()),
                    "--stem" => stem = it.next().cloned().unwrap_or_else(|| usage()),
                    other => srcs.push(other.to_string()),
                }
            }
            if srcs.is_empty() {
                usage();
            }
            let pairs = read_sources(&srcs);
            let gens: Vec<_> = pairs.into_iter().map(|(_, g)| g).collect();
            let (analysis, _) = analyze(&gens, strict, cache_dir);
            if let Err(e) =
                analysis.write_project(std::path::Path::new(&out_dir), &stem)
            {
                sink::fatal("io.write", format!("{e}"));
            }
            println!(
                "wrote {out_dir}/{stem}.rgn, .dgn, .cfg ({} rows, {} procedures)",
                analysis.rows.len(),
                analysis.program.procedure_count()
            );
        }
        "view" => {
            let Some(scope) = args.get(1) else { usage() };
            let mut find = None;
            let mut expand = false;
            let mut srcs = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--find" => find = it.next().cloned(),
                    "--expand-dims" => expand = true,
                    other => srcs.push(other.to_string()),
                }
            }
            let gens: Vec<_> =
                read_sources(&srcs).into_iter().map(|(_, g)| g).collect();
            let (_, project) = analyze(&gens, strict, cache_dir);
            print!("{}", render_procedure_list(&project));
            let opts = ViewOptions { find, expand_dims: expand, color: true };
            print!("{}", render_scope(&project, scope, &opts));
        }
        "callgraph" => {
            let gens: Vec<_> =
                read_sources(&args[1..]).into_iter().map(|(_, g)| g).collect();
            let (analysis, _) = analyze(&gens, strict, cache_dir);
            print!("{}", analysis.callgraph.to_dot(&analysis.program));
        }
        "advise" => {
            let gens: Vec<_> =
                read_sources(&args[1..]).into_iter().map(|(_, g)| g).collect();
            let (analysis, project) = analyze(&gens, strict, cache_dir);
            print!("{}", advisor::render(&advisor::advise(&analysis, &project)));
        }
        "demo" => {
            let Some(which) = args.get(1) else { usage() };
            let gens = demo_sources(which);
            let (analysis, project) = analyze(&gens, strict, cache_dir);
            println!("== procedures ==");
            print!("{}", render_procedure_list(&project));
            println!("\n== array analysis graph (@ scope) ==");
            print!("{}", render_scope(&project, "@", &ViewOptions::default()));
            println!("\n== advice ==");
            print!("{}", advisor::render(&advisor::advise(&analysis, &project)));
        }
        "hotspots" => {
            let mut top = 10usize;
            let mut srcs = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => {
                        top = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    other => srcs.push(other.to_string()),
                }
            }
            let gens: Vec<_> =
                read_sources(&srcs).into_iter().map(|(_, g)| g).collect();
            let (_, project) = analyze(&gens, strict, cache_dir);
            print!("{}", dragon::view::render_hotspots(&project, top));
        }
        "lint" => {
            let mut sarif_out: Option<String> = None;
            let mut threads = 1usize;
            let mut srcs = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--sarif" => sarif_out = it.next().cloned(),
                    "--threads" => {
                        threads = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    other => srcs.push(other.to_string()),
                }
            }
            if srcs.is_empty() {
                usage();
            }
            let gens: Vec<_> =
                read_sources(&srcs).into_iter().map(|(_, g)| g).collect();
            let (analysis, _) = analyze(&gens, strict, cache_dir);
            let report = run_lint(&analysis, threads, cache_dir);
            print!("{}", report.render());
            for d in &report.degradations {
                sink::emit(
                    Severity::Degraded,
                    "lint.degraded",
                    format!("lint degraded for `{}`: {}", d.proc, d.detail),
                );
            }
            if let Some(path) = sarif_out.as_deref() {
                write_sarif(&report, path);
            }
            if report.definite_count() > 0 {
                sink::emit(
                    Severity::Degraded,
                    "lint.findings",
                    format!(
                        "{} definite finding(s) — see report above",
                        report.definite_count()
                    ),
                );
            } else if !report.findings.is_empty() {
                sink::emit(
                    Severity::Note,
                    "lint.findings",
                    format!("{} possible finding(s)", report.findings.len()),
                );
            }
        }
        "dynamic" => {
            let Some(entry) = args.get(1) else { usage() };
            let gens: Vec<_> =
                read_sources(&args[2..]).into_iter().map(|(_, g)| g).collect();
            let (analysis, _) = analyze(&gens, strict, cache_dir);
            match araa::dynamic::run_dynamic(
                &analysis.program,
                entry,
                whirl::interp::Limits::default(),
            ) {
                Ok(dynamic) => {
                    print!("{}", araa::dynamic::render_report(&analysis.program, &dynamic));
                    let violations = araa::dynamic::validate_against_static(
                        &analysis.program,
                        &analysis.ipa,
                        &dynamic,
                    );
                    println!(
                        "\n{} element accesses; static-covers-dynamic violations: {}",
                        dynamic.total_accesses,
                        violations.len()
                    );
                    for v in violations {
                        println!("  VIOLATION: {}", v.detail);
                    }
                }
                Err(e) => sink::fatal("dynamic.failed", format!("execution failed: {e}")),
            }
        }
        "profile" => {
            let mut top = 10usize;
            let mut srcs = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => {
                        top = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    other => srcs.push(other.to_string()),
                }
            }
            if srcs.is_empty() {
                usage();
            }
            let gens: Vec<_> =
                read_sources(&srcs).into_iter().map(|(_, g)| g).collect();
            let _ = analyze(&gens, strict, cache_dir);
            let Some(c) = &collector else { usage() };
            print!("{}", render_profile(&c.snapshot(), top));
        }
        "serve" => {
            let mut opts = dragon::serve::ServeOptions::default();
            let mut socket: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--socket" => socket = it.next().cloned(),
                    "--cache-root" => {
                        opts.cache_root =
                            Some(it.next().cloned().unwrap_or_else(|| usage()).into())
                    }
                    "--workers" => {
                        opts.workers = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--queue-depth" => {
                        opts.queue_depth = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--deadline-ms" => {
                        opts.default_deadline_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    // 0 = write-through (persist inline on every analyze).
                    "--persist-debounce-ms" => {
                        opts.persist_debounce_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--max-connections" => {
                        opts.max_connections = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--max-frame-bytes" => {
                        opts.max_frame_bytes = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--io-timeout-ms" => {
                        opts.io_timeout_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--heartbeat-grace-ms" => {
                        opts.heartbeat_grace_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--circuit-threshold" => {
                        opts.circuit_threshold = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--circuit-cooldown-ms" => {
                        opts.circuit_cooldown_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--metrics-interval-ms" => {
                        opts.metrics_interval_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--metrics-snapshot" => {
                        opts.metrics_snapshot =
                            Some(it.next().cloned().unwrap_or_else(|| usage()).into())
                    }
                    "--slow-threshold-ms" => {
                        opts.slow_threshold_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--log-capacity" => {
                        opts.log_capacity = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            opts.socket = socket.unwrap_or_else(|| usage()).into();
            opts.mem_budget_mb = mem_budget_mb;
            if (opts.metrics_interval_ms > 0) != opts.metrics_snapshot.is_some() {
                sink::fatal(
                    "serve.usage",
                    "--metrics-interval-ms and --metrics-snapshot FILE go together"
                        .to_string(),
                );
            }
            eprintln!(
                "dragon serve: listening on {} ({} worker(s), queue depth {}, \
                 default deadline {} ms, default memory budget {})",
                opts.socket.display(),
                opts.workers,
                opts.queue_depth,
                opts.default_deadline_ms,
                match opts.mem_budget_mb {
                    Some(mb) => format!("{mb} MiB"),
                    None => "unlimited".to_string(),
                }
            );
            if let Err(e) = dragon::serve::run(opts) {
                sink::fatal("serve", format!("{e}"));
            }
            eprintln!("dragon serve: drained and persisted; exiting");
        }
        "client" => {
            let mut copts = dragon::serve::ClientOptions::default();
            let mut socket: Option<String> = None;
            let mut op: Option<String> = None;
            let mut project: Option<String> = None;
            let mut deadline_ms: Option<u64> = None;
            let mut trace_id: Option<String> = None;
            let mut format: Option<String> = None;
            let mut limit: Option<u64> = None;
            let mut top: Option<u64> = None;
            let mut srcs = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--socket" => socket = it.next().cloned(),
                    "--project" => {
                        project = Some(it.next().cloned().unwrap_or_else(|| usage()))
                    }
                    "--deadline-ms" => {
                        deadline_ms = it.next().and_then(|v| v.parse().ok())
                    }
                    "--trace" => {
                        trace_id = Some(it.next().cloned().unwrap_or_else(|| usage()))
                    }
                    "--format" => {
                        format = Some(it.next().cloned().unwrap_or_else(|| usage()))
                    }
                    "--limit" => limit = it.next().and_then(|v| v.parse().ok()),
                    "--top" => top = it.next().and_then(|v| v.parse().ok()),
                    "--retries" => {
                        copts.retries = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--timeout-ms" => {
                        copts.timeout = std::time::Duration::from_millis(
                            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
                        )
                    }
                    other if op.is_none() => op = Some(other.to_string()),
                    other => srcs.push(other.to_string()),
                }
            }
            copts.socket = socket.unwrap_or_else(|| usage()).into();
            let op = op.unwrap_or_else(|| usage());
            // `ping` is a liveness alias: a `health` request whose response
            // prints as a one-line summary instead of raw JSON.
            let ping = op == "ping";
            let wire_op = if ping { "health".to_string() } else { op };
            if dragon::serve::proto::Op::parse(&wire_op).is_none() {
                sink::fatal("client.usage", format!("unknown op `{wire_op}`"));
            }
            use support::json::Value;
            let mut fields = vec![
                ("id", Value::int(1)),
                ("op", Value::str(wire_op.as_str())),
            ];
            // Omitted --project stays omitted on the wire: `query-log` and
            // `profile` treat an absent project as "all projects".
            if let Some(p) = project {
                fields.push(("project", Value::str(p)));
            }
            if let Some(t) = trace_id {
                fields.push(("trace", Value::str(t)));
            }
            if let Some(f) = format {
                fields.push(("format", Value::str(f)));
            }
            if let Some(n) = limit {
                fields.push(("limit", Value::int(n)));
            }
            if let Some(n) = top {
                fields.push(("top", Value::int(n)));
            }
            if let Some(ms) = deadline_ms {
                fields.push(("deadline_ms", Value::int(ms)));
            }
            if let Some(mb) = mem_budget_mb {
                fields.push(("mem_budget_mb", Value::int(mb)));
            }
            if !srcs.is_empty() {
                let sources: Vec<Value> = read_sources(&srcs)
                    .into_iter()
                    .map(|(_, g)| {
                        support::json::obj([
                            ("name", Value::str(g.name)),
                            ("text", Value::str(g.text)),
                            ("fortran", Value::Bool(g.fortran)),
                        ])
                    })
                    .collect();
                fields.push(("sources", Value::Arr(sources)));
            }
            let request = support::json::obj(fields);
            match dragon::serve::call(&copts, &request) {
                Ok(resp) => {
                    let healthy = resp.get("ok").and_then(Value::as_bool) == Some(true);
                    match (ping, healthy, resp.get("result")) {
                        (true, true, Some(result)) => {
                            println!("{}", render_ping(result))
                        }
                        // Text formats (`metrics --format prometheus`,
                        // `profile --format collapsed`) print their body
                        // verbatim instead of JSON-escaped.
                        (false, true, Some(result))
                            if result.get("format").is_some()
                                && result.get("body").and_then(Value::as_str).is_some() =>
                        {
                            let body = result
                                .get("body")
                                .and_then(Value::as_str)
                                .unwrap_or_default();
                            print!("{body}");
                            if !body.ends_with('\n') {
                                println!();
                            }
                        }
                        _ => println!("{}", resp.render()),
                    }
                    if !healthy {
                        let msg = resp
                            .get("error")
                            .and_then(|e| e.get("message"))
                            .and_then(Value::as_str)
                            .unwrap_or("request failed");
                        sink::fatal("client.request", msg.to_string());
                    }
                    let degraded = resp
                        .get("result")
                        .and_then(|r| r.get("degraded"))
                        .and_then(Value::as_bool)
                        == Some(true);
                    let expired = resp
                        .get("result")
                        .and_then(|r| r.get("deadline_expired"))
                        .and_then(Value::as_bool)
                        == Some(true);
                    if degraded || expired {
                        sink::emit(
                            Severity::Degraded,
                            "client.degraded",
                            format!(
                                "response degraded (deadline_expired={expired}); \
                                 results are conservative"
                            ),
                        );
                    }
                }
                Err(e) => sink::fatal("client.io", format!("{e}")),
            }
        }
        "top" => {
            let mut copts = dragon::serve::ClientOptions::default();
            let mut socket: Option<String> = None;
            let mut interval_ms = 1000u64;
            let mut iterations: Option<u64> = None;
            let mut top_n = 5u64;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--socket" => socket = it.next().cloned(),
                    "--interval-ms" => {
                        interval_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    "--iterations" => {
                        iterations = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .filter(|&n| n > 0)
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--once" => iterations = Some(1),
                    "--top" => {
                        top_n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            copts.socket = socket.unwrap_or_else(|| usage()).into();
            run_top(&copts, interval_ms, iterations, top_n);
        }
        "cache" => {
            let Some(op) = args.get(1) else { usage() };
            let Some(dir) = store_dir.as_deref() else {
                sink::fatal("cache.usage", format!("cache {op} requires --cache-dir DIR"));
            };
            let store = SessionStore::new(dir, &AnalysisOptions::default());
            match op.as_str() {
                "stats" => match store.stats() {
                    Ok(s) => {
                        println!("cache directory: {dir}");
                        println!("manifest:        {}", if s.manifest { "present" } else { "absent" });
                        println!("procedures:      {}", s.procedures);
                        println!("sources:         {}", s.sources);
                        println!("entry files:     {}", s.entry_files);
                        println!("total bytes:     {}", s.bytes);
                        println!("quarantined:     {}", s.quarantined);
                        let (qcount, qbytes) =
                            support::persist::quarantine_usage(Path::new(dir));
                        println!(
                            "quarantine dir:  {qcount} file(s), {qbytes} byte(s) \
                             (cap {} files / {} bytes, oldest evicted first)",
                            support::persist::QUARANTINE_MAX_FILES,
                            support::persist::QUARANTINE_MAX_BYTES,
                        );
                        println!(
                            "source:          {}",
                            if s.from_snapshot {
                                "snapshot (stats.araa, written at last save)"
                            } else {
                                "live scan"
                            }
                        );
                    }
                    Err(e) => sink::fatal("cache.stats", format!("cache stats: {e}")),
                },
                "verify" => match store.verify() {
                    Ok(r) => {
                        println!(
                            "{} file(s) valid, {} orphan entr{} (unreferenced, swept on next save)",
                            r.ok,
                            r.orphans,
                            if r.orphans == 1 { "y" } else { "ies" }
                        );
                        if !r.clean() {
                            let mut msg = format!("{} problem(s):", r.problems.len());
                            for p in &r.problems {
                                msg.push_str(&format!("\n  {p}"));
                            }
                            sink::emit(Severity::Degraded, "cache.verify", msg);
                        }
                    }
                    Err(e) => sink::fatal("cache.verify", format!("cache verify: {e}")),
                },
                "clear" => match store.clear() {
                    Ok(n) => println!("removed {n} file(s) from {dir}"),
                    Err(e) => sink::fatal("cache.clear", format!("cache clear: {e}")),
                },
                _ => usage(),
            }
        }
        _ => usage(),
    }
    if let Some(token) = &deadline_token {
        if token.expired_now() {
            sink::emit(
                Severity::Degraded,
                "cli.timeout",
                "--timeout: deadline expired; affected results were widened \
                 conservatively"
                    .to_string(),
            );
        }
    }
    if let Some(budget) = &cli_mem_budget {
        if budget.exhausted() {
            sink::emit(
                Severity::Degraded,
                "cli.mem-budget",
                format!(
                    "--mem-budget-mb: {} MiB budget exhausted ({} bytes charged); \
                     affected results were widened conservatively",
                    budget.limit_bytes() >> 20,
                    budget.charged_bytes()
                ),
            );
        }
    }
    // Exporters run last so the artifacts cover the whole run, including
    // any structured diagnostics reported above.
    if let Some(c) = &collector {
        write_obs_artifacts(c, trace_out.as_deref(), metrics_out.as_deref());
    }
    std::process::exit(sink::exit_code(strict));
}
