//! Self-healing for the serve daemon: worker heartbeats and per-project
//! circuit breakers.
//!
//! The deadline checkpoints make *cooperative* overruns impossible — any
//! phase that charges budgets degrades once its deadline expires. This
//! module covers the uncooperative rest:
//!
//! - **Heartbeats**: every worker [`beat`](Supervisor::beat)s each loop
//!   iteration and marks jobs with [`begin_job`](Supervisor::begin_job) /
//!   [`end_job`](Supervisor::end_job). A worker busy past its job's
//!   deadline plus the grace window is *wedged* — stuck somewhere no
//!   checkpoint runs. The supervisor thread bumps the worker's generation
//!   (telling the stale thread to exit without persisting, if it ever
//!   returns) and spawns a replacement on the same queue. The stale
//!   thread's sessions are orphaned — evicted in effect — and rewarm from
//!   their last persisted state on the project's next request.
//! - **Circuit breaker**: repeated failures (contained panics, memory
//!   exhaustions, wedges) attributed to one project open its circuit for a
//!   cool-down; requests during the cool-down get a structured
//!   `circuit-open` error with `retry_after_ms` instead of burning a
//!   worker. After the cool-down one half-open probe is admitted: success
//!   closes the circuit, failure reopens it for a fresh cool-down.
//! - **Memory high-water**: the largest per-request memory-budget charge
//!   seen so far, surfaced through the `health` op and the
//!   `memory.high_water_bytes` gauge — the number the serve bench asserts
//!   against its configured budget.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use support::json::{obj, Value};
use support::obs::{self, Counter, Gauge};

/// Per-worker liveness state, updated lock-free from the worker thread.
#[derive(Debug, Default)]
struct WorkerState {
    /// Generation of the thread currently owning this slot. A worker
    /// compares its own generation after every job; a mismatch means it
    /// was declared wedged and replaced, and must exit without persisting.
    generation: AtomicU64,
    /// Last heartbeat, in ms since supervisor start.
    heartbeat_ms: AtomicU64,
    /// `job start in ms since supervisor start + 1` while busy; 0 = idle.
    busy_since_ms: AtomicU64,
    /// The in-flight job's effective deadline, ms.
    job_deadline_ms: AtomicU64,
    /// The in-flight job's project (for failure attribution on a wedge).
    project: Mutex<String>,
}

/// One project's breaker state.
#[derive(Debug, Default, Clone)]
struct Circuit {
    /// Consecutive failures since the last success.
    failures: u32,
    /// Set while open: when the circuit opened, ms since supervisor start.
    opened_at_ms: Option<u64>,
    /// Set while a half-open probe is in flight: when it was admitted. A
    /// probe older than one cool-down is presumed abandoned (shed before
    /// reaching a worker, or its client vanished) and a fresh one is
    /// admitted — otherwise an unlucky probe would reject forever.
    probe_started_ms: Option<u64>,
}

/// Shared supervision state; one per daemon, `Arc`ed to every thread.
#[derive(Debug)]
pub struct Supervisor {
    start: Instant,
    grace_ms: u64,
    circuit_threshold: u32,
    circuit_cooldown_ms: u64,
    workers: Vec<WorkerState>,
    circuits: Mutex<BTreeMap<String, Circuit>>,
    mem_high_water: AtomicU64,
    replacements: AtomicU64,
}

/// Verdict of [`Supervisor::circuit_check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitDecision {
    /// Closed (or admitted half-open probe): serve the request.
    Admit,
    /// Open: reject with `circuit-open` and this retry hint.
    Reject { retry_after_ms: u64 },
}

impl Supervisor {
    pub fn new(
        workers: usize,
        grace_ms: u64,
        circuit_threshold: u32,
        circuit_cooldown_ms: u64,
    ) -> Self {
        Supervisor {
            start: Instant::now(),
            grace_ms: grace_ms.max(1),
            circuit_threshold: circuit_threshold.max(1),
            circuit_cooldown_ms: circuit_cooldown_ms.max(1),
            workers: (0..workers).map(|_| WorkerState::default()).collect(),
            circuits: Mutex::new(BTreeMap::new()),
            mem_high_water: AtomicU64::new(0),
            replacements: AtomicU64::new(0),
        }
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn circuits_locked(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Circuit>> {
        self.circuits.lock().unwrap_or_else(|p| p.into_inner())
    }

    // --- worker liveness ---

    /// Records a heartbeat for `worker`, but only when the beating thread
    /// still owns the slot (a stale replaced thread must not look alive).
    pub fn beat(&self, worker: usize, generation: u64) {
        let w = &self.workers[worker];
        if w.generation.load(Ordering::Relaxed) == generation {
            w.heartbeat_ms.store(self.now_ms(), Ordering::Relaxed);
        }
    }

    /// Marks `worker` busy on `project` with an effective deadline.
    pub fn begin_job(&self, worker: usize, generation: u64, project: &str, deadline_ms: u64) {
        let w = &self.workers[worker];
        if w.generation.load(Ordering::Relaxed) != generation {
            return;
        }
        let now = self.now_ms();
        w.heartbeat_ms.store(now, Ordering::Relaxed);
        w.job_deadline_ms.store(deadline_ms, Ordering::Relaxed);
        if let Ok(mut p) = w.project.lock() {
            *p = project.to_string();
        }
        // +1 so "busy since tick 0" is distinguishable from idle (0).
        w.busy_since_ms.store(now + 1, Ordering::Relaxed);
    }

    /// Marks `worker` idle again.
    pub fn end_job(&self, worker: usize, generation: u64) {
        let w = &self.workers[worker];
        if w.generation.load(Ordering::Relaxed) != generation {
            return;
        }
        w.busy_since_ms.store(0, Ordering::Relaxed);
        w.heartbeat_ms.store(self.now_ms(), Ordering::Relaxed);
    }

    /// The generation currently owning `worker`'s slot.
    pub fn generation(&self, worker: usize) -> u64 {
        self.workers[worker].generation.load(Ordering::Relaxed)
    }

    /// True when `worker` has been busy on one job past its deadline plus
    /// the grace window — wedged somewhere no checkpoint runs.
    pub fn wedged(&self, worker: usize) -> bool {
        let w = &self.workers[worker];
        let busy = w.busy_since_ms.load(Ordering::Relaxed);
        if busy == 0 {
            return false;
        }
        let elapsed = self.now_ms().saturating_sub(busy - 1);
        elapsed > w.job_deadline_ms.load(Ordering::Relaxed).saturating_add(self.grace_ms)
    }

    /// Declares `worker` wedged: bumps the generation (the stale thread
    /// exits without persisting if it ever returns), attributes a failure
    /// to the in-flight project, and returns the new generation for the
    /// replacement thread. The slot starts idle.
    pub fn declare_wedged(&self, worker: usize) -> u64 {
        let w = &self.workers[worker];
        let next = w.generation.fetch_add(1, Ordering::Relaxed) + 1;
        w.busy_since_ms.store(0, Ordering::Relaxed);
        w.heartbeat_ms.store(self.now_ms(), Ordering::Relaxed);
        let project = w
            .project
            .lock()
            .map(|p| p.clone())
            .unwrap_or_default();
        if !project.is_empty() {
            self.record_failure(&project);
        }
        self.replacements.fetch_add(1, Ordering::Relaxed);
        obs::incr(Counter::ServeWorkerReplaced);
        next
    }

    /// Total workers replaced so far.
    pub fn replacements(&self) -> u64 {
        self.replacements.load(Ordering::Relaxed)
    }

    // --- circuit breaker ---

    /// Admission decision for `project`. An open circuit rejects with the
    /// remaining cool-down as the retry hint; once the cool-down elapses a
    /// single half-open probe is admitted (concurrent requests keep being
    /// rejected until the probe settles).
    pub fn circuit_check(&self, project: &str) -> CircuitDecision {
        let now = self.now_ms();
        let mut circuits = self.circuits_locked();
        let Some(c) = circuits.get_mut(project) else { return CircuitDecision::Admit };
        let Some(opened) = c.opened_at_ms else { return CircuitDecision::Admit };
        let elapsed = now.saturating_sub(opened);
        if elapsed < self.circuit_cooldown_ms {
            return CircuitDecision::Reject {
                retry_after_ms: self.circuit_cooldown_ms - elapsed,
            };
        }
        match c.probe_started_ms {
            Some(t) if now.saturating_sub(t) < self.circuit_cooldown_ms => {
                // A probe is already in flight; tell others to come back soon.
                CircuitDecision::Reject {
                    retry_after_ms: (self.circuit_cooldown_ms / 4).max(1),
                }
            }
            _ => {
                // No probe, or the previous one was abandoned: admit one.
                c.probe_started_ms = Some(now);
                CircuitDecision::Admit
            }
        }
    }

    /// Attributes one failure (panic, memory exhaustion, wedge) to
    /// `project`; enough consecutive failures open its circuit, and a
    /// failed half-open probe reopens it.
    pub fn record_failure(&self, project: &str) {
        let now = self.now_ms();
        let mut circuits = self.circuits_locked();
        let c = circuits.entry(project.to_string()).or_default();
        c.failures = c.failures.saturating_add(1);
        if c.probe_started_ms.is_some() || c.failures >= self.circuit_threshold {
            c.opened_at_ms = Some(now);
            c.probe_started_ms = None;
        }
        let open = circuits.values().filter(|c| c.opened_at_ms.is_some()).count();
        obs::set_gauge(Gauge::ServeOpenCircuits, open as u64);
    }

    /// Records a served-to-completion request for `project`: closes its
    /// circuit (half-open probe succeeded) and forgets its failures.
    pub fn record_success(&self, project: &str) {
        let mut circuits = self.circuits_locked();
        if circuits.remove(project).is_some() {
            let open = circuits.values().filter(|c| c.opened_at_ms.is_some()).count();
            obs::set_gauge(Gauge::ServeOpenCircuits, open as u64);
        }
    }

    /// Projects whose circuits are currently open.
    pub fn open_circuits(&self) -> Vec<String> {
        self.circuits_locked()
            .iter()
            .filter(|(_, c)| c.opened_at_ms.is_some())
            .map(|(p, _)| p.clone())
            .collect()
    }

    // --- memory high-water ---

    /// Folds one request's memory-budget charge into the daemon-wide
    /// high-water mark.
    pub fn note_request_mem(&self, charged_bytes: u64) {
        let hw = self.mem_high_water.fetch_max(charged_bytes, Ordering::Relaxed);
        if charged_bytes > hw {
            obs::set_gauge(Gauge::MemHighWater, charged_bytes);
        }
    }

    /// The largest per-request memory-budget charge seen so far, bytes.
    pub fn mem_high_water_bytes(&self) -> u64 {
        self.mem_high_water.load(Ordering::Relaxed)
    }

    // --- health ---

    /// The `health` op's result object.
    pub fn health_json(&self, mem_budget_mb: Option<u64>) -> Value {
        let now = self.now_ms();
        let workers: Vec<Value> = self
            .workers
            .iter()
            .map(|w| {
                let busy = w.busy_since_ms.load(Ordering::Relaxed);
                obj([
                    (
                        "heartbeat_age_ms",
                        Value::int(now.saturating_sub(w.heartbeat_ms.load(Ordering::Relaxed))),
                    ),
                    ("busy", Value::Bool(busy != 0)),
                    (
                        "busy_ms",
                        Value::int(if busy == 0 { 0 } else { now.saturating_sub(busy - 1) }),
                    ),
                    ("generation", Value::int(w.generation.load(Ordering::Relaxed))),
                ])
            })
            .collect();
        obj([
            ("uptime_ms", Value::int(now)),
            ("workers", Value::Arr(workers)),
            (
                "open_circuits",
                Value::Arr(self.open_circuits().into_iter().map(Value::str).collect()),
            ),
            ("mem_high_water_bytes", Value::int(self.mem_high_water_bytes())),
            (
                "mem_budget_mb",
                mem_budget_mb.map(Value::int).unwrap_or(Value::Null),
            ),
            ("worker_replacements", Value::int(self.replacements())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sup() -> Supervisor {
        Supervisor::new(2, 50, 3, 100)
    }

    #[test]
    fn idle_workers_are_never_wedged() {
        let s = sup();
        assert!(!s.wedged(0));
        s.beat(0, 0);
        assert!(!s.wedged(0));
    }

    #[test]
    fn busy_past_deadline_plus_grace_is_wedged() {
        let s = Supervisor::new(1, 10, 3, 100);
        s.begin_job(0, 0, "p", 20);
        assert!(!s.wedged(0), "fresh job not wedged");
        std::thread::sleep(Duration::from_millis(45));
        assert!(s.wedged(0), "20ms deadline + 10ms grace exceeded");
        s.end_job(0, 0);
        assert!(!s.wedged(0), "idle again");
    }

    #[test]
    fn declare_wedged_bumps_generation_and_records_failure() {
        let s = Supervisor::new(1, 10, 1, 10_000);
        s.begin_job(0, 0, "toxic", 20);
        let next = s.declare_wedged(0);
        assert_eq!(next, 1);
        assert_eq!(s.generation(0), 1);
        assert_eq!(s.replacements(), 1);
        // threshold 1: the wedge's failure opened the circuit.
        assert!(matches!(s.circuit_check("toxic"), CircuitDecision::Reject { .. }));
        // Stale thread's updates are ignored.
        s.begin_job(0, 0, "other", 20);
        assert!(!s.wedged(0), "stale begin_job ignored");
    }

    #[test]
    fn circuit_opens_after_threshold_and_closes_on_probe_success() {
        let s = Supervisor::new(1, 10, 3, 30);
        assert_eq!(s.circuit_check("p"), CircuitDecision::Admit);
        s.record_failure("p");
        s.record_failure("p");
        assert_eq!(s.circuit_check("p"), CircuitDecision::Admit, "below threshold");
        s.record_failure("p");
        let d = s.circuit_check("p");
        assert!(matches!(d, CircuitDecision::Reject { retry_after_ms } if retry_after_ms <= 30));
        assert_eq!(s.open_circuits(), vec!["p".to_string()]);
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(s.circuit_check("p"), CircuitDecision::Admit, "half-open probe");
        assert!(
            matches!(s.circuit_check("p"), CircuitDecision::Reject { .. }),
            "only one probe at a time"
        );
        s.record_success("p");
        assert_eq!(s.circuit_check("p"), CircuitDecision::Admit, "closed");
        assert!(s.open_circuits().is_empty());
    }

    #[test]
    fn failed_probe_reopens() {
        let s = Supervisor::new(1, 10, 1, 30);
        s.record_failure("p");
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(s.circuit_check("p"), CircuitDecision::Admit, "probe admitted");
        s.record_failure("p");
        assert!(
            matches!(s.circuit_check("p"), CircuitDecision::Reject { .. }),
            "failed probe reopens for a fresh cool-down"
        );
    }

    #[test]
    fn circuits_are_per_project() {
        let s = Supervisor::new(1, 10, 1, 10_000);
        s.record_failure("toxic");
        assert!(matches!(s.circuit_check("toxic"), CircuitDecision::Reject { .. }));
        assert_eq!(s.circuit_check("healthy"), CircuitDecision::Admit);
    }

    #[test]
    fn mem_high_water_is_monotone_max() {
        let s = sup();
        s.note_request_mem(100);
        s.note_request_mem(50);
        s.note_request_mem(200);
        assert_eq!(s.mem_high_water_bytes(), 200);
    }

    #[test]
    fn health_json_has_the_advertised_shape() {
        let s = sup();
        s.record_failure("a");
        s.record_failure("a");
        s.record_failure("a");
        s.note_request_mem(4096);
        let h = s.health_json(Some(64));
        assert!(h.get("uptime_ms").and_then(Value::as_u64).is_some());
        assert_eq!(h.get("workers").and_then(Value::as_arr).map(<[Value]>::len), Some(2));
        assert_eq!(
            h.get("open_circuits").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(h.get("mem_high_water_bytes").and_then(Value::as_u64), Some(4096));
        assert_eq!(h.get("mem_budget_mb").and_then(Value::as_u64), Some(64));
        let h = s.health_json(None);
        assert!(matches!(h.get("mem_budget_mb"), Some(Value::Null)));
    }
}
