//! The serve-side metrics registry: sharded per-op counters and
//! log-linear latency histograms, a ring-buffer request log, slow-request
//! trace capture, and a sampling profiler — everything the `metrics`,
//! `query-log`, and `profile` ops serve.
//!
//! # Sharding
//!
//! Hot-path recording touches only relaxed atomics in one of
//! [`NUM_SHARDS`] shards (picked by a per-thread ordinal), so concurrent
//! workers never contend on a lock for counters or histograms. Snapshots
//! merge shards by elementwise addition — an order-independent sum, which
//! is why counter totals are invariant under thread count and schedule.
//!
//! # Determinism
//!
//! The registry reads the same clock kind as `support::obs`
//! (`ARAA_OBS_CLOCK=logical` selects logical ticks). Under the logical
//! clock every latency is a tick difference, wall-clock and
//! memory-derived fields are forced to zero at render time, and all maps
//! are `BTreeMap`s — so two identical sequential traffic replays render
//! byte-identical snapshots in both exposition formats.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use support::json::{obj, Value};
use support::obs::{self, hist, ClockKind, SpanEvent};

use super::proto::Op;

/// Shards in the registry. More than typical worker counts, few enough
/// that merging stays trivial.
pub const NUM_SHARDS: usize = 8;

/// Slow-request span trees retained (newest win).
pub const SLOW_TRACE_CAP: usize = 32;

/// Profile sampling period: every Nth request per project is sampled
/// (the first always is), plus every slow request.
pub const SAMPLE_EVERY: u64 = 8;

/// Terminal outcome of one request, as counted per op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed cleanly.
    Ok,
    /// Completed but degraded (widened results, partial analysis).
    Degraded,
    /// Deadline expired (degraded response or abandoned request).
    Deadline,
    /// Per-request memory budget exhausted.
    MemExhausted,
    /// Shed by admission control.
    Shed,
    /// Rejected by an open per-project circuit.
    CircuitOpen,
    /// Malformed or semantically invalid.
    BadRequest,
    /// Handler panicked; session reset.
    Panic,
    /// Daemon draining.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl Outcome {
    /// Every outcome in export order.
    pub const ALL: &'static [Outcome] = &[
        Outcome::Ok,
        Outcome::Degraded,
        Outcome::Deadline,
        Outcome::MemExhausted,
        Outcome::Shed,
        Outcome::CircuitOpen,
        Outcome::BadRequest,
        Outcome::Panic,
        Outcome::ShuttingDown,
        Outcome::Internal,
    ];

    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Degraded => "degraded",
            Outcome::Deadline => "deadline-expired",
            Outcome::MemExhausted => "mem-exhausted",
            Outcome::Shed => "shed",
            Outcome::CircuitOpen => "circuit-open",
            Outcome::BadRequest => "bad-request",
            Outcome::Panic => "panic",
            Outcome::ShuttingDown => "shutting-down",
            Outcome::Internal => "internal",
        }
    }

    /// Stable index into [`Outcome::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One record in the structured request log.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Monotone sequence number assigned at push (survives ring drops).
    pub seq: u64,
    /// Trace id echoed in the response.
    pub trace: String,
    /// Op wire name (`"?"` for unparseable frames).
    pub op: &'static str,
    /// Project the request targeted (empty for unparseable frames).
    pub project: String,
    /// Worker index and generation that served it; `None` for requests
    /// answered or rejected at the dispatch layer.
    pub worker: Option<(usize, u64)>,
    /// Latency in clock units (ns, or ticks under the logical clock).
    pub latency_units: u64,
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Degradation kinds attached to the result (deduplicated, capped).
    pub degradations: Vec<String>,
    /// Allocation churn attributed to the request, bytes (0 under the
    /// logical clock).
    pub mem_bytes: u64,
    /// Completion timestamp, clock units.
    pub end_units: u64,
}

/// One retained slow-request span tree.
#[derive(Debug, Clone)]
struct SlowTrace {
    trace: String,
    op: &'static str,
    project: String,
    latency_units: u64,
    events: Vec<SpanEvent>,
}

/// Per-project aggregates feeding the snapshot's project table and the
/// profile sampling decision.
#[derive(Debug, Default, Clone)]
struct ProjectStats {
    requests: u64,
    cache_hits: u64,
    cache_recomputes: u64,
    mem_high_water: u64,
    sample_counter: u64,
}

/// Per-procedure profile aggregate from sampled span trees.
#[derive(Debug, Default, Clone)]
struct ProcAgg {
    total_units: u64,
    spans: u64,
}

struct Shard {
    /// `op × outcome` counters, row-major by [`Op::ALL`].
    outcomes: Box<[AtomicU64]>,
    /// One latency histogram per op.
    hists: Vec<hist::Histogram>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            outcomes: (0..Op::ALL.len() * Outcome::ALL.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            hists: (0..Op::ALL.len()).map(|_| hist::Histogram::new()).collect(),
        }
    }
}

struct RingLog {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    entries: VecDeque<LogEntry>,
}

struct ProfileState {
    /// project → proc → aggregate.
    procs: BTreeMap<String, BTreeMap<String, ProcAgg>>,
    /// project → sampled span trees count.
    samples: BTreeMap<String, u64>,
}

/// The registry. One per daemon, shared by the dispatcher, every worker,
/// and the periodic snapshot thread.
pub struct ServeMetrics {
    clock: ClockKind,
    origin: Instant,
    tick: AtomicU64,
    trace_seq: AtomicU64,
    /// Frames too malformed to attribute to an op (unparseable JSON,
    /// oversized frames).
    invalid: AtomicU64,
    shard_seq: AtomicUsize,
    shards: Vec<Shard>,
    /// Slow-request threshold in clock units (0 disables capture).
    slow_threshold_units: u64,
    log: Mutex<RingLog>,
    slow: Mutex<VecDeque<SlowTrace>>,
    projects: Mutex<BTreeMap<String, ProjectStats>>,
    profile: Mutex<ProfileState>,
}

thread_local! {
    /// This thread's shard ordinal (assigned round-robin on first use).
    static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl ServeMetrics {
    /// A fresh registry. `slow_threshold_ms` of 0 disables slow-trace
    /// capture; under the logical clock the threshold is interpreted in
    /// raw ticks (documented determinism-mode behavior).
    pub fn new(clock: ClockKind, log_capacity: usize, slow_threshold_ms: u64) -> Arc<Self> {
        let slow_threshold_units = match clock {
            ClockKind::Monotonic => slow_threshold_ms.saturating_mul(1_000_000),
            ClockKind::Logical => slow_threshold_ms,
        };
        Arc::new(ServeMetrics {
            clock,
            origin: Instant::now(),
            tick: AtomicU64::new(0),
            trace_seq: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            shard_seq: AtomicUsize::new(0),
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
            slow_threshold_units,
            log: Mutex::new(RingLog {
                cap: log_capacity.max(1),
                next_seq: 0,
                dropped: 0,
                entries: VecDeque::new(),
            }),
            slow: Mutex::new(VecDeque::new()),
            projects: Mutex::new(BTreeMap::new()),
            profile: Mutex::new(ProfileState {
                procs: BTreeMap::new(),
                samples: BTreeMap::new(),
            }),
        })
    }

    /// The clock kind latencies are measured in.
    pub fn clock(&self) -> ClockKind {
        self.clock
    }

    /// Current timestamp in clock units (a tick under the logical clock).
    pub fn now_units(&self) -> u64 {
        match self.clock {
            ClockKind::Monotonic => {
                let d = self.origin.elapsed();
                d.as_secs().saturating_mul(1_000_000_000).saturating_add(u64::from(d.subsec_nanos()))
            }
            ClockKind::Logical => self.tick.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The request's trace id: the client's own (validated upstream) or a
    /// freshly minted `t-NNNNNN`. The mint sequence is an atomic counter,
    /// so sequential replays mint identical ids.
    pub fn mint_trace(&self, client: Option<&str>) -> String {
        match client {
            Some(t) => t.to_string(),
            None => format!("t-{:06}", self.trace_seq.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// Whether slow-trace capture is enabled and `latency_units` crosses
    /// the threshold.
    pub fn is_slow(&self, latency_units: u64) -> bool {
        self.slow_threshold_units > 0 && latency_units >= self.slow_threshold_units
    }

    fn shard(&self) -> &Shard {
        let idx = SHARD.with(|s| {
            let mut idx = s.get();
            if idx == usize::MAX {
                idx = self.shard_seq.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
                s.set(idx);
            }
            idx
        });
        &self.shards[idx % NUM_SHARDS]
    }

    /// Counts one terminal outcome and records the request latency.
    pub fn record_outcome(&self, op: Op, outcome: Outcome, latency_units: u64) {
        let shard = self.shard();
        let cell = op.index() * Outcome::ALL.len() + outcome.index();
        shard.outcomes[cell].fetch_add(1, Ordering::Relaxed);
        shard.hists[op.index()].record(latency_units.max(1));
    }

    /// Counts a frame too malformed to attribute to any op.
    pub fn record_invalid(&self) {
        self.invalid.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends one entry to the ring log (oldest entries drop at
    /// capacity). Returns the assigned sequence number. Under the logical
    /// clock the entry's `mem_bytes` is forced to 0 to keep `query-log`
    /// output deterministic.
    pub fn push_log(&self, mut entry: LogEntry) -> u64 {
        if self.clock == ClockKind::Logical {
            entry.mem_bytes = 0;
        }
        let mut log = lock(&self.log);
        entry.seq = log.next_seq;
        log.next_seq += 1;
        if log.entries.len() == log.cap {
            log.entries.pop_front();
            log.dropped += 1;
        }
        log.entries.push_back(entry);
        log.next_seq - 1
    }

    /// Folds an analyze/reanalyze result's cache traffic and memory churn
    /// into the project table.
    pub fn note_analysis(&self, project: &str, hits: u64, recomputes: u64, mem_bytes: u64) {
        let mut projects = lock(&self.projects);
        let p = projects.entry(project.to_string()).or_default();
        p.cache_hits += hits;
        p.cache_recomputes += recomputes;
        p.mem_high_water = p.mem_high_water.max(mem_bytes);
    }

    /// Counts one request against the project and decides whether its
    /// span tree should feed the profiler (deterministic per-project
    /// period, first request always sampled).
    pub fn should_sample(&self, project: &str) -> bool {
        let mut projects = lock(&self.projects);
        let p = projects.entry(project.to_string()).or_default();
        p.requests += 1;
        let sample = p.sample_counter % SAMPLE_EVERY == 0;
        p.sample_counter += 1;
        sample
    }

    /// Aggregates a sampled span tree into the per-project hot-procedure
    /// ranking. Only genuinely per-procedure spans count (mirrors
    /// `Collector::snapshot`).
    pub fn record_profile(&self, project: &str, events: &[SpanEvent]) {
        let mut prof = lock(&self.profile);
        *prof.samples.entry(project.to_string()).or_insert(0) += 1;
        let by_proc = prof.procs.entry(project.to_string()).or_default();
        for e in events {
            let per_proc = matches!(e.name, "ipa.ipl" | "store.prime" | "extract.rows");
            if let (Some(arg), true) = (&e.arg, per_proc) {
                let agg = by_proc.entry(arg.clone()).or_default();
                agg.total_units += e.dur;
                agg.spans += 1;
            }
        }
    }

    /// Retains a slow request's full span tree (newest
    /// [`SLOW_TRACE_CAP`] win).
    pub fn record_slow(
        &self,
        trace: &str,
        op: Op,
        project: &str,
        latency_units: u64,
        events: Vec<SpanEvent>,
    ) {
        let mut slow = lock(&self.slow);
        if slow.len() == SLOW_TRACE_CAP {
            slow.pop_front();
        }
        slow.push_back(SlowTrace {
            trace: trace.to_string(),
            op: op.name(),
            project: project.to_string(),
            latency_units,
            events,
        });
    }

    /// Merged `op × outcome` counters and per-op histogram counts across
    /// all shards.
    fn merged(&self) -> (Vec<u64>, Vec<Vec<u64>>, Vec<u64>) {
        let mut outcomes = vec![0u64; Op::ALL.len() * Outcome::ALL.len()];
        let mut hists = vec![vec![0u64; hist::NUM_BUCKETS]; Op::ALL.len()];
        let mut sums = vec![0u64; Op::ALL.len()];
        for shard in &self.shards {
            for (i, c) in shard.outcomes.iter().enumerate() {
                outcomes[i] += c.load(Ordering::Relaxed);
            }
            for (i, h) in shard.hists.iter().enumerate() {
                hist::merge_counts(&mut hists[i], &h.counts());
                sums[i] += h.sum();
            }
        }
        (outcomes, hists, sums)
    }

    /// `v`, or 0 under the logical clock — wall-clock and memory-derived
    /// fields are zeroed there so snapshots stay byte-deterministic.
    fn det(&self, v: u64) -> u64 {
        match self.clock {
            ClockKind::Monotonic => v,
            ClockKind::Logical => 0,
        }
    }

    /// The JSON metrics snapshot served by the `metrics` op and written
    /// by the periodic snapshot thread.
    pub fn snapshot_json(&self, ctx: &SnapshotCtx) -> Value {
        let (outcomes, hists, sums) = self.merged();
        let bounds = hist::bucket_bounds();
        let mut ops: Vec<(String, Value)> = Vec::new();
        let mut requests_total = 0u64;
        for op in Op::ALL {
            let i = op.index();
            let counts = &hists[i];
            let n: u64 = counts.iter().sum();
            requests_total += n;
            let last_nonzero = counts.iter().rposition(|&c| c > 0).map(|p| p + 1).unwrap_or(0);
            let mut outcome_pairs: Vec<(&'static str, Value)> = Vec::new();
            for (j, o) in Outcome::ALL.iter().enumerate() {
                let v = outcomes[i * Outcome::ALL.len() + j];
                if v > 0 {
                    outcome_pairs.push((o.name(), num(v)));
                }
            }
            ops.push((
                op.name().to_string(),
                obj([
                    ("count", num(n)),
                    ("outcomes", obj(outcome_pairs)),
                    (
                        "latency",
                        obj([
                            ("sum_units", num(sums[i])),
                            ("p50_units", num(hist::percentile_from_counts(counts, 0.50))),
                            ("p95_units", num(hist::percentile_from_counts(counts, 0.95))),
                            ("p99_units", num(hist::percentile_from_counts(counts, 0.99))),
                            ("p100_units", num(hist::percentile_from_counts(counts, 1.0))),
                            (
                                "bounds",
                                Value::Arr(
                                    bounds[..last_nonzero].iter().map(|&b| num(b)).collect(),
                                ),
                            ),
                            (
                                "counts",
                                Value::Arr(
                                    counts[..last_nonzero].iter().map(|&c| num(c)).collect(),
                                ),
                            ),
                        ]),
                    ),
                ]),
            ));
        }
        let projects = lock(&self.projects);
        let prof = lock(&self.profile);
        let project_entries: Vec<Value> = projects
            .iter()
            .map(|(name, p)| {
                let served = p.cache_hits + p.cache_recomputes;
                let permille = if served == 0 { 0 } else { p.cache_hits * 1000 / served };
                Value::Obj(
                    [
                        ("project".to_string(), Value::str(name.as_str())),
                        ("requests".to_string(), num(p.requests)),
                        ("cache_hits".to_string(), num(p.cache_hits)),
                        ("cache_recomputes".to_string(), num(p.cache_recomputes)),
                        ("cache_hit_permille".to_string(), num(permille)),
                        (
                            "mem_high_water_bytes".to_string(),
                            num(self.det(p.mem_high_water)),
                        ),
                        (
                            "profile_samples".to_string(),
                            num(prof.samples.get(name).copied().unwrap_or(0)),
                        ),
                    ]
                    .into_iter()
                    .collect(),
                )
            })
            .collect();
        let log = lock(&self.log);
        obj([
            ("schema", num(1)),
            ("clock", Value::str(self.clock.name())),
            ("uptime_ms", num(self.det(ctx.uptime_ms))),
            ("workers", num(ctx.workers)),
            ("sessions", num(ctx.sessions)),
            ("queue_depth", num(ctx.queue_depth)),
            ("open_circuits", num(ctx.open_circuits)),
            ("mem_high_water_bytes", num(self.det(ctx.mem_high_water_bytes))),
            ("requests_total", num(requests_total)),
            ("invalid_requests", num(self.invalid.load(Ordering::Relaxed))),
            ("log_entries", num(log.entries.len() as u64)),
            ("log_dropped", num(log.dropped)),
            ("slow_traces", num(lock(&self.slow).len() as u64)),
            (
                "ops",
                Value::Obj(ops.into_iter().collect()),
            ),
            ("projects", Value::Arr(project_entries)),
        ])
    }

    /// Prometheus text exposition of the same registry state (series with
    /// zero observations are omitted; ordering is deterministic).
    pub fn prometheus(&self, ctx: &SnapshotCtx) -> String {
        let (outcomes, hists, sums) = self.merged();
        let bounds = hist::bucket_bounds();
        let mut out = String::with_capacity(4096);
        for (name, help, v) in [
            ("araa_serve_uptime_ms", "Daemon uptime in milliseconds.", self.det(ctx.uptime_ms)),
            ("araa_serve_workers", "Configured worker threads.", ctx.workers),
            ("araa_serve_sessions", "Warm sessions resident.", ctx.sessions),
            ("araa_serve_queue_depth", "Requests queued across workers.", ctx.queue_depth),
            ("araa_serve_open_circuits", "Open per-project circuits.", ctx.open_circuits),
            (
                "araa_serve_mem_high_water_bytes",
                "Highest per-request memory charge seen.",
                self.det(ctx.mem_high_water_bytes),
            ),
            (
                "araa_serve_invalid_requests_total",
                "Frames too malformed to attribute to an op.",
                self.invalid.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n"));
            let kind = if name.ends_with("_total") { "counter" } else { "gauge" };
            out.push_str(&format!("# TYPE {name} {kind}\n{name} {v}\n"));
        }
        out.push_str("# HELP araa_serve_requests_total Requests by op and terminal outcome.\n");
        out.push_str("# TYPE araa_serve_requests_total counter\n");
        for op in Op::ALL {
            for (j, o) in Outcome::ALL.iter().enumerate() {
                let v = outcomes[op.index() * Outcome::ALL.len() + j];
                if v > 0 {
                    out.push_str(&format!(
                        "araa_serve_requests_total{{op=\"{}\",outcome=\"{}\"}} {v}\n",
                        op.name(),
                        o.name()
                    ));
                }
            }
        }
        out.push_str(
            "# HELP araa_serve_latency_units Request latency in clock units \
             (ns, or ticks under the logical clock).\n",
        );
        out.push_str("# TYPE araa_serve_latency_units histogram\n");
        for op in Op::ALL {
            let counts = &hists[op.index()];
            let n: u64 = counts.iter().sum();
            if n == 0 {
                continue;
            }
            let last_nonzero = counts.iter().rposition(|&c| c > 0).map(|p| p + 1).unwrap_or(0);
            let mut cum = 0u64;
            for (i, &c) in counts[..last_nonzero].iter().enumerate() {
                cum += c;
                if c > 0 || i + 1 == last_nonzero {
                    out.push_str(&format!(
                        "araa_serve_latency_units_bucket{{op=\"{}\",le=\"{}\"}} {cum}\n",
                        op.name(),
                        bounds[i]
                    ));
                }
            }
            out.push_str(&format!(
                "araa_serve_latency_units_bucket{{op=\"{}\",le=\"+Inf\"}} {n}\n",
                op.name()
            ));
            out.push_str(&format!(
                "araa_serve_latency_units_sum{{op=\"{}\"}} {}\n",
                op.name(),
                sums[op.index()]
            ));
            out.push_str(&format!(
                "araa_serve_latency_units_count{{op=\"{}\"}} {n}\n",
                op.name()
            ));
        }
        let projects = lock(&self.projects);
        if !projects.is_empty() {
            out.push_str(
                "# HELP araa_serve_project_cache_hit_permille Summary-cache hit rate \
                 per project, in permille.\n",
            );
            out.push_str("# TYPE araa_serve_project_cache_hit_permille gauge\n");
            for (name, p) in projects.iter() {
                let served = p.cache_hits + p.cache_recomputes;
                let permille = if served == 0 { 0 } else { p.cache_hits * 1000 / served };
                out.push_str(&format!(
                    "araa_serve_project_cache_hit_permille{{project=\"{}\"}} {permille}\n",
                    obs::json_escape(name)
                ));
            }
        }
        out
    }

    /// The `query-log` result: ring entries oldest→newest, optionally
    /// filtered by project, capped at `limit` newest entries.
    pub fn query_log(&self, project: Option<&str>, limit: u64) -> Value {
        let log = lock(&self.log);
        let filtered: Vec<&LogEntry> = log
            .entries
            .iter()
            .filter(|e| project.is_none_or(|p| e.project == p))
            .collect();
        let keep = filtered.len().saturating_sub(limit.min(usize::MAX as u64) as usize);
        let entries: Vec<Value> = filtered[keep..]
            .iter()
            .map(|e| {
                let mut pairs = vec![
                    ("seq", num(e.seq)),
                    ("trace", Value::str(e.trace.as_str())),
                    ("op", Value::str(e.op)),
                    ("project", Value::str(e.project.as_str())),
                    ("latency_units", num(e.latency_units)),
                    ("outcome", Value::str(e.outcome.name())),
                    (
                        "degradations",
                        Value::Arr(
                            e.degradations.iter().map(|d| Value::str(d.as_str())).collect(),
                        ),
                    ),
                    ("mem_bytes", num(e.mem_bytes)),
                    ("end_units", num(e.end_units)),
                ];
                if let Some((w, g)) = e.worker {
                    pairs.push(("worker", num(w as u64)));
                    pairs.push(("generation", num(g)));
                }
                obj(pairs)
            })
            .collect();
        obj([
            ("entries", Value::Arr(entries)),
            ("dropped", num(log.dropped)),
            ("capacity", num(log.cap as u64)),
        ])
    }

    /// The `profile` op's JSON result: per-project hot-procedure
    /// rankings (heaviest first, name-tiebroken), `top` procs per
    /// project.
    pub fn profile_json(&self, project: Option<&str>, top: u64) -> Value {
        let prof = lock(&self.profile);
        let projects: Vec<Value> = prof
            .procs
            .iter()
            .filter(|(name, _)| project.is_none_or(|p| name.as_str() == p))
            .map(|(name, by_proc)| {
                let mut ranked: Vec<(&String, &ProcAgg)> = by_proc.iter().collect();
                ranked.sort_by(|a, b| {
                    b.1.total_units.cmp(&a.1.total_units).then_with(|| a.0.cmp(b.0))
                });
                ranked.truncate(top.min(usize::MAX as u64) as usize);
                let procs: Vec<Value> = ranked
                    .into_iter()
                    .map(|(proc_name, agg)| {
                        obj([
                            ("proc", Value::str(proc_name.as_str())),
                            ("total_units", num(agg.total_units)),
                            ("spans", num(agg.spans)),
                        ])
                    })
                    .collect();
                obj([
                    ("project", Value::str(name.as_str())),
                    ("samples", num(prof.samples.get(name).copied().unwrap_or(0))),
                    ("procs", Value::Arr(procs)),
                ])
            })
            .collect();
        obj([
            ("projects", Value::Arr(projects)),
            ("slow_traces", num(lock(&self.slow).len() as u64)),
        ])
    }

    /// Collapsed-stack flamegraph lines folded from every retained
    /// slow-request span tree, prefixed with `op;project` frames.
    pub fn collapsed_stacks(&self) -> String {
        let slow = lock(&self.slow);
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for t in slow.iter() {
            for (stack, units) in obs::collapsed_stacks(&t.events) {
                let project: String = t
                    .project
                    .chars()
                    .map(|c| if c == ';' || c == ' ' { '_' } else { c })
                    .collect();
                *folded.entry(format!("{};{};{}", t.op, project, stack)).or_insert(0) +=
                    units;
            }
        }
        let mut out = String::new();
        for (stack, units) in folded {
            out.push_str(&format!("{stack} {units}\n"));
        }
        out
    }

    /// Slow traces as JSON (for `query-log` consumers wanting outlier
    /// detail): newest last.
    pub fn slow_traces_json(&self) -> Value {
        let slow = lock(&self.slow);
        Value::Arr(
            slow.iter()
                .map(|t| {
                    obj([
                        ("trace", Value::str(t.trace.as_str())),
                        ("op", Value::str(t.op)),
                        ("project", Value::str(t.project.as_str())),
                        ("latency_units", num(t.latency_units)),
                        ("spans", num(t.events.len() as u64)),
                    ])
                })
                .collect(),
        )
    }
}

/// Daemon-level context rendered into snapshots; the caller (dispatch or
/// the snapshot thread) reads these from `ServerStats`/`Supervisor`.
#[derive(Debug, Default, Clone)]
pub struct SnapshotCtx {
    pub uptime_ms: u64,
    pub workers: u64,
    pub sessions: u64,
    pub queue_depth: u64,
    pub open_circuits: u64,
    pub mem_high_water_bytes: u64,
}

/// JSON numbers ride an `f64`; clamp so exports stay exact-integer.
fn num(v: u64) -> Value {
    Value::int(v.min(1 << 53))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ctx() -> SnapshotCtx {
        SnapshotCtx { workers: 2, sessions: 1, ..Default::default() }
    }

    #[test]
    fn outcome_counters_are_thread_count_invariant() {
        let record = |m: &ServeMetrics| {
            m.record_outcome(Op::Analyze, Outcome::Ok, 10);
            m.record_outcome(Op::Analyze, Outcome::Shed, 20);
            m.record_outcome(Op::QueryRgn, Outcome::Ok, 30);
        };
        let seq = ServeMetrics::new(ClockKind::Logical, 16, 0);
        for _ in 0..8 {
            record(&seq);
        }
        let par = ServeMetrics::new(ClockKind::Logical, 16, 0);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let par = Arc::clone(&par);
                std::thread::spawn(move || record(&par))
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let a = seq.snapshot_json(&ctx()).render();
        let b = par.snapshot_json(&ctx()).render();
        assert_eq!(a, b, "merged counters must not depend on thread count");
    }

    #[test]
    fn logical_snapshots_are_byte_deterministic() {
        let run = || {
            let m = ServeMetrics::new(ClockKind::Logical, 16, 0);
            for i in 0..5u64 {
                let t = m.mint_trace(None);
                let start = m.now_units();
                m.record_outcome(Op::Analyze, Outcome::Ok, 3 + i % 2);
                let end = m.now_units();
                m.push_log(LogEntry {
                    seq: 0,
                    trace: t,
                    op: "analyze",
                    project: "demo".into(),
                    worker: Some((0, 1)),
                    latency_units: end - start,
                    outcome: Outcome::Ok,
                    degradations: vec![],
                    mem_bytes: 12345, // forced to 0 under the logical clock
                    end_units: end,
                });
                m.note_analysis("demo", i, 1, 999);
            }
            (
                m.snapshot_json(&ctx()).render(),
                m.prometheus(&ctx()),
                m.query_log(None, 100).render(),
            )
        };
        let (s1, p1, l1) = run();
        let (s2, p2, l2) = run();
        assert_eq!(s1, s2);
        assert_eq!(p1, p2);
        assert_eq!(l1, l2);
        assert!(l1.contains("\"mem_bytes\":0"), "logical clock zeroes mem churn");
        assert!(s1.contains("\"mem_high_water_bytes\":0"));
    }

    #[test]
    fn ring_log_caps_and_counts_drops() {
        let m = ServeMetrics::new(ClockKind::Logical, 4, 0);
        for i in 0..10u64 {
            m.push_log(LogEntry {
                seq: 0,
                trace: format!("t{i}"),
                op: "stats",
                project: "p".into(),
                worker: None,
                latency_units: 1,
                outcome: Outcome::Ok,
                degradations: vec![],
                mem_bytes: 0,
                end_units: i,
            });
        }
        let v = m.query_log(None, 100);
        let entries = v.get("entries").and_then(Value::as_arr).map(<[Value]>::len);
        assert_eq!(entries, Some(4));
        assert_eq!(v.get("dropped").and_then(Value::as_u64), Some(6));
        let limited = m.query_log(None, 2);
        let e = limited.get("entries").and_then(Value::as_arr).map(<[Value]>::to_vec);
        let e = e.unwrap_or_default();
        assert_eq!(e.len(), 2);
        // Newest entries win the limit cut.
        assert_eq!(e[1].get("trace").and_then(Value::as_str), Some("t9"));
    }

    #[test]
    fn query_log_filters_by_project() {
        let m = ServeMetrics::new(ClockKind::Logical, 16, 0);
        for (i, p) in ["a", "b", "a"].iter().enumerate() {
            m.push_log(LogEntry {
                seq: 0,
                trace: format!("t{i}"),
                op: "lint",
                project: (*p).into(),
                worker: Some((i, 1)),
                latency_units: 1,
                outcome: Outcome::Ok,
                degradations: vec![],
                mem_bytes: 0,
                end_units: i as u64,
            });
        }
        let v = m.query_log(Some("a"), 100);
        let entries = v.get("entries").and_then(Value::as_arr).map(<[Value]>::len);
        assert_eq!(entries, Some(2));
    }

    #[test]
    fn sampling_is_periodic_and_profile_ranks() {
        let m = ServeMetrics::new(ClockKind::Logical, 16, 0);
        let sampled: Vec<bool> = (0..SAMPLE_EVERY * 2).map(|_| m.should_sample("p")).collect();
        assert!(sampled[0], "first request always sampled");
        assert_eq!(sampled.iter().filter(|s| **s).count() as u64, 2);
        let mk = |name: &str, dur: u64, seq: u64| SpanEvent {
            name: "ipa.ipl",
            arg: Some(name.to_string()),
            tid: 0,
            start: seq * 100,
            dur,
            alloc: 0,
            seq,
        };
        m.record_profile("p", &[mk("cheap", 5, 0), mk("hot", 50, 1)]);
        m.record_profile("p", &[mk("hot", 25, 2)]);
        let v = m.profile_json(Some("p"), 10);
        let projects = v.get("projects").and_then(Value::as_arr).map(<[Value]>::to_vec);
        let projects = projects.unwrap_or_default();
        assert_eq!(projects.len(), 1);
        let procs = projects[0].get("procs").and_then(Value::as_arr).map(<[Value]>::to_vec);
        let procs = procs.unwrap_or_default();
        assert_eq!(procs[0].get("proc").and_then(Value::as_str), Some("hot"));
        assert_eq!(procs[0].get("total_units").and_then(Value::as_u64), Some(75));
        assert_eq!(projects[0].get("samples").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn slow_traces_fold_into_collapsed_stacks() {
        let m = ServeMetrics::new(ClockKind::Logical, 16, 1);
        assert!(m.is_slow(1));
        let events = vec![
            SpanEvent {
                name: "serve.request",
                arg: None,
                tid: 0,
                start: 0,
                dur: 10,
                alloc: 0,
                seq: 2,
            },
            SpanEvent {
                name: "ipa.ipl",
                arg: Some("hot".into()),
                tid: 0,
                start: 2,
                dur: 4,
                alloc: 0,
                seq: 1,
            },
        ];
        m.record_slow("t-1", Op::Reanalyze, "demo", 10, events);
        let collapsed = m.collapsed_stacks();
        assert!(
            collapsed.contains("reanalyze;demo;serve.request;ipa.ipl:hot 4\n"),
            "got: {collapsed}"
        );
        assert!(collapsed.contains("reanalyze;demo;serve.request 6\n"));
        let slow = m.slow_traces_json();
        assert_eq!(slow.as_arr().map(<[Value]>::len), Some(1));
    }

    #[test]
    fn prometheus_exposition_is_structurally_sound() {
        let m = ServeMetrics::new(ClockKind::Logical, 16, 0);
        m.record_outcome(Op::Analyze, Outcome::Ok, 7);
        m.record_outcome(Op::Analyze, Outcome::Degraded, 900);
        m.note_analysis("demo", 3, 1, 0);
        let text = m.prometheus(&ctx());
        assert!(text.contains("# TYPE araa_serve_requests_total counter"));
        assert!(text.contains("araa_serve_requests_total{op=\"analyze\",outcome=\"ok\"} 1"));
        assert!(text.contains("araa_serve_latency_units_bucket{op=\"analyze\",le=\"+Inf\"} 2"));
        assert!(text.contains("araa_serve_latency_units_count{op=\"analyze\"} 2"));
        assert!(text.contains("araa_serve_project_cache_hit_permille{project=\"demo\"} 750"));
        // Bucket counts are cumulative and end at the total.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("araa_serve_latency_units_bucket{op=\"analyze\"") {
                let v = rest.rsplit(' ').next().and_then(|s| s.parse::<u64>().ok());
                let v = v.unwrap_or(0);
                assert!(v >= last, "cumulative buckets must not decrease");
                last = v;
            }
        }
        assert_eq!(last, 2);
    }
}
