//! The serve client: one-shot JSON-RPC calls with timeout, retry, and
//! exponential backoff.
//!
//! # Retry/backoff contract
//!
//! A call is retried when it fails in a way a fresh attempt can fix:
//!
//! - connect/read/write errors and per-attempt I/O timeouts (the daemon is
//!   restarting, or wedged past its own deadline);
//! - structured `overloaded` / `shutting-down` / `circuit-open` responses
//!   — the wait honors the server's `retry_after_ms` hint when it exceeds
//!   the computed backoff (for `circuit-open` the hint is the remaining
//!   cool-down, so the retry lands right at the half-open probe window).
//!
//! It is **not** retried on any other error kind, or on any successful
//! response — including degraded ones.
//!
//! Every server error kind, and what this client does with it:
//!
//! | kind | meaning | client behavior |
//! |---|---|---|
//! | `bad-request` | malformed or invalid request | no retry — resending cannot help |
//! | `overloaded` | queue full or connection cap hit | retry after `retry_after_ms` |
//! | `shutting-down` | daemon draining | retry (the restarted daemon may answer) |
//! | `circuit-open` | project breaker open after repeated failures | retry after the cool-down hint |
//! | `frame-too-large` | request frame exceeded the daemon's cap | no retry — shrink the request |
//! | `deadline-expired` | worker wedged past deadline, being replaced | no retry — the op may not be idempotent; the caller decides |
//! | `panic` | handler panicked, session reset from disk | no retry — the caller decides whether to resubmit |
//! | `internal` | unexpected server-side failure | no retry |
//!
//! Backoff doubles from `backoff_base` up to `backoff_cap`, scaled by a
//! deterministic jitter in [0.5, 1.5) derived from `jitter_seed` and the
//! attempt number — reproducible in tests, yet distinct clients (seeded by
//! pid) desynchronize instead of retry-stampeding.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;
use support::json::Value;

/// Client configuration; see the module docs for the retry contract.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Socket the daemon listens on.
    pub socket: PathBuf,
    /// Per-attempt I/O timeout (connect is immediate on Unix sockets; this
    /// bounds the response wait).
    pub timeout: Duration,
    /// Additional attempts after the first (total attempts = retries + 1).
    pub retries: u32,
    /// First retry delay; doubles per retry.
    pub backoff_base: Duration,
    /// Ceiling on the (pre-jitter) backoff delay.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            socket: PathBuf::from("dragon.sock"),
            timeout: Duration::from_secs(60),
            retries: 4,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: u64::from(std::process::id()),
        }
    }
}

fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// The delay before retry number `attempt` (1-based): exponential from the
/// base, capped, jittered into [0.5, 1.5) deterministically.
pub fn backoff_delay(opts: &ClientOptions, attempt: u32, server_hint_ms: Option<u64>) -> Duration {
    let exp = opts
        .backoff_base
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
        .min(opts.backoff_cap);
    let base = match server_hint_ms {
        Some(hint) => exp.max(Duration::from_millis(hint)),
        None => exp,
    };
    // Jitter: a deterministic fraction in [0.5, 1.5) per (seed, attempt).
    let r = xorshift64(opts.jitter_seed.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_mul(u64::from(attempt) + 1));
    let frac = 0.5 + (r >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(frac)
}

/// One request/response exchange on a fresh connection. Errors on any I/O
/// failure or malformed response; protocol-level errors (`ok:false`) are
/// returned as `Ok` values for the caller (or [`call`]'s retry loop) to
/// interpret.
fn attempt(opts: &ClientOptions, line: &str) -> support::Result<Value> {
    let stream = UnixStream::connect(&opts.socket)
        .map_err(|e| support::Error::io(format!("connecting {}", opts.socket.display()), e))?;
    stream
        .set_read_timeout(Some(opts.timeout))
        .and_then(|()| stream.set_write_timeout(Some(opts.timeout)))
        .map_err(|e| support::Error::io("socket timeouts".to_string(), e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| support::Error::io("socket clone".to_string(), e))?;
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| support::Error::io("sending request".to_string(), e))?;
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    let n = reader
        .read_line(&mut resp)
        .map_err(|e| support::Error::io("reading response".to_string(), e))?;
    if n == 0 {
        return Err(support::Error::Analysis(
            "daemon closed the connection without responding".to_string(),
        ));
    }
    Value::parse(resp.trim())
}

/// Whether an `ok:false` response is retryable, and the server's wait hint.
fn retryable_error(resp: &Value) -> Option<Option<u64>> {
    let error = resp.get("error")?;
    match error.get("kind").and_then(Value::as_str) {
        Some("overloaded" | "shutting-down" | "circuit-open") => {
            Some(error.get("retry_after_ms").and_then(Value::as_u64))
        }
        _ => None,
    }
}

/// Calls the daemon, retrying per the module's contract. Returns the final
/// response value — check `ok` for protocol-level failure.
pub fn call(opts: &ClientOptions, request: &Value) -> support::Result<Value> {
    let line = request.render();
    let mut last_err: Option<support::Error> = None;
    let mut pending_delay: Option<Duration> = None;
    for attempt_no in 0..=opts.retries {
        if let Some(delay) = pending_delay.take() {
            std::thread::sleep(delay);
        }
        match attempt(opts, &line) {
            Ok(resp) => {
                let failed = resp.get("ok").and_then(Value::as_bool) == Some(false);
                if failed && attempt_no < opts.retries {
                    if let Some(hint) = retryable_error(&resp) {
                        pending_delay = Some(backoff_delay(opts, attempt_no + 1, hint));
                        last_err = Some(support::Error::Analysis(
                            "daemon overloaded/shutting down".to_string(),
                        ));
                        continue;
                    }
                }
                return Ok(resp);
            }
            Err(e) => {
                last_err = Some(e);
                pending_delay = Some(backoff_delay(opts, attempt_no + 1, None));
            }
        }
    }
    Err(last_err.unwrap_or_else(|| {
        support::Error::Analysis("client retries exhausted".to_string())
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ClientOptions {
        ClientOptions { jitter_seed: 42, ..ClientOptions::default() }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let o = opts();
        let d1 = backoff_delay(&o, 1, None);
        let d4 = backoff_delay(&o, 4, None);
        // Jitter is at most 1.5×/0.5×, growth is 8× — order must hold.
        assert!(d4 > d1, "{d4:?} vs {d1:?}");
        let d20 = backoff_delay(&o, 20, None);
        assert!(d20 <= o.backoff_cap.mul_f64(1.5), "{d20:?}");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let o = opts();
        assert_eq!(backoff_delay(&o, 3, None), backoff_delay(&o, 3, None));
        let other = ClientOptions { jitter_seed: 43, ..opts() };
        assert_ne!(backoff_delay(&o, 3, None), backoff_delay(&other, 3, None));
    }

    #[test]
    fn server_hint_raises_the_floor() {
        let o = opts();
        let hinted = backoff_delay(&o, 1, Some(10_000));
        assert!(hinted >= Duration::from_millis(5000), "{hinted:?}");
    }

    #[test]
    fn retryable_kinds_detected() {
        let overloaded = Value::parse(
            r#"{"ok":false,"error":{"kind":"overloaded","retry_after_ms":70}}"#,
        )
        .unwrap();
        assert_eq!(retryable_error(&overloaded), Some(Some(70)));
        let circuit = Value::parse(
            r#"{"ok":false,"error":{"kind":"circuit-open","retry_after_ms":1500}}"#,
        )
        .unwrap();
        assert_eq!(
            retryable_error(&circuit),
            Some(Some(1500)),
            "circuit-open retries at the cool-down hint"
        );
        let bad = Value::parse(r#"{"ok":false,"error":{"kind":"bad-request"}}"#).unwrap();
        assert_eq!(retryable_error(&bad), None);
        for terminal in ["frame-too-large", "deadline-expired", "panic", "internal"] {
            let resp = Value::parse(&format!(
                r#"{{"ok":false,"error":{{"kind":"{terminal}"}}}}"#
            ))
            .unwrap();
            assert_eq!(retryable_error(&resp), None, "{terminal} must not auto-retry");
        }
        let ok = Value::parse(r#"{"ok":true,"result":{}}"#).unwrap();
        assert_eq!(retryable_error(&ok), None);
    }

    #[test]
    fn connect_failure_errors_after_retries() {
        let o = ClientOptions {
            socket: PathBuf::from("/nonexistent/araa.sock"),
            retries: 1,
            backoff_base: Duration::from_millis(1),
            ..opts()
        };
        let req = Value::parse(r#"{"op":"stats"}"#).unwrap();
        assert!(call(&o, &req).is_err());
    }
}
