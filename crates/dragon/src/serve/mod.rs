//! Analysis as a service: the `dragon serve` daemon and its client.
//!
//! - [`proto`] — the line-delimited JSON-RPC wire protocol (`analyze`,
//!   `reanalyze`, `lint`, `query-rgn`, `stats`, `health`, `shutdown`);
//! - [`server`] — the fault-tolerant daemon: sharded warm sessions,
//!   per-request deadlines and memory budgets, bounded frame reads,
//!   admission control (queue depth, connection cap, per-project circuit
//!   breakers), panic containment, a self-healing supervisor that replaces
//!   wedged workers, graceful drain, and crash recovery on startup;
//! - [`supervisor`] — the heartbeat/circuit-breaker state machine behind
//!   the server's self-healing;
//! - [`client`] — one-shot calls with timeout, retry, and exponential
//!   backoff with deterministic jitter.
//!
//! See DESIGN.md "Serving & overload behavior" and "Resource limits &
//! self-healing" for the full semantics.

pub mod client;
pub mod proto;
pub mod server;
pub mod supervisor;

pub use client::{call, ClientOptions};
pub use server::{run, ServeOptions};
