//! Analysis as a service: the `dragon serve` daemon and its client.
//!
//! - [`proto`] — the line-delimited JSON-RPC wire protocol (`analyze`,
//!   `reanalyze`, `lint`, `query-rgn`, `stats`, `shutdown`);
//! - [`server`] — the fault-tolerant daemon: sharded warm sessions,
//!   per-request deadlines, admission control, panic containment, graceful
//!   drain, and crash recovery on startup;
//! - [`client`] — one-shot calls with timeout, retry, and exponential
//!   backoff with deterministic jitter.
//!
//! See DESIGN.md "Serving & overload behavior" for the full semantics.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{call, ClientOptions};
pub use server::{run, ServeOptions};
