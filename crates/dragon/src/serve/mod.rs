//! Analysis as a service: the `dragon serve` daemon and its client.
//!
//! - [`proto`] — the line-delimited JSON-RPC wire protocol (`analyze`,
//!   `reanalyze`, `lint`, `query-rgn`, `stats`, `health`, `shutdown`);
//! - [`server`] — the fault-tolerant daemon: sharded warm sessions,
//!   per-request deadlines and memory budgets, bounded frame reads,
//!   admission control (queue depth, connection cap, per-project circuit
//!   breakers), panic containment, a self-healing supervisor that replaces
//!   wedged workers, graceful drain, and crash recovery on startup;
//! - [`supervisor`] — the heartbeat/circuit-breaker state machine behind
//!   the server's self-healing;
//! - [`metrics`] — the observability plane: request-scoped trace ids,
//!   sharded per-op outcome counters and log-linear latency histograms,
//!   the ring-buffer request log, slow-trace capture, and the sampling
//!   profiler (served by `metrics`, `query-log`, and `profile` ops);
//! - [`client`] — one-shot calls with timeout, retry, and exponential
//!   backoff with deterministic jitter.
//!
//! See DESIGN.md "Serving & overload behavior", "Resource limits &
//! self-healing", and "Observability" for the full semantics.

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod supervisor;

pub use client::{call, ClientOptions};
pub use server::{run, ServeOptions};
